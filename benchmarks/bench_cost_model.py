"""Equation 3 validation (§8): measured accesses vs ``2^d + S·F(b)``.

The paper's blocked-prefix-sum cost model is an average-case estimate:
``F(b) ≈ b/4`` boundary cells per unit of query surface because each
boundary strip averages ``b/4`` cells once the complement trick halves
the ``b/2`` expectation.  This bench measures real access counts across
block sizes and query sizes and reports the measured/predicted ratio —
the paper's claim holds when the ratio stays near 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocked import BlockedPrefixSumCube
from repro.instrumentation import AccessCounter
from repro.optimizer.cost_model import prefix_sum_cost
from repro.query.stats import QueryStatistics
from repro.query.workload import make_cube, random_box

from benchmarks._tables import format_table

SHAPE = (240, 240)
BLOCKS = (2, 4, 8, 12, 20)


@pytest.fixture(scope="module")
def cube():
    return make_cube(SHAPE, np.random.default_rng(7), high=100)


def test_equation3_table(cube, report, benchmark):
    rng = np.random.default_rng(11)

    def compute():
        rows = []
        for block in BLOCKS:
            structure = BlockedPrefixSumCube(cube, block)
            measured = 0.0
            predicted = 0.0
            trials = 60
            for _ in range(trials):
                box = random_box(SHAPE, rng, min_length=3 * block)
                counter = AccessCounter()
                structure.range_sum(box, counter)
                measured += counter.total
                stats = QueryStatistics.from_lengths(box.lengths)
                predicted += prefix_sum_cost(stats, block)
            rows.append(
                [
                    block,
                    measured / trials,
                    predicted / trials,
                    measured / predicted,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "Equation 3 (§8): measured accesses vs 2^d + S·F(b), "
            "240×240 cube",
            ["b", "measured avg", "predicted avg", "measured/predicted"],
            rows,
            note="The model is an average-case estimate; ratios near 1 "
            "confirm it.",
        )
    )
    for _, _, _, ratio in rows:
        assert 0.3 < ratio < 2.0, ratio


def test_cost_grows_linearly_in_b(cube, report, benchmark):
    """The S·F(b) term: fixing the query, cost is ~linear in b."""
    rng = np.random.default_rng(13)
    boxes = [random_box(SHAPE, rng, min_length=80) for _ in range(30)]

    def compute():
        averages = []
        for block in BLOCKS:
            structure = BlockedPrefixSumCube(cube, block)
            total = 0
            for box in boxes:
                counter = AccessCounter()
                structure.range_sum(box, counter)
                total += counter.total
            averages.append(total / len(boxes))
        return averages

    averages = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "Equation 3 (§8): average cost vs block size, fixed query set",
            ["b", "avg accesses", "accesses / b"],
            [
                [b, avg, avg / b]
                for b, avg in zip(BLOCKS, averages)
            ],
            note="Linear growth in b confirms the S·F(b) = S·b/4 term.",
        )
    )
    assert averages == sorted(averages)
    # Linearity: cost/b should be roughly flat between b=4 and b=20.
    per_b = [avg / b for b, avg in zip(BLOCKS, averages)]
    assert max(per_b[1:]) < 3 * min(per_b[1:])
