"""Precomputation costs: §3.3's ``dN`` sweeps and §4.3's ``(1+ε)N``.

The paper bounds construction work, not just query work:

* the basic prefix array is built in ``d·N`` steps — d one-dimensional
  sweeps over the whole array (vs the naive ``O(N·2^d)`` of evaluating
  Theorem 1 per cell);
* the blocked array takes ``N + d·N/b^d = (1 + ε)N`` steps, ``ε → 0``
  as ``b`` or ``d`` grows — one contraction pass plus sweeps over the
  contracted array.

The bench measures wall time per cell across sizes and dimensionalities
(expect flat-ish time/cell ~ linear total work) and shows the blocked
build approaching a single pass as ``b`` grows.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.blocked import BlockedPrefixSumCube
from repro.core.prefix_sum import compute_prefix_array
from repro.core.range_max import RangeMaxTree
from repro.query.workload import make_cube

from benchmarks._tables import format_table


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_prefix_build_scales_linearly(report, benchmark):
    rng = np.random.default_rng(167)

    def compute():
        rows = []
        for shape in ((10**6,), (1000, 1000), (100, 100, 100),
                      (32, 32, 32, 32)):
            cube = make_cube(shape, rng, high=100)
            seconds = _best_of(lambda: compute_prefix_array(cube))
            n = cube.size
            rows.append(
                [
                    "×".join(str(s) for s in shape),
                    len(shape),
                    n,
                    seconds * 1e3,
                    seconds / n * 1e9,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§3.3: prefix-array construction — d sweeps, d·N total work",
            ["shape", "d", "N", "build ms", "ns per cell·sweep? (ns/cell)"],
            rows,
            note="Time per cell grows ~linearly with d (one sweep per "
            "dimension), not with 2^d.",
        )
    )
    # 4-d time/cell must stay within a small factor of 4× the 1-d rate.
    per_cell = {d: t for _, d, _, _, t in rows}
    assert per_cell[4] < per_cell[1] * 16


def test_blocked_build_approaches_single_pass(report, benchmark):
    rng = np.random.default_rng(173)
    cube = make_cube((1200, 1200), rng, high=100)

    def compute():
        baseline = _best_of(lambda: compute_prefix_array(cube))
        rows = [["basic (b=1)", baseline * 1e3, 1.0, cube.size]]
        for block in (4, 12, 40):
            seconds = _best_of(
                lambda: BlockedPrefixSumCube(cube, block)
            )
            structure = BlockedPrefixSumCube(cube, block)
            rows.append(
                [
                    f"blocked b={block}",
                    seconds * 1e3,
                    seconds / baseline,
                    structure.storage_cells,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§4.3: blocked construction, (1+d/b^d)·N steps, 1200² cube",
            ["variant", "build ms", "vs basic", "aux cells"],
            rows,
            note="Auxiliary storage drops by b^d while the build stays "
            "within a pass or two of N.  (The blocked build includes one "
            "source copy, so small b can sit near the basic time.)",
        )
    )
    aux = [row[3] for row in rows]
    assert aux[1:] == sorted(aux[1:], reverse=True)
    assert aux[-1] < aux[0] / 100


def test_max_tree_build_is_geometric(report, benchmark):
    """The tree holds ~N/(b^d − 1) nodes; construction is one argmax
    pass per level with geometrically shrinking levels."""
    rng = np.random.default_rng(179)
    cube = make_cube((1024, 1024), rng, high=10**6)

    def compute():
        rows = []
        for fanout in (2, 4, 8):
            seconds = _best_of(lambda: RangeMaxTree(cube, fanout), 2)
            tree = RangeMaxTree(cube, fanout)
            rows.append(
                [
                    fanout,
                    seconds * 1e3,
                    tree.node_count,
                    cube.size // max(1, fanout**2 - 1),
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§6: max-tree construction, 1024² cube",
            ["b", "build ms", "nodes", "~N/(b^d − 1)"],
            rows,
            note="Node counts track the geometric-series estimate.",
        )
    )
    for _, _, nodes, estimate in rows:
        assert nodes <= 2 * estimate + 10


@pytest.mark.parametrize("builder", ["prefix", "blocked", "maxtree"])
def test_build_wall_time(builder, benchmark):
    rng = np.random.default_rng(181)
    cube = make_cube((512, 512), rng, high=100)
    runner = {
        "prefix": lambda: compute_prefix_array(cube),
        "blocked": lambda: BlockedPrefixSumCube(cube, 8),
        "maxtree": lambda: RangeMaxTree(cube, 4),
    }[builder]
    benchmark.pedantic(runner, rounds=3, iterations=1)
