"""Shared fixtures for the benchmark suite."""

from __future__ import annotations

from benchmarks import _env  # noqa: F401  (pins thread env before numpy)

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator so benchmark workloads are reproducible."""
    return np.random.default_rng(1997)


@pytest.fixture
def report(capsys):
    """Print a report table to the real terminal, bypassing capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _emit
