"""§10: sparse engines vs dense structures on clustered sparse cubes.

The paper's sparse regime: a cube ~20% dense overall with dense
sub-clusters.  The bench builds such cubes, runs the §10.2 range-sum
pipeline (dense regions + per-region prefix sums + R*-tree outliers), the
§10.1 1-d B-tree engine, and the §10.3 max-augmented R*-tree, and reports
storage and access costs against dense materialization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.core.prefix_sum import PrefixSumCube
from repro.instrumentation import AccessCounter
from repro.query.workload import clustered_points, random_box
from repro.sparse.sparse_cube import SparseCube
from repro.sparse.sparse_max import SparseRangeMaxEngine
from repro.sparse.sparse_sum import SparseRangeSum1D, SparseRangeSumEngine

from benchmarks._tables import format_table

SHAPE = (256, 256)


@pytest.fixture(scope="module")
def sparse_cube():
    rng = np.random.default_rng(131)
    clusters = [
        Box((10, 10), (60, 60)),
        Box((120, 40), (180, 110)),
        Box((60, 170), (140, 230)),
    ]
    cells = clustered_points(
        SHAPE, clusters, 0.85, 300, rng, low=1, high=10**6
    )
    return SparseCube(SHAPE, cells)


def test_sparse_sum_table(sparse_cube, report, benchmark):
    rng = np.random.default_rng(137)

    def compute():
        engine = SparseRangeSumEngine(sparse_cube, block_size=4)
        dense = PrefixSumCube(sparse_cube.to_dense())
        rows = []
        for _ in range(5):
            box = random_box(SHAPE, rng, min_length=60)
            counter = AccessCounter()
            got = engine.range_sum(box, counter)
            assert got == dense.range_sum(box)
            rows.append(
                [
                    str(box),
                    box.volume,
                    counter.index_nodes,
                    counter.prefix_cells,
                    counter.cube_cells,
                    counter.total,
                ]
            )
        summary = [
            engine.dense_region_count,
            engine.outlier_count,
            engine.storage_cells(),
            sparse_cube.volume,
        ]
        return rows, summary

    rows, summary = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§10.2: sparse range-sum engine accesses, 256×256 cube "
            f"({sparse_cube.nnz} non-empty cells, "
            f"density {sparse_cube.density:.1%})",
            [
                "query",
                "volume",
                "R* nodes",
                "prefix cells",
                "cube cells",
                "total",
            ],
            rows,
            note=(
                f"{summary[0]} dense regions, {summary[1]} outliers; "
                f"auxiliary storage {summary[2]} cells vs "
                f"{summary[3]} for a dense prefix array."
            ),
        )
    )
    assert summary[2] < summary[3] / 5
    for row in rows:
        assert row[5] < row[1]  # cheaper than scanning the query region


def test_sparse_1d_btree(report, benchmark):
    rng = np.random.default_rng(139)
    n = 10**6
    keys = rng.choice(n, 2000, replace=False)
    cells = {
        (int(k),): int(v)
        for k, v in zip(keys, rng.integers(1, 100, 2000))
    }
    cube = SparseCube((n,), cells)

    def compute():
        engine = SparseRangeSum1D(cube)
        rows = []
        for span in (10**3, 10**4, 10**5, 10**6 - 1):
            start = int(rng.integers(0, n - span))
            box = Box((start,), (start + span - 1,))
            counter = AccessCounter()
            got = engine.range_sum(box, counter)
            assert got == cube.naive_range_sum(box)
            rows.append(
                [span, counter.index_nodes, engine.index.height]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§10.1: 1-d sparse prefix sums under a B-tree, domain 10^6, "
            "2000 non-empty cells",
            ["range span", "B-tree nodes", "tree height"],
            rows,
            note="Two predecessor descents regardless of the span.",
        )
    )
    for span, nodes, height in rows:
        assert nodes <= 2 * (height + 2)


def test_sparse_max_table(sparse_cube, report, benchmark):
    rng = np.random.default_rng(149)

    def compute():
        engine = SparseRangeMaxEngine(sparse_cube)
        rows = []
        for _ in range(6):
            box = random_box(SHAPE, rng, min_length=40)
            counter = AccessCounter()
            hit = engine.max_index(box, counter)
            expected = sparse_cube.naive_max(box)
            if hit is None:
                assert expected is None
                continue
            assert hit[1] == expected[1]
            rows.append(
                [
                    str(box),
                    counter.index_nodes,
                    engine.rtree.node_count,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§10.3: max-augmented R*-tree, branch-and-bound from the root",
            ["query", "nodes visited", "total nodes"],
            rows,
            note="Pruning keeps visits far below the tree size.",
        )
    )
    for _, visited, total in rows:
        assert visited < total / 2


def test_sparse_engine_build_time(sparse_cube, benchmark):
    benchmark.pedantic(
        lambda: SparseRangeSumEngine(sparse_cube, block_size=4),
        rounds=3,
        iterations=1,
    )
