"""Figures 5 and 6: the blocked algorithm's 3^d decomposition (§4.2).

Figure 5 decomposes ``Sum(50:349, 50:349)`` on a 400×400 cube with
``b = 100`` into nine regions A1..A9 (one internal), each boundary region
with a block-aligned superblock.  Figure 6's query ``Sum(75:374,
100:354)`` mixes the direct method and the superblock-complement method.
The bench prints the decompositions and the per-region method choices
with their access costs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.core.blocked import BlockedPrefixSumCube
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_range_sum
from repro.query.workload import make_cube

from benchmarks._tables import format_table


@pytest.fixture(scope="module")
def structure():
    cube = make_cube((400, 400), np.random.default_rng(61), high=10)
    return BlockedPrefixSumCube(cube, 100)


def test_figure5_regions(structure, report, benchmark):
    box = Box((50, 50), (349, 349))
    regions = benchmark.pedantic(
        lambda: structure.decompose(box), rounds=1, iterations=1
    )
    rows = []
    for i, (region, superblock, internal) in enumerate(regions, start=1):
        rows.append(
            [
                f"A{i}",
                str(region),
                str(superblock),
                "internal" if internal else "boundary",
                region.volume,
            ]
        )
    report(
        format_table(
            "Figure 5 (§4.2): decomposition of Sum(50:349, 50:349), "
            "b = 100, 400×400 cube",
            ["region", "extent", "superblock", "kind", "volume"],
            rows,
            note="The paper's figure: 9 regions, A5 internal, the rest "
            "boundary with whole-block superblocks.",
        )
    )
    assert len(regions) == 9
    assert sum(r[0].volume for r in regions) == box.volume
    assert sum(1 for r in regions if r[2]) == 1


def test_figure6_method_choice(structure, report, benchmark):
    box = Box((75, 100), (374, 354))

    def compute():
        regions = structure.decompose(box)
        rows = []
        for region, superblock, internal in regions:
            if internal:
                rows.append(
                    [str(region), "internal", "prefix only", 2**2]
                )
                continue
            direct = region.volume
            complement = superblock.volume - region.volume + 2**2 - 1
            method = "direct scan" if direct <= complement else "complement"
            rows.append(
                [str(region), "boundary", method, min(direct, complement)]
            )
        return regions, rows

    regions, rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "Figure 6 (§4.2): per-region method choice for "
            "Sum(75:374, 100:354)",
            ["region", "kind", "chosen method", "~cost"],
            rows,
            note="The paper's figure shades a mix of both methods; the "
            "wide 300:374 strip flips to the complement method.",
        )
    )
    methods = {row[2] for row in rows}
    assert "direct scan" in methods and "complement" in methods

    counter = AccessCounter()
    got = structure.range_sum(box, counter)
    assert got == naive_range_sum(structure.source, box)
    assert counter.total < box.volume / 3


def test_decomposition_query_speed(structure, benchmark):
    rng = np.random.default_rng(67)
    from repro.query.workload import random_box

    boxes = [random_box((400, 400), rng, min_length=50) for _ in range(20)]

    def run():
        return sum(int(structure.range_sum(b)) for b in boxes)

    benchmark(run)
