"""Figure 13: the greedy cuboid/block-size selector end to end (§9.2).

A synthetic query log over a 3-d cube is bucketed by cuboid, the greedy
algorithm runs under a sweep of space budgets, and the bench reports the
chosen materializations and the workload-cost reduction — plus the value
of the fine-tuning pass on a workload engineered to trip plain greedy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.optimizer.cuboid_selection import (
    CuboidSelector,
    CuboidWorkload,
    workloads_from_log,
)
from repro.query.stats import QueryStatistics
from repro.query.workload import WorkloadProfile, generate_query_log

from benchmarks._tables import format_table

SHAPE = (200, 100, 25)


@pytest.fixture(scope="module")
def workloads():
    rng = np.random.default_rng(127)
    profile = WorkloadProfile(
        range_probability=(0.8, 0.6, 0.15),
        singleton_probability=0.5,
        range_lengths=((20, 120), (10, 60), (3, 12)),
    )
    log = generate_query_log(SHAPE, profile, 400, rng)
    return workloads_from_log(log, SHAPE)


def test_budget_sweep(workloads, report, benchmark):
    def compute():
        rows = []
        for budget in (500, 5000, 50000, 500000):
            selector = CuboidSelector(SHAPE, workloads, budget)
            result = selector.solve()
            chosen = ", ".join(
                f"{m.key}@b{m.block_size}" for m in result.chosen
            ) or "(nothing)"
            rows.append(
                [
                    budget,
                    int(result.total_space),
                    f"{result.benefit / result.baseline_cost:.0%}",
                    chosen,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "Figure 13 (§9.2): greedy selection across space budgets, "
            f"cube {SHAPE}, 400-query log",
            ["budget (cells)", "space used", "cost cut", "materialized"],
            rows,
            note="Bigger budgets buy finer blocks and more cuboids; the "
            "cost reduction is monotone in the budget.",
        )
    )
    cuts = [float(row[2].rstrip("%")) for row in rows]
    assert cuts == sorted(cuts)
    assert cuts[-1] > 50.0


def test_fine_tuning_value(report, benchmark):
    """A workload where dropping an early greedy pick pays off."""

    def compute():
        workloads = [
            CuboidWorkload(
                (0, 1), QueryStatistics.from_lengths([50, 50]), 30
            ),
            CuboidWorkload((0,), QueryStatistics.from_lengths([80]), 300),
            CuboidWorkload((1,), QueryStatistics.from_lengths([80]), 300),
        ]
        selector = CuboidSelector((100, 100), workloads, space_limit=260)
        greedy = selector.solve(fine_tune=False, spend_surplus=False)
        tuned = selector.solve(fine_tune=True, spend_surplus=False)
        final = selector.solve(fine_tune=True, spend_surplus=True)
        return greedy, tuned, final

    greedy, tuned, final = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    report(
        format_table(
            "Figure 13 (§9.2): fine-tuning and surplus-spending passes",
            ["variant", "final cost", "space used", "chosen"],
            [
                [
                    "greedy only",
                    int(greedy.final_cost),
                    int(greedy.total_space),
                    len(greedy.chosen),
                ],
                [
                    "+ fine-tune",
                    int(tuned.final_cost),
                    int(tuned.total_space),
                    len(tuned.chosen),
                ],
                [
                    "+ surplus",
                    int(final.final_cost),
                    int(final.total_space),
                    len(final.chosen),
                ],
            ],
            note="Each pass may only improve the plan.",
        )
    )
    assert tuned.final_cost <= greedy.final_cost + 1e-9
    assert final.final_cost <= tuned.final_cost + 1e-9


def test_selector_wall_time(workloads, benchmark):
    benchmark.pedantic(
        lambda: CuboidSelector(SHAPE, workloads, 50000).solve(),
        rounds=3,
        iterations=1,
    )
