"""Hierarchy levels as block-aligned ranges (§4 meets OLAP drill-down).

Time-like dimensions carry hierarchies (month ⊂ quarter ⊂ year); any
level's value covers a contiguous leaf range, so drill-down queries are
the paper's range queries.  Choosing the §4 block size equal to a level's
fan-out makes every query at that level block-aligned — answered from the
blocked ``P`` alone, no raw-cell scans.  The bench measures accesses per
level on a month axis for aligned (b = 3, b = 12) and misaligned (b = 5)
block sizes.

(The demonstration is one-dimensional on purpose: with further
dimensions in the query, the paper's ``h' = b⌊h/b⌋`` split can route an
aligned band through a superblock whose complement touches another
dimension's boundary cells, so "zero raw reads" only holds per aligned
axis — an interaction the assertions below would otherwise hide.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocked import BlockedPrefixSumCube
from repro.cube.hierarchy import month_hierarchy
from repro.instrumentation import AccessCounter

from benchmarks._tables import format_table

YEARS = list(range(2015, 2025))  # 120 months


@pytest.fixture(scope="module")
def months():
    return month_hierarchy("month", YEARS)


def test_alignment_table(months, report, benchmark):
    rng = np.random.default_rng(293)
    series = rng.integers(0, 1000, (120,)).astype(np.int64)

    def compute():
        rows = []
        for block in (3, 5, 12):
            structure = BlockedPrefixSumCube(series, block)
            for level in ("quarter", "year"):
                cube_cells = 0
                prefix_cells = 0
                labels = months.labels(level)
                for label in labels:
                    lo, hi = months.level_range(level, label)
                    counter = AccessCounter()
                    got = structure.sum_range([(lo, hi)], counter)
                    assert got == int(series[lo : hi + 1].sum())
                    cube_cells += counter.cube_cells
                    prefix_cells += counter.prefix_cells
                rows.append(
                    [
                        block,
                        level,
                        len(labels),
                        prefix_cells / len(labels),
                        cube_cells / len(labels),
                    ]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§4 × hierarchies: accesses per drill-down query, "
            "120-month axis",
            [
                "b",
                "level",
                "queries",
                "avg P reads",
                "avg raw-cell reads",
            ],
            rows,
            note="b = 3 (quarter fan-out) and b = 12 (year fan-out) keep "
            "their levels block-aligned: zero raw-cell reads.  A "
            "misaligned b = 5 must scan boundary months.",
        )
    )
    by_key = {(row[0], row[1]): row[4] for row in rows}
    assert by_key[(3, "quarter")] == 0.0
    assert by_key[(3, "year")] == 0.0  # years are 4 whole quarters
    assert by_key[(12, "year")] == 0.0
    assert by_key[(5, "quarter")] > 0.0
    assert by_key[(5, "year")] > 0.0


def test_hierarchy_query_wall_time(months, benchmark):
    rng = np.random.default_rng(307)
    series = rng.integers(0, 1000, (120,)).astype(np.int64)
    structure = BlockedPrefixSumCube(series, 3)
    ranges = [
        months.level_range("quarter", label)
        for label in months.labels("quarter")
    ]
    benchmark(
        lambda: [structure.sum_range([(lo, hi)]) for lo, hi in ranges]
    )
