"""§6 ablation: what the branch-and-bound pruning is worth.

The range-max tree resolves boundary children in one access when their
stored max lands inside the query (B_in) and recurses into the rest
(B_out) *only when their max can beat the incumbent*.  Disabling that
test forces a full boundary descent.  The bench measures both modes —
and a naive scan — across dimensionalities and query sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.range_max import RangeMaxTree
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_max_value
from repro.query.workload import make_cube, random_box

from benchmarks._tables import format_table

CASES = (
    ("1-d n=4096", (4096,), 4),
    ("2-d 128²", (128, 128), 4),
    ("3-d 32³", (32, 32, 32), 2),
)


def test_pruning_table(report, benchmark):
    rng = np.random.default_rng(109)

    def compute():
        rows = []
        for label, shape, fanout in CASES:
            cube = make_cube(shape, rng, high=10**6)
            tree = RangeMaxTree(cube, fanout)
            pruned = unpruned = naive = 0
            trials = 80
            for _ in range(trials):
                box = random_box(shape, rng, min_length=2)
                expected = naive_max_value(cube, box)
                counter = AccessCounter()
                assert cube[tree.max_index(box, counter)] == expected
                pruned += counter.total
                counter = AccessCounter()
                assert (
                    cube[
                        tree.max_index(
                            box, counter, use_branch_and_bound=False
                        )
                    ]
                    == expected
                )
                unpruned += counter.total
                naive += box.volume
            rows.append(
                [
                    label,
                    naive // trials,
                    unpruned // trials,
                    pruned // trials,
                    f"{unpruned / max(1, pruned):.1f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§6 ablation: accesses with and without branch-and-bound",
            [
                "cube",
                "naive scan",
                "tree, no pruning",
                "tree + B&B",
                "pruning gain",
            ],
            rows,
            note="The B&B rule prunes most B_out recursions; the paper's "
            "average case (Theorem 3) depends on it.",
        )
    )
    for row in rows:
        assert row[3] <= row[2] <= row[1] * 1.1


@pytest.mark.parametrize("mode", ["bnb", "no_bnb", "naive"])
def test_rangemax_wall_time(mode, benchmark):
    rng = np.random.default_rng(113)
    cube = make_cube((256, 256), rng, high=10**6)
    tree = RangeMaxTree(cube, 4)
    boxes = [
        random_box((256, 256), rng, min_length=32) for _ in range(30)
    ]

    if mode == "naive":
        benchmark(
            lambda: [int(cube[b.slices()].max()) for b in boxes]
        )
    elif mode == "bnb":
        benchmark(lambda: [tree.max_index(b) for b in boxes])
    else:
        benchmark(
            lambda: [
                tree.max_index(b, use_branch_and_bound=False)
                for b in boxes
            ]
        )
