"""Shared table formatting for the benchmark reports.

Every benchmark prints the rows/series of the paper figure or claim it
regenerates; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Render a fixed-width table with a title banner."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(row[i]) for row in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = ["", "=" * 72, title, "=" * 72]
    lines.append(
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    if note:
        lines.append(note)
    lines.append("")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
