"""Serving-layer benchmark: HTTP load percentiles + coalescing throughput.

Two measurements over ``repro.serving``:

* **Dispatch comparison** — the same scalar-sum request stream is driven
  through two in-process :class:`~repro.serving.QueryService` instances,
  one with the request coalescer enabled (concurrent asks batch into a
  single ``sum_many`` gather) and one dispatching every query
  individually.  The published number is the throughput ratio, which the
  full run gates at >= 2x: if batching ever stops paying for itself the
  benchmark fails.
* **HTTP load** — a live :class:`~repro.serving.ServingServer` is put
  under >= 8 concurrent keep-alive connections with seeded workloads
  (cold scalar sums, mixed operators, and a hot-pool stream that
  exercises the result cache) and p50/p99 latency plus QPS are recorded
  per scenario.

Runs as a plain script and emits machine-readable results to
``BENCH_serving.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_serving.py          # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke  # CI

With ``--baseline BENCH_serving.json`` the run fails when a matching
dispatch row's coalescing ratio regresses more than 2x against the
recorded baseline — the gate compares two code paths on the same
machine, so absolute speed differences between boxes never trip it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from collections import deque
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks._env import thread_config  # noqa: E402  (pins thread env)

import numpy as np  # noqa: E402

from repro.serving import (  # noqa: E402
    QueryService,
    ServeConfig,
    ServingServer,
    generate_requests,
    run_load,
)

from benchmarks._tables import format_table  # noqa: E402

SEED = 1997
REPEATS = 3

#: (shape, concurrency, requests) per dispatch-comparison row.  High-d
#: prefix-sum cubes are where coalescing pays most: a scalar query costs
#: 2^d corner lookups of Python-level overhead, while the batched gather
#: amortizes those corners across every query in the batch.
DISPATCH_CONFIGS = (
    {"shape": (10, 8, 8, 6, 6, 4), "concurrency": 32, "n": 2_000},
    {"shape": (12, 10, 8, 8, 6, 4), "concurrency": 64, "n": 2_000},
)
#: The smoke run reuses a full config (same (shape, concurrency) key,
#: shorter stream) so ``--baseline`` still gates the CI run.
SMOKE_DISPATCH_CONFIGS = (
    {"shape": (10, 8, 8, 6, 6, 4), "concurrency": 32, "n": 400},
)

#: HTTP scenarios: name -> (ops, hot_fraction).
HTTP_SCENARIOS = (
    ("scalar-sum", ("sum",), 0.0),
    ("mixed-ops", ("sum", "count", "average", "max"), 0.0),
    ("hot-cache", ("sum",), 0.9),
)
HTTP_CONCURRENCY = (8, 16)
SMOKE_HTTP_CONCURRENCY = (8,)


def _service(
    data: np.ndarray,
    *,
    window_s: float,
    max_batch: int,
) -> QueryService:
    """A service over one prefix-sum cube, cache disabled.

    The dispatch comparison isolates *coalescing*: the cache is off so
    repeated boxes cannot shortcut either path, and offload is disabled
    so both paths pay their dispatch cost on the event loop itself.
    """
    service = QueryService(
        ServeConfig(
            coalesce_window_s=window_s,
            coalesce_max_batch=max_batch,
            cache_capacity=0,
            offload_cells=1 << 62,
        )
    )
    service.register_cube("bench", data, max_index=None)
    return service


async def _drive(service: QueryService, payloads, concurrency: int) -> float:
    """Replay ``payloads`` with ``concurrency`` workers; wall seconds."""
    pending = deque(payloads)

    async def worker() -> None:
        while pending:
            payload = pending.popleft()
            await service.query(dict(payload))

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    return time.perf_counter() - started


def bench_dispatch(config: dict) -> dict:
    """Coalesced vs per-query dispatch on one scalar-sum stream."""
    shape = config["shape"]
    concurrency = config["concurrency"]
    rng = np.random.default_rng(SEED)
    data = rng.integers(0, 1000, size=shape).astype(np.int64)
    payloads = generate_requests(
        rng, shape, config["n"], cube="bench", ops=("sum",)
    )

    def timed(window_s: float) -> tuple[float, QueryService]:
        service = _service(
            data, window_s=window_s, max_batch=concurrency
        )
        best = float("inf")
        for _ in range(REPEATS):
            best = min(
                best, asyncio.run(_drive(service, payloads, concurrency))
            )
        asyncio.run(service.close())
        return best, service

    direct_s, direct = timed(0.0)
    coalesced_s, coalesced = timed(0.002)
    assert coalesced.coalescer.largest_batch >= 2, (
        "coalescer never batched — the comparison is meaningless"
    )
    assert direct.coalescer.batches == 0
    return {
        "shape": list(shape),
        "concurrency": concurrency,
        "requests": config["n"],
        "direct_s": direct_s,
        "coalesced_s": coalesced_s,
        "direct_qps": config["n"] / direct_s,
        "coalesced_qps": config["n"] / coalesced_s,
        "speedup": direct_s / coalesced_s,
        "largest_batch": coalesced.coalescer.largest_batch,
    }


def bench_http(
    requests: int, concurrencies: tuple[int, ...]
) -> list[dict]:
    """Latency percentiles and QPS per scenario over a live server."""
    shape = (64, 64, 32)
    rng = np.random.default_rng(SEED)
    data = rng.integers(0, 1000, size=shape).astype(np.int64)
    rows = []

    async def run_scenarios() -> None:
        service = QueryService(ServeConfig(coalesce_window_s=0.002))
        service.register_cube(
            "bench",
            data,
            sum_index="blocked_prefix_sum",
            sum_params={"block_size": 8},
        )
        server = ServingServer(service)
        await server.start()
        try:
            for name, ops, hot_fraction in HTTP_SCENARIOS:
                payloads = generate_requests(
                    np.random.default_rng(SEED),
                    shape,
                    requests,
                    cube="bench",
                    ops=ops,
                    hot_fraction=hot_fraction,
                )
                for concurrency in concurrencies:
                    report = await run_load(
                        server.host,
                        server.port,
                        payloads,
                        concurrency=concurrency,
                    )
                    if report.errors or report.completed != requests:
                        raise SystemExit(
                            f"http scenario {name!r} degraded: "
                            f"{report.summary()}"
                        )
                    rows.append(
                        {
                            "scenario": name,
                            "ops": list(ops),
                            "hot_fraction": hot_fraction,
                            "concurrency": concurrency,
                            **report.summary(),
                        }
                    )
        finally:
            await server.stop()

    asyncio.run(run_scenarios())
    return rows


def check_against_baseline(payload: dict, baseline_path: Path) -> None:
    """Fail when a coalescing ratio regresses >2x vs the baseline.

    Only the dispatch rows are gated: their speedup compares two code
    paths on the same machine, so the check is machine-independent.  The
    HTTP rows carry absolute latencies and are informational.
    """
    baseline = json.loads(baseline_path.read_text())
    current = {
        (tuple(r["shape"]), r["concurrency"]): r
        for r in payload["dispatch"]
    }
    failures = []
    for row in baseline.get("dispatch", []):
        match = current.get((tuple(row["shape"]), row["concurrency"]))
        if match is None:
            continue  # smoke runs trim the config list
        floor = row["speedup"] / 2.0
        if match["speedup"] < floor:
            failures.append(
                f"shape={row['shape']} c={row['concurrency']}: "
                f"coalescing speedup {match['speedup']:.2f}x < half "
                f"the baseline's {row['speedup']:.2f}x"
            )
    if failures:
        raise SystemExit(
            "serving throughput regressed >2x vs "
            f"{baseline_path.name}:\n  " + "\n  ".join(failures)
        )
    print(f"coalescing ratios within 2x of {baseline_path.name}")


def run(smoke: bool = False, out: Path | None = None) -> dict:
    dispatch_configs = (
        SMOKE_DISPATCH_CONFIGS if smoke else DISPATCH_CONFIGS
    )
    http_requests = 200 if smoke else 1_500
    concurrencies = SMOKE_HTTP_CONCURRENCY if smoke else HTTP_CONCURRENCY

    dispatch = [bench_dispatch(c) for c in dispatch_configs]
    http = bench_http(http_requests, concurrencies)

    print(
        format_table(
            "Coalesced vs per-query dispatch (scalar-sum stream)",
            [
                "shape",
                "clients",
                "N",
                "direct (s)",
                "coalesced (s)",
                "speedup",
                "max batch",
            ],
            [
                [
                    "x".join(map(str, r["shape"])),
                    r["concurrency"],
                    r["requests"],
                    r["direct_s"],
                    r["coalesced_s"],
                    f"{r['speedup']:.2f}x",
                    r["largest_batch"],
                ]
                for r in dispatch
            ],
            note=(
                "direct: every query dispatched individually; "
                "coalesced: concurrent scalar asks per (cube, op) "
                "batch into one sum_many gather."
            ),
        )
    )
    print(
        format_table(
            "HTTP load (keep-alive clients, seeded workloads)",
            [
                "scenario",
                "clients",
                "N",
                "p50 (ms)",
                "p99 (ms)",
                "qps",
            ],
            [
                [
                    r["scenario"],
                    r["concurrency"],
                    r["completed"],
                    f"{r['p50_ms']:.2f}",
                    f"{r['p99_ms']:.2f}",
                    f"{r['qps']:.0f}",
                ]
                for r in http
            ],
            note=(
                "hot-cache re-asks a 16-box pool for 90% of requests, "
                "so most answers come from the result cache."
            ),
        )
    )

    payload = {
        "benchmark": "serving",
        "config": {
            "seed": SEED,
            "repeats": REPEATS,
            "smoke": smoke,
            "http_requests": http_requests,
            "threads": thread_config(),
        },
        "dispatch": dispatch,
        "http": http,
    }
    if not smoke:
        worst = min(dispatch, key=lambda r: r["speedup"])
        if worst["speedup"] < 2.0:
            raise SystemExit(
                f"coalesced dispatch speedup {worst['speedup']:.2f}x "
                f"< 2x over per-query dispatch (shape {worst['shape']})"
            )
    if out is not None:
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small streams, no JSON output (CI smoke run)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="JSON output path (default: BENCH_serving.json at the "
        "repo root; suppressed in smoke mode)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="recorded BENCH_serving.json to gate against: fail if any "
        "matching dispatch row's coalescing speedup regresses more "
        "than 2x",
    )
    args = parser.parse_args()
    out = args.out
    if out is None and not args.smoke:
        out = REPO_ROOT / "BENCH_serving.json"
    payload = run(smoke=args.smoke, out=out)
    if args.baseline is not None:
        check_against_baseline(payload, args.baseline)


if __name__ == "__main__":
    main()
