"""Headline experiment (§1/§11): prefix sums vs naive and extended cubes.

The paper's central claim: a range-sum that costs ``V`` cell accesses
naively — and a product of range lengths on the extended cube — costs a
constant ``2^d`` with prefix sums (``2^d + S·b/4`` blocked), *"with the
advantage increasing as the volume of the circumscribed query sub-cube
increases."*

Two parts:

* an access-count table on the paper's insurance-sized cube
  (100 × 10 × 50 × 3), sweeping the query volume;
* wall-time benchmarks on a 200 × 200 × 50 cube where the naive scan's
  volume term dominates the per-query constant overheads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.core.blocked import BlockedPrefixSumCube
from repro.core.prefix_sum import PrefixSumCube
from repro.cube.extended import ExtendedDataCube
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_range_sum
from repro.query.workload import fixed_size_box, make_cube

from benchmarks._tables import format_table

INSURANCE_SHAPE = (100, 10, 50, 3)
TIMING_SHAPE = (200, 200, 50)

#: Query side scale factors sweeping the volume (fractions of each dim).
SCALES = (0.1, 0.25, 0.5, 0.75, 0.95)


def _query_for_scale(shape, scale: float, rng) -> Box:
    lengths = [max(1, int(round(n * scale))) for n in shape]
    return fixed_size_box(shape, lengths, rng)


@pytest.fixture(scope="module")
def insurance():
    rng = np.random.default_rng(1997)
    cube = make_cube(INSURANCE_SHAPE, rng, high=1000)
    return {
        "cube": cube,
        "basic": PrefixSumCube(cube),
        "blocked": BlockedPrefixSumCube(cube, 5),
        "extended": ExtendedDataCube(cube),
    }


@pytest.fixture(scope="module")
def timing_cube():
    rng = np.random.default_rng(2024)
    cube = make_cube(TIMING_SHAPE, rng, high=1000)
    return {
        "cube": cube,
        "basic": PrefixSumCube(cube),
        "blocked": BlockedPrefixSumCube(cube, 10),
    }


def _run_method(structures, name: str, box: Box, counter: AccessCounter):
    if name == "naive":
        return naive_range_sum(structures["cube"], box, counter)
    return structures[name].range_sum(box, counter)


def test_headline_access_table(insurance, report, rng, benchmark):
    methods = ("naive", "extended", "basic", "blocked")

    def compute():
        rows = []
        for scale in SCALES:
            counts = dict.fromkeys(methods, 0)
            volume = 0
            trials = 10
            for _ in range(trials):
                box = _query_for_scale(INSURANCE_SHAPE, scale, rng)
                volume += box.volume
                expected = naive_range_sum(insurance["cube"], box)
                for name in methods:
                    counter = AccessCounter()
                    got = _run_method(insurance, name, box, counter)
                    assert got == expected
                    counts[name] += counter.total
            rows.append(
                [
                    f"{scale:.2f}",
                    volume // trials,
                    counts["naive"] // trials,
                    counts["extended"] // trials,
                    counts["basic"] // trials,
                    counts["blocked"] // trials,
                    f'{counts["naive"] / max(1, counts["basic"]):.0f}x',
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "Headline (§1): element accesses per range-sum, insurance cube "
            "100×10×50×3",
            [
                "scale",
                "avg volume",
                "naive",
                "extended",
                "basic prefix",
                "blocked b=5",
                "naive/basic",
            ],
            rows,
            note=(
                "Paper: naive cost = V; basic prefix sum = 2^d = 16 "
                "regardless of V; advantage grows with query volume."
            ),
        )
    )
    # The shape claims: the basic method is constant, the others grow.
    assert all(row[4] <= 16 for row in rows)
    assert rows[-1][2] > 100 * rows[-1][4]


@pytest.mark.parametrize("method", ["naive", "basic", "blocked"])
def test_headline_wall_time(timing_cube, method, benchmark, rng):
    boxes = [
        _query_for_scale(TIMING_SHAPE, 0.95, rng) for _ in range(10)
    ]
    cube = timing_cube["cube"]

    def run_naive():
        return sum(int(cube[b.slices()].sum()) for b in boxes)

    def run_basic():
        return sum(int(timing_cube["basic"].range_sum(b)) for b in boxes)

    def run_blocked():
        return sum(int(timing_cube["blocked"].range_sum(b)) for b in boxes)

    runner = {
        "naive": run_naive,
        "basic": run_basic,
        "blocked": run_blocked,
    }[method]
    assert runner() == run_naive()
    benchmark(runner)


def test_headline_wall_time_report(timing_cube, report, rng, benchmark):
    """A direct min-over-repeats timing comparison, one row per method."""
    import time

    boxes = [
        _query_for_scale(TIMING_SHAPE, 0.95, rng) for _ in range(10)
    ]
    cube = timing_cube["cube"]

    def measure(fn):
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best * 1e3

    def compute():
        naive_ms = measure(
            lambda: [int(cube[b.slices()].sum()) for b in boxes]
        )
        basic_ms = measure(
            lambda: [int(timing_cube["basic"].range_sum(b)) for b in boxes]
        )
        blocked_ms = measure(
            lambda: [
                int(timing_cube["blocked"].range_sum(b)) for b in boxes
            ]
        )
        return naive_ms, basic_ms, blocked_ms

    naive_ms, basic_ms, blocked_ms = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    report(
        format_table(
            "Headline (§1): wall time, 10 large queries on a 200×200×50 "
            "cube (ms)",
            ["method", "time (ms)", "speedup vs naive"],
            [
                ["naive scan", naive_ms, "1.0x"],
                ["basic prefix", basic_ms, f"{naive_ms / basic_ms:.1f}x"],
                [
                    "blocked b=10",
                    blocked_ms,
                    f"{naive_ms / blocked_ms:.1f}x",
                ],
            ],
        )
    )
    assert basic_ms < naive_ms
