"""Theorem 2: batch-update region counts vs the ``∏(k+j)/d!`` bound (§5).

The batch-update algorithm groups the affected cells of ``P`` into
delta-uniform rectangular regions; Theorem 2 bounds their number by
``k(k+1)···(k+d−1)/d!``.  The bench sweeps ``k`` and ``d``, reporting the
measured count (random update locations), the worst case observed, and
the bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch_update import (
    PointUpdate,
    partition_updates,
    theorem2_region_bound,
)

from benchmarks._tables import format_table

SHAPES = {1: (4096,), 2: (64, 64), 3: (16, 16, 16)}
KS = (1, 2, 4, 8, 16)


def _random_batch(shape, k, rng):
    updates = []
    seen = set()
    while len(updates) < k:
        index = tuple(int(rng.integers(0, n)) for n in shape)
        if index in seen:
            continue
        seen.add(index)
        updates.append(PointUpdate(index, int(rng.integers(1, 10))))
    return updates


def test_theorem2_table(report, benchmark):
    rng = np.random.default_rng(71)

    def compute():
        rows = []
        for d, shape in SHAPES.items():
            for k in KS:
                counts = []
                for _ in range(20):
                    updates = _random_batch(shape, k, rng)
                    counts.append(
                        len(partition_updates(updates, shape))
                    )
                bound = theorem2_region_bound(k, d)
                rows.append(
                    [
                        d,
                        k,
                        float(np.mean(counts)),
                        max(counts),
                        bound,
                    ]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "Theorem 2 (§5): measured batch-update regions vs the bound",
            ["d", "k", "avg regions", "max regions", "bound ∏(k+j)/d!"],
            rows,
            note="Every measured count must stay at or below the bound; "
            "the 1-d case meets it exactly.",
        )
    )
    for d, k, _avg, worst, bound in rows:
        assert worst <= bound
        if d == 1:
            assert worst == bound  # k distinct indices → exactly k regions


def test_adversarial_diagonal_meets_bound(report, benchmark):
    """A strictly 'staircase' batch realizes the bound in 2-d."""

    def compute():
        rows = []
        for k in KS:
            shape = (k + 2, k + 2)
            updates = [
                PointUpdate((i, k - i), 1) for i in range(k)
            ]
            regions = partition_updates(updates, shape)
            rows.append([k, len(regions), theorem2_region_bound(k, 2)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "Theorem 2 (§5): anti-diagonal updates achieve the 2-d bound",
            ["k", "regions", "bound k(k+1)/2"],
            rows,
        )
    )
    for _, measured, bound in rows:
        assert measured == bound


def test_partition_throughput(benchmark):
    rng = np.random.default_rng(73)
    shape = (64, 64, 64)
    updates = _random_batch(shape, 32, rng)
    regions = benchmark(lambda: partition_updates(updates, shape))
    assert len(regions) <= theorem2_region_bound(32, 3)
