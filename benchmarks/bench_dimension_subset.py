"""§9.1 executed: dimension-subset prefix sums under a real workload.

The §9.1 selection algorithms optimize a multiplicative cost model
(factor 2 per prefix-summed attribute, ``r_ij`` per passive one).  This
bench builds :class:`PartialPrefixSumCube` structures for several subsets
over a workload whose ranges concentrate on two of four attributes, and
measures real access counts per subset — the heuristic's choice should
measure cheapest (or tie with the exact optimum).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partial_prefix import PartialPrefixSumCube
from repro.instrumentation import AccessCounter
from repro.optimizer.dimension_selection import (
    active_range_lengths,
    exact_selection,
    heuristic_selection,
)
from repro.query.workload import WorkloadProfile, generate_query_log, make_cube

from benchmarks._tables import format_table

SHAPE = (60, 48, 10, 6)


def test_subset_choice_validates_on_real_accesses(report, benchmark):
    rng = np.random.default_rng(193)
    cube = make_cube(SHAPE, rng, high=50)
    profile = WorkloadProfile(
        range_probability=(0.9, 0.8, 0.05, 0.0),
        singleton_probability=0.7,
        range_lengths=((8, 40), (6, 30), (2, 5), (2, 2)),
    )
    log = generate_query_log(SHAPE, profile, 150, rng)
    lengths = active_range_lengths(log, SHAPE)
    heuristic_chosen, _ = heuristic_selection(lengths)
    exact_chosen, _ = exact_selection(lengths)

    def compute():
        candidates = {
            "none (scan)": (),
            "all dims": tuple(range(4)),
            "heuristic X'": tuple(heuristic_chosen),
            "exact X'": tuple(exact_chosen),
            "anti-choice": tuple(
                j for j in range(4) if j not in set(heuristic_chosen)
            ),
        }
        rows = []
        reference = None
        for label, dims in candidates.items():
            structure = PartialPrefixSumCube(cube, dims)
            total = 0
            for query in log:
                box = query.to_box(SHAPE)
                counter = AccessCounter()
                value = structure.range_sum(box, counter)
                if reference is None:
                    reference = {}
                if box in reference:
                    assert value == reference[box]
                else:
                    reference[box] = value
                total += counter.total
            rows.append([label, str(dims), total, total // len(log)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§9.1 executed: measured accesses per subset choice, "
            f"cube {SHAPE}, 150-query log (ranges on dims 0 and 1)",
            ["subset", "dims", "total accesses", "per query"],
            rows,
            note="The heuristic/exact choice must beat scanning, the "
            "anti-choice, and over-selection.",
        )
    )
    totals = {row[0]: row[2] for row in rows}
    assert totals["heuristic X'"] <= totals["none (scan)"]
    assert totals["heuristic X'"] <= totals["anti-choice"]
    assert totals["exact X'"] <= totals["none (scan)"]


@pytest.mark.parametrize("dims", [(), (0, 1), (0, 1, 2, 3)])
def test_subset_wall_time(dims, benchmark):
    rng = np.random.default_rng(197)
    cube = make_cube(SHAPE, rng, high=50)
    structure = PartialPrefixSumCube(cube, dims)
    from repro.query.workload import random_box

    boxes = [random_box(SHAPE, rng) for _ in range(50)]
    benchmark.pedantic(
        lambda: [structure.range_sum(b) for b in boxes],
        rounds=3,
        iterations=1,
    )
