"""Deterministic thread environment for the benchmark suite.

Benchmark numbers are only comparable across runs when the implicit
parallelism knobs are pinned: BLAS libraries read ``OMP_NUM_THREADS`` /
``OPENBLAS_NUM_THREADS`` / ``MKL_NUM_THREADS`` *at import*, and the
``threaded`` execution kernel sizes its pool from
``REPRO_KERNEL_WORKERS``.  Importing this module pins all four before
numpy is first loaded — benchmark scripts import it ahead of ``numpy``,
and ``benchmarks/conftest.py`` imports it for pytest-driven runs.

Every BENCH json records :func:`thread_config` so a stored result is
attributable to the thread configuration that produced it.
"""

from __future__ import annotations

import os

#: BLAS/OpenMP pools are pinned to one thread: the structures under test
#: do their own sharding, and a library-level pool would both add noise
#: and hide single-thread regressions.
PINNED_BLAS_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS")

#: Fixed worker-pool size for the ``threaded`` kernel, so shard counts
#: (and therefore timings) do not vary with the host's core count.
DEFAULT_POOL_SIZE = 4


def pin_thread_env() -> dict[str, object]:
    """Pin the thread knobs; returns the effective configuration.

    The BLAS variables are forced to ``1``; the kernel pool size is
    defaulted to :data:`DEFAULT_POOL_SIZE` but an explicit
    ``REPRO_KERNEL_WORKERS`` in the environment wins (benchmarking other
    pool sizes is a deliberate act, not noise).
    """
    for name in PINNED_BLAS_VARS:
        os.environ[name] = "1"
    os.environ.setdefault("REPRO_KERNEL_WORKERS", str(DEFAULT_POOL_SIZE))
    return thread_config()


def thread_config() -> dict[str, object]:
    """The effective thread configuration, for BENCH json payloads."""
    config: dict[str, object] = {
        name.lower(): os.environ.get(name) for name in PINNED_BLAS_VARS
    }
    config["repro_kernel_workers"] = os.environ.get("REPRO_KERNEL_WORKERS")
    config["cpu_count"] = os.cpu_count()
    return config


pin_thread_env()
