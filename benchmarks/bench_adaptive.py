"""Adaptive vs frozen physical design under a drifting workload.

The closed loop's headline number.  Two identical in-process
:class:`~repro.serving.QueryService` instances replay the same seeded
drifting stream (:func:`~repro.serving.generate_drifting_requests`):

* **frozen** — an :class:`~repro.serving.AdaptiveController` runs one
  advisory step after the warm-up phase (so both contenders start from
  the same §9 plan for the initial workload), then never again: the
  design stays tuned for traffic that is about to disappear;
* **adaptive** — the controller keeps stepping after the drift, so the
  advisor re-runs Figure 13 against the decayed observer window and
  hot-swaps the plan the new hot dimension subset deserves.

Two currencies are reported per phase:

* **measured** p50/p99 wall latency per request (informational —
  machine-dependent, never gated);
* **modeled mean per-query cost** under the *post-drift* observer
  window: each service's incumbent plan scored by the same
  update-aware Theorem-2 objective the advisor minimizes, divided by
  the window's query weight.  The published gate is the ratio
  frozen/adaptive, which compares two plans under one model on one
  workload — deterministic given the seed, so the full run fails
  hard when adaptation stops paying >= 1.5x.

Runs as a plain script and emits machine-readable results to
``BENCH_adaptive.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_adaptive.py          # full
    PYTHONPATH=src python benchmarks/bench_adaptive.py --smoke  # CI

With ``--baseline BENCH_adaptive.json`` the run fails when the
adaptation ratio regresses more than 2x against the recorded baseline.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks._env import thread_config  # noqa: E402  (pins thread env)

import numpy as np  # noqa: E402

from repro.serving import (  # noqa: E402
    AdaptiveController,
    DriftPhase,
    QueryService,
    ServeConfig,
    generate_drifting_requests,
)

from benchmarks._tables import format_table  # noqa: E402

SEED = 1997
SHAPE = (48, 48, 24)
CONCURRENCY = 8
GATE_RATIO = 1.5

#: The drift: traffic lives on the <d0, d1> cuboid, then moves wholesale
#: to <d1, d2> and picks up update churn, so the frozen plan keeps
#: paying Theorem-2 maintenance on a structure nobody queries while the
#: new hot cuboid falls through to its naive tier.
def phases(requests: int) -> tuple[DriftPhase, DriftPhase]:
    return (
        DriftPhase(requests=requests, hot_dims=(0, 1), range_scale=0.4),
        DriftPhase(
            requests=requests,
            hot_dims=(1, 2),
            range_scale=0.4,
            update_fraction=0.1,
        ),
    )


def make_service() -> QueryService:
    """One served cube, result cache off so every request pays its tier.

    The cache would serve the drifted hot set mostly from memory and
    flatten the measured numbers; the modeled gate is cache-blind either
    way, so disabling it keeps both currencies honest.
    """
    service = QueryService(
        ServeConfig(
            cache_capacity=0,
            observer_decay=0.97,
            adaptive_min_weight=4.0,
            adaptive_max_block=64,
        )
    )
    rng = np.random.default_rng(SEED)
    service.register_cube(
        "bench", rng.integers(0, 1000, size=SHAPE).astype(np.int64)
    )
    return service


async def replay(
    service: QueryService, stream: list[dict]
) -> dict[str, float]:
    """Drive a tagged payload stream in-process; latency percentiles."""
    pending = list(stream)
    cursor = 0
    latencies: list[float] = []

    async def worker() -> None:
        nonlocal cursor
        while cursor < len(pending):
            payload = pending[cursor]
            cursor += 1
            handler = (
                service.update
                if payload["path"] == "/update"
                else service.query
            )
            started = time.perf_counter()
            await handler(dict(payload["body"]))
            latencies.append(time.perf_counter() - started)

    await asyncio.gather(*(worker() for _ in range(CONCURRENCY)))
    samples = np.asarray(latencies) * 1e3
    return {
        "requests": len(stream),
        "p50_ms": float(np.percentile(samples, 50)),
        "p99_ms": float(np.percentile(samples, 99)),
    }


def modeled_mean_cost(service: QueryService) -> float:
    """The incumbent plan's cost per unit query weight, current window.

    Scored by the same update-aware objective ``re_advise`` minimizes
    (query cost per the Table-1 statistics plus the Theorem-2
    maintenance term), so frozen and adaptive plans are compared under
    one model on one workload.
    """
    cube = service.cubes["bench"]
    assert cube.observer is not None
    snapshot = cube.observer.snapshot()
    delta = service.plan_delta(cube, snapshot)
    return delta.incumbent_cost / snapshot.query_weight


async def run_contender(
    adaptive: bool, requests: int
) -> dict:
    """Replay warm-up + drift; re-advise only when ``adaptive``."""
    service = make_service()
    controller = AdaptiveController(service)
    warmup, drift = phases(requests)
    rng = np.random.default_rng(SEED)
    warm_stream = generate_drifting_requests(
        rng, SHAPE, [warmup], cube="bench"
    )
    drift_stream = generate_drifting_requests(
        rng, SHAPE, [drift], cube="bench"
    )

    warm_metrics = await replay(service, warm_stream)
    # Both contenders tune for the initial workload...
    await controller.step("bench")
    initial_plan = service.cubes["bench"].plan
    drift_metrics = await replay(service, drift_stream)
    if adaptive:
        # ...but only this one notices the world changed.
        await controller.step("bench")
    mean_cost = modeled_mean_cost(service)
    row = {
        "mode": "adaptive" if adaptive else "frozen",
        "initial_plan": [
            {"key": list(m.key), "block_size": m.block_size}
            for m in initial_plan
        ],
        "final_plan": [
            {"key": list(m.key), "block_size": m.block_size}
            for m in service.cubes["bench"].plan
        ],
        "swaps": controller.swaps,
        "warmup": warm_metrics,
        "drift": drift_metrics,
        "post_drift_mean_cost": mean_cost,
    }
    await service.close()
    return row


def check_against_baseline(payload: dict, baseline_path: Path) -> None:
    """Fail when the adaptation ratio regresses >2x vs the baseline.

    The ratio compares two plans under one cost model on one seeded
    workload, so the check is machine-independent.
    """
    baseline = json.loads(baseline_path.read_text())
    recorded = baseline.get("ratio")
    if recorded is None:
        return
    floor = recorded / 2.0
    if payload["ratio"] < floor:
        raise SystemExit(
            f"adaptation ratio {payload['ratio']:.2f}x < half the "
            f"baseline's {recorded:.2f}x ({baseline_path.name})"
        )
    print(f"adaptation ratio within 2x of {baseline_path.name}")


def run(smoke: bool = False, out: Path | None = None) -> dict:
    requests = 150 if smoke else 600
    frozen = asyncio.run(run_contender(False, requests))
    adaptive = asyncio.run(run_contender(True, requests))
    ratio = (
        frozen["post_drift_mean_cost"]
        / adaptive["post_drift_mean_cost"]
    )

    print(
        format_table(
            "Adaptive vs frozen design under a drifting workload",
            [
                "mode",
                "swaps",
                "warm p99 (ms)",
                "drift p99 (ms)",
                "mean cost/query",
            ],
            [
                [
                    row["mode"],
                    row["swaps"],
                    f"{row['warmup']['p99_ms']:.2f}",
                    f"{row['drift']['p99_ms']:.2f}",
                    f"{row['post_drift_mean_cost']:.1f}",
                ]
                for row in (frozen, adaptive)
            ],
            note=(
                f"mean cost/query is the advisor's own update-aware "
                f"objective over the post-drift window; the adaptive "
                f"plan wins {ratio:.2f}x."
            ),
        )
    )

    payload = {
        "benchmark": "adaptive",
        "config": {
            "seed": SEED,
            "shape": list(SHAPE),
            "requests_per_phase": requests,
            "concurrency": CONCURRENCY,
            "smoke": smoke,
            "threads": thread_config(),
        },
        "contenders": [frozen, adaptive],
        "ratio": ratio,
    }
    if adaptive["swaps"] < 2:
        raise SystemExit(
            "adaptive contender never re-swapped after the drift — "
            "the comparison is meaningless"
        )
    if ratio < GATE_RATIO:
        raise SystemExit(
            f"adaptive mean-cost improvement {ratio:.2f}x < "
            f"{GATE_RATIO}x over the frozen initial design"
        )
    if out is not None:
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short phases, no JSON output (CI smoke run)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="JSON output path (default: BENCH_adaptive.json at the "
        "repo root; suppressed in smoke mode)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="recorded BENCH_adaptive.json to gate against: fail if "
        "the adaptation ratio regresses more than 2x",
    )
    args = parser.parse_args()
    out = args.out
    if out is None and not args.smoke:
        out = REPO_ROOT / "BENCH_adaptive.json"
    payload = run(smoke=args.smoke, out=out)
    if args.baseline is not None:
        check_against_baseline(payload, args.baseline)


if __name__ == "__main__":
    main()
