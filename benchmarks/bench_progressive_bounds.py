"""§11 off-shoot: progressive lower/upper bounds before the exact sum.

Interactive OLAP users accept an early approximate answer; the blocked
structure yields a lower bound (internal region) and an upper bound
(enclosing aligned region) in at most ``2^d − 1`` combining steps each.
The bench measures bound tightness against block size and the constant
access cost of the early answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocked import BlockedPrefixSumCube
from repro.core.bounds import progressive_bounds
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_range_sum
from repro.query.workload import make_cube, random_box

from benchmarks._tables import format_table

SHAPE = (300, 300)
BLOCKS = (50, 25, 10, 5)


@pytest.fixture(scope="module")
def cube():
    return make_cube(SHAPE, np.random.default_rng(151), high=100)


def test_bound_tightness_table(cube, report, benchmark):
    rng = np.random.default_rng(157)
    boxes = [random_box(SHAPE, rng, min_length=60) for _ in range(40)]
    exacts = [naive_range_sum(cube, box) for box in boxes]

    def compute():
        rows = []
        for block in BLOCKS:
            structure = BlockedPrefixSumCube(cube, block)
            rel_errors = []
            accesses = []
            for box, exact in zip(boxes, exacts):
                counter = AccessCounter()
                bounds = progressive_bounds(structure, box, counter)
                assert bounds.lower <= exact <= bounds.upper
                mid = (int(bounds.lower) + int(bounds.upper)) / 2
                rel_errors.append(abs(mid - int(exact)) / int(exact))
                accesses.append(counter.total)
            rows.append(
                [
                    block,
                    f"{float(np.mean(rel_errors)):.2%}",
                    f"{float(np.max(rel_errors)):.2%}",
                    float(np.mean(accesses)),
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§11: progressive-bound tightness vs block size, 300×300 cube",
            [
                "b",
                "mean midpoint error",
                "worst midpoint error",
                "avg prefix reads",
            ],
            rows,
            note="Bounds tighten as blocks shrink; the early answer "
            "always costs ≤ 2·2^d prefix reads.",
        )
    )
    mean_errors = [float(row[1].rstrip("%")) for row in rows]
    assert mean_errors == sorted(mean_errors, reverse=True)
    for row in rows:
        assert row[3] <= 8.0


def test_bounds_wall_time(cube, benchmark):
    structure = BlockedPrefixSumCube(cube, 25)
    rng = np.random.default_rng(163)
    boxes = [random_box(SHAPE, rng, min_length=60) for _ in range(50)]
    benchmark(
        lambda: [progressive_bounds(structure, b) for b in boxes]
    )
