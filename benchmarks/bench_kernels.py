"""Execution-kernel benchmark: backend × structure × K × shape.

The kernel layer (``repro.kernels``) gives every batch query path a
pluggable backend: ``numpy`` is the historical serial-boundary code
factored out verbatim (the correctness oracle), ``threaded`` runs the
vectorized one-pass boundary machinery with shard-and-combine
parallelism, and ``numba`` JIT-compiles the segment reductions when the
optional dependency is importable (degrading to the vectorized path
otherwise).  This benchmark times ``sum_many`` under every registered
backend against the ``numpy`` oracle on the blocked structures — where
the backends genuinely diverge — and asserts bit-identical answers.

Runs as a plain script and emits machine-readable results to
``BENCH_kernels.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_kernels.py          # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke  # CI

With ``--baseline BENCH_kernels.json`` the run fails when any matching
``(structure, backend, d, K)`` row's speedup-vs-oracle ratio regresses
more than 2x against the recorded baseline — ratios compare two code
paths on the same machine, so the gate is machine-independent.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks._env import thread_config  # noqa: E402  (pins thread env)

import numpy as np  # noqa: E402

from repro.index.registry import create_index  # noqa: E402
from repro.kernels import available_kernels, get_kernel  # noqa: E402
from repro.kernels.numba_kernel import numba_available  # noqa: E402
from repro.query.workload import make_cube, random_query_arrays  # noqa: E402

from benchmarks._tables import format_table  # noqa: E402

#: One entry per structure configuration the backends are raced on.
CONFIGS = (
    {
        "structure": "blocked_prefix_sum",
        "shape": (512, 512),
        "params": {"block_size": 16},
    },
    {
        "structure": "blocked_prefix_sum",
        "shape": (64, 64, 64),
        "params": {"block_size": 8},
    },
    {
        "structure": "blocked_partial_prefix_sum",
        "shape": (128, 128, 8),
        "params": {"prefix_dims": (0, 1), "block_size": 16},
    },
)

SMOKE_CONFIGS = (
    {
        "structure": "blocked_prefix_sum",
        "shape": (96, 96),
        "params": {"block_size": 8},
    },
    {
        "structure": "blocked_partial_prefix_sum",
        "shape": (48, 48, 4),
        "params": {"prefix_dims": (0, 1), "block_size": 8},
    },
)

BATCH_SIZES = (100, 1_000, 5_000)
REPEATS = 3
SEED = 1997


def bench_backends() -> tuple[str, ...]:
    """Registered backends raced here (``auto`` is just an alias)."""
    names = [n for n in available_kernels() if n != "auto"]
    if not numba_available():
        # Present but degraded numba would duplicate the vectorized
        # row; racing it is only informative when the JIT is live.
        names = [n for n in names if n != "numba"]
    return tuple(names)


def _best_of(fn, repeats: int = REPEATS) -> float:
    """Minimum wall time over ``repeats`` runs (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_config(config: dict, batch_sizes: tuple[int, ...]) -> list[dict]:
    """Race every backend on one structure configuration."""
    rng = np.random.default_rng(SEED)
    shape = config["shape"]
    cube = make_cube(shape, rng, high=1000)
    index = create_index(config["structure"], cube, **config["params"])
    rows = []
    for count in batch_sizes:
        lows, highs = random_query_arrays(shape, count, rng)
        index.kernel = get_kernel("numpy")
        oracle_values = index.sum_many(lows, highs)
        oracle_s = _best_of(lambda: index.sum_many(lows, highs))
        for backend in bench_backends():
            index.kernel = get_kernel(backend)
            values = index.sum_many(lows, highs)
            backend_s = (
                oracle_s
                if backend == "numpy"
                else _best_of(lambda: index.sum_many(lows, highs))
            )
            rows.append(
                {
                    "structure": config["structure"],
                    "backend": backend,
                    "d": len(shape),
                    "K": count,
                    "shape": list(shape),
                    "params": {
                        k: list(v) if isinstance(v, tuple) else v
                        for k, v in config["params"].items()
                    },
                    "oracle_s": oracle_s,
                    "backend_s": backend_s,
                    "speedup": oracle_s / backend_s,
                    "identical": bool(
                        np.array_equal(values, oracle_values)
                    ),
                }
            )
        index.kernel = None
    return rows


def check_against_baseline(payload: dict, baseline_path: Path) -> None:
    """Fail when a speedup ratio regresses >2x vs the recorded baseline.

    Compares ``speedup = oracle_s / backend_s`` per matching
    ``(structure, backend, d, K)`` row; absolute times never enter the
    comparison, so a slower CI machine does not trip the gate — only a
    kernel genuinely slower relative to the oracle on the same box does.
    """
    baseline = json.loads(baseline_path.read_text())
    current = {
        (r["structure"], r["backend"], r["d"], r["K"]): r
        for r in payload["results"]
    }
    failures = []
    for row in baseline.get("results", []):
        match = current.get(
            (row["structure"], row["backend"], row["d"], row["K"])
        )
        if match is None:
            continue  # e.g. smoke runs trim K and configs
        floor = row["speedup"] / 2.0
        if match["speedup"] < floor:
            failures.append(
                f"{row['structure']} backend={row['backend']} "
                f"d={row['d']} K={row['K']}: speedup "
                f"{match['speedup']:.2f}x < half the baseline's "
                f"{row['speedup']:.2f}x"
            )
    if failures:
        raise SystemExit(
            "kernel throughput regressed >2x vs "
            f"{baseline_path.name}:\n  " + "\n  ".join(failures)
        )
    print(f"speedup ratios within 2x of {baseline_path.name}")


def run(smoke: bool = False, out: Path | None = None) -> dict:
    configs = SMOKE_CONFIGS if smoke else CONFIGS
    batch_sizes = (50,) if smoke else BATCH_SIZES
    results = []
    for config in configs:
        results.extend(bench_config(config, batch_sizes))

    print(
        format_table(
            "Kernel backends: sum_many vs the numpy oracle",
            [
                "structure",
                "backend",
                "d",
                "K",
                "oracle (s)",
                "backend (s)",
                "speedup",
                "identical",
            ],
            [
                [
                    r["structure"],
                    r["backend"],
                    r["d"],
                    r["K"],
                    r["oracle_s"],
                    r["backend_s"],
                    f"{r['speedup']:.2f}x",
                    r["identical"],
                ]
                for r in results
            ],
            note=(
                "oracle: per-query serial boundary loops (the historical "
                "path); threaded/numba: one-pass vectorized boundary "
                "reduction, sharded across the pinned worker pool."
            ),
        )
    )

    payload = {
        "benchmark": "kernels",
        "config": {
            "configs": [
                {
                    "structure": c["structure"],
                    "shape": list(c["shape"]),
                    "params": {
                        k: list(v) if isinstance(v, tuple) else v
                        for k, v in c["params"].items()
                    },
                }
                for c in configs
            ],
            "batch_sizes": list(batch_sizes),
            "repeats": REPEATS,
            "smoke": smoke,
            "backends": list(bench_backends()),
            "numba_jit": bool(numba_available()),
            "threads": thread_config(),
        },
        "results": results,
    }
    if not all(r["identical"] for r in results):
        diverged = [r for r in results if not r["identical"]]
        raise SystemExit(
            f"kernel results diverged from the numpy oracle: {diverged}"
        )
    if not smoke:
        headline = max(
            (
                r
                for r in results
                if r["backend"] == "threaded" and r["K"] >= 1_000
            ),
            key=lambda r: r["speedup"],
        )
        if headline["speedup"] < 2.0:
            raise SystemExit(
                f"threaded headline speedup {headline['speedup']:.2f}x "
                "< 2x over the numpy oracle (large-K blocked batch)"
            )
    if out is not None:
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small K and shapes, no JSON output (CI smoke run)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="JSON output path (default: BENCH_kernels.json at the "
        "repo root; suppressed in smoke mode)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="recorded BENCH_kernels.json to gate against: fail if any "
        "matching (structure, backend, d, K) speedup ratio regresses "
        "more than 2x",
    )
    args = parser.parse_args()
    out = args.out
    if out is None and not args.smoke:
        out = REPO_ROOT / "BENCH_kernels.json"
    payload = run(smoke=args.smoke, out=out)
    if args.baseline is not None:
        check_against_baseline(payload, args.baseline)


if __name__ == "__main__":
    main()
