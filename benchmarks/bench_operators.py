"""§1's operator generality: prefix structures under (⊕, ⊖) pairs.

The paper claims the range-sum machinery works for any binary operator
with an inverse — "(+, −), (bitwise-exclusive-or, ...), (multiplication,
division for a domain excluding zero)".  This bench runs the basic and
blocked structures under all three shipped operators on one cube,
verifying answers against direct reductions and reporting throughput —
the generality is executable, not just stated.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocked import BlockedPrefixSumCube
from repro.core.operators import PRODUCT, SUM, XOR
from repro.core.prefix_sum import PrefixSumCube
from repro.query.workload import random_box

from benchmarks._tables import format_table

SHAPE = (128, 96)


def _reference(operator, window: np.ndarray):
    if operator is SUM:
        return window.sum()
    if operator is XOR:
        return np.bitwise_xor.reduce(window.ravel())
    return np.prod(window)


@pytest.fixture(scope="module")
def cubes():
    rng = np.random.default_rng(223)
    return {
        "sum": rng.integers(0, 100, SHAPE).astype(np.int64),
        "xor": rng.integers(0, 256, SHAPE).astype(np.int64),
        "product": rng.uniform(0.9, 1.1, SHAPE),
    }


def test_operator_generality_table(cubes, report, benchmark):
    rng = np.random.default_rng(227)
    operators = {"sum": SUM, "xor": XOR, "product": PRODUCT}

    def compute():
        rows = []
        for name, operator in operators.items():
            cube = cubes[name]
            basic = PrefixSumCube(cube, operator)
            blocked = BlockedPrefixSumCube(cube, 8, operator)
            checked = 0
            for _ in range(60):
                box = random_box(SHAPE, rng)
                window = cube[box.slices()]
                expected = _reference(operator, window)
                got_basic = basic.range_sum(box)
                got_blocked = blocked.range_sum(box)
                if operator is PRODUCT:
                    assert np.isclose(
                        float(got_basic), float(expected), rtol=1e-6
                    )
                    assert np.isclose(
                        float(got_blocked), float(expected), rtol=1e-6
                    )
                else:
                    assert got_basic == expected
                    assert got_blocked == expected
                checked += 1
            rows.append(
                [
                    name,
                    str(cube.dtype),
                    checked,
                    "a ⊕ b ⊖ b = a",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§1 operator generality: basic + blocked structures per "
            "(⊕, ⊖) pair, 128×96 cube",
            ["operator", "dtype", "queries verified", "inverse law"],
            rows,
            note="COUNT and AVERAGE derive from SUM; MIN from MAX by "
            "negation — all covered elsewhere in the suite.",
        )
    )
    assert len(rows) == 3


@pytest.mark.parametrize("operator_name", ["sum", "xor", "product"])
def test_operator_query_throughput(cubes, operator_name, benchmark):
    operators = {"sum": SUM, "xor": XOR, "product": PRODUCT}
    structure = PrefixSumCube(
        cubes[operator_name], operators[operator_name]
    )
    rng = np.random.default_rng(229)
    boxes = [random_box(SHAPE, rng) for _ in range(100)]
    benchmark(lambda: [structure.range_sum(b) for b in boxes])
