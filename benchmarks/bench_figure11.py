"""Figure 11: hierarchical-tree cost minus prefix-sum cost (§8).

The paper plots ``Cost(tree) − Cost(prefix sum)`` on a log scale against
``α`` (the query side in blocks) for ``d ∈ {2, 3, 4}`` and
``b ∈ {10, 20}``, concluding the prefix sum is clearly faster once
``α·b`` exceeds the block size.  Two reproductions:

* the **analytic** series from the paper's own closed form
  ``d·α^{d−1}·b/2 − 2^d``;
* an **empirical** version on a real 2-d cube: both structures are built
  with the same block size and the access-count difference is measured.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocked import BlockedPrefixSumCube
from repro.core.tree_sum import TreeSumHierarchy
from repro.instrumentation import AccessCounter
from repro.optimizer.cost_model import figure11_difference
from repro.query.workload import fixed_size_box, make_cube

from benchmarks._tables import format_table

ALPHAS = (1, 5, 10, 15, 20)
CONFIGS = tuple(
    (d, b) for d in (2, 3, 4) for b in (10, 20)
)


def test_figure11_analytic_table(report, benchmark):
    def compute():
        rows = []
        for alpha in ALPHAS:
            row = [alpha]
            for d, b in CONFIGS:
                row.append(figure11_difference(alpha, b, d))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    headers = ["alpha"] + [f"d={d},b={b}" for d, b in CONFIGS]
    report(
        format_table(
            "Figure 11 (analytic): tree cost − prefix cost, "
            "d·α^{d−1}·b/2 − 2^d",
            headers,
            rows,
            note="Paper's figure: all curves increase with α; ordering "
            "d=4,b=20 > d=4,b=10 > d=3,b=20 > ...",
        )
    )
    # Shape assertions: monotone in alpha, ordered by (d, b) at alpha=20.
    last = rows[-1][1:]
    for column in range(1, len(CONFIGS) + 1):
        series = [row[column] for row in rows]
        assert series == sorted(series)
    by_config = dict(zip(CONFIGS, last))
    assert (
        by_config[(4, 20)]
        > by_config[(4, 10)]
        > by_config[(3, 20)]
        > by_config[(3, 10)]
        > by_config[(2, 20)]
        > by_config[(2, 10)]
    )


def test_figure11_empirical_2d(report, benchmark):
    """Measured access difference on a 400×400 cube, b = 10 and 20."""
    rng = np.random.default_rng(29)
    cube = make_cube((400, 400), rng, high=50)

    def compute():
        rows = []
        for b in (10, 20):
            tree = TreeSumHierarchy(cube, b)
            prefix = BlockedPrefixSumCube(cube, b)
            for alpha in (2, 5, 10, 15):
                side = alpha * b
                tree_cost = 0
                prefix_cost = 0
                trials = 15
                for _ in range(trials):
                    box = fixed_size_box((400, 400), (side, side), rng)
                    tree_counter = AccessCounter()
                    prefix_counter = AccessCounter()
                    expected = tree.range_sum(box, tree_counter)
                    got = prefix.range_sum(box, prefix_counter)
                    assert got == expected
                    tree_cost += tree_counter.total
                    prefix_cost += prefix_counter.total
                rows.append(
                    [
                        b,
                        alpha,
                        tree_cost / trials,
                        prefix_cost / trials,
                        (tree_cost - prefix_cost) / trials,
                        figure11_difference(alpha, b, 2),
                    ]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "Figure 11 (empirical, d=2): measured accesses, 400×400 cube",
            [
                "b",
                "alpha",
                "tree avg",
                "prefix avg",
                "measured diff",
                "paper closed form",
            ],
            rows,
            note="The measured difference should be positive and grow "
            "with α, matching the closed form's shape.",
        )
    )
    for row in rows:
        if row[1] >= 5:
            assert row[4] > 0, row  # the tree really costs more
    # Differences grow with alpha within each b.
    for b in (10, 20):
        series = [row[4] for row in rows if row[0] == b]
        assert series[-1] > series[0]
