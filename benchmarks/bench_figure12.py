"""Figure 12: the §9.1 dimension-selection heuristic, exactly reproduced.

The paper's worked example: three queries over five attributes, column
sums ``R = [701, 601, 102, 5, 3]``, threshold ``2m = 6``, chosen subset
``X' = {1, 2, 3}`` (1-based).  This bench regenerates the table, then
compares the heuristic against the exact Gray-code optimum on synthetic
logs to show how often the O(md) shortcut matches.
"""

from __future__ import annotations

import numpy as np

from repro.optimizer.dimension_selection import (
    exact_selection,
    figure12_example,
    heuristic_selection,
    subset_cost,
)

from benchmarks._tables import format_table


def test_figure12_table(report, benchmark):
    lengths, sums, chosen = benchmark.pedantic(
        figure12_example, rounds=1, iterations=1
    )
    rows = [
        [f"q{i + 1}"] + [int(v) for v in row]
        for i, row in enumerate(lengths)
    ]
    rows.append(["R_j"] + [int(v) for v in sums])
    report(
        format_table(
            "Figure 12 (§9.1): heuristic dimension selection example",
            ["query", "attr1", "attr2", "attr3", "attr4", "attr5"],
            rows,
            note=f"2m = 6; X' = {{{', '.join(str(j + 1) for j in chosen)}}} "
            "(1-based) — the paper's {1, 2, 3}.",
        )
    )
    assert [int(v) for v in sums] == [701, 601, 102, 5, 3]
    assert chosen == [0, 1, 2]


def test_heuristic_vs_exact_quality(report, benchmark):
    """How close the O(md) heuristic gets to the O(m·2^d) optimum."""
    rng = np.random.default_rng(43)

    def compute():
        rows = []
        for d in (3, 5, 8):
            matches = 0
            total_ratio = 0.0
            trials = 40
            for _ in range(trials):
                m = int(rng.integers(2, 12))
                lengths = np.where(
                    rng.random((m, d)) < 0.5,
                    1.0,
                    rng.integers(2, 100, (m, d)).astype(float),
                )
                heuristic_chosen, _ = heuristic_selection(lengths)
                _, exact_cost = exact_selection(lengths)
                heuristic_cost = subset_cost(lengths, heuristic_chosen)
                if heuristic_cost <= exact_cost * (1 + 1e-9):
                    matches += 1
                total_ratio += heuristic_cost / exact_cost
            rows.append(
                [d, trials, matches, total_ratio / trials]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§9.1: heuristic vs exact Gray-code optimum on random logs",
            ["d", "trials", "heuristic optimal", "avg cost ratio"],
            rows,
            note="Ratio 1.0 = the heuristic found the optimum.",
        )
    )
    for _, trials, matches, ratio in rows:
        assert matches >= trials * 0.5
        assert ratio < 3.0


def test_gray_code_walk_speed(benchmark):
    """The O(m·2^d) walk should beat the O(m·d·2^d) naive evaluation."""
    rng = np.random.default_rng(47)
    lengths = np.where(
        rng.random((50, 12)) < 0.5,
        1.0,
        rng.integers(2, 100, (50, 12)).astype(float),
    )
    chosen, cost = benchmark(lambda: exact_selection(lengths))
    assert cost <= subset_cost(lengths, []) + 1e-9
