"""Theorem 3: the max tree's average-case accesses vs ``b + 7 + 1/b`` (§6).

On random data (all orderings equally likely) the expected number of
elements accessed by a 1-d range-max query is bounded by ``b + 7 + 1/b``
— far below the ``O(b·log_b r)`` worst case.  The bench sweeps the fanout
and the range size, measuring mean accesses over many random ranges on a
random permutation (distinct values, the theorem's model).
"""

from __future__ import annotations

import numpy as np

from repro._util import Box
from repro.core.range_max import RangeMaxTree
from repro.instrumentation import AccessCounter
from repro.query.workload import random_box

from benchmarks._tables import format_table

FANOUTS = (2, 3, 5, 8, 13)
ARRAY_SIZE = 6561  # 3^8: a few complete levels for every fanout


def test_theorem3_table(report, benchmark):
    rng = np.random.default_rng(97)
    data = rng.permutation(ARRAY_SIZE).astype(np.int64)

    def compute():
        rows = []
        for b in FANOUTS:
            tree = RangeMaxTree(data, b)
            totals = []
            for _ in range(600):
                box = random_box((ARRAY_SIZE,), rng, min_length=2)
                counter = AccessCounter()
                tree.max_index(box, counter)
                totals.append(counter.total)
            bound = b + 7 + 1 / b
            rows.append(
                [
                    b,
                    float(np.mean(totals)),
                    int(np.max(totals)),
                    round(bound, 2),
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "Theorem 3 (§6): 1-d average-case accesses vs b + 7 + 1/b, "
            f"n = {ARRAY_SIZE}, random permutation",
            ["b", "mean accesses", "max accesses", "bound b+7+1/b"],
            rows,
            note="The mean must sit below the bound; the max may exceed "
            "it (it is an average-case theorem).",
        )
    )
    for b, mean, _max, bound in rows:
        assert mean <= bound, (b, mean, bound)


def test_average_vs_range_size(report, benchmark):
    """The average is flat in r — unlike the O(b log_b r) worst case."""
    rng = np.random.default_rng(101)
    data = rng.permutation(ARRAY_SIZE).astype(np.int64)
    tree = RangeMaxTree(data, 4)

    def compute():
        rows = []
        for r in (4, 16, 64, 256, 1024, 4096):
            totals = []
            for _ in range(400):
                start = int(rng.integers(0, ARRAY_SIZE - r + 1))
                counter = AccessCounter()
                tree.max_index(
                    Box((start,), (start + r - 1,)), counter
                )
                totals.append(counter.total)
            rows.append([r, float(np.mean(totals))])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "Theorem 3 (§6): mean accesses vs range size r (b = 4)",
            ["r", "mean accesses"],
            rows,
            note="Flat in r: the branch-and-bound average does not grow "
            "with the range.",
        )
    )
    means = [m for _, m in rows]
    assert max(means) <= (4 + 7 + 0.25) * 1.2


def test_query_throughput(benchmark):
    rng = np.random.default_rng(103)
    data = rng.permutation(ARRAY_SIZE).astype(np.int64)
    tree = RangeMaxTree(data, 5)
    boxes = [
        random_box((ARRAY_SIZE,), rng, min_length=2) for _ in range(100)
    ]
    benchmark(lambda: [tree.max_index(b) for b in boxes])
