"""§3.3's I/O view: pages touched per query, naive vs prefix methods.

Element counts are the paper's primary proxy, but §3.3 argues in pages —
the construction visits ``P`` in storage order precisely so each page is
touched O(1) times per phase, and queries win at the I/O level because a
Theorem 1 evaluation touches at most ``2^d`` pages, independent of the
query volume.  This bench restates the headline comparison in pages for
several page sizes.
"""

from __future__ import annotations

import numpy as np

from repro.instrumentation.paging import (
    pages_for_box,
    theorem1_corner_pages,
)
from repro.query.workload import fixed_size_box

from benchmarks._tables import format_table

SHAPE = (400, 400)
PAGE_SIZES = (64, 512, 4096)


def test_pages_per_query_table(report, benchmark):
    rng = np.random.default_rng(241)

    def compute():
        rows = []
        for page_size in PAGE_SIZES:
            for side in (40, 160, 360):
                naive = 0
                prefix = 0
                trials = 20
                for _ in range(trials):
                    box = fixed_size_box(SHAPE, (side, side), rng)
                    naive += pages_for_box(box, SHAPE, page_size)
                    prefix += theorem1_corner_pages(
                        box, SHAPE, page_size
                    )
                rows.append(
                    [
                        page_size,
                        side,
                        naive / trials,
                        prefix / trials,
                        f"{naive / max(1, prefix):.0f}x",
                    ]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§3.3 I/O view: distinct pages per query, 400×400 cube",
            [
                "page cells",
                "query side",
                "naive scan pages",
                "prefix pages",
                "ratio",
            ],
            rows,
            note="Prefix queries touch ≤ 2^d = 4 pages at any volume; "
            "scans touch ~V/page (capped by row fragmentation).",
        )
    )
    for _, _, _, prefix_pages, _ in rows:
        assert prefix_pages <= 4.0
    # The ratio must grow with the query side at fixed page size.
    for page_size in PAGE_SIZES:
        series = [
            float(row[4].rstrip("x"))
            for row in rows
            if row[0] == page_size
        ]
        assert series == sorted(series)


def test_construction_page_locality(report, benchmark):
    """§3.3: sweeping in storage order touches each page O(1) times per
    phase.  Modeled directly: an axis-(d−1) sweep is one monotone pass
    (1 touch/page); an axis-0 sweep in storage order revisits each page
    once per row it contains — still ≤ 2 distinct *loads* with one page
    of buffer, vs n_0 loads if the sweep followed the prefix dimension."""

    def compute():
        shape = (512, 512)
        page = 512  # exactly one row per page (row-major layout)
        total_pages = shape[0] * shape[1] // page
        rows = []
        for axis in (0, 1):
            # Storage-order traversal visits pages monotonically: with a
            # one-page buffer, every page loads exactly once per phase.
            storage_order_loads = total_pages
            if axis == 1:
                # The sweep direction coincides with storage order.
                dimension_order_loads = total_pages
            else:
                # Following the prefix dimension (down the columns of a
                # row-major array) hits a different page on every single
                # access: one load per element.
                dimension_order_loads = shape[0] * shape[1]
            rows.append(
                [axis, storage_order_loads, dimension_order_loads]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§3.3: page loads per sweep phase, 512² array, 512-cell pages",
            [
                "sweep axis",
                "storage-order loads",
                "dimension-order loads",
            ],
            rows,
            note="The paper's schedule (storage order, phases properly "
            "interleaved) keeps every phase at one load per page; "
            "following the prefix dimension instead reloads pages "
            "n-fold for axis 0.",
        )
    )
    assert rows[0][1] < rows[0][2]


def test_buffer_pool_fault_table(report, benchmark):
    """Faults under a bounded LRU pool: the §3.3 story with real cache
    dynamics instead of distinct-page counts."""
    from repro.instrumentation.bufferpool import BufferPool

    rng = np.random.default_rng(251)

    def compute():
        rows = []
        page = 512
        for capacity in (4, 32, 256):
            for method in ("scan", "prefix"):
                pool = BufferPool(page_size=page, capacity=capacity)
                faults = 0
                trials = 30
                for _ in range(trials):
                    box = fixed_size_box(SHAPE, (200, 200), rng)
                    if method == "scan":
                        faults += pool.scan_box(box, SHAPE)
                    else:
                        faults += pool.theorem1_corners(box, SHAPE)
                rows.append(
                    [capacity, method, faults / trials]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§3.3: LRU buffer-pool faults per 200² query, 400² cube, "
            "512-cell pages",
            ["buffer pages", "method", "avg faults"],
            rows,
            note="Prefix queries stay near 2^d faults even with a tiny "
            "pool; scans fault per page and barely benefit from cache.",
        )
    )
    by_key = {(row[0], row[1]): row[2] for row in rows}
    for capacity in (4, 32, 256):
        assert by_key[(capacity, "prefix")] <= 4.0
        assert by_key[(capacity, "scan")] > 10 * by_key[
            (capacity, "prefix")
        ]
