"""§5's practical claim: batching beats one-at-a-time prefix updates.

A single point update dirties up to all of ``P``; ``k`` sequential
updates re-write popular suffix cells up to ``k`` times, while the batch
algorithm writes each affected cell exactly once.  The bench sweeps the
batch size and reports cells written and wall time for both strategies,
plus the blocked variant's contraction gain.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.batch_update import (
    PointUpdate,
    apply_batch_to_prefix,
    apply_updates_naive,
    contract_updates_to_blocks,
    partition_updates,
)
from repro.core.prefix_sum import compute_prefix_array
from repro.query.workload import make_cube

from benchmarks._tables import format_table

SHAPE = (128, 128)
KS = (4, 16, 64)


def _batch(rng, k):
    seen = set()
    updates = []
    while len(updates) < k:
        index = (int(rng.integers(0, 128)), int(rng.integers(0, 128)))
        if index in seen:
            continue
        seen.add(index)
        updates.append(PointUpdate(index, int(rng.integers(1, 10))))
    return updates


def test_batch_vs_naive_table(report, benchmark):
    rng = np.random.default_rng(79)
    base = compute_prefix_array(make_cube(SHAPE, rng))

    def compute():
        rows = []
        for k in KS:
            updates = _batch(rng, k)
            naive_prefix = base.copy()
            start = time.perf_counter()
            naive_cells = apply_updates_naive(naive_prefix, updates)
            naive_ms = (time.perf_counter() - start) * 1e3

            batch_prefix = base.copy()
            start = time.perf_counter()
            regions = apply_batch_to_prefix(batch_prefix, updates)
            batch_ms = (time.perf_counter() - start) * 1e3
            batch_cells = sum(
                box.volume
                for box, _ in partition_updates(updates, SHAPE)
            )
            assert np.array_equal(naive_prefix, batch_prefix)
            rows.append(
                [
                    k,
                    naive_cells,
                    batch_cells,
                    f"{naive_cells / max(1, batch_cells):.1f}x",
                    regions,
                    naive_ms,
                    batch_ms,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§5: batched vs one-at-a-time prefix updates, 128×128 P",
            [
                "k",
                "naive cells",
                "batch cells",
                "write ratio",
                "regions",
                "naive ms",
                "batch ms",
            ],
            rows,
            note="Batch writes each affected cell once (≤ N = 16384); "
            "naive re-writes popular suffixes once per update.",
        )
    )
    for row in rows:
        assert row[2] <= SHAPE[0] * SHAPE[1]
    assert rows[-1][1] > 2 * rows[-1][2]


def test_blocked_contraction(report, benchmark):
    """§5.2: blocked updates contract the batch before partitioning."""
    rng = np.random.default_rng(83)

    def compute():
        rows = []
        for k in KS:
            updates = _batch(rng, k)
            for block in (4, 16):
                contracted = contract_updates_to_blocks(updates, block)
                rows.append([k, block, len(contracted)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§5.2: update-batch contraction by block size",
            ["k", "b", "contracted updates"],
            rows,
            note="Updates sharing a b×b block merge into one.",
        )
    )
    for k, _, contracted in rows:
        assert contracted <= k


@pytest.mark.parametrize("strategy", ["naive", "batch"])
def test_update_wall_time(strategy, benchmark):
    rng = np.random.default_rng(89)
    base = compute_prefix_array(make_cube(SHAPE, rng))
    updates = _batch(rng, 64)

    if strategy == "naive":
        benchmark(
            lambda: apply_updates_naive(base.copy(), updates)
        )
    else:
        benchmark(
            lambda: apply_batch_to_prefix(base.copy(), updates)
        )
