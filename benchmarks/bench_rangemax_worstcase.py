"""§6.1.3's worst case: O(b·log_b r) accesses, and why the lowest
covering node matters.

The adversarial scenario from the paper: the query covers all leaves of a
complete b-ary subtree except the first and last, and those two excluded
leaves hold the largest values — every level must then be descended on
both flanks.  The bench builds that instance, measures accesses against
``b·log_b r``, and demonstrates that starting at the lowest covering node
(rather than the root) keeps small far-from-origin ranges cheap.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import Box
from repro.core.range_max import RangeMaxTree
from repro.instrumentation import AccessCounter

from benchmarks._tables import format_table


def adversarial_instance(b: int, levels: int) -> tuple[np.ndarray, Box]:
    """r + 2 = b^levels with the two flanking cells holding the maxima."""
    n = b**levels
    data = np.arange(n, dtype=np.int64)  # increasing left to right
    rng = np.random.default_rng(0)
    rng.shuffle(data[1:-1])
    data[0] = 10**9
    data[-1] = 10**9 - 1
    return data, Box((1,), (n - 2,))


def test_worstcase_table(report, benchmark):
    def compute():
        rows = []
        for b in (2, 3, 4, 8):
            for levels in (3, 4, 5):
                data, box = adversarial_instance(b, levels)
                tree = RangeMaxTree(data, b)
                counter = AccessCounter()
                index = tree.max_index(box, counter)
                assert box.contains_point(index)
                r = box.volume
                bound = b * math.log(r, b)
                rows.append(
                    [
                        b,
                        r,
                        counter.total,
                        round(bound, 1),
                        round(counter.total / bound, 2),
                    ]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§6.1.3 worst case: adversarial flanking maxima, accesses vs "
            "b·log_b r",
            ["b", "r", "accesses", "b·log_b r", "ratio"],
            rows,
            note="Ratios stay O(1): the measured cost is Θ(b·log_b r).",
        )
    )
    for _, _, accesses, bound, _ in rows:
        assert accesses <= 4 * bound + 8


def test_lowest_covering_node_matters(report, benchmark):
    """Small ranges far from the origin: accesses track log_b r, not
    log_b n (§6.1.3's closing remark)."""
    rng = np.random.default_rng(107)
    b = 3
    n = 3**9  # 19683
    data = rng.permutation(n).astype(np.int64)
    tree = RangeMaxTree(data, b)

    def compute():
        rows = []
        for r in (3, 9, 27):
            worst = 0
            for _ in range(300):
                start = int(rng.integers(0, n - r))
                counter = AccessCounter()
                tree.max_index(Box((start,), (start + r - 1,)), counter)
                worst = max(worst, counter.total)
            rows.append(
                [
                    r,
                    worst,
                    round(b * math.log(max(r, 2), b), 1),
                    round(b * math.log(n, b), 1),
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§6.1.2: worst observed accesses for small ranges, n = 19683",
            ["r", "worst accesses", "b·log_b r", "b·log_b n (root start)"],
            rows,
            note="Costs track the r column: the search starts at the "
            "lowest covering node, not the root.",
        )
    )
    for r, worst, _, _ in rows:
        assert worst <= 3 * b * (math.log(max(r, 2), b) + 2)
