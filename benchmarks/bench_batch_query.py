"""Throughput benchmark: per-query loop vs the batch execution layer.

Answers the tentpole question directly: how much faster is
``RangeQueryEngine.sum_many`` (one fancy-indexed gather for all
``K · 2^d`` Theorem-1 corners) than the scalar loop calling
``engine.sum`` ``K`` times, at K ∈ {100, 1k, 10k} and d ∈ {2, 3, 4}?

Also times the shared-frontier MAX descent against the scalar
branch-and-bound loop at K = 1000 per dimensionality.

Runs as a plain script (no pytest needed) and emits machine-readable
results to ``BENCH_batch_query.json`` at the repository root to seed the
performance trajectory::

    PYTHONPATH=src python benchmarks/bench_batch_query.py          # full
    PYTHONPATH=src python benchmarks/bench_batch_query.py --smoke  # CI

The smoke run trims K to 100 and does not write the JSON file.  With
``--baseline BENCH_batch_query.json`` the run fails when any matching
``(d, K)`` row's batch-vs-scalar *speedup ratio* regresses more than 2×
against the recorded baseline — ratios compare the two code paths on the
same machine, so the gate is machine-independent.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks._env import thread_config  # noqa: E402  (pins thread env)

import numpy as np  # noqa: E402

from repro.query.engine import RangeQueryEngine  # noqa: E402
from repro.query.workload import make_cube, random_query_arrays  # noqa: E402

from benchmarks._tables import format_table  # noqa: E402

SHAPES = {2: (256, 256), 3: (48, 48, 48), 4: (16, 16, 16, 16)}
BATCH_SIZES = (100, 1_000, 10_000)
REPEATS = 3


def _best_of(fn, repeats: int = REPEATS) -> float:
    """Minimum wall time over ``repeats`` runs (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_sum(engine, lows, highs) -> dict:
    """Time the scalar per-query loop vs one sum_many call."""
    from repro._util import Box

    boxes = [
        Box(tuple(lo), tuple(hi)) for lo, hi in zip(lows, highs)
    ]

    def scalar():
        return [engine.sum(box) for box in boxes]

    def batch():
        return engine.sum_many(lows, highs)

    scalar_values = scalar()
    batch_values = batch()
    identical = bool(
        (np.asarray(scalar_values) == np.asarray(batch_values)).all()
    )
    scalar_s = _best_of(scalar)
    batch_s = _best_of(batch)
    return {
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s,
        "identical": identical,
    }


def bench_max(engine, lows, highs) -> dict:
    """Time the scalar branch-and-bound loop vs one max_many descent."""
    from repro._util import Box

    boxes = [
        Box(tuple(lo), tuple(hi)) for lo, hi in zip(lows, highs)
    ]

    def scalar():
        return [engine.max(box)[1] for box in boxes]

    def batch():
        return engine.max_many(lows, highs)[1]

    identical = bool(
        (np.asarray(scalar()) == np.asarray(batch())).all()
    )
    scalar_s = _best_of(scalar)
    batch_s = _best_of(batch)
    return {
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s,
        "identical": identical,
    }


def check_against_baseline(payload: dict, baseline_path: Path) -> None:
    """Fail when a speedup ratio regresses >2x vs the recorded baseline.

    Compares ``speedup = scalar_s / batch_s`` per matching ``(d, K)``
    row; absolute times never enter the comparison, so a slower CI
    machine does not trip the gate — only a genuinely slower batch path
    relative to the scalar path on the same box does.
    """
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for section in ("sum", "max"):
        current = {(r["d"], r["K"]): r for r in payload.get(section, [])}
        for row in baseline.get(section, []):
            match = current.get((row["d"], row["K"]))
            if match is None:
                continue  # e.g. smoke runs only K=100
            floor = row["speedup"] / 2.0
            if match["speedup"] < floor:
                failures.append(
                    f"{section} d={row['d']} K={row['K']}: speedup "
                    f"{match['speedup']:.1f}x < half the baseline's "
                    f"{row['speedup']:.1f}x"
                )
    if failures:
        raise SystemExit(
            "batch throughput regressed >2x vs "
            f"{baseline_path.name}:\n  " + "\n  ".join(failures)
        )
    print(f"speedup ratios within 2x of {baseline_path.name}")


def run(smoke: bool = False, out: Path | None = None) -> dict:
    rng = np.random.default_rng(1997)
    batch_sizes = (100,) if smoke else BATCH_SIZES
    max_k = 100 if smoke else 1_000
    sum_results = []
    max_results = []
    for ndim, shape in SHAPES.items():
        cube = make_cube(shape, rng, high=1000)
        engine = RangeQueryEngine(cube)  # prefix_sum + range_max_tree(4)
        for count in batch_sizes:
            lows, highs = random_query_arrays(shape, count, rng)
            row = bench_sum(engine, lows, highs)
            row.update({"d": ndim, "K": count, "shape": list(shape)})
            sum_results.append(row)
        lows, highs = random_query_arrays(shape, max_k, rng)
        row = bench_max(engine, lows, highs)
        row.update({"d": ndim, "K": max_k, "shape": list(shape)})
        max_results.append(row)

    print(
        format_table(
            "Batch SUM: K scalar engine.sum calls vs one sum_many gather",
            ["d", "K", "scalar (s)", "batch (s)", "speedup", "identical"],
            [
                [
                    r["d"],
                    r["K"],
                    r["scalar_s"],
                    r["batch_s"],
                    f"{r['speedup']:.0f}x",
                    r["identical"],
                ]
                for r in sum_results
            ],
            note=(
                "Batch path: one (K, 2^d, d) corner broadcast + one "
                "P.ravel() gather; scalar path: K Python corner loops."
            ),
        )
    )
    print(
        format_table(
            "Batch MAX: K scalar descents vs one shared-frontier descent",
            ["d", "K", "scalar (s)", "batch (s)", "speedup", "identical"],
            [
                [
                    r["d"],
                    r["K"],
                    r["scalar_s"],
                    r["batch_s"],
                    f"{r['speedup']:.0f}x",
                    r["identical"],
                ]
                for r in max_results
            ],
            note="identical compares max values (tied indices may differ).",
        )
    )

    payload = {
        "benchmark": "batch_query",
        "config": {
            "shapes": {str(d): list(s) for d, s in SHAPES.items()},
            "batch_sizes": list(batch_sizes),
            "repeats": REPEATS,
            "smoke": smoke,
            "threads": thread_config(),
        },
        "sum": sum_results,
        "max": max_results,
    }
    if not all(r["identical"] for r in sum_results + max_results):
        raise SystemExit("batch results diverged from the scalar path")
    headline = [
        r for r in sum_results if r["d"] == 3 and r["K"] == max(batch_sizes)
    ]
    if headline and not smoke and headline[0]["speedup"] < 10:
        raise SystemExit(
            f"headline speedup {headline[0]['speedup']:.1f}x < 10x "
            "(K=10k, d=3 range-sums)"
        )
    if out is not None:
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small K, no JSON output (CI smoke run)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="JSON output path (default: BENCH_batch_query.json at the "
        "repo root; suppressed in smoke mode)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="recorded BENCH_batch_query.json to gate against: fail if "
        "any matching (d, K) speedup ratio regresses more than 2x",
    )
    args = parser.parse_args()
    out = args.out
    if out is None and not args.smoke:
        out = REPO_ROOT / "BENCH_batch_query.json"
    payload = run(smoke=args.smoke, out=out)
    if args.baseline is not None:
        check_against_baseline(payload, args.baseline)


if __name__ == "__main__":
    main()
