"""§7: batch updates to the max tree vs rebuilding it.

The §7 algorithm's selling points: update lists shrink sharply per level
(most updates are passive), full sibling-set rescans are rare (only a
surviving ``tag = −1``), and the whole batch costs far less than
rebuilding the tree.  The bench measures all three across batch sizes
and update mixes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.max_update import MaxAssignment, apply_max_updates
from repro.core.range_max import RangeMaxTree
from repro.query.workload import make_cube

from benchmarks._tables import format_table

SHAPE = (256, 256)


def _random_batch(rng, mirror, k, mode):
    batch = []
    seen = set()
    while len(batch) < k:
        index = (
            int(rng.integers(0, SHAPE[0])),
            int(rng.integers(0, SHAPE[1])),
        )
        if index in seen:
            continue
        seen.add(index)
        current = int(mirror[index])
        if mode == "mixed":
            value = int(rng.integers(0, 10**6))
        elif mode == "increases":
            value = current + int(rng.integers(1, 10**4))
        else:  # decreases — the rescan-heavy direction
            value = max(0, current - int(rng.integers(1, current + 1)))
        batch.append(MaxAssignment(index, value))
    return batch


def test_batch_update_work_table(report, benchmark):
    rng = np.random.default_rng(281)
    cube = make_cube(SHAPE, rng, high=10**6)

    def compute():
        rows = []
        for mode in ("mixed", "increases", "decreases"):
            for k in (16, 128, 1024):
                tree = RangeMaxTree(cube, 4)
                batch = _random_batch(rng, tree.source, k, mode)
                start = time.perf_counter()
                stats = apply_max_updates(tree, batch)
                batch_ms = (time.perf_counter() - start) * 1e3
                start = time.perf_counter()
                rebuilt = RangeMaxTree(tree.source, 4)
                rebuild_ms = (time.perf_counter() - start) * 1e3
                for level in range(1, tree.height + 1):
                    assert np.array_equal(
                        tree.values[level], rebuilt.values[level]
                    )
                rows.append(
                    [
                        mode,
                        k,
                        str(stats.items_per_phase),
                        stats.rescans,
                        batch_ms,
                        rebuild_ms,
                    ]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§7: max-tree batch updates, 256² cube, fanout 4",
            [
                "mix",
                "k",
                "items per phase",
                "rescans",
                "batch ms",
                "rebuild ms",
            ],
            rows,
            note="Phase lists collapse after level 0; pure increases "
            "never rescan.  Batching wins for OLTP-sized batches; past "
            "a crossover (~k = N/100 here) a vectorized rebuild wins — "
            "worth knowing on a numpy substrate.",
        )
    )
    for mode, k, phases, rescans, batch_ms, rebuild_ms in rows:
        first, *rest = eval(phases)  # the printed list literal
        assert first == k
        if rest:
            assert rest[0] <= first
        if mode == "increases":
            assert rescans == 0
        if k <= 128:
            assert batch_ms < rebuild_ms  # batching wins below crossover


@pytest.mark.parametrize("strategy", ["batch", "rebuild"])
def test_update_strategy_wall_time(strategy, benchmark):
    rng = np.random.default_rng(283)
    cube = make_cube(SHAPE, rng, high=10**6)
    tree = RangeMaxTree(cube, 4)
    batch = _random_batch(rng, tree.source, 256, "mixed")

    if strategy == "batch":
        def run():
            working = RangeMaxTree(cube, 4)
            apply_max_updates(working, batch)
    else:
        def run():
            working = cube.copy()
            for assignment in batch:
                working[assignment.index] = assignment.value
            RangeMaxTree(working, 4)

    benchmark.pedantic(run, rounds=3, iterations=1)
