"""§11's range-max approximation: bound tightness and exact-hit rate.

The paper closes §11 noting the bound technique "can be applied to the
range-max queries using the tree algorithm".  One level of the max tree
yields a lower and an upper bound in ≤ b^d + 2 accesses; on random data
the covering node's stored index frequently lands inside the query, in
which case the *first access already returns the exact max*.  The bench
measures the exact-hit rate and the bound gap across fanouts and query
sizes.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import progressive_max_bounds
from repro.core.range_max import RangeMaxTree
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_max_value
from repro.query.workload import fixed_size_box, make_cube

from benchmarks._tables import format_table

SHAPE = (243, 243)


def test_max_bounds_table(report, benchmark):
    rng = np.random.default_rng(257)
    cube = make_cube(SHAPE, rng, high=10**6)

    def compute():
        rows = []
        for fanout in (3, 9):
            tree = RangeMaxTree(cube, fanout)
            for side in (20, 80, 200):
                exact_hits = 0
                gaps = []
                accesses = []
                trials = 120
                for _ in range(trials):
                    box = fixed_size_box(SHAPE, (side, side), rng)
                    counter = AccessCounter()
                    bounds = progressive_max_bounds(tree, box, counter)
                    accesses.append(counter.total)
                    exact = naive_max_value(cube, box)
                    assert bounds.lower <= exact <= bounds.upper
                    if bounds.lower == bounds.upper:
                        exact_hits += 1
                    gaps.append(
                        float(bounds.upper - bounds.lower) / float(exact)
                    )
                rows.append(
                    [
                        fanout,
                        side,
                        f"{exact_hits / trials:.0%}",
                        f"{float(np.mean(gaps)):.2%}",
                        float(np.mean(accesses)),
                    ]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§11 (max): progressive-bound quality on a 243² cube",
            [
                "b",
                "query side",
                "exact on first access",
                "mean relative gap",
                "avg accesses",
            ],
            rows,
            note="The relative gap collapses as queries grow (the "
            "covering node's max tightens both bounds); cost stays "
            "≤ b^d + 2.",
        )
    )
    for fanout in (3, 9):
        gaps = [
            float(row[3].rstrip("%"))
            for row in rows
            if row[0] == fanout
        ]
        assert gaps == sorted(gaps, reverse=True)  # gap shrinks with size
    for row in rows:
        assert row[4] <= row[0] ** 2 + 2


def test_max_bounds_wall_time(benchmark):
    rng = np.random.default_rng(263)
    cube = make_cube(SHAPE, rng, high=10**6)
    tree = RangeMaxTree(cube, 3)
    boxes = [fixed_size_box(SHAPE, (60, 60), rng) for _ in range(100)]
    benchmark(
        lambda: [progressive_max_bounds(tree, b) for b in boxes]
    )
