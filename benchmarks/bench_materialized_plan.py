"""§9 executed: the selector's cost model vs measured access counts.

The cuboid selector decides from a *model* (``2^{d_c} + S·F(b)`` per
served query).  This bench closes the loop: the chosen plan is actually
built (:class:`MaterializedCuboidSet`), the query log is replayed, and
measured element accesses are compared to the model's prediction and to
the unmaterialized baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.instrumentation import AccessCounter
from repro.optimizer.cuboid_selection import (
    CuboidSelector,
    workloads_from_log,
)
from repro.optimizer.materialize import MaterializedCuboidSet
from repro.query.workload import (
    WorkloadProfile,
    generate_query_log,
    make_cube,
)

from benchmarks._tables import format_table

SHAPE = (120, 80, 12)


@pytest.fixture(scope="module")
def scenario():
    rng = np.random.default_rng(191)
    cube = make_cube(SHAPE, rng, high=100)
    profile = WorkloadProfile(
        range_probability=(0.8, 0.55, 0.2),
        singleton_probability=0.6,
        range_lengths=((10, 80), (8, 50), (2, 8)),
    )
    log = generate_query_log(SHAPE, profile, 300, rng)
    return cube, log


def test_model_vs_measured(scenario, report, benchmark):
    cube, log = scenario

    def compute():
        workloads = workloads_from_log(log, SHAPE)
        rows = []
        for budget in (2000, 20000, 120000):
            selector = CuboidSelector(SHAPE, workloads, budget)
            plan = selector.solve()
            served = MaterializedCuboidSet(cube, plan.chosen)
            measured = 0
            naive = 0
            for query in log:
                counter = AccessCounter()
                expected = int(
                    cube[query.to_box(SHAPE).slices()].sum()
                )
                assert served.range_sum(query, counter) == expected
                measured += counter.total
                naive += query.to_box(SHAPE).volume
            rows.append(
                [
                    budget,
                    int(served.storage_cells),
                    int(plan.final_cost),
                    measured,
                    naive,
                    f"{naive / max(1, measured):.1f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§9 executed: selector model vs replayed access counts, "
            f"cube {SHAPE}, 300-query log",
            [
                "budget",
                "built cells",
                "model cost",
                "measured",
                "naive",
                "speedup",
            ],
            rows,
            note="Model and measurement agree in ordering; bigger budgets "
            "cut real accesses monotonically.",
        )
    )
    measured = [row[3] for row in rows]
    assert measured == sorted(measured, reverse=True)
    for row in rows:
        model, actual = row[2], row[3]
        assert 0.2 < actual / max(1, model) < 5.0
    assert float(rows[-1][5].rstrip("x")) > 5.0


def test_routing_prefers_small_cuboids(scenario, report, benchmark):
    """Queries constraining one dimension route to 1-d cuboids, whose
    2^1-term evaluations beat the base cuboid's 2^3 terms."""
    cube, log = scenario

    def compute():
        from repro.optimizer.cuboid_selection import Materialization

        plan = [
            Materialization((0, 1, 2), 4, 0.0),
            Materialization((0,), 1, 0.0),
            Materialization((0, 1), 2, 0.0),
        ]
        served = MaterializedCuboidSet(cube, plan)
        routed: dict[tuple, int] = {}
        for query in log:
            cuboid = served.route(query)
            key = cuboid.key if cuboid else ("scan",)
            routed[key] = routed.get(key, 0) + 1
        return sorted(routed.items(), key=lambda kv: -kv[1])

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§9 routing: which materialization served each log query",
            ["cuboid", "queries served"],
            [[str(k), v] for k, v in rows],
        )
    )
    served_keys = {k for k, _ in rows}
    assert ("scan",) not in served_keys  # the base cuboid covers all
    assert len(served_keys) >= 2  # routing actually differentiates


def test_replay_wall_time(scenario, benchmark):
    cube, log = scenario
    from repro.optimizer.cuboid_selection import Materialization

    served = MaterializedCuboidSet(
        cube, [Materialization((0, 1, 2), 4, 0.0)]
    )
    benchmark.pedantic(
        lambda: [served.range_sum(q) for q in log[:100]],
        rounds=3,
        iterations=1,
    )
