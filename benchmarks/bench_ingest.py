"""One-pass multi-cuboid ingestion vs per-cuboid re-scans.

The streaming builder's headline claim: accumulating the base cube AND
every planned cuboid in a *single* pass over the record stream beats
re-scanning the source once per cuboid.  The contenders stream from the
same on-disk CSV fact table, so the cost being amortized is real parse
work — with ``k`` planned cuboids the per-scan baseline parses the file
``k + 1`` times while the one-pass builder parses it once:

* **one-pass** — :func:`repro.ingest.ingest`: every batch is scattered
  into the base accumulator and all ``k`` cuboid accumulators before the
  next batch is read; one finalize sweep per cuboid at the end;
* **per-scan** — :func:`repro.ingest.ingest_per_scan`: the naive
  baseline, one full pass for the base plus one fresh pass per cuboid.

Both contenders must produce bit-identical structures (integer
measures, so scatter order cannot change sums) — the race is void
otherwise.  A third leg replays the one-pass build under a 1-byte
memory budget so every accumulator spills through ``MemmapBackend``,
and checks the spilled build answers a range query identically to the
in-memory reference (informational: spill overhead is machine- and
filesystem-dependent, so only the speedup ratio is gated).

Runs as a plain script and emits machine-readable results to
``BENCH_ingest.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_ingest.py          # full
    PYTHONPATH=src python benchmarks/bench_ingest.py --smoke  # CI

With ``--baseline BENCH_ingest.json`` the run fails when the one-pass
speedup regresses more than 2x against the recorded baseline.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks._env import thread_config  # noqa: E402  (pins thread env)

import numpy as np  # noqa: E402

from repro.ingest import (  # noqa: E402
    IngestPlan,
    in_memory_reference,
    ingest,
    ingest_per_scan,
    iter_csv_batches,
    plan_cuboids,
)
from repro.query.ranges import RangeQuery, RangeSpec  # noqa: E402

from benchmarks._tables import format_table  # noqa: E402

SEED = 1997
SHAPE = (32, 24, 16)
#: Three cuboids -> the per-scan baseline reads the fact table 4 times.
CUBOID_KEYS = [(0, 1), (1, 2), (0, 2)]
BLOCK_SIZE = 8
#: With k=3 cuboids the baseline pays 4 parses to our 1, so a 2x floor
#: leaves a wide margin for the one-pass builder's extra scatter work.
GATE_SPEEDUP = 2.0


def write_fact_table(path: Path, rows: int) -> None:
    """A seeded CSV fact table: ``rows`` records over :data:`SHAPE`.

    Duplicate coordinates are expected (records accumulate), matching a
    real fact stream rather than a dense dump.
    """
    rng = np.random.default_rng(SEED)
    coords = np.column_stack(
        [rng.integers(0, extent, size=rows) for extent in SHAPE]
    )
    values = rng.integers(0, 100, size=rows)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["d0", "d1", "d2", "value"])
        writer.writerows(
            np.column_stack([coords, values]).tolist()
        )


def assert_bit_identical(a, b, label: str) -> None:
    """The race is meaningless unless the contenders agree exactly."""
    if not np.array_equal(np.asarray(a.base), np.asarray(b.base)):
        raise SystemExit(f"{label}: base cubes differ")
    for mine, theirs in zip(a.cuboids, b.cuboids):
        if not np.array_equal(
            np.asarray(mine.structure.source),
            np.asarray(theirs.structure.source),
        ):
            raise SystemExit(f"{label}: cuboid {mine.key} differs")


def run(smoke: bool = False, out: Path | None = None) -> dict:
    rows = 40_000 if smoke else 400_000
    batch_rows = 16_384
    plan = IngestPlan(
        shape=SHAPE,
        cuboids=plan_cuboids(SHAPE, CUBOID_KEYS, BLOCK_SIZE),
        batch_rows=batch_rows,
    )

    with tempfile.TemporaryDirectory(prefix="bench-ingest-") as tmp:
        facts = Path(tmp) / "facts.csv"
        write_fact_table(facts, rows)
        source = lambda: iter_csv_batches(facts, batch_rows=batch_rows)  # noqa: E731

        started = time.perf_counter()
        one_pass = ingest(source(), plan)
        one_pass_s = time.perf_counter() - started

        started = time.perf_counter()
        per_scan = ingest_per_scan(source, plan)
        per_scan_s = time.perf_counter() - started

        assert_bit_identical(
            one_pass.cuboid_set, per_scan.cuboid_set, "one-pass vs per-scan"
        )

        # Spilled leg: same stream, 1-byte budget -> every accumulator
        # lands in MemmapBackend files; answers must not change.
        spill_plan = IngestPlan(
            shape=SHAPE,
            cuboids=plan.cuboids,
            budget_bytes=1,
            spill_directory=Path(tmp) / "spill",
            batch_rows=batch_rows,
        )
        started = time.perf_counter()
        spilled = ingest(source(), spill_plan)
        spilled_s = time.perf_counter() - started
        if not spilled.spilled:
            raise SystemExit("spill leg did not spill")
        reference = in_memory_reference(source(), plan)
        assert_bit_identical(
            spilled.cuboid_set, reference, "spilled vs in-memory"
        )
        rng = np.random.default_rng(SEED + 1)
        for _ in range(8):
            lo = [int(rng.integers(0, e - 1)) for e in SHAPE]
            query = RangeQuery(
                tuple(
                    RangeSpec.between(
                        lo[d], int(rng.integers(lo[d], SHAPE[d] - 1))
                    )
                    for d in range(len(SHAPE))
                )
            )
            if spilled.cuboid_set.range_sum(query) != reference.range_sum(
                query
            ):
                raise SystemExit(f"spilled build answered {query} wrong")
        spilled_bytes = sum(
            p.stat().st_size
            for p in (Path(tmp) / "spill").rglob("*.npy")
        )
        spilled.release()
        per_scan.release()
        one_pass.release()

    speedup = per_scan_s / one_pass_s
    print(
        format_table(
            "One-pass multi-cuboid ingestion vs per-cuboid re-scans",
            ["contender", "source passes", "build (s)", "rows/s"],
            [
                ["one-pass", 1, f"{one_pass_s:.3f}", f"{rows / one_pass_s:,.0f}"],
                [
                    "per-scan",
                    len(CUBOID_KEYS) + 1,
                    f"{per_scan_s:.3f}",
                    f"{rows / per_scan_s:,.0f}",
                ],
                [
                    "one-pass (spilled)",
                    1,
                    f"{spilled_s:.3f}",
                    f"{rows / spilled_s:,.0f}",
                ],
            ],
            note=(
                f"{rows:,} CSV records, {len(CUBOID_KEYS)} cuboids; "
                f"one pass wins {speedup:.2f}x (bit-identical output; "
                f"spilled leg wrote {spilled_bytes:,} bytes, gated "
                f"only on correctness)."
            ),
        )
    )

    payload = {
        "benchmark": "ingest",
        "config": {
            "seed": SEED,
            "shape": list(SHAPE),
            "cuboids": [list(k) for k in CUBOID_KEYS],
            "rows": rows,
            "batch_rows": batch_rows,
            "smoke": smoke,
            "threads": thread_config(),
        },
        "one_pass_s": one_pass_s,
        "per_scan_s": per_scan_s,
        "spilled_s": spilled_s,
        "spilled_bytes": int(spilled_bytes),
        "speedup": speedup,
    }
    if speedup < GATE_SPEEDUP:
        raise SystemExit(
            f"one-pass speedup {speedup:.2f}x < {GATE_SPEEDUP}x over "
            f"per-cuboid re-scans"
        )
    if out is not None:
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return payload


def check_against_baseline(payload: dict, baseline_path: Path) -> None:
    """Fail when the speedup regresses >2x vs the recorded baseline."""
    baseline = json.loads(baseline_path.read_text())
    recorded = baseline.get("speedup")
    if recorded is None:
        return
    floor = recorded / 2.0
    if payload["speedup"] < floor:
        raise SystemExit(
            f"one-pass speedup {payload['speedup']:.2f}x < half the "
            f"baseline's {recorded:.2f}x ({baseline_path.name})"
        )
    print(f"ingest speedup within 2x of {baseline_path.name}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fact table, no JSON output (CI smoke run)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="JSON output path (default: BENCH_ingest.json at the repo "
        "root; suppressed in smoke mode)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="recorded BENCH_ingest.json to gate against: fail if the "
        "one-pass speedup regresses more than 2x",
    )
    args = parser.parse_args()
    out = args.out
    if out is None and not args.smoke:
        out = REPO_ROOT / "BENCH_ingest.json"
    payload = run(smoke=args.smoke, out=out)
    if args.baseline is not None:
        check_against_baseline(payload, args.baseline)


if __name__ == "__main__":
    main()
