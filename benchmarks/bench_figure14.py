"""Figure 14: benefit/space against block size (§9.3).

The paper's example (``d = 3``, ``N_Q/N = 1/100``, ``V − 2^d = 1000``,
``S = 400``) yields a curve that rises, peaks, and hits zero at
``b = 4(V − 2^d)/S = 10``, with the closed-form maximum at
``b* = ((V − 2^d)/(S/4)) · d/(d+1) = 7.5``.  The bench regenerates the
curve, checks the closed form against a brute-force argmax, and runs the
integer optimizer on matching statistics.
"""

from __future__ import annotations

import numpy as np

from repro.optimizer.block_size import choose_block_size
from repro.optimizer.cost_model import (
    benefit_space_ratio,
    optimal_block_size_real,
)
from repro.query.stats import QueryStatistics

from benchmarks._tables import format_table


def paper_curve(b: float) -> float:
    """The figure's curve for the §9.3 example, up to scaling:
    (1/100)·[1000·b³ − 100·b⁴] = 10·b³ − b⁴."""
    return 10.0 * b**3 - b**4


def test_figure14_curve(report, benchmark):
    def compute():
        return [[b, paper_curve(b)] for b in range(1, 12)]

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "Figure 14 (§9.3): benefit/space vs block size, paper example "
            "(d=3, V−2^d=1000, S=400, N_Q/N=1/100)",
            ["b", "benefit/space"],
            rows,
            note="Rises to b* = 7.5, zero at b = 4(V−2^d)/S = 10, "
            "negative beyond.",
        )
    )
    values = [v for _, v in rows]
    best_b = rows[int(np.argmax(values))][0]
    assert best_b in (7, 8)
    assert abs(values[9]) < 1e-9  # b = 10 → zero benefit
    assert values[10] < 0


def test_closed_form_matches_bruteforce(report, benchmark):
    """b* = ((V−2^d)/(S/4))·d/(d+1) vs dense argmax, random statistics."""
    rng = np.random.default_rng(59)

    def compute():
        rows = []
        for _ in range(12):
            d = int(rng.integers(2, 5))
            lengths = [float(rng.integers(10, 120)) for _ in range(d)]
            stats = QueryStatistics.from_lengths(lengths)
            b_star = optimal_block_size_real(stats)
            if b_star < 2:
                continue
            grid = np.arange(1, max(4, int(b_star * 3)))
            ratios = [
                benefit_space_ratio(stats, 10, 10**6, int(b))
                for b in grid
            ]
            brute = int(grid[int(np.argmax(ratios))])
            choice = choose_block_size(stats, 10, 10**6)
            rows.append(
                [d, round(b_star, 2), brute, choice.block_size]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            "§9.3: closed-form b* vs brute-force argmax vs optimizer",
            ["d", "b* (real)", "brute-force b", "optimizer b"],
            rows,
            note="The optimizer must pick the brute-force integer argmax.",
        )
    )
    for _, b_star, brute, chosen in rows:
        assert abs(chosen - b_star) <= 1.0
        assert chosen == brute
