"""Tests for the index registry (names, factories, IndexSpec)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.core.blocked import BlockedPrefixSumCube
from repro.core.prefix_sum import PrefixSumCube
from repro.index.protocol import RangeSumIndexMixin
from repro.index.registry import (
    IndexSpec,
    _REGISTRY,
    available_indexes,
    create_index,
    get_index_info,
    index_info_for,
    register_index,
)
from repro.instrumentation import NULL_COUNTER
from repro.query.naive import naive_range_sum
from repro.query.workload import make_cube, random_box


@pytest.fixture
def rng():
    return np.random.default_rng(411)


BUILTIN_SUM = (
    "blocked_partial_prefix_sum",
    "blocked_prefix_sum",
    "partial_prefix_sum",
    "prefix_sum",
    "sparse_region_sum",
    "sparse_sum_1d",
)
BUILTIN_MAX = ("range_max_tree", "sparse_max_rtree")


class TestBuiltinRegistrations:
    def test_all_builtins_present(self):
        names = available_indexes()
        for name in BUILTIN_SUM + BUILTIN_MAX:
            assert name in names

    def test_kind_filter(self):
        sums = available_indexes(kind="sum")
        maxes = available_indexes(kind="max")
        for name in BUILTIN_SUM:
            assert name in sums and name not in maxes
        for name in BUILTIN_MAX:
            assert name in maxes and name not in sums

    def test_persistable_filter(self):
        persistable = available_indexes(persistable=True)
        for name in (
            "prefix_sum",
            "blocked_prefix_sum",
            "partial_prefix_sum",
            "blocked_partial_prefix_sum",
            "range_max_tree",
        ):
            assert name in persistable
        for name in ("sparse_sum_1d", "sparse_region_sum", "sparse_max_rtree"):
            assert name not in persistable

    def test_dense_builtins_accept_backend(self):
        for name in (
            "prefix_sum",
            "blocked_prefix_sum",
            "partial_prefix_sum",
            "blocked_partial_prefix_sum",
            "range_max_tree",
        ):
            assert get_index_info(name).accepts_backend

    def test_sparse_builtins_flagged(self):
        for name in ("sparse_sum_1d", "sparse_region_sum", "sparse_max_rtree"):
            assert get_index_info(name).sparse_input

    def test_descriptions_default_to_docstring(self):
        info = get_index_info("prefix_sum")
        assert info.description  # first docstring line, non-empty

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="prefix_sum"):
            get_index_info("no_such_index")


class TestCreateIndex:
    def test_create_matches_direct_construction(self, rng):
        cube = make_cube((9, 7), rng)
        built = create_index("blocked_prefix_sum", cube, block_size=3)
        direct = BlockedPrefixSumCube(cube, 3)
        assert isinstance(built, BlockedPrefixSumCube)
        assert np.array_equal(built.blocked_prefix, direct.blocked_prefix)

    def test_create_answers_queries(self, rng):
        cube = make_cube((8, 8), rng)
        index = create_index("prefix_sum", cube)
        for _ in range(10):
            box = random_box(cube.shape, rng)
            assert index.query(box) == naive_range_sum(cube, box)

    def test_index_info_for_instance(self, rng):
        cube = make_cube((5,), rng)
        index = create_index("prefix_sum", cube)
        assert index_info_for(index).name == "prefix_sum"
        assert index_info_for(PrefixSumCube).name == "prefix_sum"

    def test_index_info_for_unregistered(self):
        with pytest.raises(KeyError, match="not a registered"):
            index_info_for(object())


class TestRegisterIndex:
    def test_duplicate_name_rejected(self):
        @register_index("_test_dup", kind="sum", persistable=False)
        class First(RangeSumIndexMixin):
            def __init__(self, cube):
                self.shape = tuple(cube.shape)

            def range_sum(self, box, counter=NULL_COUNTER):
                return 0

        try:
            with pytest.raises(ValueError, match="already registered"):

                @register_index("_test_dup", kind="sum", persistable=False)
                class Second(RangeSumIndexMixin):
                    def __init__(self, cube):
                        self.shape = tuple(cube.shape)

                    def range_sum(self, box, counter=NULL_COUNTER):
                        return 0

        finally:
            _REGISTRY.pop("_test_dup", None)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            register_index("_test_bad_kind", kind="median")

    def test_custom_index_via_engine(self, rng):
        """The registry's raison d'être: a user structure plugs into the
        engine with no engine changes (ARCHITECTURE.md's walkthrough)."""
        from repro.query.engine import RangeQueryEngine

        @register_index("_test_scan_sum", kind="sum", persistable=False)
        class ScanSum(RangeSumIndexMixin):
            def __init__(self, cube):
                self.cube = np.asarray(cube)
                self.shape = tuple(self.cube.shape)

            def range_sum(self, box, counter=NULL_COUNTER):
                counter.count_cube(box.volume)
                return self.cube[box.slices()].sum()

            def memory_cells(self):
                return 0

        try:
            cube = make_cube((7, 6), rng)
            engine = RangeQueryEngine(
                cube, sum_index="_test_scan_sum", max_index=None
            )
            for _ in range(10):
                box = random_box(cube.shape, rng)
                assert engine.sum(box) == naive_range_sum(cube, box)
            # The mixin default gives the scan batch support for free.
            lows = np.zeros((3, 2), dtype=np.int64)
            highs = np.tile([4, 3], (3, 1)).astype(np.int64)
            batch = engine.sum_many(lows, highs)
            assert np.array_equal(
                batch, [cube[:5, :4].sum()] * 3
            )
        finally:
            _REGISTRY.pop("_test_scan_sum", None)


class TestIndexSpec:
    def test_of_sorts_params(self):
        a = IndexSpec.of("blocked_prefix_sum", block_size=4)
        b = IndexSpec("blocked_prefix_sum", (("block_size", 4),))
        assert a == b

    def test_kind_property(self):
        assert IndexSpec.of("prefix_sum").kind == "sum"
        assert IndexSpec.of("range_max_tree", fanout=2).kind == "max"

    def test_build(self, rng):
        cube = make_cube((10, 10), rng)
        spec = IndexSpec.of("blocked_prefix_sum", block_size=5)
        index = spec.build(cube)
        assert isinstance(index, BlockedPrefixSumCube)
        assert index.block_size == 5
        box = Box((1, 2), (8, 9))
        assert index.query(box) == naive_range_sum(cube, box)

    def test_str(self):
        spec = IndexSpec.of("blocked_prefix_sum", block_size=4)
        assert "blocked_prefix_sum" in str(spec)
        assert "block_size=4" in str(spec)
