"""Memmap backend equivalence: out-of-core == in-memory, bit for bit.

The backend layer only changes *where* a structure's arrays live; every
value written through it must be identical.  These tests build each
registered dense structure twice — heap vs spill directory — and assert
byte-identical arrays and identical query answers on randomized boxes
across dimensionalities 1–4.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.index.backend import (
    MEMORY_BACKEND,
    MemmapBackend,
    MemoryBackend,
    resolve_backend,
)
from repro.index.registry import create_index
from repro.query.workload import make_cube, random_query_arrays

DENSE_SUM = (
    "prefix_sum",
    "blocked_prefix_sum",
    "partial_prefix_sum",
    "blocked_partial_prefix_sum",
)
SHAPES = {1: (97,), 2: (23, 17), 3: (11, 9, 7), 4: (6, 5, 4, 7)}


def params_for(name: str, ndim: int) -> dict:
    return {
        "prefix_sum": {},
        "blocked_prefix_sum": {"block_size": 4},
        "partial_prefix_sum": {"prefix_dims": tuple(range(0, ndim, 2))},
        "blocked_partial_prefix_sum": {
            "prefix_dims": (0,),
            "block_size": 4,
        },
    }[name]


@pytest.fixture
def rng():
    return np.random.default_rng(0x5EED)


class TestBackendBasics:
    def test_resolve_backend_default(self):
        assert resolve_backend(None) is MEMORY_BACKEND
        custom = MemoryBackend()
        assert resolve_backend(custom) is custom

    def test_memmap_allocates_npy_files(self, tmp_path):
        backend = MemmapBackend(tmp_path, tag="t")
        arr = backend.empty("prefix", (10, 4), np.int64)
        arr[...] = 7
        assert len(backend.spill_files) == 1
        assert backend.spill_files[0].suffix == ".npy"
        assert np.array_equal(np.load(backend.spill_files[0]), arr)
        assert backend.spilled_bytes > 0

    def test_memmap_zero_size_returns_heap(self, tmp_path):
        backend = MemmapBackend(tmp_path)
        arr = backend.empty("empty", (0, 5), np.int64)
        assert arr.shape == (0, 5)
        assert len(backend.spill_files) == 0

    def test_memmap_sanitizes_names(self, tmp_path):
        backend = MemmapBackend(tmp_path)
        backend.empty("weird/|name", (3,), np.int64)
        assert backend.spill_files[0].exists()

    def test_materialize_copies(self, tmp_path):
        backend = MemmapBackend(tmp_path)
        source = np.arange(12).reshape(3, 4)
        copy = backend.materialize("source", source)
        assert np.array_equal(copy, source)
        source[0, 0] = 999
        assert copy[0, 0] == 0  # backend owns an independent copy

    def test_describe(self, tmp_path):
        backend = MemmapBackend(tmp_path, tag="x")
        backend.empty("a", (4,), np.int64)
        info = backend.describe()
        assert info["backend"] == "MemmapBackend"
        assert info["files"] == 1


class TestMemmapLifecycle:
    """The allocation-lifecycle contract: release, live-only flush,
    degenerate accounting, and subscope isolation."""

    def test_release_deletes_files_and_drops_tracking(self, tmp_path):
        backend = MemmapBackend(tmp_path, tag="t")
        arrays = [backend.empty(f"a{i}", (64,), np.int64) for i in range(3)]
        for arr in arrays:
            arr[...] = 1
        files = backend.spill_files
        assert backend.live_arrays == 3
        assert backend.release() == 3
        assert backend.live_arrays == 0
        assert backend.spill_files == ()
        assert backend.spilled_bytes == 0
        assert not any(path.exists() for path in files)
        # POSIX unlink-while-mapped: the arrays stay readable until the
        # last reference dies; release must never close the mapping.
        assert int(arrays[0].sum()) == 64

    def test_backend_usable_after_release(self, tmp_path):
        backend = MemmapBackend(tmp_path)
        backend.empty("a", (8,), np.int64)
        backend.release()
        fresh = backend.empty("b", (8,), np.int64)
        fresh[...] = 3
        assert backend.live_arrays == 1
        assert np.array_equal(np.load(backend.spill_files[0]), fresh)

    def test_release_tolerates_already_deleted_files(self, tmp_path):
        backend = MemmapBackend(tmp_path)
        backend.empty("a", (8,), np.int64)
        backend.spill_files[0].unlink()
        assert backend.release() == 1

    def test_flush_touches_live_arrays_only(self, tmp_path, monkeypatch):
        """Flush is O(live arrays), not O(every array ever allocated)."""
        backend = MemmapBackend(tmp_path)
        flushed = []
        original = np.memmap.flush

        def counting_flush(self):
            flushed.append(self)
            original(self)

        monkeypatch.setattr(np.memmap, "flush", counting_flush)
        for i in range(5):
            backend.empty(f"gen{i}", (16,), np.int64)
        backend.release()
        survivor = backend.empty("live", (16,), np.int64)
        survivor[...] = 9
        backend.flush()
        assert len(flushed) == 1
        assert flushed[0] is survivor

    def test_degenerate_allocations_reported(self, tmp_path):
        """Zero-size heap fallbacks are invisible to spill_files by
        necessity but must show up in describe() by contract."""
        backend = MemmapBackend(tmp_path)
        backend.empty("empty", (0, 5), np.int64)
        backend.empty("real", (4,), np.int64)
        info = backend.describe()
        assert info["files"] == 1
        assert info["degenerate"] == 1
        assert backend.release() == 1
        assert backend.describe()["degenerate"] == 0

    def test_memory_backend_release_is_noop(self):
        backend = MemoryBackend()
        arr = backend.empty("a", (4,), np.int64)
        assert backend.release() == 0
        assert arr.shape == (4,)

    def test_subscope_release_leaves_parent_untouched(self, tmp_path):
        parent = MemmapBackend(tmp_path)
        kept = parent.empty("base", (32,), np.int64)
        kept[...] = 5
        child = parent.subscope("build")
        child.empty("aux", (32,), np.int64)
        assert child.directory != parent.directory
        assert child.release() == 1
        assert parent.live_arrays == 1
        assert parent.spill_files[0].exists()
        assert np.array_equal(np.load(parent.spill_files[0]), kept)

    def test_same_tag_subscopes_get_distinct_directories(self, tmp_path):
        parent = MemmapBackend(tmp_path)
        first = parent.subscope("cuboids")
        second = parent.subscope("cuboids")
        assert first.directory != second.directory
        a = first.empty("x", (4,), np.int64)
        b = second.empty("x", (4,), np.int64)
        a[...] = 1
        b[...] = 2
        # Without distinct directories the second allocation would have
        # overwritten the first's spill file (fresh sequence counters).
        assert np.array_equal(np.load(first.spill_files[0]), a)
        assert np.array_equal(np.load(second.spill_files[0]), b)

    def test_subscope_avoids_on_disk_collisions(self, tmp_path):
        """Two backends over the same durable directory (a restart, or
        two processes) must not share a child directory: the second's
        fresh filename sequence would silently overwrite the first's
        spill files — possibly the persisted form a manifest serves."""
        first = MemmapBackend(tmp_path)
        child = first.subscope("scope")
        kept = child.empty("x", (3,), np.int64)
        kept[...] = np.arange(3)
        reopened = MemmapBackend(tmp_path)
        other = reopened.subscope("scope")
        assert other.directory != child.directory
        fresh = other.empty("x", (3,), np.int64)
        fresh[...] = 9
        assert np.array_equal(np.load(child.spill_files[0]), kept)

    def test_memory_backend_subscope_is_self(self):
        backend = MemoryBackend()
        assert backend.subscope("anything") is backend


class TestAdoptingBackend:
    def test_materialize_adopts_without_copy(self, tmp_path):
        from repro.index.backend import AdoptingBackend

        inner = MemmapBackend(tmp_path)
        cells = inner.empty("cells", (8,), np.int64)
        cells[...] = 3
        adopting = AdoptingBackend(inner)
        adopted = adopting.materialize("source", cells)
        assert adopted.base is cells or adopted is cells
        cells[0] = 99
        assert adopted[0] == 99  # same buffer, no defensive copy
        assert adopting.describe()["adopted"] == 1

    def test_flush_reaches_adopted_memmaps(self, tmp_path):
        from repro.index.backend import AdoptingBackend

        inner = MemmapBackend(tmp_path)
        cells = inner.empty("cells", (8,), np.int64)
        adopting = AdoptingBackend(inner)
        view = adopting.materialize("source", np.asarray(cells))
        view[...] = 42
        adopting.flush()
        assert np.array_equal(np.load(inner.spill_files[0]), view)

    def test_release_delegates(self, tmp_path):
        from repro.index.backend import AdoptingBackend

        inner = MemmapBackend(tmp_path)
        cells = inner.empty("cells", (8,), np.int64)
        adopting = AdoptingBackend(inner)
        adopting.materialize("source", cells)
        assert adopting.release() == 1
        assert inner.live_arrays == 0
        assert adopting.describe()["adopted"] == 0

    def test_heap_arrays_pass_through_untracked(self):
        from repro.index.backend import AdoptingBackend

        adopting = AdoptingBackend(MemoryBackend())
        source = np.arange(6)
        adopted = adopting.materialize("source", source)
        assert adopted is source
        assert adopting.describe()["adopted"] == 0


class TestMemmapEquivalence:
    @pytest.mark.parametrize("name", DENSE_SUM)
    @pytest.mark.parametrize("ndim", [1, 2, 3, 4])
    def test_sum_bit_identical(self, name, ndim, rng, tmp_path):
        shape = SHAPES[ndim]
        cube = make_cube(shape, rng)
        params = params_for(name, ndim)
        in_memory = create_index(name, cube, **params)
        spilled = create_index(
            name, cube, backend=MemmapBackend(tmp_path), **params
        )
        lows, highs = random_query_arrays(shape, 50, rng)
        expected = in_memory.query_many(lows, highs)
        got = spilled.query_many(lows, highs)
        assert expected.dtype == got.dtype
        assert np.array_equal(expected, got)
        for k in range(0, 50, 10):
            box = Box(tuple(lows[k]), tuple(highs[k]))
            assert spilled.query(box) == in_memory.query(box)

    @pytest.mark.parametrize("ndim", [1, 2, 3, 4])
    def test_prefix_sum_arrays_bit_identical(self, ndim, rng, tmp_path):
        """The acceptance criterion verbatim: a memmap-backed
        PrefixSumCube's prefix array equals the heap-built one exactly."""
        cube = make_cube(SHAPES[ndim], rng)
        in_memory = create_index("prefix_sum", cube)
        spilled = create_index(
            "prefix_sum", cube, backend=MemmapBackend(tmp_path)
        )
        assert in_memory.prefix.dtype == spilled.prefix.dtype
        assert np.array_equal(in_memory.prefix, np.asarray(spilled.prefix))

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_max_tree_bit_identical(self, ndim, rng, tmp_path):
        shape = SHAPES[ndim]
        cube = make_cube(shape, rng, high=10**6)
        in_memory = create_index("range_max_tree", cube, fanout=3)
        spilled = create_index(
            "range_max_tree",
            cube,
            backend=MemmapBackend(tmp_path),
            fanout=3,
        )
        for level in range(1, in_memory.height + 1):
            assert np.array_equal(
                np.asarray(in_memory.values[level]),
                np.asarray(spilled.values[level]),
            )
        lows, highs = random_query_arrays(shape, 25, rng)
        exp_idx, exp_val = in_memory.query_many(lows, highs)
        got_idx, got_val = spilled.query_many(lows, highs)
        assert np.array_equal(exp_val, got_val)
        assert np.array_equal(exp_idx, got_idx)

    def test_structure_arrays_live_in_spill_dir(self, rng, tmp_path):
        backend = MemmapBackend(tmp_path, tag="psum")
        cube = make_cube((40, 40), rng)
        index = create_index("prefix_sum", cube, backend=backend)
        assert len(backend.spill_files) >= 1
        assert isinstance(index.prefix, np.memmap)

    def test_float_cube_bit_identical(self, rng, tmp_path):
        from repro.query.workload import make_float_cube

        cube = make_float_cube((31, 17), rng)
        in_memory = create_index("prefix_sum", cube)
        spilled = create_index(
            "prefix_sum", cube, backend=MemmapBackend(tmp_path)
        )
        assert np.array_equal(
            in_memory.prefix, np.asarray(spilled.prefix)
        )  # exact, not approximate: identical operation order


class TestEngineBackendIntegration:
    def test_engine_with_memmap_backend(self, rng, tmp_path):
        from repro.query.engine import RangeQueryEngine

        cube = make_cube((20, 16), rng)
        baseline = RangeQueryEngine(cube)
        spilled = RangeQueryEngine(
            cube, backend=MemmapBackend(tmp_path)
        )
        lows, highs = random_query_arrays(cube.shape, 30, rng)
        assert np.array_equal(
            baseline.sum_many(lows, highs), spilled.sum_many(lows, highs)
        )
        _, exp_max = baseline.max_many(lows, highs)
        _, got_max = spilled.max_many(lows, highs)
        assert np.array_equal(exp_max, got_max)
        _, exp_min = baseline.min_many(lows, highs)
        _, got_min = spilled.min_many(lows, highs)
        assert np.array_equal(exp_min, got_min)

    def test_materialized_plan_with_backend(self, rng, tmp_path):
        from repro.optimizer.cuboid_selection import Materialization
        from repro.optimizer.materialize import MaterializedCuboidSet
        from repro.query.ranges import RangeQuery, RangeSpec

        cube = make_cube((12, 10, 8), rng)
        plan = [
            Materialization((0, 1), 2, 120.0),
            Materialization((1, 2), 1, 80.0, prefix_dims=(1,)),
        ]
        backend = MemmapBackend(tmp_path)
        heap = MaterializedCuboidSet(cube, plan)
        spilled = MaterializedCuboidSet(cube, plan, backend=backend)
        assert len(backend.spill_files) >= 2
        query = RangeQuery(
            (
                RangeSpec.between(2, 9),
                RangeSpec.between(1, 7),
                RangeSpec.all(),
            )
        )
        assert spilled.range_sum(query) == heap.range_sum(query)

    def test_load_index_into_memmap_backend(self, rng, tmp_path):
        from repro.io import load_index, save_index

        cube = make_cube((15, 15), rng)
        original = create_index("prefix_sum", cube)
        archive = tmp_path / "p.npz"
        save_index(original, archive)
        backend = MemmapBackend(tmp_path / "spill")
        restored = load_index(archive, backend=backend)
        assert isinstance(restored.prefix, np.memmap)
        assert np.array_equal(
            np.asarray(restored.prefix), original.prefix
        )
