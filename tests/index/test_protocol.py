"""Protocol conformance for every registered structure.

Each registered index must satisfy its kind's runtime-checkable protocol
and answer ``query`` / ``query_many`` consistently with the naive
evaluator — including structures that never defined a batch path of
their own (the mixin's scalar-loop default supplies one).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.index.protocol import (
    InstrumentedIndex,
    RangeMaxIndex,
    RangeSumIndex,
)
from repro.index.registry import create_index, get_index_info
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_max_value, naive_range_sum
from repro.query.workload import (
    make_cube,
    random_box,
    random_query_arrays,
)
from repro.sparse.sparse_cube import SparseCube

DENSE_SUM = (
    "prefix_sum",
    "blocked_prefix_sum",
    "partial_prefix_sum",
    "blocked_partial_prefix_sum",
)


def dense_sum_params(name: str, ndim: int) -> dict:
    """Representative construction params per structure and rank."""
    return {
        "prefix_sum": {},
        "blocked_prefix_sum": {"block_size": 3},
        "partial_prefix_sum": {"prefix_dims": tuple(range(0, ndim, 2))},
        "blocked_partial_prefix_sum": {
            "prefix_dims": (0,),
            "block_size": 3,
        },
    }[name]


@pytest.fixture
def rng():
    return np.random.default_rng(9021)


class TestDenseSumProtocol:
    @pytest.mark.parametrize("name", DENSE_SUM)
    def test_satisfies_protocol(self, name, rng):
        cube = make_cube((8, 7), rng)
        index = create_index(name, cube, **dense_sum_params(name, 2))
        assert isinstance(index, RangeSumIndex)

    @pytest.mark.parametrize("name", DENSE_SUM)
    def test_query_matches_naive(self, name, rng):
        cube = make_cube((11, 9), rng)
        index = create_index(name, cube, **dense_sum_params(name, 2))
        for _ in range(25):
            box = random_box(cube.shape, rng)
            assert index.query(box) == naive_range_sum(cube, box)

    @pytest.mark.parametrize("name", DENSE_SUM)
    def test_query_many_matches_scalar(self, name, rng):
        cube = make_cube((10, 8, 5), rng)
        index = create_index(name, cube, **dense_sum_params(name, 3))
        lows, highs = random_query_arrays(cube.shape, 40, rng)
        batch = index.query_many(lows, highs)
        assert batch.shape == (40,)
        for k in range(40):
            box = Box(tuple(lows[k]), tuple(highs[k]))
            assert batch[k] == index.query(box)

    @pytest.mark.parametrize("name", DENSE_SUM)
    def test_describe_reports_identity(self, name, rng):
        cube = make_cube((6, 6), rng)
        index = create_index(name, cube, **dense_sum_params(name, 2))
        info = index.describe()
        assert info["index"] == name
        assert info["kind"] == "sum"
        assert info["shape"] == (6, 6)
        assert info["memory_cells"] == index.memory_cells()
        assert isinstance(index.memory_cells(), int)

    @pytest.mark.parametrize("name", DENSE_SUM)
    def test_build_classmethod(self, name, rng):
        cube = make_cube((7, 7), rng)
        cls = get_index_info(name).cls
        index = cls.build(cube, **dense_sum_params(name, 2))
        box = random_box(cube.shape, rng)
        assert index.query(box) == naive_range_sum(cube, box)


class TestBlockedPartialBatchPath:
    """BlockedPartialPrefixSumCube's ``sum_many`` routes through the
    execution-kernel layer: the ``numpy`` oracle delegates to the
    protocol mixin's scalar loop, the vectorizing backends answer the
    batch in one boundary pass."""

    def test_oracle_kernel_delegates_to_the_mixin(self, rng):
        from repro.index.protocol import RangeSumIndexMixin
        from repro.kernels import get_kernel

        cube = make_cube((12, 9), rng)
        index = create_index(
            "blocked_partial_prefix_sum",
            cube,
            prefix_dims=(0,),
            block_size=3,
        )
        index.kernel = get_kernel("numpy")
        lows, highs = random_query_arrays(cube.shape, 8, rng)
        expected = RangeSumIndexMixin.sum_many(index, lows, highs)
        assert np.array_equal(index.sum_many(lows, highs), expected)

    def test_vectorized_kernel_matches_oracle(self, rng):
        from repro.kernels import get_kernel

        cube = make_cube((12, 9, 5), rng)
        index = create_index(
            "blocked_partial_prefix_sum",
            cube,
            prefix_dims=(0, 2),
            block_size=3,
        )
        lows, highs = random_query_arrays(cube.shape, 25, rng)
        index.kernel = get_kernel("numpy")
        oracle = index.sum_many(lows, highs)
        index.kernel = get_kernel("threaded")
        assert np.array_equal(index.sum_many(lows, highs), oracle)

    def test_sum_many_matches_naive(self, rng):
        cube = make_cube((24, 18, 6), rng)
        index = create_index(
            "blocked_partial_prefix_sum",
            cube,
            prefix_dims=(0, 1),
            block_size=4,
        )
        lows, highs = random_query_arrays(cube.shape, 30, rng)
        batch = index.sum_many(lows, highs)
        for k in range(30):
            box = Box(tuple(lows[k]), tuple(highs[k]))
            assert batch[k] == naive_range_sum(cube, box)

    def test_run_query_log_routes_blocked_partial(self, rng):
        """The workload runner's batch path serves an engine whose sum
        structure only has the mixin-default batch implementation."""
        from repro.index.registry import IndexSpec
        from repro.query.engine import RangeQueryEngine
        from repro.query.workload import run_query_log

        cube = make_cube((20, 15), rng)
        engine = RangeQueryEngine(
            cube,
            sum_index=IndexSpec.of(
                "blocked_partial_prefix_sum",
                prefix_dims=(0,),
                block_size=5,
            ),
        )
        boxes = [random_box(cube.shape, rng) for _ in range(20)]
        results = run_query_log(engine, boxes, aggregate="sum")
        for k, box in enumerate(boxes):
            assert results[k] == naive_range_sum(cube, box)


class TestMaxTreeProtocol:
    def test_satisfies_protocol(self, rng):
        cube = make_cube((9, 9), rng)
        tree = create_index("range_max_tree", cube, fanout=3)
        assert isinstance(tree, RangeMaxIndex)

    def test_query_returns_witness(self, rng):
        cube = make_cube((13, 11), rng, high=10**6)
        tree = create_index("range_max_tree", cube, fanout=4)
        for _ in range(25):
            box = random_box(cube.shape, rng)
            index, value = tree.query(box)
            assert cube[index] == value == naive_max_value(cube, box)

    def test_query_many_matches_scalar(self, rng):
        cube = make_cube((16, 12), rng, high=10**6)
        tree = create_index("range_max_tree", cube, fanout=3)
        lows, highs = random_query_arrays(cube.shape, 30, rng)
        indices, values = tree.query_many(lows, highs)
        for k in range(30):
            box = Box(tuple(lows[k]), tuple(highs[k]))
            assert values[k] == naive_max_value(cube, box)
            assert cube[tuple(indices[k])] == values[k]

    def test_apply_updates_protocol(self, rng):
        cube = make_cube((12,), rng, high=100)
        tree = create_index("range_max_tree", cube, fanout=2)
        from repro.core.batch_update import PointUpdate

        tree.apply_updates([PointUpdate((3,), 1000)])
        index, value = tree.query(Box((0,), (11,)))
        assert index == (3,) and value == cube[3] + 1000


class TestSparseProtocol:
    def test_sparse_sum_1d(self, rng):
        cells = {
            (int(k),): int(v)
            for k, v in zip(
                rng.choice(200, size=40, replace=False),
                rng.integers(1, 50, size=40),
            )
        }
        sparse = SparseCube((200,), cells)
        index = create_index("sparse_sum_1d", sparse, block_size=4)
        assert isinstance(index, RangeSumIndex)
        for _ in range(20):
            box = random_box((200,), rng)
            assert index.query(box) == sparse.naive_range_sum(box)
        lows, highs = random_query_arrays((200,), 10, rng)
        batch = index.query_many(lows, highs)
        for k in range(10):
            box = Box(tuple(lows[k]), tuple(highs[k]))
            assert batch[k] == sparse.naive_range_sum(box)

    def test_sparse_region_sum(self, rng):
        cells = {
            (int(i), int(j)): int(v)
            for i, j, v in zip(
                rng.integers(0, 30, size=60),
                rng.integers(0, 30, size=60),
                rng.integers(1, 20, size=60),
            )
        }
        sparse = SparseCube((30, 30), cells)
        index = create_index("sparse_region_sum", sparse)
        assert isinstance(index, RangeSumIndex)
        assert index.memory_cells() >= 0
        for _ in range(15):
            box = random_box((30, 30), rng)
            assert index.query(box) == sparse.naive_range_sum(box)

    def test_sparse_max_protocol(self, rng):
        cells = {
            (int(i), int(j)): int(v)
            for i, j, v in zip(
                rng.integers(0, 25, size=50),
                rng.integers(0, 25, size=50),
                rng.integers(1, 10**6, size=50),
            )
        }
        sparse = SparseCube((25, 25), cells)
        index = create_index("sparse_max_rtree", sparse)
        assert isinstance(index, RangeMaxIndex)
        hit = index.query(Box((0, 0), (24, 24)))
        assert hit is not None
        point, value = hit
        assert cells[point] == value == max(cells.values())

    def test_sparse_max_empty_region_is_none(self):
        sparse = SparseCube((10, 10), {(0, 0): 5})
        index = create_index("sparse_max_rtree", sparse)
        assert index.query(Box((5, 5), (9, 9))) is None


class TestInstrumentedIndex:
    def test_bound_counter_observes_queries(self, rng):
        cube = make_cube((10, 10), rng)
        counter = AccessCounter()
        wrapped = InstrumentedIndex(
            create_index("prefix_sum", cube), counter
        )
        before = counter.total
        wrapped.query(Box((0, 0), (5, 5)))
        assert counter.total > before

    def test_explicit_counter_wins(self, rng):
        cube = make_cube((10, 10), rng)
        bound = AccessCounter()
        explicit = AccessCounter()
        wrapped = InstrumentedIndex(
            create_index("prefix_sum", cube), bound
        )
        wrapped.query(Box((0, 0), (5, 5)), explicit)
        assert explicit.total > 0
        assert bound.total == 0

    def test_attribute_passthrough(self, rng):
        cube = make_cube((6, 6), rng)
        wrapped = InstrumentedIndex(
            create_index("blocked_prefix_sum", cube, block_size=2)
        )
        assert wrapped.block_size == 2
        assert wrapped.describe()["index"] == "blocked_prefix_sum"
