"""Tests for the Box geometry helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import Box, box_difference, full_box, validate_range


@st.composite
def nested_boxes(draw, max_ndim=3, max_side=10):
    ndim = draw(st.integers(min_value=1, max_value=max_ndim))
    outer_lo = []
    outer_hi = []
    inner_lo = []
    inner_hi = []
    for _ in range(ndim):
        a = draw(st.integers(min_value=0, max_value=max_side))
        b = draw(st.integers(min_value=a, max_value=max_side + 3))
        outer_lo.append(a)
        outer_hi.append(b)
        c = draw(st.integers(min_value=a, max_value=b))
        d = draw(st.integers(min_value=c, max_value=b))
        inner_lo.append(c)
        inner_hi.append(d)
    return (
        Box(tuple(outer_lo), tuple(outer_hi)),
        Box(tuple(inner_lo), tuple(inner_hi)),
    )


class TestBoxBasics:
    def test_volume_and_lengths(self):
        box = Box((1, 2), (3, 5))
        assert box.volume == 12
        assert box.lengths == (3, 4)

    def test_empty_box(self):
        box = Box((3,), (2,))
        assert box.is_empty
        assert box.volume == 0
        assert box.lengths == (0,)

    def test_mismatched_dims_rejected(self):
        with pytest.raises(ValueError):
            Box((0,), (1, 2))

    def test_slices_select_exactly(self):
        array = np.arange(36).reshape(6, 6)
        box = Box((1, 2), (3, 4))
        assert array[box.slices()].shape == (3, 3)
        assert array[box.slices()][0, 0] == array[1, 2]

    def test_contains_point(self):
        box = Box((0, 0), (2, 2))
        assert box.contains_point((2, 2))
        assert not box.contains_point((3, 0))

    def test_contains_box(self):
        outer = Box((0, 0), (5, 5))
        assert outer.contains_box(Box((1, 1), (5, 5)))
        assert not outer.contains_box(Box((1, 1), (6, 5)))
        assert outer.contains_box(Box((4, 4), (2, 2)))  # empty box

    def test_intersect(self):
        a = Box((0, 0), (4, 4))
        b = Box((3, 2), (7, 9))
        assert a.intersect(b) == Box((3, 2), (4, 4))
        assert not a.intersects(Box((5, 5), (6, 6)))

    def test_iter_points_row_major(self):
        box = Box((0, 1), (1, 2))
        assert list(box.iter_points()) == [
            (0, 1),
            (0, 2),
            (1, 1),
            (1, 2),
        ]

    def test_iter_points_empty(self):
        assert list(Box((2,), (1,)).iter_points()) == []

    def test_str(self):
        assert str(Box((1, 2), (3, 4))) == "Box(1:3, 2:4)"

    def test_full_box(self):
        assert full_box((2, 3)) == Box((0, 0), (1, 2))


class TestBoxDifference:
    @given(nested_boxes())
    @settings(max_examples=100, deadline=None)
    def test_difference_partitions_exactly(self, data):
        outer, inner = data
        pieces = box_difference(outer, inner)
        assert len(pieces) <= 2 * outer.ndim
        shape = tuple(h + 1 for h in outer.hi)
        coverage = np.zeros(shape, dtype=np.int64)
        for piece in pieces:
            assert outer.contains_box(piece)
            assert not piece.intersects(inner)
            coverage[piece.slices()] += 1
        coverage[inner.slices()] += 1
        window = coverage[outer.slices()]
        assert window.min() == 1 and window.max() == 1

    def test_identical_boxes_leave_nothing(self):
        box = Box((1, 1), (3, 3))
        assert box_difference(box, box) == []

    def test_empty_inner_returns_outer(self):
        outer = Box((0, 0), (3, 3))
        assert box_difference(outer, Box((2, 2), (1, 1))) == [outer]

    def test_not_contained_rejected(self):
        with pytest.raises(ValueError):
            box_difference(Box((0,), (3,)), Box((2,), (5,)))


class TestValidateRange:
    def test_accepts_valid(self):
        validate_range(0, 3, 4)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            validate_range(3, 2, 10)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            validate_range(0, 10, 10)
