"""Metamorphic properties that must hold across every structure.

These tests assert *relations between queries* rather than oracle
equality — the invariants a downstream user implicitly relies on:
additivity under region splits, monotonicity, update commutativity, and
prefix/query consistency.  A bug in sign handling, boundary arithmetic or
update batching that happens to survive the oracle tests tends to break
one of these.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import Box
from repro.core.batch_update import PointUpdate
from repro.core.blocked import BlockedPrefixSumCube
from repro.core.prefix_sum import PrefixSumCube, compute_prefix_array
from repro.core.range_max import RangeMaxTree
from repro.core.tree_sum import TreeSumHierarchy
from repro.query.workload import make_cube, random_box
from tests.conftest import cube_and_box


@pytest.fixture
def rng():
    return np.random.default_rng(199)


def _split(box: Box, axis: int) -> tuple[Box, Box] | None:
    """Split a box into two halves along an axis, if it is wide enough."""
    if box.hi[axis] == box.lo[axis]:
        return None
    mid = (box.lo[axis] + box.hi[axis]) // 2
    left_hi = list(box.hi)
    left_hi[axis] = mid
    right_lo = list(box.lo)
    right_lo[axis] = mid + 1
    return Box(box.lo, tuple(left_hi)), Box(tuple(right_lo), box.hi)


class TestSumAdditivity:
    @given(cube_and_box(max_ndim=3, max_side=10))
    @settings(max_examples=80, deadline=None)
    def test_prefix_sum_splits_add_up(self, data):
        cube, box = data
        structure = PrefixSumCube(cube)
        whole = structure.range_sum(box)
        for axis in range(box.ndim):
            halves = _split(box, axis)
            if halves is None:
                continue
            left, right = halves
            assert structure.range_sum(left) + structure.range_sum(
                right
            ) == whole

    @given(
        cube_and_box(max_ndim=2, max_side=12),
        st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_blocked_splits_add_up(self, data, block):
        cube, box = data
        structure = BlockedPrefixSumCube(cube, block)
        whole = structure.range_sum(box)
        for axis in range(box.ndim):
            halves = _split(box, axis)
            if halves is None:
                continue
            left, right = halves
            assert structure.range_sum(left) + structure.range_sum(
                right
            ) == whole

    def test_grid_partition_adds_up(self, rng):
        """A full tiling of the cube sums to the grand total."""
        cube = make_cube((24, 18), rng)
        structure = BlockedPrefixSumCube(cube, 5)
        total = 0
        for i in range(0, 24, 6):
            for j in range(0, 18, 6):
                total += structure.range_sum(
                    Box((i, j), (i + 5, j + 5))
                )
        assert total == structure.total() == cube.sum()

    def test_tree_sum_splits_add_up(self, rng):
        cube = make_cube((27, 27), rng)
        tree = TreeSumHierarchy(cube, 3)
        for _ in range(25):
            box = random_box(cube.shape, rng)
            whole = tree.range_sum(box)
            halves = _split(box, 0)
            if halves is None:
                continue
            left, right = halves
            assert tree.range_sum(left) + tree.range_sum(right) == whole


class TestMaxLattice:
    @given(cube_and_box(max_ndim=2, max_side=14))
    @settings(max_examples=60, deadline=None)
    def test_max_of_split_is_max_of_parts(self, data):
        cube, box = data
        tree = RangeMaxTree(cube, 3)
        whole = cube[tree.max_index(box)]
        for axis in range(box.ndim):
            halves = _split(box, axis)
            if halves is None:
                continue
            left, right = halves
            parts = max(
                cube[tree.max_index(left)], cube[tree.max_index(right)]
            )
            assert parts == whole

    @given(cube_and_box(max_ndim=2, max_side=14))
    @settings(max_examples=60, deadline=None)
    def test_max_monotone_under_containment(self, data):
        cube, box = data
        tree = RangeMaxTree(cube, 2)
        grown = Box(
            tuple(max(0, l - 1) for l in box.lo),
            tuple(
                min(n - 1, h + 1)
                for h, n in zip(box.hi, cube.shape)
            ),
        )
        assert cube[tree.max_index(grown)] >= cube[tree.max_index(box)]

    def test_sum_monotone_on_nonnegative_cube(self, rng):
        cube = make_cube((20, 20), rng, low=0, high=50)
        structure = PrefixSumCube(cube)
        for _ in range(30):
            box = random_box(cube.shape, rng)
            grown = Box(
                tuple(max(0, l - 2) for l in box.lo),
                tuple(min(19, h + 2) for h in box.hi),
            )
            assert structure.range_sum(grown) >= structure.range_sum(box)


class TestUpdateAlgebra:
    @given(cube_and_box(max_ndim=2, max_side=8))
    @settings(max_examples=60, deadline=None)
    def test_batch_order_is_immaterial(self, data):
        cube, _ = data
        rng = np.random.default_rng(7)
        updates = [
            PointUpdate(
                tuple(int(rng.integers(0, n)) for n in cube.shape),
                int(rng.integers(-5, 10)),
            )
            for _ in range(6)
        ]
        forward = PrefixSumCube(cube)
        backward = PrefixSumCube(cube)
        forward.apply_updates(updates)
        backward.apply_updates(list(reversed(updates)))
        assert np.array_equal(forward.prefix, backward.prefix)

    @given(cube_and_box(max_ndim=2, max_side=8))
    @settings(max_examples=60, deadline=None)
    def test_two_batches_equal_one(self, data):
        cube, _ = data
        rng = np.random.default_rng(8)
        updates = [
            PointUpdate(
                tuple(int(rng.integers(0, n)) for n in cube.shape),
                int(rng.integers(-5, 10)),
            )
            for _ in range(8)
        ]
        split = PrefixSumCube(cube)
        split.apply_updates(updates[:4])
        split.apply_updates(updates[4:])
        merged = PrefixSumCube(cube)
        merged.apply_updates(updates)
        assert np.array_equal(split.prefix, merged.prefix)

    def test_inverse_updates_cancel(self, rng):
        cube = make_cube((10, 10), rng).astype(np.int64)
        structure = PrefixSumCube(cube)
        before = structure.prefix.copy()
        updates = [
            PointUpdate((3, 4), 17),
            PointUpdate((0, 9), -5),
            PointUpdate((9, 0), 2),
        ]
        structure.apply_updates(updates)
        structure.apply_updates(
            [PointUpdate(u.index, -u.delta) for u in updates]
        )
        assert np.array_equal(structure.prefix, before)


class TestPrefixConsistency:
    @given(cube_and_box(max_ndim=3, max_side=8))
    @settings(max_examples=60, deadline=None)
    def test_origin_query_reads_prefix_directly(self, data):
        """Sum(0:x_1, ..., 0:x_d) must equal P[x_1, ..., x_d] itself."""
        cube, box = data
        structure = PrefixSumCube(cube)
        origin = Box(tuple(0 for _ in box.hi), box.hi)
        assert structure.range_sum(origin) == structure.prefix[box.hi]

    @given(cube_and_box(max_ndim=2, max_side=8))
    @settings(max_examples=40, deadline=None)
    def test_cell_reconstruction_matches_direct(self, data):
        cube, box = data
        structure = PrefixSumCube(cube, keep_source=False)
        assert structure.cell(box.lo) == cube[box.lo]

    def test_double_prefix_is_prefix_of_prefix(self, rng):
        """compute_prefix_array composes: prefix of prefix equals the
        2-fold cumulative sum — a sanity anchor for the sweep order."""
        cube = make_cube((6, 7), rng)
        once = compute_prefix_array(cube)
        twice = compute_prefix_array(once)
        by_hand = np.cumsum(np.cumsum(
            np.cumsum(np.cumsum(cube, 0), 1), 0), 1)
        assert np.array_equal(twice, by_hand)
