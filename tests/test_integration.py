"""End-to-end integration tests across subsystems.

These exercise the flows a downstream user would run: the paper's
insurance scenario through the public API, agreement of every range-sum
implementation on one cube, update-then-query pipelines, and the sparse
engines against the dense ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AccessCounter,
    BlockedPrefixSumCube,
    Box,
    CategoricalDimension,
    DataCube,
    ExtendedDataCube,
    IntegerDimension,
    MaxAssignment,
    PointUpdate,
    PrefixSumCube,
    RangeMaxTree,
    SparseCube,
    SparseRangeMaxEngine,
    SparseRangeSumEngine,
    TreeSumHierarchy,
    apply_max_updates,
)
from repro.query.naive import naive_max_value, naive_range_sum
from repro.query.workload import clustered_points, make_cube, random_box


@pytest.fixture
def rng():
    return np.random.default_rng(0xBEEF)


class TestInsuranceScenario:
    """The paper's running example (§1), full size: 100 × 10 × 50 × 3."""

    @pytest.fixture(scope="class")
    def cube(self):
        rng = np.random.default_rng(1997)
        dims = [
            IntegerDimension("age", 1, 100),
            IntegerDimension("year", 1987, 1996),
            CategoricalDimension("state", [f"S{i:02d}" for i in range(50)]),
            CategoricalDimension("type", ["home", "auto", "health"]),
        ]
        measures = rng.integers(0, 1000, (100, 10, 50, 3)).astype(np.int64)
        cube = DataCube(dims, measures)
        cube.build_index(block_size=5, max_fanout=4)
        return cube

    def test_paper_intro_range_query(self, cube):
        """Revenue for ages 37–52, years 1988–1996, all US, auto."""
        got = cube.sum(age=(37, 52), year=(1988, 1996), type="auto")
        want = int(cube.measures[36:52, 1:10, :, 1].sum())
        assert got == want

    def test_singleton_query_all_state(self, cube):
        """The (all, 1995, all, auto) singleton query of §1."""
        got = cube.sum(year=1995, type="auto")
        assert got == int(cube.measures[:, 8, :, 1].sum())

    def test_prefix_beats_extended_cube_on_ranges(self, cube):
        """§1's motivation: 144 accesses for the extended cube vs a
        constant number for the prefix-sum method."""
        extended = ExtendedDataCube(cube.measures)
        query = cube.parse_query(
            {"age": (37, 52), "year": (1988, 1996), "type": "auto"}
        )
        ext_counter = AccessCounter()
        ext_value = extended.range_sum(query, ext_counter)
        basic = PrefixSumCube(cube.measures)
        prefix_counter = AccessCounter()
        prefix_value = basic.range_sum(
            query.to_box(cube.shape), prefix_counter
        )
        assert ext_value == prefix_value
        assert ext_counter.total == 144
        assert prefix_counter.total <= 2**4

    def test_max_over_region(self, cube):
        where, value = cube.max(age=(30, 60), year=(1990, 1994))
        assert 30 <= where["age"] <= 60
        assert 1990 <= where["year"] <= 1994
        assert value == int(cube.measures[29:60, 3:8].max())


class TestAllSumMethodsAgree:
    def test_four_way_agreement(self, rng):
        cube = make_cube((48, 36), rng)
        basic = PrefixSumCube(cube)
        blocked = BlockedPrefixSumCube(cube, 6)
        tree = TreeSumHierarchy(cube, 4)
        extended = ExtendedDataCube(cube)
        for _ in range(50):
            box = random_box(cube.shape, rng)
            want = naive_range_sum(cube, box)
            assert basic.range_sum(box) == want
            assert blocked.range_sum(box) == want
            assert tree.range_sum(box) == want
            assert extended.range_sum(box) == want

    def test_max_methods_agree(self, rng):
        cube = make_cube((50, 40), rng, high=10**6)
        tree = RangeMaxTree(cube, 3)
        sparse = SparseRangeMaxEngine(SparseCube.from_dense(cube + 1))
        for _ in range(40):
            box = random_box(cube.shape, rng)
            want = naive_max_value(cube, box)
            assert cube[tree.max_index(box)] == want
            hit = sparse.max_index(box)
            assert hit is not None and hit[1] == want + 1


class TestUpdateThenQuery:
    def test_sum_pipeline(self, rng):
        cube = make_cube((32, 32), rng).astype(np.int64)
        basic = PrefixSumCube(cube)
        blocked = BlockedPrefixSumCube(cube, 4)
        mirror = cube.copy()
        for _ in range(5):
            batch = [
                PointUpdate(
                    (int(rng.integers(0, 32)), int(rng.integers(0, 32))),
                    int(rng.integers(-20, 30)),
                )
                for _ in range(12)
            ]
            basic.apply_updates(batch)
            blocked.apply_updates(batch)
            for update in batch:
                mirror[update.index] += update.delta
            for _ in range(10):
                box = random_box((32, 32), rng)
                want = naive_range_sum(mirror, box)
                assert basic.range_sum(box) == want
                assert blocked.range_sum(box) == want

    def test_max_pipeline(self, rng):
        cube = make_cube((27, 27), rng, high=1000).astype(np.int64)
        tree = RangeMaxTree(cube, 3)
        mirror = cube.copy()
        for _ in range(5):
            batch = [
                MaxAssignment(
                    (int(rng.integers(0, 27)), int(rng.integers(0, 27))),
                    int(rng.integers(0, 3000)),
                )
                for _ in range(15)
            ]
            apply_max_updates(tree, batch)
            for assignment in batch:
                mirror[assignment.index] = assignment.value
            assert np.array_equal(tree.source, mirror)
            for _ in range(10):
                box = random_box((27, 27), rng)
                assert tree.source[tree.max_index(box)] == naive_max_value(
                    mirror, box
                )


class TestSparseVersusDense:
    def test_sparse_engines_match_dense_structures(self, rng):
        shape = (48, 48)
        boxes = [Box((4, 4), (18, 18)), Box((28, 26), (43, 44))]
        cells = clustered_points(shape, boxes, 0.85, 40, rng)
        sparse = SparseCube(shape, cells)
        dense = sparse.to_dense()
        dense_index = PrefixSumCube(dense)
        sparse_sum = SparseRangeSumEngine(sparse, block_size=2)
        sparse_max = SparseRangeMaxEngine(sparse)
        tree = RangeMaxTree(dense, 4)
        for _ in range(50):
            box = random_box(shape, rng)
            assert sparse_sum.range_sum(box) == dense_index.range_sum(box)
            dense_max = naive_max_value(dense, box)
            hit = sparse_max.max_index(box)
            if hit is None:
                assert dense_max == 0  # region holds only empty cells
            else:
                assert hit[1] == dense_max == dense[tree.max_index(box)]

    def test_sparse_storage_advantage(self, rng):
        """§10: auxiliary storage scales with the data, not the domain."""
        shape = (256, 256)
        cells = clustered_points(
            shape, [Box((10, 10), (41, 41))], 0.9, 50, rng
        )
        sparse = SparseCube(shape, cells)
        engine = SparseRangeSumEngine(sparse)
        assert engine.storage_cells() < 4 * sparse.nnz
        assert engine.storage_cells() < sparse.volume / 10
