"""The ownership/escape dataflow behind backend-lifecycle."""

from __future__ import annotations

import ast

from repro.analysis.ownership import Ownership, analyze_function


def _is_acquisition(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Attribute) and call.func.attr in (
        "make_backend",
        "subscope",
    )


def _analyze(source: str):
    tree = ast.parse(source)
    func = next(
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return analyze_function(func, _is_acquisition)


class TestClassification:
    def test_direct_acquisition_is_owned(self):
        report = _analyze(
            "def f(plan):\n"
            "    root = plan.make_backend()\n"
            "    root.release()\n"
        )
        (acq,) = report.acquisitions
        assert acq.state is Ownership.OWNED

    def test_param_alias_is_borrowed(self):
        report = _analyze(
            "def f(backend):\n    root = backend\n    root.release()\n"
        )
        (acq,) = report.acquisitions
        assert acq.state is Ownership.BORROWED

    def test_conditional_acquisition_is_maybe(self):
        report = _analyze(
            "def f(plan, backend):\n"
            "    root = plan.make_backend() if backend is None else backend\n"
            "    return root\n"
        )
        (acq,) = report.acquisitions
        assert acq.state is Ownership.MAYBE


class TestLeaks:
    def test_handler_raise_leaks_unreleased_scope(self):
        report = _analyze(
            "def f(plan, go):\n"
            "    scope = plan.make_backend()\n"
            "    try:\n"
            "        go(scope)\n"
            "    except BaseException:\n"
            "        raise\n"
            "    return scope\n"
        )
        assert [leak.kind for leak in report.leaks] == ["handler-raise"]

    def test_try_body_escape_does_not_satisfy_handler_exit(self):
        """Passing the scope to a call inside ``try`` is no release on
        the abort path — the exception may fire before the call runs."""
        report = _analyze(
            "def f(plan, sink):\n"
            "    scope = plan.make_backend()\n"
            "    try:\n"
            "        sink(scope)\n"
            "        more()\n"
            "    except BaseException:\n"
            "        raise\n"
        )
        assert any(leak.kind == "handler-raise" for leak in report.leaks)

    def test_handler_release_satisfies_handler_exit(self):
        report = _analyze(
            "def f(plan, go):\n"
            "    scope = plan.make_backend()\n"
            "    try:\n"
            "        go(scope)\n"
            "    except BaseException:\n"
            "        scope.release()\n"
            "        raise\n"
            "    return scope\n"
        )
        assert report.leaks == []
        assert report.borrowed_releases == []

    def test_finally_release_satisfies_handler_exit(self):
        report = _analyze(
            "def f(plan, go):\n"
            "    scope = plan.make_backend()\n"
            "    try:\n"
            "        go(scope)\n"
            "    except BaseException:\n"
            "        raise\n"
            "    finally:\n"
            "        scope.release()\n"
        )
        assert report.leaks == []

    def test_fall_through_end_leaks(self):
        report = _analyze(
            "def f(plan):\n"
            "    scope = plan.make_backend()\n"
            "    scope.empty('x', (2, 2), 'f8')\n"
        )
        assert [leak.kind for leak in report.leaks] == ["end"]

    def test_return_of_resource_is_a_transfer(self):
        report = _analyze(
            "def f(plan):\n"
            "    scope = plan.make_backend()\n"
            "    return scope\n"
        )
        assert report.leaks == []

    def test_attribute_store_is_a_transfer(self):
        report = _analyze(
            "def f(self, plan):\n"
            "    scope = plan.make_backend()\n"
            "    self.scope = scope\n"
        )
        assert report.leaks == []

    def test_raise_before_acquisition_cannot_leak(self):
        report = _analyze(
            "def f(plan, bad):\n"
            "    if bad:\n"
            "        raise ValueError(bad)\n"
            "    scope = plan.make_backend()\n"
            "    return scope\n"
        )
        assert report.leaks == []


class TestBorrowedReleases:
    def test_unguarded_maybe_release_is_flagged(self):
        report = _analyze(
            "def f(plan, backend, go):\n"
            "    root = plan.make_backend() if backend is None else backend\n"
            "    try:\n"
            "        go(root)\n"
            "    except BaseException:\n"
            "        root.release()\n"
            "        raise\n"
            "    return root\n"
        )
        (bad,) = report.borrowed_releases
        assert bad.acquisition.state is Ownership.MAYBE
        assert not bad.guarded

    def test_flag_guard_forgives_maybe_release(self):
        report = _analyze(
            "def f(plan, backend, go):\n"
            "    owns_root = backend is None\n"
            "    root = plan.make_backend() if backend is None else backend\n"
            "    try:\n"
            "        go(root)\n"
            "    except BaseException:\n"
            "        if owns_root:\n"
            "            root.release()\n"
            "        raise\n"
            "    return root\n"
        )
        assert report.borrowed_releases == []
        assert report.leaks == []

    def test_identity_guard_forgives_release(self):
        report = _analyze(
            "def f(maker, go):\n"
            "    backend = None\n"
            "    if maker is not None:\n"
            "        backend = maker.make_backend()\n"
            "    try:\n"
            "        go(backend)\n"
            "    except BaseException:\n"
            "        if backend is not None:\n"
            "            backend.release()\n"
            "        raise\n"
            "    return backend\n"
        )
        assert report.borrowed_releases == []

    def test_direct_parameter_release_is_flagged(self):
        report = _analyze(
            "def f(backend):\n    backend.release()\n"
        )
        (bad,) = report.borrowed_releases
        assert bad.acquisition.state is Ownership.BORROWED
        assert bad.acquisition.name == "backend"

    def test_nested_def_statements_are_not_this_functions(self):
        """A release inside a nested closure belongs to the closure."""
        report = _analyze(
            "def f(backend):\n"
            "    def cleanup():\n"
            "        backend.release()\n"
            "    return cleanup\n"
        )
        assert report.borrowed_releases == []
