"""Seeded ``memmap-flush`` violations (must-flag fixture)."""


class LeakyCube:
    def __init__(self, cube, backend):
        self.backend = backend
        self.prefix = backend.materialize("prefix", cube)

    def apply_updates(self, updates):
        if not updates:
            return 0  # VIOLATION: early return after no mutation is
            # fine per se, but the main path below mutates and the
            # function never flushes at all.
        for point, delta in updates:
            self.prefix[point] += delta
        return len(updates)  # VIOLATION: mutation without flush


def apply_assignments(tree, assignments):
    for index, value in assignments:
        tree.source[index] = value
    return len(assignments)  # VIOLATION: free function, no flush


def apply_view_updates(structure, updates):
    view = structure.values[0]
    for node, value in updates:
        view[node] = value  # aliased backend array
    return len(updates)  # VIOLATION: alias mutation without flush


def finalize_cuboid(accumulator, table):
    accumulator.cells[...] = table
    return accumulator.cells  # VIOLATION: finalize sweep without flush
