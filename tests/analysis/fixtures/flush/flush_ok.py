"""Compliant flush discipline (must-not-flag fixture)."""


class TidyCube:
    def __init__(self, cube, backend):
        self.backend = backend
        self.prefix = backend.materialize("prefix", cube)

    def apply_updates(self, updates):
        if not updates:
            self.backend.flush()
            return 0
        for point, delta in updates:
            self.prefix[point] += delta
        self.backend.flush()
        return len(updates)

    def apply_reset(self, value):
        self.prefix[...] = value
        self.backend.flush()
        return None

    def _apply_items(self, items):
        # Private helper: flushing is the public boundary's job.
        for point, delta in items:
            self.prefix[point] += delta


def apply_assignments(tree, assignments):
    for index, value in assignments:
        tree.source[index] = value
    tree.backend.flush()
    return len(assignments)


def apply_batch_to_raw(prefix, updates):
    # A raw ndarray parameter is not backend-held storage.
    for point, delta in updates:
        prefix[point] += delta
    return len(updates)


def apply_bookkeeping(registry, updates):
    # Subscript stores into non-backed attributes are out of scope.
    for key, value in updates:
        registry.entries[key] = value
    return len(updates)


def finalize_cuboid(accumulator, table):
    # Ingest finalize sweeps are mutation boundaries too (PR 9): a
    # flushed one is compliant.
    accumulator.cells[...] = table
    accumulator.backend.flush()
    return accumulator.cells


def finalize_report(accumulator):
    # finalize* with no backed-array mutation never needs a flush.
    return {"rows": accumulator.rows}
