"""Compliant box validation, including delegation (must-not-flag)."""

from repro._util import check_query_box
from repro.index.protocol import RangeSumIndexMixin
from repro.index.registry import register_index
from repro.query.batch import normalize_query_arrays


@register_index("fixture_validated_sum", kind="sum", persistable=False)
class ValidatedSum(RangeSumIndexMixin):
    def __init__(self, cube):
        self.cube = cube
        self.shape = cube.shape

    def _check_box(self, box):
        return check_query_box(box, self.shape)

    def range_sum(self, box, counter=None):
        if self._check_box(box):
            return 0
        return self.cube[box.slices()].sum()

    def sum_range(self, bounds, counter=None):
        # Validates transitively: sum_range -> range_sum -> _check_box.
        from repro._util import Box

        box = Box(
            tuple(lo for lo, _ in bounds), tuple(hi for _, hi in bounds)
        )
        return self.range_sum(box, counter)

    def sum_many(self, lows, highs, counter=None):
        lo, hi = normalize_query_arrays(lows, highs, self.shape)
        return [self.cube[tuple(map(slice, low, high + 1))].sum()
                for low, high in zip(lo, hi)]

    def memory_cells(self):
        return 0

    def state_dict(self):
        return {}

    @classmethod
    def from_state(cls, state, backend=None):
        return cls(state["cube"])

    @property
    def max_cells(self):
        # Properties are not entry points.
        return self.cube.size


class UnregisteredHelper:
    """Not registered: the rule must ignore it entirely."""

    def query(self, box):
        return box
