"""Seeded ``registry-contract`` violations (must-flag fixture)."""

from repro._util import check_query_box
from repro.index.protocol import RangeSumIndexMixin
from repro.index.registry import FuzzProfile, register_index


# VIOLATION: persistable (default True) but no state_dict/from_state,
# FuzzProfile.supports_updates (default True) but no apply_updates.
@register_index(
    "fixture_hollow_sum",
    kind="sum",
    fuzz_profile=FuzzProfile(dtypes=("int64",)),
)
class HollowSum(RangeSumIndexMixin):
    def __init__(self, cube):
        self.shape = cube.shape

    def range_sum(self, box, counter=None):
        check_query_box(box, self.shape)
        return 0

    def memory_cells(self):
        return 0


# VIOLATION: no mixin, missing most of the protocol surface.
@register_index("fixture_bare_max", kind="max", persistable=False)
class BareMax:
    def __init__(self, cube):
        self.shape = cube.shape

    def query(self, box, counter=None):
        check_query_box(box, self.shape, allow_empty=False)
        return None
