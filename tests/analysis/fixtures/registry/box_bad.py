"""Seeded ``box-validation`` violations (must-flag fixture)."""

from repro.index.protocol import RangeSumIndexMixin
from repro.index.registry import register_index


@register_index("fixture_unvalidated_sum", kind="sum", persistable=False)
class UnvalidatedSum(RangeSumIndexMixin):
    def __init__(self, cube):
        self.cube = cube
        self.shape = cube.shape

    def range_sum(self, box, counter=None):  # VIOLATION: no validation
        return self.cube[box.slices()].sum()

    def max_value(self, box):  # VIOLATION: no validation
        return self.cube[box.slices()].max()

    def memory_cells(self):
        return 0

    def state_dict(self):
        return {}

    @classmethod
    def from_state(cls, state, backend=None):
        return cls(state["cube"])
