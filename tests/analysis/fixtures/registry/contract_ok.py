"""Compliant registrations (must-not-flag fixture)."""

from repro._util import check_query_box
from repro.index.protocol import RangeSumIndexMixin
from repro.index.registry import FuzzProfile, register_index


@register_index(
    "fixture_complete_sum",
    kind="sum",
    fuzz_profile=FuzzProfile(dtypes=("int64",)),
)
class CompleteSum(RangeSumIndexMixin):
    def __init__(self, cube):
        self.shape = cube.shape

    def range_sum(self, box, counter=None):
        check_query_box(box, self.shape)
        return 0

    def apply_updates(self, updates):
        return len(updates)

    def memory_cells(self):
        return 0

    def state_dict(self):
        return {}

    @classmethod
    def from_state(cls, state, backend=None):
        return cls(state["cube"])


@register_index(
    "fixture_readonly_sum",
    kind="sum",
    persistable=False,
    fuzz_profile=FuzzProfile(dtypes=("int64",), supports_updates=False),
)
class ReadOnlySum(RangeSumIndexMixin):
    """supports_updates=False: the abstract apply_updates default is the
    declared behaviour, and persistable=False waives persistence."""

    def __init__(self, cube):
        self.shape = cube.shape

    def range_sum(self, box, counter=None):
        check_query_box(box, self.shape)
        return 0

    def memory_cells(self):
        return 0


class LocalBase:
    def state_dict(self):
        return {}

    @classmethod
    def from_state(cls, state, backend=None):
        return cls(state["cube"])


@register_index("fixture_inherited_sum", kind="sum")
class InheritedSum(LocalBase, RangeSumIndexMixin):
    """Persistence satisfied through a same-module base class."""

    def __init__(self, cube):
        self.shape = cube.shape

    def range_sum(self, box, counter=None):
        check_query_box(box, self.shape)
        return 0

    def memory_cells(self):
        return 0
