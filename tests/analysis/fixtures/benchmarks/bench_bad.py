"""Seeded ``determinism`` violation under a benchmarks/ path."""

import numpy as np


def make_workload(shape):
    return np.random.standard_normal(shape)  # VIOLATION: global stream
