"""Seeded ``dtype-safety`` violations (must-flag fixture).

Never imported; linted by path so the ``repro/core`` scope applies.
"""

import numpy as np


def build_prefix(cube):
    prefix = np.zeros(cube.shape)  # VIOLATION: no dtype
    running = np.cumsum(cube, axis=0)  # VIOLATION: no dtype
    return prefix, running


def contract(cube, edges):
    return np.add.reduceat(cube, edges, axis=0)  # VIOLATION: no dtype


def combine(values):
    return np.add.reduce(values, axis=1)  # VIOLATION: no dtype


def suppressed(cube):
    return np.cumsum(cube, axis=0)  # cubelint: allow[dtype-safety]
