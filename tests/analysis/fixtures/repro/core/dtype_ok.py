"""Compliant dtype usage (must-not-flag fixture)."""

import numpy as np


def build_prefix(cube, operator):
    target = operator.accumulation_dtype(cube.dtype)
    prefix = np.zeros(cube.shape, dtype=target)
    prefix[...] = np.cumsum(cube, axis=0, dtype=target)
    return prefix


def contract(cube, edges, operator):
    target = operator.accumulation_dtype(cube.dtype)
    return operator.apply.reduceat(cube, edges, axis=0, dtype=target)


def sweep_inplace(prefix, operator):
    # dtype implied by the output array.
    operator.apply.accumulate(prefix, axis=0, out=prefix)
    return prefix


def polymorphic_sweep(arr, operator):
    # ``operator.accumulate`` is the dtype-polymorphic wrapper the rule
    # deliberately does not match: callers pre-promote their arrays.
    return operator.accumulate(arr, 0)


def positional_dtype(shape):
    return np.zeros(shape, np.int64)
