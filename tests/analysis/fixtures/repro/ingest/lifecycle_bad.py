"""Seeded backend-lifecycle violations (fixture; never imported).

Each function reproduces one shape of the PR 9 review bugs: leaking an
acquired scope on an exception path, releasing a conditionally-owned
root without its ownership guard, and releasing a caller-provided
backend outright.
"""


def leaks_on_exception(plan, batches, consume, result):
    root = plan.make_backend()
    scope = root.subscope("cuboids")
    try:
        consume(batches, scope)
    except BaseException:
        # Neither root nor scope is released before the re-raise: both
        # acquisitions leak their spill files on the abort path.
        raise
    return result(root, scope)


def releases_callers_root(plan, backend, build):
    root = plan.make_backend() if backend is None else backend
    try:
        build(root)
    except BaseException:
        # Unguarded release of a maybe-owned binding: when the caller
        # passed ``backend``, this unlinks sibling builds' live arrays.
        root.release()
        raise
    return root


def releases_parameter(backend):
    backend.release()
    return None


def leaks_to_fall_through(plan):
    scope = plan.make_backend()
    scope.empty("cells", (4, 4), "f8")
