"""Compliant backend lifecycles (fixture; never imported).

Mirrors the real ``repro.ingest`` / ``repro.serving`` idioms the
``backend-lifecycle`` rule must not flag: handler-path release plus
transfer-by-return, the ``owns_root`` guard, identity-test guards,
attribute-store acquisition, and container-store transfer.
"""


def releases_then_transfers(plan, build):
    scope = plan.make_backend()
    try:
        build(scope)
    except BaseException:
        scope.release()
        raise
    return scope


def guarded_conditional_owner(plan, backend, build, result):
    owns_root = backend is None
    root = plan.make_backend() if backend is None else backend
    scope = root.subscope("cuboids")
    try:
        build(root, scope)
    except BaseException:
        scope.release()
        if owns_root:
            root.release()
        raise
    return result(root, scope)


def identity_guarded_release(maker, run):
    backend = None
    if maker is not None:
        backend = maker.make_backend()
    try:
        run(backend)
    except BaseException:
        if backend is not None:
            backend.release()
        raise
    return backend


class Holder:
    """Attribute-target acquisitions transfer ownership at birth."""

    def __init__(self, plan):
        self.backend = plan.make_backend()
        self.scope = self.backend.subscope("cells")


def transfers_via_store(plan, registry):
    scope = plan.make_backend()
    registry["scope"] = scope
