"""Seeded task-tracking violations (fixture; never imported)."""

import asyncio


class Spawner:
    def fire_and_forget(self):
        asyncio.create_task(self._loop())

    def unused_local(self, coro):
        task = asyncio.create_task(coro)
        self.spawned += 1


async def detached(coro, loop):
    loop.create_task(coro)
