"""Compliant create_task usage (fixture; never imported)."""

import asyncio


class Spawner:
    def retained_attribute(self):
        self._task = asyncio.create_task(self._loop())

    def tracked_local(self, coro):
        task = asyncio.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def awaited(self, coro):
        return await asyncio.create_task(coro)

    async def grouped(self, coros):
        async with asyncio.TaskGroup() as tg:
            for coro in coros:
                tg.create_task(coro)

    def appended(self, coro, tasks):
        tasks.append(asyncio.create_task(coro))
        return tasks

    def stored_in_map(self, key, coro, loop):
        self.timers[key] = loop.create_task(coro)
