"""Seeded async-blocking violations (fixture; never imported)."""

import time

import numpy as np


class Service:
    async def answer(self, box):
        time.sleep(0.1)
        values = np.take(self.base, box)
        np.add.at(self.base, box, 1)
        fut = self.pool.submit(self.work)
        return fut.result(), values

    async def aggregate(self, lows, highs):
        return np.sum(self.base[lows:highs])


async def reads_config(path):
    with open(path) as fh:
        return fh.read()


async def writes_snapshot(path, payload):
    path.write_text(payload)
