"""Seeded lock-discipline violations (fixture; never imported)."""


class Service:
    async def unlocked_read(self, cube, box):
        return self.router.run_scalar(cube, "sum", box)

    async def unlocked_apply(self, cube, updates):
        cube.engine.apply_updates(updates)

    async def invalidates_outside(self, cube, updates):
        async with cube.rwlock.write_locked():
            cube.engine.apply_updates(updates)
            cube.generation += 1
        self.cache.invalidate_cube(cube.name)

    async def late_bump(self, cube):
        cube.generation += 1

    async def forgets_bump(self, cube, updates):
        async with cube.rwlock.write_locked():
            cube.engine.apply_updates(updates)
