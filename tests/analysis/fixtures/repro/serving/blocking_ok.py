"""Compliant serving coroutines (fixture; never imported).

Blocking work offloaded through ``run_in_executor`` lambdas or nested
helpers is allowed by construction — the rule does not descend into
them — and cheap shape arithmetic is not a gather.
"""

import asyncio

import numpy as np


class Service:
    async def answer(self, box):
        await asyncio.sleep(0.01)
        loop = asyncio.get_running_loop()
        values = await loop.run_in_executor(
            None, lambda: np.take(self.base, box)
        )
        cells = int(np.prod(self.shape))
        return values, cells

    async def offloaded_helper(self, box):
        def gather():
            np.add.at(self.base, box, 1)
            return np.sum(self.base)

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, gather)

    def sync_gather(self, box):
        return np.take(self.base, box)
