"""Compliant lock usage (fixture; never imported).

Exercises every protection the rule recognizes: lexical read/write
blocks, the guard-helper pattern (a lambda handed to a callee that only
invokes it under the read lock), and the nested-closure pattern (a
``def run()`` whose only call site sits inside the write block) — the
two interprocedural shapes ``ServingService`` uses in production.
"""


class Service:
    async def lexical_read(self, cube, box):
        async with cube.rwlock.read_locked():
            return self.router.run_batch(cube, "sum", box)

    async def guarded_read(self, cube, box):
        return await self._run_read(
            cube, lambda: self.router.run_scalar(cube, "sum", box)
        )

    async def _run_read(self, cube, fn):
        async with cube.rwlock.read_locked():
            return fn()

    async def apply(self, cube, updates):
        def run():
            cube.engine.apply_updates(updates)

        async with cube.rwlock.write_locked():
            run()
            cube.generation += 1
            self.cache.invalidate_cube(cube.name)
