"""Seeded ``determinism`` violations under a repro/kernels path."""

from concurrent.futures import ThreadPoolExecutor, ProcessPoolExecutor

import numpy as np


def run_shards(shards):
    pool = ThreadPoolExecutor()  # VIOLATION: unpinned worker count
    return list(pool.map(sum, shards))


def run_processes(shards):
    with ProcessPoolExecutor() as pool:  # VIOLATION: unpinned
        return list(pool.map(sum, shards))


def sample():
    return np.random.default_rng()  # VIOLATION: entropy-seeded
