"""Pinned pools and seeded generators pass the ``determinism`` rule."""

import concurrent.futures
from concurrent.futures import ThreadPoolExecutor

import numpy as np


def run_shards(shards, workers):
    pool = ThreadPoolExecutor(max_workers=workers)
    return list(pool.map(sum, shards))


def run_positional(shards):
    with concurrent.futures.ThreadPoolExecutor(4) as pool:
        return list(pool.map(sum, shards))


def sample():
    return np.random.default_rng(1997)
