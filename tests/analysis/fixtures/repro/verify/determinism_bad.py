"""Seeded ``determinism`` violations (must-flag fixture)."""

import random

import numpy as np


def draw_global():
    return np.random.rand(3)  # VIOLATION: global numpy stream


def shuffle_global(items):
    np.random.shuffle(items)  # VIOLATION: global numpy stream
    return items


def entropy_seeded():
    return np.random.default_rng()  # VIOLATION: no seed


def stdlib_draw():
    return random.randint(0, 10)  # VIOLATION: stdlib global stream


def stdlib_unseeded_instance():
    return random.Random()  # VIOLATION: no seed
