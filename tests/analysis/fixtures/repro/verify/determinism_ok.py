"""Compliant, replayable randomness (must-not-flag fixture)."""

import random

import numpy as np


def seeded_generator(seed):
    return np.random.default_rng(seed)


def keyword_seeded():
    return np.random.default_rng(seed=20260806)


def derived_streams(seed):
    sequence = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(s)) for s in sequence.spawn(4)]


def seeded_stdlib_instance(seed):
    return random.Random(seed)


def draw(rng):
    return rng.integers(0, 10)
