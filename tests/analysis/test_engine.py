"""Engine behavior: suppressions, scoping, syntax errors, file discovery."""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import (
    LintContext,
    LintReport,
    Rule,
    Violation,
    iter_python_files,
    lint_source,
    run_paths,
    suppressed_rules_by_line,
)


class FlagEveryCall(Rule):
    """Test rule: one violation per function call."""

    rule_id = "flag-call"
    description = "flags every call expression"

    def check(self, context: LintContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                yield self.violation(context, node, "call found")


class TestSuppressions:
    def test_same_line_directive(self):
        source = "f()  # cubelint: allow[flag-call]\ng()\n"
        report = lint_source("x.py", source, [FlagEveryCall()])
        assert [v.line for v in report.violations] == [2]
        assert report.suppressed == 1

    def test_preceding_comment_line_directive(self):
        source = "# cubelint: allow[flag-call]\nf()\ng()\n"
        report = lint_source("x.py", source, [FlagEveryCall()])
        assert [v.line for v in report.violations] == [3]
        assert report.suppressed == 1

    def test_preceding_code_line_does_not_suppress(self):
        source = "x = 1  # cubelint: allow[flag-call]\nf()\n"
        report = lint_source("x.py", source, [FlagEveryCall()])
        assert [v.line for v in report.violations] == [2]
        assert report.suppressed == 0

    def test_wrong_rule_id_does_not_suppress(self):
        source = "f()  # cubelint: allow[other-rule]\n"
        report = lint_source("x.py", source, [FlagEveryCall()])
        assert len(report.violations) == 1
        assert report.suppressed == 0

    def test_comma_separated_ids(self):
        source = "f()  # cubelint: allow[other-rule, flag-call]\n"
        report = lint_source("x.py", source, [FlagEveryCall()])
        assert report.violations == []
        assert report.suppressed == 1

    def test_directive_inside_string_is_ignored(self):
        source = 's = "cubelint: allow[flag-call]"\nf()\n'
        assert suppressed_rules_by_line(source) == {}
        report = lint_source("x.py", source, [FlagEveryCall()])
        assert len(report.violations) == 1

    def test_suppression_inside_decorated_async_def(self):
        source = (
            "@decorate(arg)\n"
            "async def handler():\n"
            "    f()  # cubelint: allow[flag-call]\n"
            "    g()\n"
        )
        report = lint_source("x.py", source, [FlagEveryCall()])
        # decorate(arg) on line 1 and g() on line 4 still flag.
        assert [v.line for v in report.violations] == [1, 4]
        assert report.suppressed == 1

    def test_suppression_inside_nested_async_def(self):
        source = (
            "async def outer():\n"
            "    async def inner():\n"
            "        # cubelint: allow[flag-call]\n"
            "        f()\n"
            "    g()\n"
        )
        report = lint_source("x.py", source, [FlagEveryCall()])
        assert [v.line for v in report.violations] == [5]
        assert report.suppressed == 1

    def test_suppression_on_multiline_statement_anchor_line(self):
        """The directive lands on the statement's *first* line — where
        the violation anchors — even when the call spans several."""
        source = (
            "f(  # cubelint: allow[flag-call]\n"
            "    1,\n"
            "    2,\n"
            ")\n"
        )
        report = lint_source("x.py", source, [FlagEveryCall()])
        assert report.violations == []
        assert report.suppressed == 1

    def test_directive_on_multiline_continuation_does_not_suppress(self):
        source = "f(\n    1,  # cubelint: allow[flag-call]\n)\n"
        report = lint_source("x.py", source, [FlagEveryCall()])
        assert len(report.violations) == 1
        assert report.suppressed == 0


class TestScopeAndErrors:
    def test_scoped_rule_skips_out_of_scope_files(self):
        class Scoped(FlagEveryCall):
            scope = ("repro/core",)

        in_scope = lint_source("src/repro/core/a.py", "f()\n", [Scoped()])
        out_of_scope = lint_source("src/repro/query/a.py", "f()\n", [Scoped()])
        assert len(in_scope.violations) == 1
        assert out_of_scope.violations == []

    def test_syntax_error_becomes_violation(self):
        report = lint_source("bad.py", "def broken(:\n", [FlagEveryCall()])
        assert len(report.violations) == 1
        assert report.violations[0].rule_id == "syntax-error"
        assert "cannot parse" in report.violations[0].message

    def test_violation_format(self):
        violation = Violation(
            path="a.py", line=3, col=5, rule_id="demo", message="msg"
        )
        assert violation.format() == "a.py:3:5: [demo] msg"
        assert violation.as_json() == {
            "path": "a.py",
            "line": 3,
            "col": 5,
            "rule": "demo",
            "message": "msg",
            "fingerprint": "",
        }


class TestFileRunner:
    def test_iter_python_files_expands_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("f()\n")
        (tmp_path / "pkg" / "a.py").write_text("g()\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        found = list(iter_python_files([tmp_path]))
        assert [p.name for p in found] == ["a.py", "b.py"]

    def test_run_paths_merges_reports(self, tmp_path):
        (tmp_path / "a.py").write_text("f()\n")
        (tmp_path / "b.py").write_text("g()  # cubelint: allow[flag-call]\n")
        report = run_paths([tmp_path], [FlagEveryCall()])
        assert report.files == 2
        assert len(report.violations) == 1
        assert report.suppressed == 1

    def test_report_extend(self):
        total = LintReport()
        total.extend(LintReport(violations=[], suppressed=2, files=1))
        assert total.files == 1
        assert total.suppressed == 2
