"""Baseline round-trip, context-hash keys, legacy migration."""

from __future__ import annotations

import json

from repro.analysis.baseline import (
    baseline_key,
    legacy_baseline_key,
    load_baseline,
    partition_baseline,
    write_baseline,
)
from repro.analysis.engine import Violation, lint_source


def _violation(path="a.py", line=3, rule="dtype-safety", fingerprint=""):
    return Violation(
        path=path,
        line=line,
        col=1,
        rule_id=rule,
        message="m",
        fingerprint=fingerprint,
    )


def test_key_uses_context_hash_when_available():
    v = _violation(fingerprint="deadbeef00112233")
    assert baseline_key(v) == "a.py:dtype-safety:hdeadbeef00112233"


def test_key_falls_back_to_line_without_fingerprint():
    assert baseline_key(_violation()) == "a.py:dtype-safety:3"
    assert legacy_baseline_key(_violation()) == "a.py:dtype-safety:3"


def test_missing_file_is_empty_baseline(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == set()


def test_write_then_load_round_trip(tmp_path):
    target = tmp_path / "cubelint.baseline.json"
    count = write_baseline(
        target,
        [
            _violation(fingerprint="aa" * 8),
            _violation(line=9, fingerprint="bb" * 8),
        ],
    )
    assert count == 2
    payload = json.loads(target.read_text())
    assert payload["version"] == 2
    assert payload["entries"] == [
        "a.py:dtype-safety:h" + "aa" * 8,
        "a.py:dtype-safety:h" + "bb" * 8,
    ]
    assert load_baseline(target) == set(payload["entries"])


def test_write_deduplicates_keys(tmp_path):
    target = tmp_path / "b.json"
    fp = "cc" * 8
    assert (
        write_baseline(
            target,
            [_violation(fingerprint=fp), _violation(line=9, fingerprint=fp)],
        )
        == 1
    )


def test_partition_splits_new_from_grandfathered():
    old = _violation(fingerprint="aa" * 8)
    fresh = _violation(line=7, fingerprint="bb" * 8)
    new, grandfathered = partition_baseline([old, fresh], {baseline_key(old)})
    assert new == [fresh]
    assert grandfathered == [old]


def test_legacy_line_keys_still_grandfather():
    """A baseline written before the key-format change keeps working."""
    v = _violation(line=3, fingerprint="aa" * 8)
    new, grandfathered = partition_baseline([v], {"a.py:dtype-safety:3"})
    assert new == []
    assert grandfathered == [v]


def test_write_baseline_migrates_legacy_entries(tmp_path):
    """--write-baseline re-records line-keyed findings under hashes."""
    target = tmp_path / "cubelint.baseline.json"
    target.write_text(
        json.dumps({"version": 1, "entries": ["a.py:dtype-safety:3"]})
    )
    v = _violation(line=3, fingerprint="aa" * 8)
    # The old file grandfathers it...
    new, grandfathered = partition_baseline([v], load_baseline(target))
    assert grandfathered == [v]
    # ...and regeneration emits only new-format keys.
    write_baseline(target, [v])
    payload = json.loads(target.read_text())
    assert payload["version"] == 2
    assert payload["entries"] == ["a.py:dtype-safety:h" + "aa" * 8]


def _lint(source: str):
    from tests.analysis.test_engine import FlagEveryCall

    return lint_source("x.py", source, [FlagEveryCall()])


def test_fingerprint_survives_line_shift():
    """Inserting code above a finding must not change its baseline key."""
    before = _lint("f(1, 2)\n").violations[0]
    after = _lint("# a new comment\n\nx = 0\nf(1, 2)\n").violations[0]
    assert before.line != after.line
    assert before.fingerprint == after.fingerprint
    assert baseline_key(before) == baseline_key(after)


def test_fingerprint_changes_when_statement_edited():
    """Editing a grandfathered statement resurfaces it for review."""
    before = _lint("f(1, 2)\n").violations[0]
    after = _lint("f(1, 3)\n").violations[0]
    assert before.fingerprint != after.fingerprint


def test_fingerprint_spans_multiline_statement():
    """The hash covers the whole statement, stripped per line."""
    compact = _lint("f(1,\n2)\n").violations[0]
    shifted = _lint("pass\nf(1,\n    2)\n").violations[0]
    assert compact.fingerprint == shifted.fingerprint
