"""Baseline round-trip, key stability, and partitioning."""

from __future__ import annotations

import json

from repro.analysis.baseline import (
    baseline_key,
    load_baseline,
    partition_baseline,
    write_baseline,
)
from repro.analysis.engine import Violation


def _violation(path="a.py", line=3, rule="dtype-safety"):
    return Violation(path=path, line=line, col=1, rule_id=rule, message="m")


def test_key_includes_path_rule_and_line():
    assert baseline_key(_violation()) == "a.py:dtype-safety:3"


def test_missing_file_is_empty_baseline(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == set()


def test_write_then_load_round_trip(tmp_path):
    target = tmp_path / "cubelint.baseline.json"
    count = write_baseline(target, [_violation(), _violation(line=9)])
    assert count == 2
    payload = json.loads(target.read_text())
    assert payload["version"] == 1
    assert payload["entries"] == ["a.py:dtype-safety:3", "a.py:dtype-safety:9"]
    assert load_baseline(target) == set(payload["entries"])


def test_write_deduplicates_keys(tmp_path):
    target = tmp_path / "b.json"
    assert write_baseline(target, [_violation(), _violation()]) == 1


def test_partition_splits_new_from_grandfathered():
    old = _violation(line=3)
    fresh = _violation(line=7)
    new, grandfathered = partition_baseline(
        [old, fresh], {baseline_key(old)}
    )
    assert new == [fresh]
    assert grandfathered == [old]


def test_moved_violation_counts_as_new():
    moved = _violation(line=4)
    new, grandfathered = partition_baseline([moved], {"a.py:dtype-safety:3"})
    assert new == [moved]
    assert grandfathered == []
