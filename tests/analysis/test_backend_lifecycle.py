"""backend-lifecycle: fixtures plus revert coverage of the PR 9 fixes."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import lint_source
from repro.analysis.rules.backend_lifecycle import BackendLifecycleRule

from tests.analysis.conftest import lint_fixture, rule_lines

REPO_ROOT = Path(__file__).resolve().parents[2]
RULE_ID = BackendLifecycleRule.rule_id


def test_bad_fixture_flags_every_seeded_shape():
    report = lint_fixture("repro/ingest/lifecycle_bad.py", BackendLifecycleRule())
    # 11/12: root and scope both leak on the handler re-raise; 29: the
    # unguarded maybe-owned release; 35: direct parameter release; 40:
    # fall-through leak.
    assert rule_lines(report, RULE_ID) == [11, 12, 29, 35, 40]


def test_ok_fixture_is_clean():
    report = lint_fixture("repro/ingest/lifecycle_ok.py", BackendLifecycleRule())
    assert report.violations == []


def test_exit_kind_named_in_message():
    report = lint_fixture("repro/ingest/lifecycle_bad.py", BackendLifecycleRule())
    messages = {v.line: v.message for v in report.violations}
    assert "exception re-raise path" in messages[11]
    assert "conditionally owned" in messages[29]
    assert "caller-provided" in messages[35]


class TestRevertCoverage:
    """The rule must fail if the PR 9 review fixes were reverted.

    Each test textually re-introduces one shipped bug into a copy of the
    real source and asserts the rule catches it — the ISSUE's acceptance
    criterion that the analyzer covers the bug class, not just fixtures.
    """

    def _lint(self, relative: str, source: str):
        return lint_source(relative, source, [BackendLifecycleRule()])

    def test_real_ingest_build_is_clean(self):
        path = REPO_ROOT / "src/repro/ingest/build.py"
        report = self._lint("src/repro/ingest/build.py", path.read_text())
        assert [v for v in report.violations if v.rule_id == RULE_ID] == []

    def test_unguarding_ingest_root_release_fails(self):
        """Revert: release a caller-provided root on the abort path."""
        path = REPO_ROOT / "src/repro/ingest/build.py"
        original = path.read_text()
        buggy = original.replace(
            "        if owns_root:\n            root.release()\n",
            "        root.release()\n",
        )
        assert buggy != original, "expected the owns_root guard in build.py"
        report = self._lint("src/repro/ingest/build.py", buggy)
        flagged = [v for v in report.violations if v.rule_id == RULE_ID]
        assert flagged, "reverting the owns_root guard must trip the rule"
        assert any("conditionally owned" in v.message for v in flagged)

    def test_real_adaptive_is_clean(self):
        path = REPO_ROOT / "src/repro/serving/adaptive.py"
        report = self._lint("src/repro/serving/adaptive.py", path.read_text())
        assert [v for v in report.violations if v.rule_id == RULE_ID] == []

    def test_removing_adaptive_subscope_release_fails(self):
        """Revert: leak the rebuild subscope when the build aborts."""
        path = REPO_ROOT / "src/repro/serving/adaptive.py"
        original = path.read_text()
        buggy = original.replace(
            "            if build_backend is not None:\n"
            "                build_backend.release()\n",
            "",
        )
        assert buggy != original, "expected the abort-path release in adaptive.py"
        report = self._lint("src/repro/serving/adaptive.py", buggy)
        flagged = [v for v in report.violations if v.rule_id == RULE_ID]
        assert flagged, "removing the abort-path release must trip the rule"
        assert any("re-raise path" in v.message for v in flagged)
