"""async-blocking: event-loop stalls in serving coroutines."""

from __future__ import annotations

from repro.analysis.rules.async_blocking import AsyncBlockingRule

from tests.analysis.conftest import lint_fixture, rule_lines

RULE_ID = AsyncBlockingRule.rule_id


def test_bad_fixture_flags_every_blocking_call():
    report = lint_fixture("repro/serving/blocking_bad.py", AsyncBlockingRule())
    # 10: time.sleep, 11: np.take gather, 12: np.add.at scatter,
    # 14: fut.result(), 17: np.sum gather, 21: open(), 26: write_text.
    assert rule_lines(report, RULE_ID) == [10, 11, 12, 14, 17, 21, 26]


def test_ok_fixture_is_clean():
    """Offloaded lambdas/nested helpers and shape arithmetic pass."""
    report = lint_fixture("repro/serving/blocking_ok.py", AsyncBlockingRule())
    assert report.violations == []


def test_out_of_scope_layer_is_ignored():
    """The same gathers are fine below the serving layer — kernels are
    *supposed* to be synchronous numpy."""
    rule = AsyncBlockingRule()
    assert not rule.applies_to("src/repro/kernels/dense.py")
    assert rule.applies_to("src/repro/serving/service.py")
