"""The ``dtype-safety`` rule: flag dtype-inferring hot-path numpy calls."""

from __future__ import annotations

from repro.analysis.engine import lint_source
from repro.analysis.rules import DtypeSafetyRule

from tests.analysis.conftest import lint_fixture


def test_flags_every_seeded_violation():
    report = lint_fixture("repro/core/dtype_bad.py", DtypeSafetyRule())
    assert len(report.violations) == 4
    assert {v.rule_id for v in report.violations} == {"dtype-safety"}
    messages = " ".join(v.message for v in report.violations)
    assert "accumulation_dtype" in messages


def test_suppression_comment_is_honoured():
    report = lint_fixture("repro/core/dtype_bad.py", DtypeSafetyRule())
    assert report.suppressed == 1


def test_compliant_fixture_is_clean():
    report = lint_fixture("repro/core/dtype_ok.py", DtypeSafetyRule())
    assert report.violations == []


def test_scope_excludes_other_layers():
    rule = DtypeSafetyRule()
    assert rule.applies_to("src/repro/core/prefix_sum.py")
    assert rule.applies_to("src/repro/sparse/sparse_sum.py")
    assert rule.applies_to("src/repro/query/batch.py")
    assert not rule.applies_to("src/repro/verify/driver.py")
    assert not rule.applies_to("benchmarks/bench_operators.py")


def test_numpy_alias_tracking():
    source = (
        "import numpy\n"
        "import numpy as xp\n"
        "a = numpy.zeros((3,))\n"
        "b = xp.empty((3,))\n"
    )
    report = lint_source("repro/core/x.py", source, [DtypeSafetyRule()])
    assert len(report.violations) == 2


def test_non_numpy_names_are_ignored():
    source = (
        "import functools\n"
        "def fold(items):\n"
        "    return functools.reduce(lambda a, b: a + b, items)\n"
    )
    report = lint_source("repro/core/x.py", source, [DtypeSafetyRule()])
    assert report.violations == []
