"""lock-discipline: rwlock sides for tier reads/mutations, bump coverage."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import lint_source
from repro.analysis.rules.lock_discipline import LockDisciplineRule

from tests.analysis.conftest import lint_fixture, rule_lines

REPO_ROOT = Path(__file__).resolve().parents[2]
RULE_ID = LockDisciplineRule.rule_id


def test_bad_fixture_flags_every_seeded_shape():
    report = lint_fixture("repro/serving/lock_bad.py", LockDisciplineRule())
    # 6: unlocked run_scalar; 9: unlocked apply_updates; 15: cache
    # invalidation after the write block; 18: generation bump with no
    # lock anywhere; 21: write block that applies but never bumps.
    assert rule_lines(report, RULE_ID) == [6, 9, 15, 18, 21]


def test_ok_fixture_is_clean():
    """Lexical blocks, the guard-helper lambda pattern, and the
    nested-closure-called-under-lock pattern all pass."""
    report = lint_fixture("repro/serving/lock_ok.py", LockDisciplineRule())
    assert report.violations == []


class TestRevertCoverage:
    """Removing the rwlock read guard from the real service must fail."""

    def _lint(self, source: str):
        return lint_source(
            "src/repro/serving/service.py", source, [LockDisciplineRule()]
        )

    def test_real_service_is_clean(self):
        source = (REPO_ROOT / "src/repro/serving/service.py").read_text()
        report = self._lint(source)
        assert [v for v in report.violations if v.rule_id == RULE_ID] == []

    def test_removing_read_guard_fails(self):
        """Revert: run tier computations without the read lock."""
        source = (REPO_ROOT / "src/repro/serving/service.py").read_text()
        buggy = source.replace(
            "        async with cube.rwlock.read_locked():\n"
            "            return await self._run(fn, work)\n",
            "        return await self._run(fn, work)\n",
        )
        assert buggy != source, "expected the read guard in _run_read"
        report = self._lint(buggy)
        flagged = [v for v in report.violations if v.rule_id == RULE_ID]
        assert flagged, "dropping _run_read's lock must trip the rule"
        assert any("read side" in v.message for v in flagged)

    def test_moving_bump_outside_write_lock_fails(self):
        """Revert: the PR 9-class bug this PR fixed in _apply_update —
        bump generation and invalidate after the write lock drops."""
        source = (REPO_ROOT / "src/repro/serving/service.py").read_text()
        buggy = source.replace(
            "            cube.generation += 1\n"
            "            cube.updates_applied += len(updates)\n"
            "            self.cache.invalidate_cube(cube.name)\n",
            "        cube.generation += 1\n"
            "        cube.updates_applied += len(updates)\n"
            "        self.cache.invalidate_cube(cube.name)\n",
        )
        assert buggy != source, "expected the in-lock bump in _apply_update"
        report = self._lint(buggy)
        flagged = [v for v in report.violations if v.rule_id == RULE_ID]
        assert flagged, "an out-of-lock generation bump must trip the rule"
