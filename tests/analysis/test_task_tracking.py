"""task-tracking: create_task handles must be retained or awaited."""

from __future__ import annotations

from repro.analysis.rules.task_tracking import TaskTrackingRule

from tests.analysis.conftest import lint_fixture, rule_lines

RULE_ID = TaskTrackingRule.rule_id


def test_bad_fixture_flags_dropped_handles():
    report = lint_fixture("repro/serving/tasks_bad.py", TaskTrackingRule())
    # 8: bare expression; 11: local never read again; 16: bare expression
    # on a loop-bound create_task.
    assert rule_lines(report, RULE_ID) == [8, 11, 16]


def test_ok_fixture_is_clean():
    """Attribute stores, tracked locals, awaits, TaskGroup children,
    and container stores all retain the handle."""
    report = lint_fixture("repro/serving/tasks_ok.py", TaskTrackingRule())
    assert report.violations == []
