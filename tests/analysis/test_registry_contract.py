"""The ``registry-contract`` rule: registrations match implementations."""

from __future__ import annotations

from repro.analysis.rules import RegistryContractRule
from repro.analysis.rules.registry_contract import protocol_surface

from tests.analysis.conftest import lint_fixture


def test_protocol_surface_extraction():
    tables = protocol_surface()
    assert set(tables["RangeSumIndex"]) == {
        "query",
        "query_many",
        "apply_updates",
        "memory_cells",
        "describe",
    }
    # Mixin methods are concrete; _IndexBase placeholders are not.
    assert tables["RangeSumIndexMixin"]["query"]
    assert tables["RangeSumIndexMixin"]["describe"]
    assert not tables["RangeSumIndexMixin"]["apply_updates"]
    assert not tables["RangeSumIndexMixin"]["state_dict"]


def test_flags_missing_capabilities():
    report = lint_fixture("registry/contract_bad.py", RegistryContractRule())
    by_message = {v.message for v in report.violations}
    hollow = next(m for m in by_message if "HollowSum" in m)
    assert "apply_updates" in hollow
    assert "state_dict" in hollow
    assert "from_state" in hollow
    bare = next(m for m in by_message if "BareMax" in m)
    assert "memory_cells" in bare
    assert "query_many" in bare
    assert "describe" in bare


def test_compliant_registrations_pass():
    report = lint_fixture("registry/contract_ok.py", RegistryContractRule())
    assert report.violations == []
