"""The ``python -m repro.analysis`` CLI: exit codes, formats, baseline flow."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.__main__ import main

from tests.analysis.conftest import FIXTURES

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def in_tmp_cwd(tmp_path, monkeypatch):
    """Run the CLI from an empty cwd so no repo baseline is picked up."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_clean_tree_exits_zero(in_tmp_cwd, capsys):
    code = main([str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")])
    out = capsys.readouterr().out
    assert code == 0
    assert "cubelint: 0 violation(s)" in out


def test_seeded_fixtures_fail_with_locations(in_tmp_cwd, capsys):
    code = main([str(FIXTURES)])
    out = capsys.readouterr().out
    assert code == 1
    # Every rule id shows up, each with a file:line:col anchor.
    for rule_id in (
        "dtype-safety",
        "box-validation",
        "registry-contract",
        "memmap-flush",
        "determinism",
    ):
        assert f"[{rule_id}]" in out
    assert "dtype_bad.py:10:" in out


def test_json_format_payload(in_tmp_cwd, capsys):
    code = main([str(FIXTURES), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["counts"]["violations"] == len(payload["violations"])
    assert payload["counts"]["violations"] > 0
    assert payload["counts"]["suppressed"] >= 1
    sample = payload["violations"][0]
    assert set(sample) == {"path", "line", "col", "rule", "message"}
    rules_seen = {v["rule"] for v in payload["violations"]}
    assert "dtype-safety" in rules_seen
    assert "determinism" in rules_seen


def test_select_restricts_rules(in_tmp_cwd, capsys):
    code = main([str(FIXTURES), "--select", "determinism", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert {v["rule"] for v in payload["violations"]} == {"determinism"}


def test_unknown_rule_id_is_usage_error(in_tmp_cwd, capsys):
    code = main([str(FIXTURES), "--select", "no-such-rule"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown rule id" in err


def test_write_baseline_then_rerun_passes(in_tmp_cwd, capsys):
    baseline = in_tmp_cwd / "cubelint.baseline.json"
    code = main([str(FIXTURES), "--write-baseline", "--baseline", str(baseline)])
    assert code == 0
    assert baseline.exists()
    capsys.readouterr()

    code = main([str(FIXTURES), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "baselined" in out


def test_default_baseline_in_cwd_is_picked_up(in_tmp_cwd, capsys):
    assert main([str(FIXTURES), "--write-baseline"]) == 0
    assert (in_tmp_cwd / "cubelint.baseline.json").exists()
    capsys.readouterr()
    assert main([str(FIXTURES)]) == 0


def test_list_rules(in_tmp_cwd, capsys):
    code = main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in (
        "dtype-safety",
        "box-validation",
        "registry-contract",
        "memmap-flush",
        "determinism",
    ):
        assert rule_id in out


def test_module_entry_point_subprocess(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(FIXTURES)],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env=env,
    )
    assert result.returncode == 1
    assert "[memmap-flush]" in result.stdout
