"""The ``python -m repro.analysis`` CLI: exit codes, formats, baseline flow."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.__main__ import main

from tests.analysis.conftest import FIXTURES

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def in_tmp_cwd(tmp_path, monkeypatch):
    """Run the CLI from an empty cwd so no repo baseline is picked up."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_clean_tree_exits_zero(in_tmp_cwd, capsys):
    code = main([str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")])
    out = capsys.readouterr().out
    assert code == 0
    assert "cubelint: 0 violation(s)" in out


def test_seeded_fixtures_fail_with_locations(in_tmp_cwd, capsys):
    code = main([str(FIXTURES)])
    out = capsys.readouterr().out
    assert code == 1
    # Every rule id shows up, each with a file:line:col anchor.
    for rule_id in (
        "dtype-safety",
        "box-validation",
        "registry-contract",
        "memmap-flush",
        "determinism",
        "backend-lifecycle",
        "async-blocking",
        "lock-discipline",
        "task-tracking",
    ):
        assert f"[{rule_id}]" in out
    assert "dtype_bad.py:10:" in out


@pytest.mark.parametrize(
    ("rule_id", "fixture"),
    [
        ("backend-lifecycle", "repro/ingest/lifecycle_bad.py"),
        ("async-blocking", "repro/serving/blocking_bad.py"),
        ("lock-discipline", "repro/serving/lock_bad.py"),
        ("task-tracking", "repro/serving/tasks_bad.py"),
    ],
)
def test_each_new_rule_fails_on_its_seeded_fixture(
    in_tmp_cwd, capsys, rule_id, fixture
):
    """Per-rule self-test: the CI job runs exactly this per rule."""
    code = main([str(FIXTURES), "--select", rule_id, "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert {v["rule"] for v in payload["violations"]} == {rule_id}
    assert any(fixture in v["path"] for v in payload["violations"])


def test_json_format_payload(in_tmp_cwd, capsys):
    code = main([str(FIXTURES), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["counts"]["violations"] == len(payload["violations"])
    assert payload["counts"]["violations"] > 0
    assert payload["counts"]["suppressed"] >= 1
    sample = payload["violations"][0]
    assert set(sample) == {
        "path",
        "line",
        "col",
        "rule",
        "message",
        "fingerprint",
    }
    rules_seen = {v["rule"] for v in payload["violations"]}
    assert "dtype-safety" in rules_seen
    assert "determinism" in rules_seen


def test_select_restricts_rules(in_tmp_cwd, capsys):
    code = main([str(FIXTURES), "--select", "determinism", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert {v["rule"] for v in payload["violations"]} == {"determinism"}


def test_unknown_rule_id_is_usage_error(in_tmp_cwd, capsys):
    code = main([str(FIXTURES), "--select", "no-such-rule"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown rule id" in err


def test_write_baseline_then_rerun_passes(in_tmp_cwd, capsys):
    baseline = in_tmp_cwd / "cubelint.baseline.json"
    code = main([str(FIXTURES), "--write-baseline", "--baseline", str(baseline)])
    assert code == 0
    assert baseline.exists()
    capsys.readouterr()

    code = main([str(FIXTURES), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "baselined" in out


def test_default_baseline_in_cwd_is_picked_up(in_tmp_cwd, capsys):
    assert main([str(FIXTURES), "--write-baseline"]) == 0
    assert (in_tmp_cwd / "cubelint.baseline.json").exists()
    capsys.readouterr()
    assert main([str(FIXTURES)]) == 0


def test_list_rules(in_tmp_cwd, capsys):
    code = main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in (
        "dtype-safety",
        "box-validation",
        "registry-contract",
        "memmap-flush",
        "determinism",
        "backend-lifecycle",
        "async-blocking",
        "lock-discipline",
        "task-tracking",
    ):
        assert rule_id in out


def test_github_format_emits_workflow_commands(in_tmp_cwd, capsys):
    code = main(
        [str(FIXTURES / "repro/serving/tasks_bad.py"), "--format", "github"]
    )
    out = capsys.readouterr().out
    assert code == 1
    lines = [line for line in out.splitlines() if line.startswith("::error ")]
    assert len(lines) == 3
    assert "file=" in lines[0]
    assert ",line=8," in lines[0]
    assert "title=cubelint task-tracking" in lines[0]


def test_sarif_format_is_valid_minimal_log(in_tmp_cwd, capsys):
    code = main(
        [str(FIXTURES / "repro/serving/lock_bad.py"), "--format", "sarif"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == "2.1.0"
    run_obj = payload["runs"][0]
    assert run_obj["tool"]["driver"]["name"] == "cubelint"
    rule_ids = {r["id"] for r in run_obj["tool"]["driver"]["rules"]}
    assert "lock-discipline" in rule_ids
    results = run_obj["results"]
    assert len(results) == 5
    sample = results[0]
    assert sample["ruleId"] == "lock-discipline"
    region = sample["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1
    assert sample["partialFingerprints"]["cubelint/v2"]


def test_time_budget_overrun_fails(in_tmp_cwd, capsys):
    code = main(
        [
            str(FIXTURES / "repro/core/dtype_ok.py"),
            "--time-budget",
            "0.0000001",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "over the --time-budget" in captured.err


def test_time_budget_generous_passes(in_tmp_cwd):
    code = main(
        [str(FIXTURES / "repro/core/dtype_ok.py"), "--time-budget", "300"]
    )
    assert code == 0


def test_module_entry_point_subprocess(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(FIXTURES)],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env=env,
    )
    assert result.returncode == 1
    assert "[memmap-flush]" in result.stdout
