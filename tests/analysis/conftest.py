"""Shared helpers for the cubelint test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.engine import LintReport, Rule, lint_file

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def fixtures() -> Path:
    return FIXTURES


def lint_fixture(relative: str, rule: Rule) -> LintReport:
    """Lint one fixture file with a single rule."""
    return lint_file(FIXTURES / relative, [rule])


def rule_lines(report: LintReport, rule_id: str) -> list[int]:
    """Line numbers of the report's violations for ``rule_id``."""
    return [v.line for v in report.violations if v.rule_id == rule_id]
