"""The ``determinism`` rule: no unseeded randomness in verify/benchmarks."""

from __future__ import annotations

from repro.analysis.rules import DeterminismRule

from tests.analysis.conftest import lint_fixture


def test_flags_every_seeded_violation():
    report = lint_fixture(
        "repro/verify/determinism_bad.py", DeterminismRule()
    )
    assert len(report.violations) == 5
    messages = " ".join(v.message for v in report.violations)
    assert "np.random.rand" in messages
    assert "np.random.shuffle" in messages
    assert "default_rng" in messages
    assert "random.randint" in messages
    assert "random.Random" in messages


def test_benchmarks_scope_applies():
    report = lint_fixture("benchmarks/bench_bad.py", DeterminismRule())
    assert len(report.violations) == 1
    assert "standard_normal" in report.violations[0].message


def test_seeded_usage_passes():
    report = lint_fixture(
        "repro/verify/determinism_ok.py", DeterminismRule()
    )
    assert report.violations == []


def test_flags_unpinned_worker_pools():
    report = lint_fixture("repro/kernels/pool_bad.py", DeterminismRule())
    assert len(report.violations) == 3
    messages = " ".join(v.message for v in report.violations)
    assert "ThreadPoolExecutor" in messages
    assert "ProcessPoolExecutor" in messages
    assert "max_workers" in messages
    assert "default_rng" in messages


def test_pinned_pools_pass():
    report = lint_fixture("repro/kernels/pool_ok.py", DeterminismRule())
    assert report.violations == []


def test_scope_excludes_core_layers():
    rule = DeterminismRule()
    assert rule.applies_to("src/repro/verify/driver.py")
    assert rule.applies_to("src/repro/kernels/threaded.py")
    assert rule.applies_to("src/repro/ingest/build.py")
    assert rule.applies_to("benchmarks/bench_kernels.py")
    assert not rule.applies_to("src/repro/core/prefix_sum.py")
    assert not rule.applies_to("tests/conftest.py")
