"""The ``memmap-flush`` rule: update paths sync backend-held arrays."""

from __future__ import annotations

from repro.analysis.rules import MemmapFlushRule

from tests.analysis.conftest import lint_fixture


def test_flags_every_unflushed_return_path():
    report = lint_fixture("flush/flush_bad.py", MemmapFlushRule())
    per_function: dict[str, int] = {}
    for violation in report.violations:
        name = violation.message.split("'")[1]
        per_function[name] = per_function.get(name, 0) + 1
    assert per_function == {
        "apply_updates": 2,  # both return statements
        "apply_assignments": 1,
        "apply_view_updates": 1,  # via the local view alias
        "finalize_cuboid": 1,  # ingest finalize sweeps are boundaries
    }


def test_compliant_fixture_is_clean():
    report = lint_fixture("flush/flush_ok.py", MemmapFlushRule())
    assert report.violations == []
