"""The ``box-validation`` rule: registered entry points validate boxes."""

from __future__ import annotations

from repro.analysis.rules import BoxValidationRule

from tests.analysis.conftest import lint_fixture


def test_flags_unvalidated_entry_points():
    report = lint_fixture("registry/box_bad.py", BoxValidationRule())
    names = sorted(v.message for v in report.violations)
    assert len(names) == 2
    assert "UnvalidatedSum.max_value" in names[0]
    assert "UnvalidatedSum.range_sum" in names[1]


def test_validated_and_delegating_entry_points_pass():
    report = lint_fixture("registry/box_ok.py", BoxValidationRule())
    assert report.violations == []


def test_unregistered_classes_are_ignored():
    report = lint_fixture("registry/box_ok.py", BoxValidationRule())
    assert all(
        "UnregisteredHelper" not in v.message for v in report.violations
    )
