"""The project symbol table / call graph: resolution and edges."""

from __future__ import annotations

import ast

from repro.analysis.callgraph import Project, module_name_for_path


def _build(**files: str) -> Project:
    """Build a project from ``{posix_path: source}`` (dots become /)."""
    return Project.build(
        (path, ast.parse(source, filename=path))
        for path, source in files.items()
    )


def _call_named(module, name: str) -> ast.Call:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            target = node.func
            attr = (
                target.attr
                if isinstance(target, ast.Attribute)
                else getattr(target, "id", None)
            )
            if attr == name:
                return node
    raise AssertionError(f"no call to {name}")


class TestModuleNames:
    def test_src_prefix_dropped(self):
        assert (
            module_name_for_path("src/repro/serving/service.py")
            == "repro.serving.service"
        )

    def test_init_names_the_package(self):
        assert (
            module_name_for_path("src/repro/serving/__init__.py")
            == "repro.serving"
        )

    def test_non_src_tree_keeps_all_parts(self):
        assert (
            module_name_for_path("tests/analysis/fixtures/repro/a.py")
            == "tests.analysis.fixtures.repro.a"
        )


class TestResolution:
    def test_cross_module_import_resolution(self):
        project = _build(
            **{
                "src/repro/a.py": "def helper():\n    pass\n",
                "src/repro/b.py": (
                    "from repro.a import helper\n"
                    "def caller():\n    helper()\n"
                ),
            }
        )
        module = project.module_for("src/repro/b.py")
        resolved = project.resolve_call(_call_named(module, "helper"), module)
        assert resolved is not None
        assert resolved.qualname == "repro.a.helper"

    def test_relative_import_resolution(self):
        project = _build(
            **{
                "src/repro/pkg/a.py": "def helper():\n    pass\n",
                "src/repro/pkg/b.py": (
                    "from .a import helper\ndef caller():\n    helper()\n"
                ),
            }
        )
        module = project.module_for("src/repro/pkg/b.py")
        resolved = project.resolve_call(_call_named(module, "helper"), module)
        assert resolved is not None
        assert resolved.qualname == "repro.pkg.a.helper"

    def test_dotted_suffix_matches_fixture_trees(self):
        """A fixture living under tests/.../repro/serving still resolves
        ``from repro.serving.x import helper``."""
        project = _build(
            **{
                "tests/fx/repro/serving/x.py": "def helper():\n    pass\n",
                "tests/fx/repro/serving/y.py": (
                    "from repro.serving.x import helper\n"
                    "def caller():\n    helper()\n"
                ),
            }
        )
        module = project.module_for("tests/fx/repro/serving/y.py")
        resolved = project.resolve_call(_call_named(module, "helper"), module)
        assert resolved is not None
        assert resolved.name == "helper"

    def test_self_method_resolution_walks_bases(self):
        project = _build(
            **{
                "src/repro/m.py": (
                    "class Base:\n"
                    "    def helper(self):\n        pass\n"
                    "class Child(Base):\n"
                    "    async def caller(self):\n        self.helper()\n"
                ),
            }
        )
        module = project.module_for("src/repro/m.py")
        resolved = project.resolve_call(_call_named(module, "helper"), module)
        assert resolved is not None
        assert resolved.qualname == "repro.m.Base.helper"
        assert resolved.is_method

    def test_nested_scope_wins_over_module_scope(self):
        project = _build(
            **{
                "src/repro/m.py": (
                    "def run():\n    pass\n"
                    "def outer():\n"
                    "    def run():\n        pass\n"
                    "    run()\n"
                ),
            }
        )
        module = project.module_for("src/repro/m.py")
        resolved = project.resolve_call(_call_named(module, "run"), module)
        assert resolved is not None
        assert resolved.qualname == "repro.m.outer.run"

    def test_class_call_resolves_to_init(self):
        project = _build(
            **{
                "src/repro/m.py": (
                    "class Holder:\n"
                    "    def __init__(self):\n        pass\n"
                    "def make():\n    return Holder()\n"
                ),
            }
        )
        module = project.module_for("src/repro/m.py")
        resolved = project.resolve_call(_call_named(module, "Holder"), module)
        assert resolved is not None
        assert resolved.qualname == "repro.m.Holder.__init__"

    def test_dynamic_call_resolves_to_none(self):
        project = _build(
            **{"src/repro/m.py": "def f(cb):\n    cb().then()\n"}
        )
        module = project.module_for("src/repro/m.py")
        resolved = project.resolve_call(_call_named(module, "then"), module)
        assert resolved is None


class TestEnclosingAndCallers:
    def test_enclosing_function_is_innermost(self):
        project = _build(
            **{
                "src/repro/m.py": (
                    "async def outer():\n"
                    "    def inner():\n"
                    "        work()\n"
                    "    inner()\n"
                ),
            }
        )
        module = project.module_for("src/repro/m.py")
        call = _call_named(module, "work")
        owner = project.enclosing_function(call)
        assert owner is not None
        assert owner.qualname == "repro.m.outer.inner"

    def test_callers_inverts_edges_across_modules(self):
        project = _build(
            **{
                "src/repro/a.py": "def helper():\n    pass\n",
                "src/repro/b.py": (
                    "from repro.a import helper\n"
                    "def one():\n    helper()\n"
                    "def two():\n    helper()\n"
                ),
            }
        )
        helper = project.functions["repro.a.helper"]
        sites = project.callers(helper)
        assert sorted(caller.name for caller, _ in sites) == ["one", "two"]

    def test_async_and_decorated_defs_are_indexed(self):
        project = _build(
            **{
                "src/repro/m.py": (
                    "import functools\n"
                    "@functools.lru_cache\n"
                    "async def cached():\n    pass\n"
                ),
            }
        )
        info = project.functions["repro.m.cached"]
        assert info.is_async
        assert "functools.lru_cache" in info.decorators
