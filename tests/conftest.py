"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro._util import Box


def pytest_addoption(parser) -> None:
    """``--fuzz``: run the differential suite at its full trial budget.

    Without the flag ``tests/verify`` runs a small fixed-seed budget
    sized for tier-1; with it, the same parametrized tests sweep the
    full budget (minutes, not seconds).
    """
    parser.addoption(
        "--fuzz",
        action="store_true",
        default=False,
        help="run the differential fuzz suite at full budget",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator per test."""
    return np.random.default_rng(0xC0FFEE)


def shapes(max_ndim: int = 3, max_side: int = 12) -> st.SearchStrategy:
    """Strategy: small cube shapes."""
    return st.lists(
        st.integers(min_value=1, max_value=max_side),
        min_size=1,
        max_size=max_ndim,
    ).map(tuple)


@st.composite
def cube_and_box(
    draw,
    max_ndim: int = 3,
    max_side: int = 10,
    min_value: int = -50,
    max_value: int = 50,
):
    """Strategy: a random integer cube plus a valid query box inside it."""
    shape = draw(shapes(max_ndim, max_side))
    flat = draw(
        st.lists(
            st.integers(min_value=min_value, max_value=max_value),
            min_size=int(np.prod(shape)),
            max_size=int(np.prod(shape)),
        )
    )
    cube = np.array(flat, dtype=np.int64).reshape(shape)
    lo = []
    hi = []
    for n in shape:
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=a, max_value=n - 1))
        lo.append(a)
        hi.append(b)
    return cube, Box(tuple(lo), tuple(hi))


def random_boxes_in(shape, rng: np.random.Generator, count: int):
    """Plain-random boxes for non-hypothesis sweeps."""
    from repro.query.workload import random_box

    return [random_box(shape, rng) for _ in range(count)]
