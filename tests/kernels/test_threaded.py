"""Sharding behaviour of the ``threaded`` backend and its auto heuristic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.operators import SUM
from repro.kernels import ENV_WORKERS, ThreadedKernel, get_kernel


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def test_small_batches_run_inline(rng):
    """Below the size threshold the pool is skipped (last_shards == 0)."""
    kernel = ThreadedKernel(max_workers=4)
    prefix = np.cumsum(rng.integers(0, 9, size=(20, 20)), axis=0).cumsum(axis=1)
    lows = np.array([[0, 0], [2, 3]])
    highs = np.array([[10, 10], [5, 5]])
    kernel.corner_gather(prefix, lows, highs, SUM)
    assert kernel.last_shards == 0


def test_large_batches_shard_across_workers(rng):
    kernel = ThreadedKernel(max_workers=2, min_parallel_items=0)
    cube = rng.integers(0, 9, size=(30, 30)).astype(np.int64)
    prefix = cube.cumsum(axis=0).cumsum(axis=1)
    lows, highs = [], []
    for _ in range(64):
        a = rng.integers(0, 30, size=2)
        b = rng.integers(0, 30, size=2)
        lows.append(np.minimum(a, b))
        highs.append(np.maximum(a, b))
    lows, highs = np.array(lows), np.array(highs)
    values = kernel.corner_gather(prefix, lows, highs, SUM)
    assert kernel.last_shards == 2
    expected = get_kernel("numpy").corner_gather(prefix, lows, highs, SUM)
    assert np.array_equal(values, expected)


def test_single_worker_never_pools(rng):
    kernel = ThreadedKernel(max_workers=1, min_parallel_items=0)
    prefix = np.cumsum(rng.integers(0, 9, size=(40,)))
    lows = np.arange(30).reshape(-1, 1)
    highs = lows + 5
    kernel.corner_gather(prefix, lows, np.minimum(highs, 39), SUM)
    assert kernel.last_shards == 0
    assert kernel._pool is None


def test_segment_reduce_shards_by_cell_count(rng):
    kernel = ThreadedKernel(max_workers=3, min_parallel_items=0)
    flat = rng.integers(-9, 10, size=2000).astype(np.int64)
    lengths = rng.integers(1, 20, size=100).astype(np.int64)
    starts = rng.integers(0, 1900, size=100).astype(np.int64)
    out = kernel.segment_reduce(flat, starts, lengths, SUM)
    assert 2 <= kernel.last_shards <= 3
    expected = np.array(
        [flat[s : s + n].sum() for s, n in zip(starts, lengths)]
    )
    assert np.array_equal(out, expected)


def test_env_pins_the_worker_count(monkeypatch):
    monkeypatch.setenv(ENV_WORKERS, "3")
    assert ThreadedKernel().max_workers == 3
    monkeypatch.setenv(ENV_WORKERS, "0")
    with pytest.raises(ValueError, match=ENV_WORKERS):
        ThreadedKernel()


def test_shard_bounds_cover_the_range():
    kernel = ThreadedKernel(max_workers=4)
    bounds = kernel._shard_bounds(10)
    assert bounds[0][0] == 0
    assert bounds[-1][1] == 10
    for (_, a_hi), (b_lo, _) in zip(bounds, bounds[1:]):
        assert a_hi == b_lo


def test_auto_heuristic_matches_core_count(monkeypatch):
    """The ``auto`` factory picks threaded only when >1 worker would
    actually run; the registry caches instances, so probe the factory."""
    import repro.kernels as kernels

    monkeypatch.setenv(ENV_WORKERS, "1")
    assert kernels._auto_kernel().name == "numpy"
    monkeypatch.setenv(ENV_WORKERS, "8")
    assert kernels._auto_kernel().name == "threaded"
