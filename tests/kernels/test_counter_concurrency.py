"""Regression test: AccessCounter increments are thread-safe.

The ``threaded`` kernel charges one shared counter from several worker
threads at once.  Before the counters took a lock, the plain ``int``
read-modify-write of ``+=`` dropped charges under interleaving — a bug
that only shows up as *undercounted* access-cost numbers, never as a
crash, which is why this test hammers the counter deliberately.
"""

from __future__ import annotations

import sys
import threading

import numpy as np

from repro.instrumentation import AccessCounter
from repro.kernels import ThreadedKernel
from repro.core.operators import SUM

THREADS = 8
INCREMENTS = 2_000


def test_concurrent_increments_never_drop(monkeypatch):
    """N threads x M increments must tally exactly N*M per category."""
    counter = AccessCounter()
    old_interval = sys.getswitchinterval()
    # An aggressively tiny switch interval maximizes interleavings right
    # inside the read-modify-write the lock now protects.
    sys.setswitchinterval(1e-6)
    try:
        barrier = threading.Barrier(THREADS)

        def hammer():
            barrier.wait()
            for _ in range(INCREMENTS):
                counter.count_cube(1)
                counter.count_prefix(2)
                counter.count_tree(1)
                counter.count_index(1)

        workers = [
            threading.Thread(target=hammer) for _ in range(THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
    finally:
        sys.setswitchinterval(old_interval)
    assert counter.cube_cells == THREADS * INCREMENTS
    assert counter.prefix_cells == 2 * THREADS * INCREMENTS
    assert counter.tree_nodes == THREADS * INCREMENTS
    assert counter.index_nodes == THREADS * INCREMENTS
    assert counter.total == 5 * THREADS * INCREMENTS


def test_threaded_kernel_charges_exactly_like_serial():
    """The sharded corner gather must charge the same counter total as
    the serial oracle, with real worker threads doing the charging."""
    from repro.kernels import get_kernel

    rng = np.random.default_rng(11)
    cube = rng.integers(0, 9, size=(40, 40)).astype(np.int64)
    prefix = cube.cumsum(axis=0).cumsum(axis=1)
    lows, highs = [], []
    for _ in range(256):
        a = rng.integers(0, 40, size=2)
        b = rng.integers(0, 40, size=2)
        lows.append(np.minimum(a, b))
        highs.append(np.maximum(a, b))
    lows, highs = np.array(lows), np.array(highs)

    serial_counter = AccessCounter()
    get_kernel("numpy").corner_gather(
        prefix, lows, highs, SUM, serial_counter
    )
    kernel = ThreadedKernel(max_workers=4, min_parallel_items=0)
    threaded_counter = AccessCounter()
    kernel.corner_gather(prefix, lows, highs, SUM, threaded_counter)
    assert kernel.last_shards == 4
    assert threaded_counter.snapshot() == serial_counter.snapshot()


def test_reset_and_snapshot_under_contention():
    counter = AccessCounter()
    stop = threading.Event()

    def churn():
        while not stop.is_set():
            counter.count_prefix(1)

    worker = threading.Thread(target=churn)
    worker.start()
    try:
        for _ in range(200):
            snap = counter.snapshot()
            assert snap["total"] == (
                snap["cube_cells"]
                + snap["prefix_cells"]
                + snap["tree_nodes"]
                + snap["index_nodes"]
            )
        counter.reset()
    finally:
        stop.set()
        worker.join()
    # After the churn thread stops the tallies are consistent again.
    final = counter.snapshot()
    assert final["total"] == final["prefix_cells"]
