"""The ``numba`` backend degrades gracefully when the JIT is absent.

CI runs one matrix leg without numba installed and with
``PYTHONWARNINGS=error``: the fallback path must not merely work, it
must be *silent* — no ImportWarning, no DeprecationWarning, nothing.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.operators import SUM
from repro.kernels import NumbaKernel, get_kernel, numba_available
from repro.kernels.numba_kernel import ENV_DISABLE


@pytest.fixture
def rng():
    return np.random.default_rng(5)


def test_backend_is_always_registered():
    """Registration never depends on the dependency being importable."""
    kernel = get_kernel("numba")
    assert kernel.name == "numba"
    assert kernel.jit_active == numba_available()


def test_fallback_is_warning_free(rng):
    """The degraded path raises nothing even with warnings-as-errors."""
    flat = rng.integers(-9, 10, size=400).astype(np.int64)
    lengths = rng.integers(1, 8, size=50).astype(np.int64)
    starts = rng.integers(0, 390, size=50).astype(np.int64)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        kernel = NumbaKernel()
        out = kernel.segment_reduce(flat, starts, lengths, SUM)
    expected = np.array(
        [flat[s : s + n].sum() for s, n in zip(starts, lengths)]
    )
    assert np.array_equal(out, expected)


def test_disable_env_forces_the_fallback(monkeypatch):
    monkeypatch.setenv(ENV_DISABLE, "1")
    assert not numba_available()
    kernel = NumbaKernel()
    assert not kernel.jit_active


def test_matches_oracle_on_structures(rng):
    from repro.index.registry import create_index
    from repro.query.workload import make_cube, random_query_arrays

    cube = make_cube((14, 10), rng)
    index = create_index("blocked_prefix_sum", cube, block_size=4)
    lows, highs = random_query_arrays(cube.shape, 20, rng)
    index.kernel = get_kernel("numpy")
    oracle = index.sum_many(lows, highs)
    index.kernel = get_kernel("numba")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        values = index.sum_many(lows, highs)
    assert np.array_equal(values, oracle)


def test_jit_path_when_available(rng):
    """When numba IS importable the JIT path must agree too (this
    branch only runs on hosts/CI legs that install the dependency)."""
    if not numba_available():
        pytest.skip("numba not importable on this host")
    kernel = NumbaKernel()
    assert kernel.jit_active
    flat = rng.integers(-9, 10, size=400).astype(np.int64)
    lengths = rng.integers(1, 8, size=50).astype(np.int64)
    starts = rng.integers(0, 390, size=50).astype(np.int64)
    out = kernel.segment_reduce(flat, starts, lengths, SUM)
    expected = np.array(
        [flat[s : s + n].sum() for s, n in zip(starts, lengths)]
    )
    assert np.array_equal(out, expected)
