"""Registry and selection-precedence behaviour of the kernel layer."""

from __future__ import annotations

import pytest

from repro.kernels import (
    ENV_KERNEL,
    available_kernels,
    get_kernel,
    kernel_info,
    register_kernel,
    resolve_kernel,
)
from repro.kernels.protocol import ExecutionKernel


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        names = available_kernels()
        for expected in ("auto", "numba", "numpy", "threaded"):
            assert expected in names

    def test_get_kernel_caches_instances(self):
        assert get_kernel("numpy") is get_kernel("numpy")
        assert get_kernel("threaded") is get_kernel("threaded")

    def test_instances_satisfy_the_protocol(self):
        for name in ("numpy", "threaded", "numba"):
            assert isinstance(get_kernel(name), ExecutionKernel)

    def test_unknown_name_raises_keyerror_with_listing(self):
        with pytest.raises(KeyError, match="available"):
            kernel_info("no-such-backend")
        with pytest.raises(KeyError):
            get_kernel("no-such-backend")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel("numpy")(lambda: get_kernel("numpy"))

    def test_auto_resolves_to_a_concrete_backend(self):
        auto = get_kernel("auto")
        assert auto.name in ("numpy", "threaded")


class TestResolutionPrecedence:
    """Call-site choice > per-index override > $REPRO_KERNEL > default."""

    def test_default_is_the_numpy_oracle(self, monkeypatch):
        monkeypatch.delenv(ENV_KERNEL, raising=False)
        assert resolve_kernel() is get_kernel("numpy")

    def test_env_variable_beats_the_default(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL, "threaded")
        assert resolve_kernel() is get_kernel("threaded")

    def test_override_beats_the_env(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL, "threaded")
        assert resolve_kernel(override="numpy") is get_kernel("numpy")

    def test_selected_beats_everything(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL, "numpy")
        resolved = resolve_kernel(
            selected="threaded", override="numpy"
        )
        assert resolved is get_kernel("threaded")

    def test_live_instances_pass_through_unchanged(self):
        instance = get_kernel("threaded")
        assert resolve_kernel(selected=instance) is instance
        assert resolve_kernel(override=instance) is instance

    def test_unknown_env_name_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL, "not-a-backend")
        with pytest.raises(KeyError):
            resolve_kernel()

    def test_empty_env_means_unset(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL, "")
        assert resolve_kernel() is get_kernel("numpy")

    def test_env_routes_structures_end_to_end(self, monkeypatch):
        import numpy as np

        from repro.core.blocked import BlockedPrefixSumCube

        rng = np.random.default_rng(7)
        cube = rng.integers(0, 50, size=(18, 12)).astype(np.int64)
        index = BlockedPrefixSumCube(cube, 4)
        lows = np.array([[0, 0], [3, 2], [7, 1]])
        highs = np.array([[17, 11], [9, 9], [15, 4]])
        monkeypatch.delenv(ENV_KERNEL, raising=False)
        oracle = index.sum_many(lows, highs)
        monkeypatch.setenv(ENV_KERNEL, "threaded")
        assert np.array_equal(index.sum_many(lows, highs), oracle)
