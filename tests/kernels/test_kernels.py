"""Backend equivalence: every kernel answers bit-identically to the
``numpy`` oracle — values *and* access-counter charges — on every dense
sum structure, across operators and adversarial shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.core.operators import SUM, XOR
from repro.index.registry import create_index
from repro.instrumentation import AccessCounter
from repro.kernels import get_kernel
from repro.kernels.segments import (
    exclusive_offsets,
    expand_runs,
    flatten_updates,
    segment_reduce_serial,
)
from repro.query.naive import naive_range_sum
from repro.query.workload import make_cube, random_query_arrays

BACKENDS = ("numpy", "threaded", "numba")

STRUCTURES = {
    "prefix_sum": {},
    "blocked_prefix_sum": {"block_size": 3},
    "partial_prefix_sum": {"prefix_dims": (0, 2)},
    "blocked_partial_prefix_sum": {
        "prefix_dims": (0, 2),
        "block_size": 3,
    },
}


@pytest.fixture
def rng():
    return np.random.default_rng(20260808)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(STRUCTURES))
class TestBackendEquivalence:
    def test_matches_naive_and_oracle(self, name, backend, rng):
        cube = make_cube((11, 9, 7), rng)
        index = create_index(name, cube, **STRUCTURES[name])
        lows, highs = random_query_arrays(cube.shape, 40, rng)
        index.kernel = get_kernel("numpy")
        oracle = index.sum_many(lows, highs)
        index.kernel = get_kernel(backend)
        values = index.sum_many(lows, highs)
        assert np.array_equal(values, oracle)
        for k in range(5):
            box = Box(tuple(lows[k]), tuple(highs[k]))
            assert values[k] == naive_range_sum(cube, box)

    def test_counter_charges_match_the_oracle(self, name, backend, rng):
        """The §8 access-cost proxy is backend-independent: charging
        fewer (or more) cells under one backend would silently change
        every benchmark comparing counts to the paper's formulas."""
        cube = make_cube((10, 8, 6), rng)
        index = create_index(name, cube, **STRUCTURES[name])
        lows, highs = random_query_arrays(cube.shape, 25, rng)
        index.kernel = get_kernel("numpy")
        oracle_counter = AccessCounter()
        index.sum_many(lows, highs, oracle_counter)
        index.kernel = get_kernel(backend)
        counter = AccessCounter()
        index.sum_many(lows, highs, counter)
        assert counter.snapshot() == oracle_counter.snapshot()

    def test_empty_and_degenerate_rows(self, name, backend, rng):
        cube = make_cube((6, 1, 5), rng)
        index = create_index(name, cube, **STRUCTURES[name])
        index.kernel = get_kernel(backend)
        lows = np.array([[0, 0, 0], [2, 0, 3], [5, 0, 4]])
        highs = np.array([[5, 0, 4], [1, 0, 2], [5, 0, 4]])
        values = index.sum_many(lows, highs)
        assert values[1] == 0  # hi < lo on the first axis
        assert values[0] == cube.sum()
        assert values[2] == int(cube[5, 0, 4])

    def test_xor_operator(self, name, backend, rng):
        cube = rng.integers(0, 64, size=(8, 6, 4)).astype(np.int64)
        index = create_index(name, cube, operator=XOR, **STRUCTURES[name])
        lows, highs = random_query_arrays(cube.shape, 20, rng)
        index.kernel = get_kernel("numpy")
        oracle = index.sum_many(lows, highs)
        index.kernel = get_kernel(backend)
        assert np.array_equal(index.sum_many(lows, highs), oracle)


@pytest.mark.parametrize("backend", BACKENDS)
class TestKernelPrimitives:
    def test_segment_reduce_matches_bruteforce(self, backend, rng):
        kernel = get_kernel(backend)
        flat = rng.integers(-9, 10, size=500).astype(np.int64)
        lengths = rng.integers(1, 9, size=60).astype(np.int64)
        starts = rng.integers(
            0, len(flat) - 8, size=60
        ).astype(np.int64)
        out = kernel.segment_reduce(flat, starts, lengths, SUM)
        expected = np.array(
            [
                flat[s : s + n].sum()
                for s, n in zip(starts, lengths)
            ]
        )
        assert np.array_equal(out, expected)

    def test_corner_gather_matches_prefix_differences(self, backend, rng):
        from repro.core.prefix_sum import PrefixSumCube

        kernel = get_kernel(backend)
        cube = rng.integers(-5, 6, size=(9, 7)).astype(np.int64)
        structure = PrefixSumCube(cube)
        lows, highs = random_query_arrays(cube.shape, 30, rng)
        values = kernel.corner_gather(
            np.asarray(structure.prefix), lows, highs, SUM
        )
        for k in range(30):
            box = Box(tuple(lows[k]), tuple(highs[k]))
            assert values[k] == naive_range_sum(cube, box)

    def test_scatter_applies_duplicates_sequentially(self, backend):
        kernel = get_kernel(backend)
        target = np.zeros(6, dtype=np.int64)
        indices = np.array([1, 1, 4, 1])
        deltas = np.array([2, 3, 7, -1])
        kernel.scatter(target, indices, deltas, SUM)
        assert target.tolist() == [0, 4, 0, 0, 7, 0]


class TestSegmentHelpers:
    def test_exclusive_offsets(self):
        counts = np.array([3, 1, 0, 2], dtype=np.int64)
        assert exclusive_offsets(counts).tolist() == [0, 3, 4, 4]

    def test_expand_runs(self):
        starts = np.array([10, 50], dtype=np.int64)
        lengths = np.array([3, 2], dtype=np.int64)
        cells, offsets = expand_runs(starts, lengths)
        assert cells.tolist() == [10, 11, 12, 50, 51]
        assert offsets.tolist() == [0, 3]

    def test_segment_reduce_empty(self):
        out = segment_reduce_serial(
            np.zeros(4, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            SUM,
        )
        assert out.shape == (0,)

    def test_flatten_updates(self):
        from repro.core.batch_update import PointUpdate

        flat, deltas = flatten_updates(
            [PointUpdate((1, 2), 5), PointUpdate((0, 3), -2)],
            (4, 4),
        )
        assert flat.tolist() == [6, 3]
        assert deltas.tolist() == [5, -2]


class TestScatterFallback:
    def test_unsafe_cast_falls_back_to_item_loop(self):
        """Negative int deltas into an unsigned target must keep the
        historical per-item semantics, not wrap through ufunc.at."""
        kernel = get_kernel("numpy")
        target = np.array([10, 20, 30], dtype=np.uint32)
        kernel.scatter(
            target,
            np.array([0, 2]),
            np.array([-3, -5]),
            SUM,
        )
        assert target.tolist() == [7, 20, 25]
