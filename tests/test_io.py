"""Tests for structure persistence (save/load of precomputations)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.blocked import BlockedPrefixSumCube
from repro.core.operators import XOR
from repro.core.prefix_sum import PrefixSumCube
from repro.core.range_max import RangeMaxTree
from repro.io import (
    load_blocked,
    load_max_tree,
    load_prefix_sum,
    save_blocked,
    save_max_tree,
    save_prefix_sum,
)
from repro.query.naive import naive_max_value, naive_range_sum
from repro.query.workload import make_cube, random_box


@pytest.fixture
def rng():
    return np.random.default_rng(179)


class TestPrefixSumRoundtrip:
    def test_roundtrip_via_file(self, rng, tmp_path):
        cube = make_cube((12, 9), rng)
        original = PrefixSumCube(cube)
        path = tmp_path / "prefix.npz"
        save_prefix_sum(original, path)
        restored = load_prefix_sum(path)
        assert np.array_equal(restored.prefix, original.prefix)
        assert np.array_equal(restored.source, cube)
        for _ in range(20):
            box = random_box(cube.shape, rng)
            assert restored.range_sum(box) == naive_range_sum(cube, box)

    def test_discarded_source_stays_discarded(self, rng, tmp_path):
        cube = make_cube((6, 6), rng)
        original = PrefixSumCube(cube, keep_source=False)
        path = tmp_path / "p.npz"
        save_prefix_sum(original, path)
        restored = load_prefix_sum(path)
        assert restored.source is None
        assert restored.cell((2, 3)) == cube[2, 3]

    def test_operator_preserved(self, rng, tmp_path):
        cube = rng.integers(0, 64, (6, 6), dtype=np.int64)
        original = PrefixSumCube(cube, XOR)
        path = tmp_path / "x.npz"
        save_prefix_sum(original, path)
        restored = load_prefix_sum(path)
        assert restored.operator.name == "xor"
        box = random_box(cube.shape, rng)
        assert restored.range_sum(box) == original.range_sum(box)

    def test_in_memory_buffer(self, rng):
        cube = make_cube((5, 5), rng)
        original = PrefixSumCube(cube)
        buffer = io.BytesIO()
        save_prefix_sum(original, buffer)
        buffer.seek(0)
        restored = load_prefix_sum(buffer)
        assert np.array_equal(restored.prefix, original.prefix)


class TestBlockedRoundtrip:
    def test_roundtrip(self, rng, tmp_path):
        cube = make_cube((30, 22), rng)
        original = BlockedPrefixSumCube(cube, 7)
        path = tmp_path / "blocked.npz"
        save_blocked(original, path)
        restored = load_blocked(path)
        assert restored.block_size == 7
        assert np.array_equal(
            restored.blocked_prefix, original.blocked_prefix
        )
        for _ in range(20):
            box = random_box(cube.shape, rng)
            assert restored.range_sum(box) == naive_range_sum(cube, box)


class TestMaxTreeRoundtrip:
    def test_roundtrip(self, rng, tmp_path):
        cube = make_cube((25, 18), rng, high=10**6)
        original = RangeMaxTree(cube, 3)
        path = tmp_path / "tree.npz"
        save_max_tree(original, path)
        restored = load_max_tree(path)
        assert restored.fanout == 3 and restored.height == original.height
        for level in range(1, original.height + 1):
            assert np.array_equal(
                restored.values[level], original.values[level]
            )
        for _ in range(20):
            box = random_box(cube.shape, rng)
            assert cube[restored.max_index(box)] == naive_max_value(
                cube, box
            )

    def test_updates_work_after_load(self, rng, tmp_path):
        from repro.core.max_update import MaxAssignment, apply_max_updates

        cube = make_cube((16,), rng, high=100)
        path = tmp_path / "t.npz"
        save_max_tree(RangeMaxTree(cube, 2), path)
        restored = load_max_tree(path)
        apply_max_updates(restored, [MaxAssignment((5,), 999)])
        assert restored.values[restored.height].ravel()[0] == 999


class TestFormatSafety:
    def test_wrong_kind_rejected(self, rng, tmp_path):
        cube = make_cube((5, 5), rng)
        path = tmp_path / "p.npz"
        save_prefix_sum(PrefixSumCube(cube), path)
        with pytest.raises(ValueError, match="expected"):
            load_blocked(path)

    def test_random_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro"):
            load_prefix_sum(path)
