"""Tests for structure persistence (save/load of precomputations)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.blocked import BlockedPrefixSumCube
from repro.core.operators import XOR
from repro.core.prefix_sum import PrefixSumCube
from repro.core.range_max import RangeMaxTree
from repro.index.registry import available_indexes, create_index
from repro.io import (
    load_blocked,
    load_index,
    load_max_tree,
    load_prefix_sum,
    save_blocked,
    save_index,
    save_max_tree,
    save_prefix_sum,
)
from repro.query.naive import naive_max_value, naive_range_sum
from repro.query.workload import (
    make_cube,
    random_box,
    random_query_arrays,
)

#: Representative construction params per persistable registry name;
#: dtypes chosen so exact round-tripping is observable (sub-word ints
#: must come back sub-word, not silently promoted to int64).
REGISTRY_CASES = {
    "prefix_sum": ({}, np.int64),
    "blocked_prefix_sum": ({"block_size": 5}, np.int32),
    "partial_prefix_sum": ({"prefix_dims": (0,)}, np.int64),
    "blocked_partial_prefix_sum": (
        {"prefix_dims": (1,), "block_size": 3},
        np.int64,
    ),
    "range_max_tree": ({"fanout": 3}, np.int16),
}


@pytest.fixture
def rng():
    return np.random.default_rng(179)


class TestPrefixSumRoundtrip:
    def test_roundtrip_via_file(self, rng, tmp_path):
        cube = make_cube((12, 9), rng)
        original = PrefixSumCube(cube)
        path = tmp_path / "prefix.npz"
        save_prefix_sum(original, path)
        restored = load_prefix_sum(path)
        assert np.array_equal(restored.prefix, original.prefix)
        assert np.array_equal(restored.source, cube)
        for _ in range(20):
            box = random_box(cube.shape, rng)
            assert restored.range_sum(box) == naive_range_sum(cube, box)

    def test_discarded_source_stays_discarded(self, rng, tmp_path):
        cube = make_cube((6, 6), rng)
        original = PrefixSumCube(cube, keep_source=False)
        path = tmp_path / "p.npz"
        save_prefix_sum(original, path)
        restored = load_prefix_sum(path)
        assert restored.source is None
        assert restored.cell((2, 3)) == cube[2, 3]

    def test_operator_preserved(self, rng, tmp_path):
        cube = rng.integers(0, 64, (6, 6), dtype=np.int64)
        original = PrefixSumCube(cube, XOR)
        path = tmp_path / "x.npz"
        save_prefix_sum(original, path)
        restored = load_prefix_sum(path)
        assert restored.operator.name == "xor"
        box = random_box(cube.shape, rng)
        assert restored.range_sum(box) == original.range_sum(box)

    def test_in_memory_buffer(self, rng):
        cube = make_cube((5, 5), rng)
        original = PrefixSumCube(cube)
        buffer = io.BytesIO()
        save_prefix_sum(original, buffer)
        buffer.seek(0)
        restored = load_prefix_sum(buffer)
        assert np.array_equal(restored.prefix, original.prefix)


class TestBlockedRoundtrip:
    def test_roundtrip(self, rng, tmp_path):
        cube = make_cube((30, 22), rng)
        original = BlockedPrefixSumCube(cube, 7)
        path = tmp_path / "blocked.npz"
        save_blocked(original, path)
        restored = load_blocked(path)
        assert restored.block_size == 7
        assert np.array_equal(
            restored.blocked_prefix, original.blocked_prefix
        )
        for _ in range(20):
            box = random_box(cube.shape, rng)
            assert restored.range_sum(box) == naive_range_sum(cube, box)


class TestMaxTreeRoundtrip:
    def test_roundtrip(self, rng, tmp_path):
        cube = make_cube((25, 18), rng, high=10**6)
        original = RangeMaxTree(cube, 3)
        path = tmp_path / "tree.npz"
        save_max_tree(original, path)
        restored = load_max_tree(path)
        assert restored.fanout == 3 and restored.height == original.height
        for level in range(1, original.height + 1):
            assert np.array_equal(
                restored.values[level], original.values[level]
            )
        for _ in range(20):
            box = random_box(cube.shape, rng)
            assert cube[restored.max_index(box)] == naive_max_value(
                cube, box
            )

    def test_updates_work_after_load(self, rng, tmp_path):
        from repro.core.max_update import MaxAssignment, apply_max_updates

        cube = make_cube((16,), rng, high=100)
        path = tmp_path / "t.npz"
        save_max_tree(RangeMaxTree(cube, 2), path)
        restored = load_max_tree(path)
        apply_max_updates(restored, [MaxAssignment((5,), 999)])
        assert restored.values[restored.height].ravel()[0] == 999


class TestRegistryRoundtrip:
    """The generic save/load path, parametrized over the registry: every
    persistable structure round-trips with exact dtypes and params."""

    def test_every_persistable_structure_has_a_case(self):
        assert set(REGISTRY_CASES) == set(
            available_indexes(persistable=True)
        )

    @pytest.mark.parametrize("name", sorted(REGISTRY_CASES))
    def test_roundtrip_preserves_dtype_and_answers(
        self, name, rng, tmp_path
    ):
        params, dtype = REGISTRY_CASES[name]
        cube = rng.integers(0, 100, size=(14, 11), dtype=dtype)
        original = create_index(name, cube, **params)
        path = tmp_path / f"{name}.npz"
        save_index(original, path)
        restored = load_index(path)
        assert type(restored) is type(original)
        assert restored.index_params() == original.index_params()
        for key, value in original.state_dict().items():
            back = restored.state_dict()[key]
            if isinstance(value, np.ndarray):
                assert back.dtype == value.dtype
                assert np.array_equal(back, value)
            else:
                assert back == value
        lows, highs = random_query_arrays(cube.shape, 15, rng)
        if name == "range_max_tree":
            exp_idx, exp_val = original.query_many(lows, highs)
            got_idx, got_val = restored.query_many(lows, highs)
            assert np.array_equal(exp_val, got_val)
            assert np.array_equal(exp_idx, got_idx)
        else:
            expected = original.query_many(lows, highs)
            got = restored.query_many(lows, highs)
            assert got.dtype == expected.dtype
            assert np.array_equal(got, expected)

    def test_instrumented_wrapper_is_looked_through(self, rng, tmp_path):
        from repro.index.protocol import InstrumentedIndex

        cube = make_cube((6, 6), rng)
        wrapped = InstrumentedIndex(create_index("prefix_sum", cube))
        path = tmp_path / "w.npz"
        save_index(wrapped, path)
        restored = load_index(path)
        assert np.array_equal(restored.prefix, wrapped.index.prefix)

    def test_engine_route_is_saveable(self, rng, tmp_path):
        """An engine's routed structure persists directly — no reach into
        private attributes needed."""
        from repro.query.engine import RangeQueryEngine

        cube = make_cube((9, 9), rng)
        engine = RangeQueryEngine(cube)
        path = tmp_path / "route.npz"
        save_index(engine.route("sum"), path)
        restored = load_index(path)
        box = random_box(cube.shape, rng)
        assert restored.query(box) == engine.sum(box)

    def test_unpersistable_structure_rejected(self, rng, tmp_path):
        from repro.sparse.sparse_cube import SparseCube

        sparse = SparseCube((50,), {(3,): 7, (20,): 2})
        index = create_index("sparse_sum_1d", sparse)
        with pytest.raises(ValueError, match="not persistable"):
            save_index(index, tmp_path / "s.npz")

    def test_unregistered_structure_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="not a registered"):
            save_index(object(), tmp_path / "o.npz")


class TestFormatSafety:
    def test_wrong_kind_rejected(self, rng, tmp_path):
        cube = make_cube((5, 5), rng)
        path = tmp_path / "p.npz"
        save_prefix_sum(PrefixSumCube(cube), path)
        with pytest.raises(ValueError, match="expected"):
            load_blocked(path)

    def test_random_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro"):
            load_prefix_sum(path)


class TestManifestRoundtrip:
    """Zero-copy persistence: spill files + JSON manifest, reopened by
    mapping the same files rather than copying."""

    @pytest.mark.parametrize("name", sorted(REGISTRY_CASES))
    def test_roundtrip_every_registry_case(self, name, rng, tmp_path):
        from repro.index.backend import MemmapBackend
        from repro.io import open_index, save_index_manifest

        params, dtype = REGISTRY_CASES[name]
        cube = make_cube((11, 8), rng).astype(dtype)
        backend = MemmapBackend(tmp_path / "spill")
        original = create_index(name, cube, backend=backend, **params)
        manifest = save_index_manifest(
            original, tmp_path / f"{name}.manifest.json"
        )
        restored = open_index(manifest)
        assert type(restored) is type(original)
        for key, value in original.state_dict().items():
            got = restored.state_dict()[key]
            if isinstance(value, np.ndarray):
                assert value.dtype == got.dtype, key
                assert np.array_equal(
                    np.asarray(value), np.asarray(got)
                ), key
            else:
                assert value == got, key

    def test_reopen_maps_the_same_files(self, rng, tmp_path):
        """The zero-copy contract: reopened arrays are backed by the
        original spill files, not copies."""
        from repro.index.backend import MemmapBackend, _backing_memmap
        from repro.io import open_index, save_index_manifest

        cube = make_cube((16, 12), rng)
        backend = MemmapBackend(tmp_path / "spill")
        original = create_index("prefix_sum", cube, backend=backend)
        manifest = save_index_manifest(original, tmp_path / "m.json")
        restored = open_index(manifest)
        backing = _backing_memmap(restored.prefix)
        assert backing is not None
        assert str(backing.filename).startswith(str(tmp_path / "spill"))

    def test_reopened_structure_answers_and_updates(self, rng, tmp_path):
        from repro.core.batch_update import PointUpdate
        from repro.index.backend import MemmapBackend
        from repro.io import open_index, save_index_manifest

        cube = make_cube((14, 10), rng)
        backend = MemmapBackend(tmp_path / "spill")
        original = create_index(
            "blocked_prefix_sum", cube, backend=backend, block_size=4
        )
        manifest = save_index_manifest(original, tmp_path / "m.json")
        restored = open_index(manifest)
        box = random_box(cube.shape, rng)
        assert restored.range_sum(box) == naive_range_sum(cube, box)
        restored.apply_updates([PointUpdate((3, 3), 17)])
        mutated = cube.copy()
        mutated[3, 3] += 17
        assert restored.range_sum(box) == naive_range_sum(mutated, box)

    def test_readonly_mode(self, rng, tmp_path):
        from repro.index.backend import MemmapBackend
        from repro.io import open_index, save_index_manifest

        cube = make_cube((9, 9), rng)
        backend = MemmapBackend(tmp_path / "spill")
        original = create_index("prefix_sum", cube, backend=backend)
        manifest = save_index_manifest(original, tmp_path / "m.json")
        restored = open_index(manifest, mode="r")
        assert np.array_equal(
            np.asarray(restored.prefix), np.asarray(original.prefix)
        )

    def test_manifest_is_relocatable(self, rng, tmp_path):
        """Manifest + spill dir move together as one bundle."""
        import shutil

        from repro.index.backend import MemmapBackend
        from repro.io import open_index, save_index_manifest

        bundle = tmp_path / "bundle"
        bundle.mkdir()
        cube = make_cube((8, 8), rng)
        backend = MemmapBackend(bundle / "spill")
        original = create_index("prefix_sum", cube, backend=backend)
        save_index_manifest(original, bundle / "m.json")
        moved = tmp_path / "elsewhere"
        shutil.move(str(bundle), str(moved))
        restored = open_index(moved / "m.json")
        assert np.array_equal(
            np.asarray(restored.prefix), original.prefix
        )

    def test_heap_structure_is_rejected(self, rng, tmp_path):
        """Only *tiny* metadata arrays may live inline; a real cell
        array without a spill file means the structure was built on the
        heap and belongs in save_index() instead."""
        from repro.io import save_index_manifest

        cube = make_cube((64, 64), rng)  # well past the inline cutoff
        original = create_index("prefix_sum", cube)
        with pytest.raises(ValueError, match="not file-backed"):
            save_index_manifest(original, tmp_path / "m.json")

    def test_mismatched_spill_file_is_rejected(self, rng, tmp_path):
        from repro.index.backend import MemmapBackend
        from repro.io import open_index, save_index_manifest

        cube = make_cube((8, 8), rng)
        backend = MemmapBackend(tmp_path / "spill")
        original = create_index("prefix_sum", cube, backend=backend)
        manifest = save_index_manifest(original, tmp_path / "m.json")
        # Corrupt one referenced file with a different-shaped array.
        victim = backend.spill_files[0]
        np.save(victim.with_suffix(""), np.zeros(3, dtype=np.int8))
        with pytest.raises(ValueError, match="does not match"):
            open_index(manifest)

    def test_non_manifest_file_is_rejected(self, tmp_path):
        from repro.io import open_index

        bogus = tmp_path / "bogus.json"
        bogus.write_text("{\"hello\": 1}\n")
        with pytest.raises(ValueError, match="not an index manifest"):
            open_index(bogus)
