"""Tests for the extended ("all"-augmented) cube baseline (paper §1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.cube.extended import ExtendedDataCube
from repro.instrumentation import AccessCounter
from repro.query.ranges import RangeQuery, RangeSpec
from repro.query.workload import make_cube, random_box


@pytest.fixture
def rng():
    return np.random.default_rng(71)


class TestConstruction:
    def test_shape_grows_by_one_per_dimension(self, rng):
        cube = make_cube((5, 6, 7), rng)
        extended = ExtendedDataCube(cube)
        assert extended.cells.shape == (6, 7, 8)
        assert extended.storage_cells == 6 * 7 * 8

    def test_all_slots_hold_group_bys(self, rng):
        cube = make_cube((4, 5), rng)
        extended = ExtendedDataCube(cube)
        assert np.array_equal(extended.cells[4, :5], cube.sum(axis=0))
        assert np.array_equal(extended.cells[:4, 5], cube.sum(axis=1))
        assert extended.cells[4, 5] == cube.sum()

    def test_base_cells_preserved(self, rng):
        cube = make_cube((4, 4), rng)
        extended = ExtendedDataCube(cube)
        assert np.array_equal(extended.cells[:4, :4], cube)


class TestSingletonQueries:
    def test_single_access_guarantee(self, rng):
        cube = make_cube((6, 7, 3), rng)
        extended = ExtendedDataCube(cube)
        counter = AccessCounter()
        value = extended.singleton((2, None, 1), counter)
        assert value == cube[2, :, 1].sum()
        assert counter.cube_cells == 1

    def test_all_all_all(self, rng):
        cube = make_cube((3, 3), rng)
        extended = ExtendedDataCube(cube)
        assert extended.singleton((None, None)) == cube.sum()

    def test_wrong_arity(self, rng):
        extended = ExtendedDataCube(make_cube((3, 3), rng))
        with pytest.raises(ValueError):
            extended.singleton((1,))


class TestRangeQueries:
    def test_matches_direct_sum(self, rng):
        cube = make_cube((8, 9, 4), rng)
        extended = ExtendedDataCube(cube)
        for _ in range(40):
            box = random_box(cube.shape, rng)
            assert extended.range_sum(box) == cube[box.slices()].sum()

    def test_insurance_example_cost(self, rng):
        """§1: 16 age values × 9 years × all × one type = 144 accesses."""
        cube = make_cube((100, 10, 50, 3), rng, high=5)
        extended = ExtendedDataCube(cube)
        query = RangeQuery(
            (
                RangeSpec.between(36, 51),
                RangeSpec.between(1, 9),
                RangeSpec.all(),
                RangeSpec.at(1),
            )
        )
        counter = AccessCounter()
        value = extended.range_sum(query, counter)
        assert counter.cube_cells == 16 * 9 * 1 * 1
        assert value == cube[36:52, 1:10, :, 1].sum()

    def test_full_range_collapses_to_all_slot(self, rng):
        """A RANGE spec covering the whole domain costs one slot, like all."""
        cube = make_cube((5, 6), rng)
        extended = ExtendedDataCube(cube)
        counter = AccessCounter()
        extended.range_sum(Box((0, 2), (4, 4)), counter)
        assert counter.cube_cells == 3  # dim0 full → all slot; dim1: 3 cells

    def test_range_query_object(self, rng):
        cube = make_cube((6, 6), rng)
        extended = ExtendedDataCube(cube)
        query = RangeQuery((RangeSpec.between(1, 3), RangeSpec.all()))
        assert extended.range_sum(query) == cube[1:4].sum()

    def test_dimension_mismatch(self, rng):
        extended = ExtendedDataCube(make_cube((4, 4), rng))
        with pytest.raises(ValueError):
            extended.range_sum(Box((0,), (1,)))


class TestMaintenance:
    """Updating the extended cube: 2^d slots per base-cell change."""

    def test_update_touches_2_to_the_d_cells(self, rng):
        cube = make_cube((5, 6, 3), rng)
        extended = ExtendedDataCube(cube)
        writes = extended.apply_update((2, 4, 1), 10)
        assert writes == 8

    def test_update_keeps_every_aggregate_consistent(self, rng):
        cube = make_cube((5, 6, 3), rng).astype(np.int64)
        extended = ExtendedDataCube(cube)
        mirror = cube.copy()
        for _ in range(10):
            index = tuple(int(rng.integers(0, n)) for n in cube.shape)
            delta = int(rng.integers(-10, 20))
            extended.apply_update(index, delta)
            mirror[index] += delta
        rebuilt = ExtendedDataCube(mirror)
        assert np.array_equal(extended.cells, rebuilt.cells)

    def test_queries_exact_after_updates(self, rng):
        cube = make_cube((8, 8), rng).astype(np.int64)
        extended = ExtendedDataCube(cube)
        extended.apply_update((3, 3), 100)
        mirror = cube.copy()
        mirror[3, 3] += 100
        for _ in range(20):
            box = random_box((8, 8), rng)
            assert extended.range_sum(box) == mirror[box.slices()].sum()
        assert extended.singleton((None, 3)) == mirror[:, 3].sum()

    def test_out_of_bounds_rejected(self, rng):
        extended = ExtendedDataCube(make_cube((4, 4), rng))
        with pytest.raises(ValueError):
            extended.apply_update((4, 0), 1)

    def test_wrong_arity_rejected(self, rng):
        extended = ExtendedDataCube(make_cube((4, 4), rng))
        with pytest.raises(ValueError):
            extended.apply_update((1,), 1)
