"""Tests for multi-measure cubes (the paper's plural measure attributes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cube.dimensions import CategoricalDimension, IntegerDimension
from repro.cube.measures import MeasureSet


@pytest.fixture
def rng():
    return np.random.default_rng(233)


def dims():
    return [
        IntegerDimension("month", 1, 12),
        CategoricalDimension("region", ["n", "s"]),
    ]


def sample_records(rng, count=800):
    return [
        {
            "month": int(rng.integers(1, 13)),
            "region": ["n", "s"][int(rng.integers(0, 2))],
            "revenue": int(rng.integers(100, 1000)),
            "cost": int(rng.integers(50, 500)),
        }
        for _ in range(count)
    ]


class TestConstruction:
    def test_from_records_builds_every_measure(self, rng):
        records = sample_records(rng)
        ms = MeasureSet.from_records(records, dims(), ["revenue", "cost"])
        assert set(ms.measure_names) == {"revenue", "cost"}
        assert ms.shape == (12, 2)
        assert ms.cube("revenue").measures.sum() == sum(
            r["revenue"] for r in records
        )
        assert ms.cube("cost").measures.sum() == sum(
            r["cost"] for r in records
        )

    def test_empty_measures_rejected(self, rng):
        with pytest.raises(ValueError):
            MeasureSet.from_records([], dims(), [])
        with pytest.raises(ValueError):
            MeasureSet(dims(), {})

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            MeasureSet(dims(), {"x": np.zeros((3, 2))})

    def test_unknown_measure(self, rng):
        ms = MeasureSet.from_records(
            sample_records(rng, 50), dims(), ["revenue"]
        )
        with pytest.raises(KeyError, match="unknown measure"):
            ms.cube("profit")


class TestQueries:
    @pytest.fixture
    def measure_set(self, rng):
        self.records = sample_records(rng)
        ms = MeasureSet.from_records(
            self.records, dims(), ["revenue", "cost"]
        )
        ms.build_indexes(block_size=1, max_fanout=3)
        return ms

    def test_per_measure_sums(self, measure_set):
        got = measure_set.sum("revenue", month=(3, 8), region="n")
        want = sum(
            r["revenue"]
            for r in self.records
            if 3 <= r["month"] <= 8 and r["region"] == "n"
        )
        assert got == want

    def test_shared_counts(self, measure_set):
        want = sum(1 for r in self.records if r["month"] == 6)
        assert measure_set.count(month=6) == want

    def test_average_each_measure(self, measure_set):
        rows = [r for r in self.records if r["region"] == "s"]
        assert measure_set.average("cost", region="s") == pytest.approx(
            sum(r["cost"] for r in rows) / len(rows)
        )

    def test_max_and_min(self, measure_set):
        _, top = measure_set.max("revenue")
        assert top == measure_set.cube("revenue").measures.max()
        _, bottom = measure_set.min("cost", month=(1, 6))
        assert bottom == measure_set.cube("cost").measures[:6].min()

    def test_ratio(self, measure_set):
        margin = measure_set.ratio("cost", "revenue", month=(1, 12))
        total_cost = sum(r["cost"] for r in self.records)
        total_revenue = sum(r["revenue"] for r in self.records)
        assert margin == pytest.approx(total_cost / total_revenue)

    def test_ratio_zero_denominator(self, rng):
        ms = MeasureSet(
            dims(),
            {
                "a": np.ones((12, 2), dtype=np.int64),
                "b": np.zeros((12, 2), dtype=np.int64),
            },
        )
        with pytest.raises(ZeroDivisionError):
            ms.ratio("a", "b", month=(1, 3))
