"""Tests for the dimension encoders (paper §2's rank-domain mapping)."""

from __future__ import annotations

import datetime

import pytest

from repro.cube.dimensions import (
    CategoricalDimension,
    DateDimension,
    IntegerDimension,
    dimension_shape,
)


class TestIntegerDimension:
    def test_encode_decode_roundtrip(self):
        dim = IntegerDimension("age", 1, 100)
        assert dim.size == 100
        for value in (1, 37, 100):
            assert dim.decode(dim.encode(value)) == value

    def test_paper_year_domain(self):
        dim = IntegerDimension("year", 1987, 1996)
        assert dim.size == 10
        assert dim.encode(1987) == 0
        assert dim.encode(1996) == 9

    def test_out_of_domain(self):
        dim = IntegerDimension("age", 1, 100)
        with pytest.raises(KeyError):
            dim.encode(0)
        with pytest.raises(KeyError):
            dim.encode(101)

    def test_decode_out_of_range(self):
        dim = IntegerDimension("age", 1, 10)
        with pytest.raises(KeyError):
            dim.decode(10)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            IntegerDimension("x", 5, 4)

    def test_encode_range(self):
        dim = IntegerDimension("age", 1, 100)
        assert dim.encode_range(37, 52) == (36, 51)

    def test_empty_range_rejected(self):
        dim = IntegerDimension("age", 1, 100)
        with pytest.raises(ValueError):
            dim.encode_range(52, 37)


class TestCategoricalDimension:
    def test_rank_order_is_construction_order(self):
        dim = CategoricalDimension("type", ["home", "auto", "health"])
        assert dim.encode("home") == 0
        assert dim.encode("health") == 2
        assert dim.decode(1) == "auto"

    def test_unknown_value(self):
        dim = CategoricalDimension("type", ["a", "b"])
        with pytest.raises(KeyError):
            dim.encode("c")

    def test_unhashable_value(self):
        dim = CategoricalDimension("type", ["a"])
        with pytest.raises(KeyError):
            dim.encode(["not", "hashable"])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDimension("x", ["a", "a"])

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDimension("x", [])

    def test_range_follows_declared_order(self):
        dim = CategoricalDimension("grade", ["low", "mid", "high"])
        assert dim.encode_range("low", "mid") == (0, 1)


class TestDateDimension:
    def test_day_offsets(self):
        start = datetime.date(2020, 1, 1)
        dim = DateDimension("day", start, 366)
        assert dim.encode(start) == 0
        assert dim.encode(datetime.date(2020, 3, 1)) == 60
        assert dim.decode(60) == datetime.date(2020, 3, 1)

    def test_non_date_rejected(self):
        dim = DateDimension("day", datetime.date(2020, 1, 1), 10)
        with pytest.raises(KeyError):
            dim.encode("2020-01-01")

    def test_out_of_window(self):
        dim = DateDimension("day", datetime.date(2020, 1, 1), 10)
        with pytest.raises(KeyError):
            dim.encode(datetime.date(2020, 1, 11))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DateDimension("day", datetime.date(2020, 1, 1), 0)


def test_dimension_shape():
    dims = [
        IntegerDimension("age", 1, 100),
        IntegerDimension("year", 1987, 1996),
        CategoricalDimension("state", [f"s{i}" for i in range(50)]),
        CategoricalDimension("type", ["home", "auto", "health"]),
    ]
    # The paper's insurance example: a 100 × 10 × 50 × 3 cube.
    assert dimension_shape(dims) == (100, 10, 50, 3)


def test_repr_mentions_name_and_size():
    dim = IntegerDimension("age", 1, 100)
    assert "age" in repr(dim) and "100" in repr(dim)
