"""Tests for the user-facing DataCube (record ingest + named queries)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cube.builder import build_measure_array
from repro.cube.datacube import DataCube
from repro.cube.dimensions import CategoricalDimension, IntegerDimension
from repro.instrumentation import AccessCounter


@pytest.fixture
def rng():
    return np.random.default_rng(61)


def insurance_dimensions():
    """A scaled-down version of the paper's insurance cube (§1)."""
    return [
        IntegerDimension("age", 1, 40),
        IntegerDimension("year", 1987, 1996),
        CategoricalDimension("type", ["home", "auto", "health"]),
    ]


def insurance_records(rng, count=3000):
    types = ["home", "auto", "health"]
    return [
        {
            "age": int(rng.integers(1, 41)),
            "year": int(rng.integers(1987, 1997)),
            "type": types[int(rng.integers(0, 3))],
            "revenue": int(rng.integers(1, 1000)),
        }
        for _ in range(count)
    ]


class TestBuilder:
    def test_measures_and_counts(self):
        dims = [IntegerDimension("x", 0, 2)]
        records = [
            {"x": 0, "v": 5},
            {"x": 0, "v": 7},
            {"x": 2, "v": 1},
        ]
        measures, counts = build_measure_array(records, dims, "v")
        assert list(measures) == [12, 0, 1]
        assert list(counts) == [2, 0, 1]

    def test_missing_measure_key(self):
        dims = [IntegerDimension("x", 0, 2)]
        with pytest.raises(KeyError):
            build_measure_array([{"x": 1}], dims, "v")

    def test_value_outside_domain(self):
        dims = [IntegerDimension("x", 0, 2)]
        with pytest.raises(KeyError):
            build_measure_array([{"x": 5, "v": 1}], dims, "v")


class TestDataCubeConstruction:
    def test_shape_matches_dimensions(self, rng):
        cube = DataCube.from_records(
            insurance_records(rng), insurance_dimensions(), "revenue"
        )
        assert cube.shape == (40, 10, 3)
        assert cube.ndim == 3

    def test_shape_mismatch_rejected(self):
        dims = [IntegerDimension("x", 0, 4)]
        with pytest.raises(ValueError, match="shape"):
            DataCube(dims, np.zeros((4,)))

    def test_duplicate_names_rejected(self):
        dims = [IntegerDimension("x", 0, 1), IntegerDimension("x", 0, 1)]
        with pytest.raises(ValueError, match="duplicate"):
            DataCube(dims, np.zeros((2, 2)))

    def test_dimension_lookup(self, rng):
        cube = DataCube.from_records(
            insurance_records(rng), insurance_dimensions(), "revenue"
        )
        assert cube.dimension("year").encode(1990) == 3


class TestQueries:
    @pytest.fixture
    def cube_and_records(self, rng):
        records = insurance_records(rng)
        cube = DataCube.from_records(
            records, insurance_dimensions(), "revenue"
        )
        cube.build_index(block_size=5, max_fanout=3)
        return cube, records

    def test_paper_intro_query(self, cube_and_records):
        """§1: revenue for ages 18–32, years 1988–1996, auto insurance."""
        cube, records = cube_and_records
        got = cube.sum(age=(18, 32), year=(1988, 1996), type="auto")
        want = sum(
            r["revenue"]
            for r in records
            if 18 <= r["age"] <= 32
            and 1988 <= r["year"] <= 1996
            and r["type"] == "auto"
        )
        assert got == want

    def test_all_dimension_defaults(self, cube_and_records):
        cube, records = cube_and_records
        assert cube.sum() == sum(r["revenue"] for r in records)

    def test_singleton_condition(self, cube_and_records):
        cube, records = cube_and_records
        got = cube.sum(year=1995)
        want = sum(r["revenue"] for r in records if r["year"] == 1995)
        assert got == want

    def test_count_and_average(self, cube_and_records):
        cube, records = cube_and_records
        matching = [r for r in records if r["type"] == "home"]
        assert cube.count(type="home") == len(matching)
        assert cube.average(type="home") == pytest.approx(
            sum(r["revenue"] for r in matching) / len(matching)
        )

    def test_max_decodes_attributes(self, cube_and_records):
        cube, _ = cube_and_records
        where, value = cube.max(age=(10, 20))
        assert 10 <= where["age"] <= 20
        assert where["type"] in ("home", "auto", "health")
        sub = cube.measures[9:20]
        assert value == sub.max()

    def test_min_query(self, cube_and_records):
        cube, _ = cube_and_records
        _, value = cube.min(year=(1990, 1993))
        assert value == cube.measures[:, 3:7, :].min()

    def test_counter_threading(self, cube_and_records):
        cube, _ = cube_and_records
        counter = AccessCounter()
        cube.sum(age=(5, 35), counter=counter)
        assert counter.total > 0

    def test_unknown_dimension_rejected(self, cube_and_records):
        cube, _ = cube_and_records
        with pytest.raises(KeyError, match="unknown"):
            cube.sum(salary=(1, 2))

    def test_average_without_counts_uses_cells(self, rng):
        measures = rng.integers(1, 10, (4, 4)).astype(np.int64)
        dims = [IntegerDimension("a", 0, 3), IntegerDimension("b", 0, 3)]
        cube = DataCube(dims, measures)
        assert cube.count(a=(0, 1)) == 8  # cell count fallback

    def test_default_engine_built_lazily(self, rng):
        measures = rng.integers(1, 10, (4, 4)).astype(np.int64)
        dims = [IntegerDimension("a", 0, 3), IntegerDimension("b", 0, 3)]
        cube = DataCube(dims, measures)
        assert cube.sum(a=(1, 2)) == measures[1:3].sum()


class TestParseQuery:
    def test_kinds(self, rng):
        cube = DataCube.from_records(
            insurance_records(rng, 100), insurance_dimensions(), "revenue"
        )
        query = cube.parse_query(
            {"age": (18, 32), "year": 1995, "type": None}
        )
        from repro.query.ranges import SpecKind

        assert query.specs[0].kind is SpecKind.RANGE
        assert query.specs[1].kind is SpecKind.SINGLETON
        assert query.specs[2].kind is SpecKind.ALL

    def test_categorical_range(self, rng):
        cube = DataCube.from_records(
            insurance_records(rng, 100), insurance_dimensions(), "revenue"
        )
        query = cube.parse_query({"type": ("home", "auto")})
        assert query.specs[2].resolve(3) == (0, 1)


class TestCuboidProjection:
    """§9's cuboids through the public API."""

    @pytest.fixture
    def cube(self, rng):
        records = insurance_records(rng, 2000)
        return DataCube.from_records(
            records, insurance_dimensions(), "revenue"
        )

    def test_projection_sums_out_dropped_dims(self, cube):
        projected = cube.cuboid(["age", "year"])
        assert projected.shape == (40, 10)
        assert np.array_equal(
            projected.measures, cube.measures.sum(axis=2)
        )
        assert np.array_equal(projected.counts, cube.counts.sum(axis=2))

    def test_projection_answers_match_base(self, cube):
        projected = cube.cuboid(["year"])
        assert projected.sum(year=(1990, 1994)) == cube.sum(
            year=(1990, 1994)
        )
        assert projected.count(year=1995) == cube.count(year=1995)

    def test_projection_keeps_encoders(self, cube):
        projected = cube.cuboid(["type"])
        assert projected.sum(type="auto") == cube.sum(type="auto")

    def test_order_follows_base_axes(self, cube):
        projected = cube.cuboid(["type", "age"])  # reordered on purpose
        assert [d.name for d in projected.dimensions] == ["age", "type"]

    def test_empty_projection_rejected(self, cube):
        with pytest.raises(ValueError):
            cube.cuboid([])

    def test_duplicate_names_rejected(self, cube):
        with pytest.raises(ValueError):
            cube.cuboid(["age", "age"])

    def test_unknown_name_rejected(self, cube):
        with pytest.raises(KeyError):
            cube.cuboid(["salary"])

    def test_identity_projection(self, cube):
        projected = cube.cuboid(["age", "year", "type"])
        assert np.array_equal(projected.measures, cube.measures)


class TestIncrementalLoad:
    """DataCube.absorb: the §5 nightly batch through the public API."""

    def test_absorb_keeps_everything_exact(self, rng):
        records = insurance_records(rng, 1000)
        cube = DataCube.from_records(
            records, insurance_dimensions(), "revenue"
        )
        cube.build_index(block_size=4, max_fanout=3)
        new_records = insurance_records(rng, 300)
        touched = cube.absorb(new_records, measure="revenue")
        assert touched > 0
        everything = records + new_records
        assert cube.sum() == sum(r["revenue"] for r in everything)
        got = cube.sum(age=(10, 25), type="auto")
        want = sum(
            r["revenue"]
            for r in everything
            if 10 <= r["age"] <= 25 and r["type"] == "auto"
        )
        assert got == want
        assert cube.count(year=1995) == sum(
            1 for r in everything if r["year"] == 1995
        )
        _, top = cube.max(year=(1990, 1996))
        assert top == cube.measures[:, 3:, :].max()

    def test_absorb_before_index_is_cheap(self, rng):
        records = insurance_records(rng, 200)
        cube = DataCube.from_records(
            records, insurance_dimensions(), "revenue"
        )
        cube.absorb(insurance_records(rng, 100), measure="revenue")
        # Index built afterwards sees the merged data.
        cube.build_index()
        assert cube.sum() == int(cube.measures.sum())

    def test_absorb_rejects_out_of_domain(self, rng):
        cube = DataCube.from_records(
            insurance_records(rng, 50), insurance_dimensions(), "revenue"
        )
        with pytest.raises(KeyError):
            cube.absorb(
                [{"age": 999, "year": 1990, "type": "auto", "revenue": 1}],
                measure="revenue",
            )
