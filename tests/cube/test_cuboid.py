"""Tests for the cuboid lattice (paper §9)."""

from __future__ import annotations

import pytest

from repro.cube.cuboid import (
    Cuboid,
    all_cuboids,
    ancestors_within,
    is_ancestor,
    is_descendant,
    normalize_key,
    proper_descendants,
)


class TestKeys:
    def test_normalize_sorts_and_dedupes(self):
        assert normalize_key([2, 0, 2]) == (0, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize_key([-1])

    def test_all_cuboids_count(self):
        """A 3-d cube has 2^3 − 1 = 7 non-empty cuboids (§9's example)."""
        assert len(all_cuboids(3)) == 7
        assert len(all_cuboids(3, include_empty=True)) == 8

    def test_all_cuboids_content(self):
        keys = set(all_cuboids(2))
        assert keys == {(0,), (1,), (0, 1)}


class TestRelations:
    def test_paper_example(self):
        """§9: <d1, d3> is a descendant of <d1, d2, d3> and an ancestor
        of <d3>."""
        assert is_descendant((0, 2), (0, 1, 2))
        assert is_ancestor((0, 2), (2,))

    def test_self_relation(self):
        assert is_ancestor((0, 1), (0, 1))
        assert is_descendant((0, 1), (0, 1))

    def test_unrelated(self):
        assert not is_ancestor((0,), (1,))
        assert not is_descendant((0,), (1,))

    def test_proper_descendants(self):
        assert set(proper_descendants((0, 1, 2))) == {
            (0,),
            (1,),
            (2,),
            (0, 1),
            (0, 2),
            (1, 2),
        }

    def test_ancestors_within(self):
        universe = [(0,), (0, 1), (1, 2), (0, 1, 2)]
        assert ancestors_within((0,), universe) == [(0,), (0, 1), (0, 1, 2)]


class TestCuboidRecord:
    def test_from_shape(self):
        cuboid = Cuboid.from_shape((2, 0), (10, 20, 30))
        assert cuboid.key == (0, 2)
        assert cuboid.sizes == (10, 30)
        assert cuboid.cells == 300
        assert cuboid.ndim == 2

    def test_out_of_range_dimension(self):
        with pytest.raises(ValueError):
            Cuboid.from_shape((3,), (10, 20))
