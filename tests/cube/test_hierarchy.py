"""Tests for hierarchical dimensions (drill-down as contiguous ranges)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cube.datacube import DataCube
from repro.cube.dimensions import CategoricalDimension
from repro.cube.hierarchy import (
    HierarchicalDimension,
    LevelValue,
    month_hierarchy,
)
from repro.instrumentation import AccessCounter


@pytest.fixture
def rng():
    return np.random.default_rng(277)


def size_hierarchy():
    """A small hand-built hierarchy: 8 sizes → 3 tiers."""
    return HierarchicalDimension(
        "size",
        ["xs", "s", "m", "l", "xl", "2xl", "3xl", "4xl"],
        {
            "tier": [("small", 2), ("regular", 3), ("big", 3)],
        },
    )


class TestConstruction:
    def test_leaf_encoding(self):
        dim = size_hierarchy()
        assert dim.encode("m") == 2
        assert dim.decode(5) == "2xl"
        assert dim.size == 8

    def test_level_ranges_tile_the_domain(self):
        dim = size_hierarchy()
        assert dim.level_range("tier", "small") == (0, 1)
        assert dim.level_range("tier", "regular") == (2, 4)
        assert dim.level_range("tier", "big") == (5, 7)
        assert dim.labels("tier") == ("small", "regular", "big")

    def test_incomplete_level_rejected(self):
        with pytest.raises(ValueError, match="covers"):
            HierarchicalDimension(
                "x", ["a", "b", "c"], {"lv": [("g", 2)]}
            )

    def test_duplicate_label_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            HierarchicalDimension(
                "x", ["a", "b"], {"lv": [("g", 1), ("g", 1)]}
            )

    def test_zero_size_group_rejected(self):
        with pytest.raises(ValueError, match="non-positive"):
            HierarchicalDimension(
                "x", ["a", "b"], {"lv": [("g", 0), ("h", 2)]}
            )

    def test_unknown_level_and_label(self):
        dim = size_hierarchy()
        with pytest.raises(KeyError, match="no level"):
            dim.level_range("family", "small")
        with pytest.raises(KeyError, match="not a group"):
            dim.level_range("tier", "huge")

    def test_rollup_sizes(self):
        assert size_hierarchy().rollup_sizes("tier") == (2, 3, 3)


class TestMonthHierarchy:
    def test_shape(self):
        dim = month_hierarchy("month", [2023, 2024])
        assert dim.size == 24
        assert dim.level_range("year", "2024") == (12, 23)
        assert dim.level_range("quarter", "2023-Q4") == (9, 11)
        assert dim.rollup_sizes("quarter") == (3,) * 8

    def test_empty_years_rejected(self):
        with pytest.raises(ValueError):
            month_hierarchy("m", [])


class TestLevelValueResolution:
    def test_single_group(self):
        dim = size_hierarchy()
        assert dim.resolve_level_value(
            LevelValue("tier", "regular")
        ) == (2, 4)

    def test_label_span(self):
        dim = size_hierarchy()
        assert dim.resolve_level_value(
            LevelValue("tier", "small", "regular")
        ) == (0, 4)

    def test_reversed_span_rejected(self):
        dim = size_hierarchy()
        with pytest.raises(ValueError, match="reversed"):
            dim.resolve_level_value(
                LevelValue("tier", "big", "small")
            )


class TestThroughDataCube:
    @pytest.fixture
    def cube(self, rng):
        month = month_hierarchy("month", [2023, 2024])
        region = CategoricalDimension("region", ["n", "s"])
        measures = rng.integers(0, 100, (24, 2)).astype(np.int64)
        cube = DataCube([month, region], measures)
        cube.build_index(block_size=3, max_fanout=4)  # b = quarter size
        return cube

    def test_quarter_query(self, cube):
        got = cube.sum(month=LevelValue("quarter", "2024-Q2"))
        assert got == int(cube.measures[15:18].sum())

    def test_year_query(self, cube):
        got = cube.sum(month=LevelValue("year", "2023"))
        assert got == int(cube.measures[:12].sum())

    def test_quarter_span(self, cube):
        got = cube.sum(
            month=LevelValue("quarter", "2023-Q3", "2024-Q1"),
            region="n",
        )
        assert got == int(cube.measures[6:15, 0].sum())

    def test_leaf_queries_still_work(self, cube):
        got = cube.sum(month=("2023-02", "2023-05"))
        assert got == int(cube.measures[1:5].sum())
        assert cube.sum(month="2024-12") == int(cube.measures[23].sum())

    def test_level_value_on_flat_dimension_rejected(self, cube):
        with pytest.raises(TypeError, match="no hierarchy"):
            cube.sum(region=LevelValue("tier", "n"))

    def test_block_aligned_level_queries_avoid_raw_scans(self, cube):
        """With b = 3 (the quarter fan-out), quarter and year queries are
        block-aligned and resolve from P alone — the §4 alignment story."""
        for label in ("2023-Q1", "2023-Q3", "2024-Q4"):
            counter = AccessCounter()
            cube.sum(month=LevelValue("quarter", label), counter=counter)
            assert counter.cube_cells == 0, label

    def test_max_at_a_level(self, cube):
        where, value = cube.max(month=LevelValue("year", "2024"))
        assert value == int(cube.measures[12:].max())
        assert where["month"].startswith("2024")
