"""The adaptive controller: hot swaps under live traffic, bit for bit.

The load-bearing guarantee: a plan swap is *invisible* in served
answers.  Queries racing the swap (including coalesced batches running
on pool threads) and updates landing mid-build must all come back
exactly as an untouched reference engine answers them.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.optimizer.materialize import MaterializedCuboidSet
from repro.serving import (
    AdaptiveController,
    DriftPhase,
    SwapInFlight,
    generate_drifting_requests,
)
from repro.serving.service import QueryService, ServeConfig

SHAPE = (24, 24, 8)


def make_service(**overrides) -> QueryService:
    config = ServeConfig(
        coalesce_window_s=overrides.pop("coalesce_window_s", 0.0),
        adaptive_min_weight=4.0,
        observer_decay=overrides.pop("observer_decay", 1.0),
        **overrides,
    )
    service = QueryService(config)
    rng = np.random.default_rng(0xADA5)
    service.register_cube(
        "c", rng.integers(0, 50, size=SHAPE, dtype=np.int64)
    )
    return service


def hot_payload(i: int) -> dict:
    lo = i % 8
    return {
        "cube": "c",
        "op": "sum",
        "ranges": [[lo, lo + 11], [lo, lo + 11], None],
    }


async def drive_hot_traffic(service: QueryService, n: int = 40) -> None:
    for i in range(n):
        await service.query(hot_payload(i))


def expected(service: QueryService, payload: dict) -> int:
    base = service.cubes["c"].base
    slices = tuple(
        slice(None) if r is None else slice(r[0], r[1] + 1)
        for r in payload["ranges"]
    )
    return int(base[slices].sum())


class TestControllerCycle:
    def test_step_swaps_once_then_holds(self) -> None:
        async def main() -> None:
            service = make_service()
            controller = AdaptiveController(service)
            await drive_hot_traffic(service)
            first = await controller.step("c")
            assert first is not None and first.should_swap
            assert service.cubes["c"].plan
            assert controller.swaps == 1
            second = await controller.step("c")
            assert second is not None and not second.should_swap
            assert controller.holds == 1
            assert len(service.cubes["c"].swap_history) == 1
            await service.close()

        asyncio.run(main())

    def test_step_skips_unknown_and_quarantined(self) -> None:
        async def main() -> None:
            service = make_service()
            controller = AdaptiveController(service)
            assert await controller.step("nope") is None
            service.cubes["c"].healthy = False
            assert await controller.step("c") is None
            await service.close()

        asyncio.run(main())

    def test_run_cycle_isolates_per_cube_failures(self) -> None:
        async def main() -> None:
            service = make_service()
            await drive_hot_traffic(service)
            controller = AdaptiveController(service, hysteresis=0.5)
            deltas = await controller.run_cycle()
            assert deltas == {}
            assert controller.last_error is not None
            assert controller.last_error.startswith("c:")
            assert "hysteresis" in controller.last_error
            assert controller.cycles == 1
            await service.close()

        asyncio.run(main())

    def test_background_loop_start_stop(self) -> None:
        async def main() -> None:
            service = make_service()
            async with AdaptiveController(
                service, interval_s=0.01
            ) as controller:
                await drive_hot_traffic(service)
                for _ in range(200):
                    await asyncio.sleep(0.01)
                    if controller.swaps:
                        break
            assert controller.swaps >= 1
            assert not controller.stats()["running"]
            await service.close()

        asyncio.run(main())


class TestHotSwapDifferential:
    def test_answers_identical_across_mid_traffic_swap(self) -> None:
        """Queries racing the swap agree exactly with direct numpy."""

        async def main() -> None:
            service = make_service(coalesce_window_s=0.002)
            controller = AdaptiveController(service)
            await drive_hot_traffic(service)

            async def ask(i: int) -> None:
                payload = hot_payload(i)
                want = expected(service, payload)
                result = await service.query(payload)
                assert result["value"] == want, payload

            # Fire a wave of concurrent queries (coalescer on) and the
            # swap in the same gather: requests overlap the build, the
            # write-locked install, and both plans' serving windows.
            before = service.cubes["c"].generation
            await asyncio.gather(
                *(ask(i) for i in range(32)),
                controller.step("c"),
                *(ask(i) for i in range(32, 64)),
            )
            assert controller.swaps == 1
            assert service.cubes["c"].generation == before + 1
            # And the new plan serves the same numbers afterwards.
            for i in range(16):
                payload = hot_payload(i)
                result = await service.query(payload)
                assert result["value"] == expected(service, payload)
            await service.close()

        asyncio.run(main())

    def test_updates_during_build_are_replayed(self) -> None:
        """Deltas accepted while the new set builds appear in it."""

        async def main() -> None:
            service = make_service()
            controller = AdaptiveController(service)
            await drive_hot_traffic(service)
            delta = service.plan_delta(
                service.cubes["c"], service.cubes["c"].observer.snapshot()
            )
            assert delta.should_swap

            build_started = asyncio.Event()
            release_build = threading.Event()
            loop = asyncio.get_running_loop()
            real_build = MaterializedCuboidSet

            class SlowBuild(MaterializedCuboidSet):
                def __init__(self, *args, **kwargs):
                    loop.call_soon_threadsafe(build_started.set)
                    assert release_build.wait(10.0)
                    real_build.__init__(self, *args, **kwargs)

            import repro.serving.adaptive as adaptive_module

            adaptive_module.MaterializedCuboidSet = SlowBuild
            try:
                cube = service.cubes["c"]
                swap = asyncio.create_task(
                    controller.actuate(cube, delta)
                )
                await build_started.wait()
                assert cube.pending_design_updates is not None
                # Updates land on the LIVE tiers while the build blocks.
                await service.update(
                    {
                        "cube": "c",
                        "updates": [
                            {"index": [0, 0, 0], "delta": 7},
                            {"index": [5, 5, 1], "delta": -3},
                        ],
                    }
                )
                assert len(cube.pending_design_updates) == 2
                release_build.set()
                await swap
            finally:
                adaptive_module.MaterializedCuboidSet = real_build
            assert cube.pending_design_updates is None
            assert cube.swap_history[-1]["replayed_updates"] == 2
            # The materialized tier saw the mid-build deltas: a query
            # covering the updated cells matches the mutated base.
            payload = {
                "cube": "c",
                "op": "sum",
                "ranges": [[0, 6], [0, 6], None],
            }
            result = await service.query(payload)
            assert result["tier"] == "materialized"
            assert result["value"] == expected(service, payload)
            await service.close()

        asyncio.run(main())

    def test_second_actuation_while_building_is_refused(self) -> None:
        async def main() -> None:
            service = make_service()
            controller = AdaptiveController(service)
            await drive_hot_traffic(service)
            cube = service.cubes["c"]
            delta = service.plan_delta(cube, cube.observer.snapshot())
            cube.pending_design_updates = []  # simulate in-flight build
            with pytest.raises(SwapInFlight):
                await controller.actuate(cube, delta)
            cube.pending_design_updates = None
            await service.close()

        asyncio.run(main())

    def test_failed_build_leaves_incumbent_serving(self) -> None:
        async def main() -> None:
            service = make_service()
            controller = AdaptiveController(service)
            await drive_hot_traffic(service)
            cube = service.cubes["c"]
            delta = service.plan_delta(cube, cube.observer.snapshot())

            import repro.serving.adaptive as adaptive_module

            real_build = MaterializedCuboidSet

            def boom(*args, **kwargs):
                raise RuntimeError("allocator on fire")

            adaptive_module.MaterializedCuboidSet = boom
            try:
                with pytest.raises(RuntimeError, match="on fire"):
                    await controller.actuate(cube, delta)
            finally:
                adaptive_module.MaterializedCuboidSet = real_build
            assert cube.pending_design_updates is None
            assert cube.cuboids is None  # incumbent (none) untouched
            payload = hot_payload(0)
            result = await service.query(payload)
            assert result["value"] == expected(service, payload)
            await service.close()

        asyncio.run(main())


class TestEndpoints:
    def test_advise_dry_run_does_not_actuate(self) -> None:
        async def main() -> None:
            service = make_service()
            await drive_hot_traffic(service)
            out = await service.advise({"cube": "c"})
            assert out["delta"]["should_swap"]
            assert out["delta"]["builds"]
            assert out["window"]["window_queries"] == 40
            assert service.cubes["c"].plan == ()  # nothing happened
            await service.close()

        asyncio.run(main())

    def test_advise_accepts_overrides_and_rejects_junk(self) -> None:
        from repro.serving.errors import BadRequest

        async def main() -> None:
            service = make_service()
            await drive_hot_traffic(service)
            held = await service.advise(
                {"cube": "c", "hysteresis": 1e9}
            )
            assert not held["delta"]["should_swap"]
            with pytest.raises(BadRequest, match="hysteresis"):
                await service.advise({"cube": "c", "hysteresis": 0.2})
            with pytest.raises(BadRequest, match="space_budget"):
                await service.advise(
                    {"cube": "c", "space_budget": "lots"}
                )
            await service.close()

        asyncio.run(main())

    def test_design_view_reports_swap_history(self) -> None:
        import json

        async def main() -> None:
            service = make_service()
            controller = AdaptiveController(service)
            await drive_hot_traffic(service)
            await controller.step("c")
            view = service.describe_design()["c"]
            assert view["plan"]
            assert len(view["swap_history"]) == 1
            assert not view["swap_in_flight"]
            assert view["predicted_tier_cost"]["materialized"] < (
                view["predicted_tier_cost"]["fallback"]
            )
            json.dumps(view)  # wire-ready
            await service.close()

        asyncio.run(main())

    def test_http_surface_serves_advise_and_design(self) -> None:
        from repro.serving.client import ServingClient
        from repro.serving.http import ServingServer

        async def main() -> None:
            service = make_service()
            await drive_hot_traffic(service)
            server = ServingServer(service)
            await server.start()
            client = ServingClient("127.0.0.1", server.port)
            try:
                await client.connect()
                advised = await client.request(
                    "POST", "/advise", {"cube": "c"}
                )
                assert advised["delta"]["should_swap"]
                design = await client.request("GET", "/design")
                assert "c" in design
            finally:
                await client.aclose()
                await server.stop()

        asyncio.run(main())


class TestDriftingLoadgen:
    PHASES = (
        DriftPhase(requests=30, hot_dims=(0, 1)),
        DriftPhase(
            requests=30, hot_dims=(2,), update_fraction=0.3
        ),
    )

    def test_stream_is_seeded_deterministic(self) -> None:
        first = generate_drifting_requests(
            np.random.default_rng(7), SHAPE, self.PHASES, cube="c"
        )
        second = generate_drifting_requests(
            np.random.default_rng(7), SHAPE, self.PHASES, cube="c"
        )
        assert first == second
        assert len(first) == 60

    def test_phases_shape_the_traffic(self) -> None:
        stream = generate_drifting_requests(
            np.random.default_rng(7), SHAPE, self.PHASES, cube="c"
        )
        phase_one = stream[:30]
        assert all(p["path"] == "/query" for p in phase_one)
        for payload in phase_one:
            ranges = payload["body"]["ranges"]
            assert ranges[0] is not None and ranges[1] is not None
            assert ranges[2] is None
        phase_two = stream[30:]
        updates = [p for p in phase_two if p["path"] == "/update"]
        assert updates  # the mix shifted
        for payload in updates:
            assert payload["body"]["updates"]

    def test_validation(self) -> None:
        with pytest.raises(ValueError, match="hot dim"):
            generate_drifting_requests(
                np.random.default_rng(0),
                SHAPE,
                [DriftPhase(requests=1, hot_dims=(9,))],
            )
        with pytest.raises(ValueError, match="update_fraction"):
            DriftPhase(requests=1, hot_dims=(0,), update_fraction=2.0)
        with pytest.raises(ValueError, match="range_scale"):
            DriftPhase(requests=1, hot_dims=(0,), range_scale=0.0)

    def test_drift_over_http_triggers_adaptation(self) -> None:
        from repro.serving import run_load
        from repro.serving.http import ServingServer

        async def main() -> None:
            service = make_service(observer_decay=0.97)
            controller = AdaptiveController(service)
            server = ServingServer(service)
            await server.start()
            try:
                rng = np.random.default_rng(11)
                phase_one = generate_drifting_requests(
                    rng,
                    SHAPE,
                    [DriftPhase(requests=60, hot_dims=(0, 1))],
                    cube="c",
                )
                report = await run_load(
                    "127.0.0.1", server.port, phase_one, concurrency=4
                )
                assert report.errors == 0 and report.shed == 0
                first = await controller.step("c")
                assert first is not None and first.should_swap

                phase_two = generate_drifting_requests(
                    rng,
                    SHAPE,
                    [
                        DriftPhase(
                            requests=120,
                            hot_dims=(1, 2),
                            update_fraction=0.1,
                        )
                    ],
                    cube="c",
                )
                report = await run_load(
                    "127.0.0.1", server.port, phase_two, concurrency=4
                )
                assert report.errors == 0
                await controller.step("c")
                history = service.cubes["c"].swap_history
                assert len(history) >= 1
            finally:
                await server.stop()

        asyncio.run(main())


class TestSwapResourceReclamation:
    """The memmap-leak regression: N hot swaps on a spill-backed cube
    must not accumulate spill files, on-disk bytes, or live mappings —
    each swap releases the plan it supersedes."""

    @staticmethod
    def _spill_state(root) -> tuple[int, int]:
        files = sorted(root.rglob("*.npy"))
        return len(files), sum(p.stat().st_size for p in files)

    @staticmethod
    def _mapped_spill_segments(root) -> int:
        import gc

        gc.collect()
        maps = Path("/proc/self/maps")
        if not maps.exists():  # pragma: no cover - non-Linux
            return 0
        return sum(
            1
            for line in maps.read_text().splitlines()
            if str(root) in line
        )

    def test_swaps_stabilize_handles_and_disk(self, tmp_path) -> None:
        from repro.index.backend import MemmapBackend
        from repro.optimizer.advisor import DesignDelta
        from repro.optimizer.cuboid_selection import Materialization

        spill = tmp_path / "design"
        plans = [
            (Materialization((0, 1), 4, 36.0),),
            (
                Materialization((1, 2), 4, 24.0),
                Materialization((0,), 8, 3.0),
            ),
        ]

        async def main() -> None:
            service = QueryService(ServeConfig(coalesce_window_s=0.0))
            rng = np.random.default_rng(0xCAFE)
            data = rng.integers(0, 50, size=SHAPE, dtype=np.int64)
            backend = MemmapBackend(spill)
            service.register_cube(
                "c", data, backend=backend, plan=plans[0], engine=None
            )
            cube = service.cubes["c"]
            controller = AdaptiveController(service)
            payload = {
                "cube": "c",
                "op": "sum",
                "ranges": [[2, 13], [1, 9], None],
            }
            want = expected(service, payload)
            states: dict[int, list] = {0: [], 1: []}
            for i in range(6):
                candidate = plans[(i + 1) % 2]
                delta = DesignDelta(
                    shape=SHAPE,
                    incumbent=cube.plan,
                    candidate=candidate,
                    incumbent_cost=1000.0,
                    candidate_cost=10.0,
                    build_cost=1.0,
                    hysteresis=1.0,
                )
                await controller.actuate(cube, delta)
                # Served answers unaffected by the swap.
                response = await service.query(payload)
                assert response["value"] == want
                # Every surviving spill file belongs to the *current*
                # generation's subscope — nothing from older plans.
                current = f"design-g{cube.design_generation}"
                for path in spill.rglob("*.npy"):
                    assert current in str(path), path
                states[(i + 1) % 2].append(
                    (
                        self._spill_state(spill),
                        self._mapped_spill_segments(spill),
                    )
                )
            # Same plan -> same file count, same bytes, same number of
            # live mappings, every time it is re-installed: nothing
            # accumulates across swaps.
            for parity in (0, 1):
                assert len(set(states[parity])) == 1, states[parity]
            history = cube.swap_history
            assert all(h["released_files"] > 0 for h in history[1:])
            await service.close()

        asyncio.run(main())

    def test_failed_build_releases_its_scope(self, tmp_path) -> None:
        from repro.index.backend import MemmapBackend
        from repro.optimizer.advisor import DesignDelta
        from repro.optimizer.cuboid_selection import Materialization

        async def main() -> None:
            service = QueryService(ServeConfig(coalesce_window_s=0.0))
            rng = np.random.default_rng(7)
            data = rng.integers(0, 50, size=SHAPE, dtype=np.int64)
            spill = tmp_path / "design"
            service.register_cube(
                "c",
                data,
                backend=MemmapBackend(spill),
                plan=[Materialization((0, 1), 4, 36.0)],
                engine=None,
            )
            cube = service.cubes["c"]
            controller = AdaptiveController(service)
            before = self._spill_state(spill)
            bad = DesignDelta(
                shape=SHAPE,
                incumbent=cube.plan,
                # Key beyond the cube's dimensionality: the build raises.
                candidate=(Materialization((0, 7), 4, 1.0),),
                incumbent_cost=10.0,
                candidate_cost=1.0,
                build_cost=0.1,
                hysteresis=1.0,
            )
            with pytest.raises(ValueError):
                await controller.actuate(cube, bad)
            assert cube.pending_design_updates is None
            assert self._spill_state(spill) == before
            await service.close()

        asyncio.run(main())
