"""HTTP layer tests over real sockets: framing, status mapping, keep-alive."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.serving import (
    QueryService,
    ServeConfig,
    ServingClient,
    ServingClientError,
    ServingServer,
)

SHAPE = (7, 6, 5)


def serve(test_body, config: ServeConfig | None = None):
    """Run ``test_body(server, data)`` against a live server."""
    rng = np.random.default_rng(0x477F)
    data = rng.integers(-15, 16, size=SHAPE).astype(np.int64)

    async def run() -> None:
        service = QueryService(
            config or ServeConfig(coalesce_window_s=0.001)
        )
        service.register_cube("web", data)
        server = ServingServer(service)
        await server.start()
        try:
            await test_body(server, data)
        finally:
            await server.stop()

    asyncio.run(run())


def test_query_roundtrip_and_keep_alive() -> None:
    async def body(server, data) -> None:
        async with ServingClient(server.host, server.port) as client:
            # Several requests over ONE connection (keep-alive).
            for lo in range(4):
                result = await client.query(
                    "web", [[lo, 5], None, [0, 3]]
                )
                assert result["value"] == int(
                    data[lo : 6, :, 0:4].sum()
                )
            health = await client.healthz()
            assert health["ok"]
            catalog = await client.cubes()
            assert catalog["web"]["shape"] == list(SHAPE)

    serve(body)


def test_all_post_endpoints() -> None:
    async def body(server, data) -> None:
        async with ServingClient(server.host, server.port) as client:
            batch = await client.query_batch(
                "web", [[[0, 3], None, None], [[2, 2], [1, 4], [0, 0]]]
            )
            assert batch["values"][0] == int(data[0:4].sum())
            sliced = await client.slice("web", {1: 3})
            assert sliced["value"] == int(data[:, 3, :].sum())
            rolled = await client.rollup("web", [0])
            assert rolled["values"] == data.sum(axis=(1, 2)).tolist()
            updated = await client.update(
                "web", [{"index": [0, 0, 0], "delta": 5}]
            )
            assert updated["generation"] == 1
            stats = await client.stats()
            assert stats["cubes"]["web"]["generation"] == 1

    serve(body)


def test_error_statuses() -> None:
    async def body(server, data) -> None:
        async with ServingClient(server.host, server.port) as client:
            with pytest.raises(ServingClientError) as not_found:
                await client.query("nope", [None, None, None])
            assert not_found.value.status == 404
            with pytest.raises(ServingClientError) as bad:
                await client.query("web", [None])  # wrong arity
            assert bad.value.status == 400
            assert bad.value.payload["error"] == "bad_request"
            with pytest.raises(ServingClientError) as missing:
                await client.request("POST", "/wat", {})
            assert missing.value.status == 404
            with pytest.raises(ServingClientError) as get_missing:
                await client.request("GET", "/wat")
            assert get_missing.value.status == 404
            # The connection survives error responses.
            ok = await client.query("web", [None, None, None])
            assert ok["value"] == int(data.sum())

    serve(body)


def test_malformed_json_is_400() -> None:
    async def body(server, data) -> None:
        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )
        body_bytes = b"{not json"
        writer.write(
            (
                "POST /query HTTP/1.1\r\n"
                f"Content-Length: {len(body_bytes)}\r\n\r\n"
            ).encode()
            + body_bytes
        )
        await writer.drain()
        status_line = await reader.readline()
        assert b"400" in status_line
        writer.close()
        await writer.wait_closed()

    serve(body)


def test_malformed_request_line_is_400_and_closes() -> None:
    async def body(server, data) -> None:
        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )
        writer.write(b"NONSENSE\r\n\r\n")
        await writer.drain()
        status_line = await reader.readline()
        assert b"400" in status_line
        # Server closes after a framing error; read to EOF.
        while await reader.readline():
            pass
        writer.close()
        await writer.wait_closed()

    serve(body)


def test_connection_close_honored() -> None:
    async def body(server, data) -> None:
        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )
        writer.write(
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        await writer.drain()
        raw = await reader.read()  # EOF: server closed the connection
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert b"200" in head.split(b"\r\n")[0]
        assert b"Connection: close" in head
        assert json.loads(payload)["ok"] is True
        writer.close()
        await writer.wait_closed()

    serve(body)


def test_unhandled_handler_bug_maps_to_500() -> None:
    async def body(server, data) -> None:
        # Sabotage one service method to simulate an internal bug.
        async def explode(payload):
            raise ZeroDivisionError("synthetic bug")

        server.service.query = explode
        async with ServingClient(server.host, server.port) as client:
            with pytest.raises(ServingClientError) as failure:
                await client.query("web", [None, None, None])
            assert failure.value.status == 500
            assert failure.value.payload["error"] == "internal"

    serve(body)


def test_port_zero_binds_ephemeral() -> None:
    async def body(server, data) -> None:
        assert server.port != 0

    serve(body)
