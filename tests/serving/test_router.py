"""Tier selection and per-tier execution correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.optimizer.cuboid_selection import Materialization
from repro.query.ranges import RangeQuery, RangeSpec
from repro.serving.errors import Unsupported
from repro.serving.router import TieredRouter
from repro.serving.service import QueryService


@pytest.fixture
def data() -> np.ndarray:
    rng = np.random.default_rng(0x1207)
    return rng.integers(-30, 31, size=(8, 7, 6)).astype(np.int64)


def full_box(shape) -> Box:
    return Box((0,) * len(shape), tuple(n - 1 for n in shape))


def query_over(ranges) -> RangeQuery:
    specs = []
    for entry in ranges:
        if entry is None:
            specs.append(RangeSpec.all())
        elif isinstance(entry, int):
            specs.append(RangeSpec.at(entry))
        else:
            specs.append(RangeSpec.between(*entry))
    return RangeQuery(tuple(specs))


class TestChoice:
    def test_materialized_wins_for_covered_sum(self, data) -> None:
        service = QueryService()
        cube = service.register_cube(
            "c", data, plan=[Materialization((0, 1), 1, 0.0)]
        )
        router = TieredRouter()
        # Constrains dims {0, 1} only -> the (0, 1) cuboid covers it.
        rq = query_over([[1, 4], [0, 3], None])
        box = rq.to_box(cube.shape)
        assert router.choose_scalar(cube, "sum", rq, box) == "materialized"
        # Constraining dim 2 as well leaves no covering cuboid.
        rq2 = query_over([[1, 4], [0, 3], [1, 2]])
        box2 = rq2.to_box(cube.shape)
        assert router.choose_scalar(cube, "sum", rq2, box2) == "indexed"

    def test_materialized_only_serves_sum(self, data) -> None:
        service = QueryService()
        cube = service.register_cube(
            "c", data, plan=[Materialization((0, 1), 1, 0.0)]
        )
        router = TieredRouter()
        rq = query_over([[1, 4], [0, 3], None])
        box = rq.to_box(cube.shape)
        assert router.choose_scalar(cube, "count", rq, box) == "indexed"
        assert router.choose_scalar(cube, "max", rq, box) == "indexed"

    def test_fallback_when_no_engine(self, data) -> None:
        service = QueryService()
        cube = service.register_cube("c", data, engine=None)
        router = TieredRouter()
        rq = query_over([None, None, None])
        box = rq.to_box(cube.shape)
        for op in ("sum", "count", "average", "max", "min"):
            assert router.choose_scalar(cube, op, rq, box) == "fallback"
        assert router.choose_batch(cube, "sum") == "fallback"

    def test_no_tier_raises_unsupported(self, data) -> None:
        service = QueryService()
        cube = service.register_cube(
            "c", data, engine=None, fallback=False
        )
        router = TieredRouter()
        rq = query_over([None, None, None])
        box = rq.to_box(cube.shape)
        with pytest.raises(Unsupported):
            router.choose_scalar(cube, "sum", rq, box)
        with pytest.raises(Unsupported):
            router.choose_batch(cube, "sum")

    def test_max_without_max_route_falls_back(self, data) -> None:
        service = QueryService()
        cube = service.register_cube("c", data, max_index=None)
        router = TieredRouter()
        rq = query_over([None, None, None])
        box = rq.to_box(cube.shape)
        assert router.choose_scalar(cube, "sum", rq, box) == "indexed"
        assert router.choose_scalar(cube, "max", rq, box) == "fallback"
        assert router.choose_batch(cube, "max") == "fallback"


class TestExecution:
    """Every tier must agree with numpy on every operator."""

    @pytest.fixture
    def cube(self, data):
        service = QueryService()
        return service.register_cube(
            "c",
            data,
            counts=np.ones_like(data),
            plan=[Materialization((0, 1), 1, 0.0)],
        )

    def test_all_tiers_agree_on_sum(self, cube, data) -> None:
        router = TieredRouter()
        rq = query_over([[1, 5], [2, 6], None])
        box = rq.to_box(cube.shape)
        expected = int(data[1:6, 2:7, :].sum())
        for tier in ("materialized", "indexed", "fallback"):
            assert (
                router.run_scalar(cube, tier, "sum", rq, box) == expected
            ), tier

    @pytest.mark.parametrize("op", ["count", "average", "max", "min"])
    def test_indexed_and_fallback_agree(self, cube, data, op) -> None:
        router = TieredRouter()
        rq = query_over([[1, 5], [2, 6], [0, 3]])
        box = rq.to_box(cube.shape)
        indexed = router.run_scalar(cube, "indexed", op, rq, box)
        fallback = router.run_scalar(cube, "fallback", op, rq, box)
        window = data[1:6, 2:7, 0:4]
        if op == "count":
            assert indexed == fallback == window.size
        elif op == "average":
            assert indexed == pytest.approx(float(window.mean()))
            assert fallback == pytest.approx(float(window.mean()))
        else:
            extreme = (
                int(window.max()) if op == "max" else int(window.min())
            )
            assert indexed[1] == fallback[1] == extreme
            # Both witnesses must actually hold the extreme value.
            assert int(data[indexed[0]]) == extreme
            assert int(data[fallback[0]]) == extreme

    def test_empty_box_scalar_semantics(self, cube) -> None:
        router = TieredRouter()
        empty = Box((3, 0, 0), (2, 6, 5))
        assert router.run_scalar(cube, "indexed", "sum", None, empty) == 0
        assert router.run_scalar(cube, "fallback", "sum", None, empty) == 0
        assert router.run_scalar(cube, "indexed", "count", None, empty) == 0
        assert (
            router.run_scalar(cube, "indexed", "average", None, empty)
            is None
        )
        with pytest.raises(ValueError):
            router.run_scalar(cube, "fallback", "max", None, empty)

    def test_batch_tiers_agree(self, cube, data) -> None:
        router = TieredRouter()
        lows = np.array([[0, 0, 0], [1, 2, 3], [4, 0, 2]], dtype=np.int64)
        highs = np.array([[7, 6, 5], [5, 4, 4], [4, 6, 3]], dtype=np.int64)
        for op in ("sum", "count", "average"):
            indexed = router.run_batch(cube, "indexed", op, lows, highs)
            fallback = router.run_batch(cube, "fallback", op, lows, highs)
            np.testing.assert_array_equal(
                np.asarray(indexed, dtype=np.float64),
                np.asarray(fallback, dtype=np.float64),
            )
        for op in ("max", "min"):
            idx_i, val_i = router.run_batch(cube, "indexed", op, lows, highs)
            idx_f, val_f = router.run_batch(cube, "fallback", op, lows, highs)
            np.testing.assert_array_equal(val_i, val_f)
            # Witnesses may differ on ties; both must be valid.
            for row, value in enumerate(val_i):
                assert data[tuple(idx_i[row])] == value
                assert data[tuple(idx_f[row])] == value

    def test_latency_accounting(self, cube) -> None:
        router = TieredRouter()
        router.record("c", "indexed", 0.002)
        router.record("c", "indexed", 0.004)
        router.record("c", "fallback", 0.1)
        stats = router.stats()
        indexed = stats["c"]["indexed"]
        assert indexed["queries"] == 2
        assert indexed["avg_ms"] == pytest.approx(3.0)
        assert indexed["max_ms"] == pytest.approx(4.0)
        assert stats["c"]["fallback"]["queries"] == 1
