"""Unit tests for the per-cube asyncio read/write lock."""

from __future__ import annotations

import asyncio

from repro.serving.rwlock import ReadWriteLock


def test_readers_share_writer_excludes() -> None:
    async def run() -> None:
        lock = ReadWriteLock()
        entered = asyncio.Event()
        release = asyncio.Event()

        async def reader() -> None:
            async with lock.read_locked():
                entered.set()
                await release.wait()

        readers = [asyncio.ensure_future(reader()) for _ in range(3)]
        await entered.wait()
        await asyncio.sleep(0)
        assert lock.readers == 3  # all three hold it concurrently

        writer = asyncio.ensure_future(write_once(lock))
        await asyncio.sleep(0.01)
        assert not writer.done()  # writer blocked by active readers
        assert not lock.writing

        release.set()
        await asyncio.gather(*readers)
        await writer
        assert lock.readers == 0 and not lock.writing

    async def write_once(lock: ReadWriteLock) -> None:
        async with lock.write_locked():
            assert lock.writing
            assert lock.readers == 0

    asyncio.run(run())


def test_writer_excludes_readers() -> None:
    async def run() -> None:
        lock = ReadWriteLock()
        writing = asyncio.Event()
        release = asyncio.Event()

        async def writer() -> None:
            async with lock.write_locked():
                writing.set()
                await release.wait()

        async def reader() -> int:
            async with lock.read_locked():
                return 1

        write_task = asyncio.ensure_future(writer())
        await writing.wait()
        read_task = asyncio.ensure_future(reader())
        await asyncio.sleep(0.01)
        assert not read_task.done()  # reader waits for the writer
        release.set()
        await write_task
        assert await read_task == 1

    asyncio.run(run())


def test_waiting_writer_blocks_new_readers() -> None:
    """Writer preference: a steady read stream cannot starve updates."""

    async def run() -> list[str]:
        lock = ReadWriteLock()
        order: list[str] = []
        reading = asyncio.Event()
        release_first = asyncio.Event()

        async def first_reader() -> None:
            async with lock.read_locked():
                reading.set()
                await release_first.wait()
            order.append("reader-1")

        async def writer() -> None:
            async with lock.write_locked():
                order.append("writer")

        async def late_reader() -> None:
            async with lock.read_locked():
                order.append("reader-2")

        first = asyncio.ensure_future(first_reader())
        await reading.wait()
        write_task = asyncio.ensure_future(writer())
        await asyncio.sleep(0.01)  # writer is now parked, waiting
        late = asyncio.ensure_future(late_reader())
        await asyncio.sleep(0.01)
        assert not late.done()  # new reader queued behind the writer
        release_first.set()
        await asyncio.gather(first, write_task, late)
        return order

    assert asyncio.run(run()) == ["reader-1", "writer", "reader-2"]
