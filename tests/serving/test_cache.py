"""Result-cache unit tests plus service-level invalidation coverage.

The second half is the satellite the issue called out explicitly:
``apply_updates`` must bump the cube generation and evict stale entries
on both the scalar and batched read paths, for in-memory and memmapped
structures alike.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro._util import Box
from repro.index.backend import MemmapBackend
from repro.serving.cache import ResultCache, cache_key
from repro.serving.service import QueryService, ServeConfig


def box(lo, hi) -> Box:
    return Box(tuple(lo), tuple(hi))


class TestResultCache:
    def test_miss_then_hit(self) -> None:
        cache = ResultCache(capacity=4)
        key = cache_key("c", "sum", box((0, 0), (1, 1)))
        hit, _ = cache.get(key, 0)
        assert not hit
        cache.put(key, 0, 42)
        hit, value = cache.get(key, 0)
        assert hit and value == 42
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_equal_regions_share_one_entry(self) -> None:
        cache = ResultCache(capacity=4)
        a = cache_key("c", "sum", box((0, 0), (1, 1)))
        b = cache_key("c", "sum", box((0, 0), (1, 1)))
        cache.put(a, 0, 7)
        hit, value = cache.get(b, 0)
        assert hit and value == 7

    def test_lru_eviction_order(self) -> None:
        cache = ResultCache(capacity=2)
        k1 = cache_key("c", "sum", box((0,), (1,)))
        k2 = cache_key("c", "sum", box((0,), (2,)))
        k3 = cache_key("c", "sum", box((0,), (3,)))
        cache.put(k1, 0, 1)
        cache.put(k2, 0, 2)
        cache.get(k1, 0)  # refresh k1 so k2 is the LRU victim
        cache.put(k3, 0, 3)
        assert cache.get(k1, 0)[0]
        assert not cache.get(k2, 0)[0]
        assert cache.get(k3, 0)[0]
        assert cache.stats()["evictions"] == 1

    def test_stale_generation_evicts_and_misses(self) -> None:
        cache = ResultCache(capacity=4)
        key = cache_key("c", "sum", box((0,), (1,)))
        cache.put(key, 0, 10)
        hit, _ = cache.get(key, 1)  # cube has moved on
        assert not hit
        assert len(cache) == 0
        assert cache.stats()["stale_evictions"] == 1
        # Re-stored at the new generation it hits again.
        cache.put(key, 1, 11)
        assert cache.get(key, 1) == (True, 11)

    def test_invalidate_cube_is_per_cube(self) -> None:
        cache = ResultCache(capacity=8)
        mine = cache_key("mine", "sum", box((0,), (1,)))
        other = cache_key("other", "sum", box((0,), (1,)))
        cache.put(mine, 0, 1)
        cache.put(other, 0, 2)
        assert cache.invalidate_cube("mine") == 1
        assert not cache.get(mine, 0)[0]
        assert cache.get(other, 0)[0]

    def test_capacity_zero_disables(self) -> None:
        cache = ResultCache(capacity=0)
        key = cache_key("c", "sum", box((0,), (1,)))
        cache.put(key, 0, 5)
        assert not cache.get(key, 0)[0]
        assert len(cache) == 0

    def test_negative_capacity_rejected(self) -> None:
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)


# ---------------------------------------------------------------------------
# Service-level invalidation: updates must never leave stale answers
# visible, on any read path, for any backend.
# ---------------------------------------------------------------------------


def _service(backend=None, window: float = 0.0) -> tuple[QueryService, np.ndarray]:
    rng = np.random.default_rng(0xCA11)
    data = rng.integers(-20, 21, size=(6, 5, 4)).astype(np.int64)
    service = QueryService(ServeConfig(coalesce_window_s=window))
    service.register_cube("c", data, counts=np.ones_like(data), backend=backend)
    return service, data


@pytest.mark.parametrize("backend_kind", ["memory", "memmap"])
def test_update_invalidates_scalar_path(backend_kind, tmp_path) -> None:
    backend = MemmapBackend(tmp_path) if backend_kind == "memmap" else None
    service, data = _service(backend)
    ranges = [[1, 4], None, [0, 2]]

    async def run() -> None:
        first = await service.query(
            {"cube": "c", "op": "sum", "ranges": ranges}
        )
        assert first["value"] == int(data[1:5, :, 0:3].sum())
        again = await service.query(
            {"cube": "c", "op": "sum", "ranges": ranges}
        )
        assert again["cached"] and again["tier"] == "cache"

        result = await service.update(
            {"cube": "c", "updates": [{"index": [2, 2, 1], "delta": 100}]}
        )
        assert result["generation"] == 1

        fresh = await service.query(
            {"cube": "c", "op": "sum", "ranges": ranges}
        )
        assert not fresh["cached"]
        assert fresh["generation"] == 1
        assert fresh["value"] == int(data[1:5, :, 0:3].sum()) + 100

    asyncio.run(run())
    assert service.cache.stats()["invalidations"] >= 1


@pytest.mark.parametrize("backend_kind", ["memory", "memmap"])
def test_update_invalidates_coalesced_batch_path(
    backend_kind, tmp_path
) -> None:
    """Stale answers must not survive updates on the batched read path."""
    backend = MemmapBackend(tmp_path) if backend_kind == "memmap" else None
    service, data = _service(backend, window=0.001)
    queries = [
        {"cube": "c", "op": "sum", "ranges": [[0, 3], [1, 3], None]},
        {"cube": "c", "op": "sum", "ranges": [[2, 5], None, [1, 2]]},
        {"cube": "c", "op": "average", "ranges": [None, None, [0, 1]]},
    ]

    async def ask_all() -> list:
        results = await asyncio.gather(
            *(service.query(q) for q in queries)
        )
        return [r["value"] for r in results]

    async def run() -> None:
        before = await ask_all()
        assert before[0] == int(data[0:4, 1:4, :].sum())
        await service.update(
            {"cube": "c", "updates": [{"index": [3, 2, 1], "delta": -7}]}
        )
        after = await ask_all()
        shifted = data.copy()
        shifted[3, 2, 1] -= 7
        assert after[0] == int(shifted[0:4, 1:4, :].sum())
        assert after[1] == int(shifted[2:6, :, 1:3].sum())
        assert after[2] == pytest.approx(
            float(shifted[:, :, 0:2].sum()) / shifted[:, :, 0:2].size
        )
        # The coalescer actually ran batches (window > 0).
        assert service.coalescer.batches >= 1

    asyncio.run(run())


def test_racing_update_cannot_poison_the_cache() -> None:
    """A value computed before an update must never be cached as fresh.

    Regression: ``_answer_scalar`` re-read ``cube.generation`` *after*
    awaiting the compute.  An /update landing during that await (the
    coalescer window or an executor offload) bumped the generation
    first, so a value computed against pre-update data was stored under
    the post-update generation — undetectable by the generation check,
    served as a fresh hit forever.  The fix stamps the generation
    snapshotted before the compute.
    """
    service, data = _service(window=0.001)
    ranges = [[0, 3], None, [0, 2]]
    stale = int(data[0:4, :, 0:3].sum())
    real_submit = service.coalescer.submit

    async def racing_submit(cube_name, op, box):
        # Simulate the race deterministically: the "computation" reads
        # pre-update data, then the update lands before the caller
        # resumes and stamps the cache.
        await service.update(
            {
                "cube": cube_name,
                "updates": [{"index": [1, 1, 1], "delta": 50}],
            }
        )
        return stale

    async def run() -> None:
        service.coalescer.submit = racing_submit  # type: ignore[method-assign]
        try:
            raced = await service.query(
                {"cube": "c", "op": "sum", "ranges": ranges}
            )
        finally:
            service.coalescer.submit = real_submit  # type: ignore[method-assign]
        assert raced["value"] == stale  # the raced answer itself
        assert raced["generation"] == 0  # stamped with the snapshot
        fresh = await service.query(
            {"cube": "c", "op": "sum", "ranges": ranges}
        )
        assert not fresh["cached"]  # the raced entry stale-evicted
        assert fresh["value"] == stale + 50
        assert fresh["generation"] == 1

    asyncio.run(run())
    assert service.cache.stats()["stale_evictions"] >= 1


def test_generation_survives_multiple_updates() -> None:
    service, data = _service()

    async def run() -> None:
        for expected in (1, 2, 3):
            result = await service.update(
                {
                    "cube": "c",
                    "updates": [{"index": [0, 0, 0], "delta": 1}],
                }
            )
            assert result["generation"] == expected
        final = await service.query(
            {"cube": "c", "op": "sum", "ranges": [0, 0, 0]}
        )
        assert final["value"] == int(data[0, 0, 0]) + 3
        assert final["generation"] == 3

    asyncio.run(run())
