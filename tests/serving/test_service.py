"""QueryService endpoint semantics, error taxonomy, and logbook wiring."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.query import QueryLog, RangeQueryEngine
from repro.query.ranges import SpecKind
from repro.serving.errors import (
    BadRequest,
    CubeInconsistent,
    UnknownResource,
)
from repro.serving.service import QueryService, ServeConfig


@pytest.fixture
def data() -> np.ndarray:
    rng = np.random.default_rng(0x5E4E)
    return rng.integers(-25, 26, size=(9, 8, 7)).astype(np.int64)


@pytest.fixture
def service(data) -> QueryService:
    service = QueryService(ServeConfig(coalesce_window_s=0.0))
    service.register_cube("sales", data, counts=np.ones_like(data))
    return service


def run(coro):
    return asyncio.run(coro)


class TestQuery:
    def test_sum_matches_numpy(self, service, data) -> None:
        result = run(
            service.query(
                {"cube": "sales", "ranges": [[2, 6], None, [1, 3]]}
            )
        )
        assert result["value"] == int(data[2:7, :, 1:4].sum())
        assert result["tier"] == "indexed"
        assert not result["cached"]

    def test_singleton_and_all_ranges(self, service, data) -> None:
        result = run(
            service.query(
                {"cube": "sales", "ranges": [4, None, [0, 6]]}
            )
        )
        assert result["value"] == int(data[4, :, :].sum())

    @pytest.mark.parametrize("op", ["max", "min"])
    def test_witness_ops_return_index(self, service, data, op) -> None:
        result = run(
            service.query(
                {
                    "cube": "sales",
                    "op": op,
                    "ranges": [[1, 7], [0, 5], None],
                }
            )
        )
        window = data[1:8, 0:6, :]
        extreme = int(window.max() if op == "max" else window.min())
        assert result["value"] == extreme
        assert data[tuple(result["index"])] == extreme

    def test_empty_box_identity(self, service) -> None:
        result = run(
            service.query(
                {"cube": "sales", "ranges": [[5, 2], None, None]}
            )
        )
        assert result["value"] == 0

    def test_empty_box_max_is_bad_request(self, service) -> None:
        with pytest.raises(BadRequest):
            run(
                service.query(
                    {
                        "cube": "sales",
                        "op": "max",
                        "ranges": [[5, 2], None, None],
                    }
                )
            )

    def test_unknown_cube_and_bad_payloads(self, service) -> None:
        with pytest.raises(UnknownResource):
            run(service.query({"cube": "nope", "ranges": [None] * 3}))
        with pytest.raises(BadRequest):
            run(service.query({"cube": "sales", "ranges": [None]}))
        with pytest.raises(BadRequest):
            run(
                service.query(
                    {"cube": "sales", "op": "median", "ranges": [None] * 3}
                )
            )
        with pytest.raises(BadRequest):
            run(
                service.query(
                    {"cube": "sales", "ranges": [[0, 1, 2], None, None]}
                )
            )
        with pytest.raises(BadRequest):
            run(
                service.query(
                    {"cube": "sales", "ranges": [[0, 99], None, None]}
                )
            )


class TestBatchSliceRollup:
    def test_batch_matches_engine(self, service, data) -> None:
        engine = RangeQueryEngine(data)
        queries = [
            [[0, 4], [1, 5], [2, 6]],
            [[3, 3], None, [0, 0]],
            [[5, 2], None, None],  # empty row -> identity
        ]
        result = run(
            service.query_batch({"cube": "sales", "queries": queries})
        )
        lows = np.array([[0, 1, 2], [3, 0, 0], [5, 0, 0]])
        highs = np.array([[4, 5, 6], [3, 7, 0], [2, 7, 6]])
        expected = engine.sum_many(lows, highs)
        assert result["values"] == expected.tolist()

    def test_batch_validation(self, service) -> None:
        with pytest.raises(BadRequest):
            run(service.query_batch({"cube": "sales", "queries": []}))
        tight = QueryService(ServeConfig(max_batch_rows=2))
        tight.register_cube("c", np.ones((3, 3)))
        with pytest.raises(BadRequest):
            run(
                tight.query_batch(
                    {"cube": "c", "queries": [[None, None]] * 3}
                )
            )

    def test_slice_fixes_dimensions(self, service, data) -> None:
        result = run(
            service.slice({"cube": "sales", "fixed": {"0": 3, "2": 5}})
        )
        assert result["value"] == int(data[3, :, 5].sum())

    def test_slice_validation(self, service) -> None:
        with pytest.raises(BadRequest):
            run(service.slice({"cube": "sales", "fixed": {"9": 0}}))
        with pytest.raises(BadRequest):
            run(service.slice({"cube": "sales", "fixed": "nope"}))

    def test_rollup_matches_numpy_groupby(self, service, data) -> None:
        result = run(service.rollup({"cube": "sales", "dims": [1]}))
        assert result["shape"] == [8]
        assert result["values"] == data.sum(axis=(0, 2)).tolist()
        two = run(service.rollup({"cube": "sales", "dims": [0, 2]}))
        assert two["shape"] == [9, 7]
        grid = np.asarray(two["values"]).reshape(9, 7)
        np.testing.assert_array_equal(grid, data.sum(axis=1))

    def test_rollup_average(self, service, data) -> None:
        result = run(
            service.rollup(
                {"cube": "sales", "dims": [2], "op": "average"}
            )
        )
        expected = data.mean(axis=(0, 1))
        assert np.allclose(result["values"], expected)

    def test_rollup_validation(self, service) -> None:
        with pytest.raises(BadRequest):
            run(service.rollup({"cube": "sales", "dims": []}))
        with pytest.raises(BadRequest):
            run(service.rollup({"cube": "sales", "dims": [0, 0]}))
        with pytest.raises(BadRequest):
            run(service.rollup({"cube": "sales", "dims": [7]}))
        with pytest.raises(BadRequest):
            run(
                service.rollup(
                    {"cube": "sales", "dims": [0], "op": "max"}
                )
            )
        tight = QueryService(ServeConfig(max_rollup_cells=4))
        tight.register_cube("c", np.ones((3, 3)))
        with pytest.raises(BadRequest):
            run(tight.rollup({"cube": "c", "dims": [0, 1]}))


class TestUpdate:
    def test_update_propagates_to_all_tiers(self, data) -> None:
        from repro.optimizer.cuboid_selection import Materialization

        service = QueryService(ServeConfig(coalesce_window_s=0.0))
        service.register_cube(
            "c", data, plan=[Materialization((0, 1), 1, 0.0)]
        )

        async def scenario() -> None:
            await service.update(
                {
                    "cube": "c",
                    "updates": [
                        {"index": [1, 2, 3], "delta": 11},
                        {"index": [0, 0, 0], "delta": -4},
                        {"index": [1, 2, 3], "delta": 1},  # duplicate cell
                    ],
                }
            )
            shifted = data.copy()
            shifted[1, 2, 3] += 12
            shifted[0, 0, 0] -= 4
            # Materialized tier (dims {0,1} constrained only).
            m = await service.query(
                {"cube": "c", "ranges": [[0, 4], [0, 4], None]}
            )
            assert m["tier"] == "materialized"
            assert m["value"] == int(shifted[0:5, 0:5, :].sum())
            # Indexed tier.
            i = await service.query(
                {"cube": "c", "ranges": [[0, 4], [0, 4], [0, 5]]}
            )
            assert i["tier"] == "indexed"
            assert i["value"] == int(shifted[0:5, 0:5, 0:6].sum())
            # Max tree absorbed the delta too.
            x = await service.query(
                {"cube": "c", "op": "max", "ranges": [1, 2, 3]}
            )
            assert x["value"] == int(shifted[1, 2, 3])

        run(scenario())

    def test_adopted_base_update_applies_once(self) -> None:
        """register_cube(cuboid_set=...) with no cube= adopts the set's
        own base array; the set's apply_updates already writes it, so
        the service must not add each delta a second time — the
        fallback tier would permanently diverge from the materialized
        one after the first update."""
        from repro.ingest import (
            IngestPlan,
            batches_from_cube,
            ingest,
            plan_cuboids,
        )
        from repro.optimizer.materialize import MaterializedCuboidSet

        rng = np.random.default_rng(0xADD)
        data = rng.integers(0, 50, size=(6, 5, 4)).astype(np.int64)
        plan = IngestPlan(
            shape=data.shape,
            cuboids=plan_cuboids(data.shape, [(0, 1)], 2),
        )
        result = ingest(batches_from_cube(data), plan)
        service = QueryService(ServeConfig(coalesce_window_s=0.0))
        served = service.register_cube(
            "ingested",
            cuboid_set=result.cuboid_set,
            engine=None,
            backend=result.backend,
        )
        assert np.may_share_memory(served.base, result.cuboid_set.base)
        shifted = data.copy()

        async def push(index, delta) -> None:
            await service.update(
                {
                    "cube": "ingested",
                    "updates": [{"index": list(index), "delta": delta}],
                }
            )
            shifted[index] += delta

        async def check_tiers_agree() -> None:
            # Dims {0, 1} constrained only → the materialized cuboid.
            m = await service.query(
                {"cube": "ingested", "ranges": [[0, 4], [1, 3], None]}
            )
            assert m["tier"] == "materialized"
            assert m["value"] == int(shifted[0:5, 1:4, :].sum())
            # Dim 2 constrained → no covering cuboid, no engine → the
            # base-scan fallback over the shared array.
            f = await service.query(
                {"cube": "ingested", "ranges": [None, None, [1, 2]]}
            )
            assert f["tier"] == "fallback"
            assert f["value"] == int(shifted[:, :, 1:3].sum())

        async def scenario() -> None:
            await push((1, 2, 3), 11)
            await check_tiers_agree()
            assert served.base[1, 2, 3] == shifted[1, 2, 3]
            # A hot swap installs a set built from a snapshot *copy*:
            # the base un-shares and the service must resume writing it.
            served.cuboids = MaterializedCuboidSet(
                np.asarray(served.base), plan.cuboids
            )
            assert not np.may_share_memory(
                served.base, served.cuboids.base
            )
            await push((0, 0, 0), -4)
            await check_tiers_agree()
            assert served.base[0, 0, 0] == shifted[0, 0, 0]

        run(scenario())

    def test_cuboid_set_over_different_data_rejected(self, data) -> None:
        """cube= plus cuboid_set= must cover the same data; a set built
        over different cells would silently diverge tier answers."""
        from repro.optimizer.cuboid_selection import Materialization
        from repro.optimizer.materialize import MaterializedCuboidSet

        plan = [Materialization((0, 1), 1, 0.0)]
        service = QueryService(ServeConfig(coalesce_window_s=0.0))
        stale = MaterializedCuboidSet(data + 1, plan)
        with pytest.raises(ValueError, match="different data"):
            service.register_cube("c", data, cuboid_set=stale)
        matching = MaterializedCuboidSet(data, plan)
        service.register_cube("c", data, cuboid_set=matching)

    def test_update_validation(self, service) -> None:
        with pytest.raises(BadRequest):
            run(service.update({"cube": "sales", "updates": []}))
        with pytest.raises(BadRequest):
            run(
                service.update(
                    {
                        "cube": "sales",
                        "updates": [{"index": [0, 0], "delta": 1}],
                    }
                )
            )
        with pytest.raises(BadRequest):
            run(
                service.update(
                    {
                        "cube": "sales",
                        "updates": [{"index": [99, 0, 0], "delta": 1}],
                    }
                )
            )
        with pytest.raises(BadRequest):
            run(
                service.update(
                    {
                        "cube": "sales",
                        "updates": [
                            {"index": [0, 0, 0], "delta": "many"}
                        ],
                    }
                )
            )

    def test_rejected_update_leaves_every_tier_untouched(self) -> None:
        """An inapplicable delta must 400 before any tier mutates.

        Regression: the engine and cuboids had already absorbed the
        batch when the base-cube assignment raised (numpy 2.x rejects a
        negative delta into an unsigned cube), leaving the tiers
        permanently disagreeing with no generation bump.
        """
        from repro.optimizer.cuboid_selection import Materialization

        data = np.arange(1, 25, dtype=np.uint32).reshape(4, 3, 2)
        service = QueryService(ServeConfig(coalesce_window_s=0.0))
        service.register_cube(
            "u", data, plan=[Materialization((0, 1), 1, 0.0)]
        )

        async def scenario() -> None:
            with pytest.raises(BadRequest):
                await service.update(
                    {
                        "cube": "u",
                        "updates": [
                            {"index": [0, 0, 0], "delta": 5},
                            {"index": [1, 1, 1], "delta": -1000},
                        ],
                    }
                )
            cube = service.cubes["u"]
            assert cube.generation == 0
            assert cube.healthy
            # Every tier still answers from the pristine cube,
            # including the first update entry that was individually
            # applicable.
            materialized = await service.query(
                {"cube": "u", "ranges": [[0, 3], [0, 2], None]}
            )
            assert materialized["tier"] == "materialized"
            assert materialized["value"] == int(data.sum())
            indexed = await service.query(
                {"cube": "u", "ranges": [[0, 3], [0, 2], 0]}
            )
            assert indexed["tier"] == "indexed"
            assert indexed["value"] == int(data[:, :, 0].sum())

        run(scenario())

    def test_delta_validation_mirrors_apply_semantics(self) -> None:
        """The dry run accepts exactly what the apply loop accepts.

        On an unsigned cube, positive duplicate deltas validate and
        apply; a batch containing any negative delta is rejected up
        front without mutating a single tier — even when the batch's
        net effect would be representable — because that is precisely
        when numpy's in-place assignment would raise mid-loop.
        """
        data = np.full((2, 2), 100, dtype=np.uint16)
        service = QueryService(ServeConfig(coalesce_window_s=0.0))
        service.register_cube("u", data, engine=None)

        async def scenario() -> None:
            result = await service.update(
                {
                    "cube": "u",
                    "updates": [
                        {"index": [0, 0], "delta": 30},
                        {"index": [0, 0], "delta": 20},  # duplicate cell
                    ],
                }
            )
            assert result["applied"] == 2
            value = await service.query({"cube": "u", "ranges": [0, 0]})
            assert value["value"] == 150
            # Nets to +30, but numpy raises on the -20 assignment.
            with pytest.raises(BadRequest):
                await service.update(
                    {
                        "cube": "u",
                        "updates": [
                            {"index": [1, 1], "delta": -20},
                            {"index": [1, 1], "delta": 50},
                        ],
                    }
                )
            assert service.cubes["u"].generation == 1
            untouched = await service.query(
                {"cube": "u", "ranges": [1, 1]}
            )
            assert untouched["value"] == 100

        run(scenario())

    def test_mid_apply_failure_quarantines_the_cube(self, data) -> None:
        """If a tier still fails mid-apply, the cube must stop serving.

        The dry run catches dtype/overflow failures up front; anything
        that slips past it may have torn the tiers, so the service
        bumps the generation, drops the cube's cache entries, and
        refuses further requests instead of answering inconsistently.
        """
        service = QueryService(ServeConfig(coalesce_window_s=0.0))
        service.register_cube("c", data)

        class Boom:
            def apply_updates(self, updates):
                raise RuntimeError("torn mid-batch")

        service.cubes["c"].cuboids = Boom()  # type: ignore[assignment]

        async def scenario() -> None:
            with pytest.raises(CubeInconsistent):
                await service.update(
                    {
                        "cube": "c",
                        "updates": [{"index": [0, 0, 0], "delta": 1}],
                    }
                )
            cube = service.cubes["c"]
            assert not cube.healthy
            assert cube.generation == 1  # stale cache entries cannot hit
            with pytest.raises(CubeInconsistent):
                await service.query({"cube": "c", "ranges": [0, 0, 0]})
            assert service.stats()["cubes"]["c"]["healthy"] is False

        run(scenario())

    def test_update_waits_for_inflight_offloaded_read(self, data) -> None:
        """A read running on the worker pool sees a consistent snapshot.

        The per-cube read/write lock makes an update wait for offloaded
        reads to drain (and vice versa), so a pool-thread scan can never
        observe the tiers torn mid-update.
        """
        import threading

        service = QueryService(
            ServeConfig(coalesce_window_s=0.0, offload_cells=1)
        )
        service.register_cube("c", data, engine=None)
        release = threading.Event()

        async def scenario() -> None:
            loop = asyncio.get_running_loop()
            entered = asyncio.Event()
            real = service.router.run_scalar

            def slow(*args, **kwargs):
                loop.call_soon_threadsafe(entered.set)
                release.wait(timeout=10)
                return real(*args, **kwargs)

            service.router.run_scalar = slow  # type: ignore[method-assign]
            try:
                query_task = asyncio.ensure_future(
                    service.query(
                        {"cube": "c", "ranges": [None, None, None]}
                    )
                )
                await entered.wait()  # the scan is mid-flight on the pool
                update_task = asyncio.ensure_future(
                    service.update(
                        {
                            "cube": "c",
                            "updates": [{"index": [0, 0, 0], "delta": 9}],
                        }
                    )
                )
                await asyncio.sleep(0.05)
                assert not update_task.done()  # writer waits for reader
                release.set()
                result = await query_task
                assert result["value"] == int(data.sum())  # pre-update
                await update_task
            finally:
                service.router.run_scalar = real  # type: ignore[method-assign]
            fresh = await service.query(
                {"cube": "c", "ranges": [None, None, None]}
            )
            assert fresh["value"] == int(data.sum()) + 9

        run(scenario())

    def test_count_updates_keep_average_exact(self, data) -> None:
        counts = np.full_like(data, 2)
        service = QueryService(ServeConfig(coalesce_window_s=0.0))
        service.register_cube("c", data, counts=counts)

        async def scenario() -> None:
            await service.update(
                {
                    "cube": "c",
                    "updates": [{"index": [0, 0, 0], "delta": 10}],
                    "count_updates": [
                        {"index": [0, 0, 0], "delta": 3}
                    ],
                }
            )
            result = await service.query(
                {"cube": "c", "op": "average", "ranges": [0, 0, 0]}
            )
            assert result["value"] == pytest.approx(
                (float(data[0, 0, 0]) + 10) / 5.0
            )

        run(scenario())

    def test_generation_bump_and_invalidation_hold_write_lock(
        self, service, data
    ) -> None:
        """The bump and cache invalidation must land before the write
        lock drops: a reader admitted between unlock and a later bump
        would cache a stale answer under the new generation."""
        cube = service.cubes["sales"]
        observed: list[tuple[bool, int]] = []
        real_invalidate = service.cache.invalidate_cube

        def spying_invalidate(name: str) -> int:
            observed.append((cube.rwlock.writing, cube.generation))
            return real_invalidate(name)

        service.cache.invalidate_cube = spying_invalidate  # type: ignore[method-assign]
        before = cube.generation
        try:
            run(
                service.update(
                    {
                        "cube": "sales",
                        "updates": [{"index": [0, 0, 0], "delta": 5}],
                    }
                )
            )
        finally:
            service.cache.invalidate_cube = real_invalidate  # type: ignore[method-assign]
        assert observed == [(True, before + 1)]


class TestRegistration:
    def test_duplicate_and_bad_names(self, data) -> None:
        service = QueryService()
        service.register_cube("a", data)
        with pytest.raises(ValueError):
            service.register_cube("a", data)
        with pytest.raises(ValueError):
            service.register_cube("", data)
        with pytest.raises(ValueError):
            service.register_cube("a/b", data)

    def test_prebuilt_engine_shape_check(self, data) -> None:
        service = QueryService()
        engine = RangeQueryEngine(np.ones((2, 2)))
        with pytest.raises(ValueError):
            service.register_cube("c", data, engine=engine)

    def test_registration_copies_the_cube(self, data) -> None:
        source = data.copy()
        service = QueryService(ServeConfig(coalesce_window_s=0.0))
        service.register_cube("c", source, engine=None)
        source[0, 0, 0] += 1000  # caller-side mutation is invisible
        result = run(
            service.query({"cube": "c", "ranges": [0, 0, 0]})
        )
        assert result["value"] == int(data[0, 0, 0])

    def test_describe_cubes(self, service) -> None:
        catalog = service.describe_cubes()
        assert catalog["sales"]["tiers"] == ["indexed", "fallback"]
        assert catalog["sales"]["has_counts"]
        assert catalog["sales"]["shape"] == [9, 8, 7]


class TestLogbook:
    def test_served_traffic_lands_in_advisor_format(
        self, data, tmp_path
    ) -> None:
        path = tmp_path / "workload.json"
        service = QueryService(
            ServeConfig(coalesce_window_s=0.0, logbook_path=str(path))
        )
        service.register_cube("c", data)

        async def scenario() -> None:
            await service.query(
                {"cube": "c", "ranges": [[1, 4], None, 2]}
            )
            await service.query(
                {"cube": "c", "ranges": [[1, 4], None, 2]}
            )  # cache hits are traffic too
            await service.query_batch(
                {
                    "cube": "c",
                    "queries": [
                        [None, [2, 5], None],
                        [[8, 0], None, None],  # empty: no signal
                    ],
                }
            )
            await service.close()

        run(scenario())
        log = QueryLog.load(path)
        assert len(log) == 3  # two scalars + one non-empty batch row
        first = log.queries[0]
        assert first.specs[0].kind is SpecKind.RANGE
        assert first.specs[1].kind is SpecKind.ALL
        assert first.specs[2].kind is SpecKind.SINGLETON
        # The §9 selector consumes it directly.
        assert log.workloads()
        assert log.length_matrix().shape[1] == 3

    def test_logbooks_written_per_cube_even_without_traffic(
        self, data, tmp_path
    ) -> None:
        """Every configured logbook writes, suffixed per cube.

        Regression: the filter was ``if cube.logbook``, and ``QueryLog``
        defines ``__len__`` — so a zero-query logbook was falsy and
        silently skipped, and in a multi-cube service the single cube
        that saw traffic claimed the bare ``logbook_path`` with no cube
        suffix, making the file's attribution ambiguous.
        """
        path = tmp_path / "traffic.json"
        service = QueryService(
            ServeConfig(coalesce_window_s=0.0, logbook_path=str(path))
        )
        service.register_cube("hot", data)
        service.register_cube("cold", data)
        run(service.query({"cube": "hot", "ranges": [0, 0, 0]}))

        written = service.save_logbooks()
        assert sorted(written) == [
            str(tmp_path / "traffic-cold.json"),
            str(tmp_path / "traffic-hot.json"),
        ]
        assert len(QueryLog.load(tmp_path / "traffic-hot.json")) == 1
        assert len(QueryLog.load(tmp_path / "traffic-cold.json")) == 0

    def test_single_cube_empty_logbook_still_writes(
        self, data, tmp_path
    ) -> None:
        path = tmp_path / "idle.json"
        service = QueryService(
            ServeConfig(coalesce_window_s=0.0, logbook_path=str(path))
        )
        service.register_cube("c", data)
        assert service.save_logbooks() == [str(path)]
        assert len(QueryLog.load(path)) == 0

    def test_no_logbook_by_default(self, service) -> None:
        run(
            service.query({"cube": "sales", "ranges": [None, None, None]})
        )
        assert service.cubes["sales"].logbook is None
        assert service.save_logbooks() == []


class TestStats:
    def test_stats_surface(self, service, data) -> None:
        async def scenario() -> None:
            await service.query(
                {"cube": "sales", "ranges": [[0, 4], None, None]}
            )
            await service.query(
                {"cube": "sales", "ranges": [[0, 4], None, None]}
            )

        run(scenario())
        stats = service.stats()
        cube = stats["cubes"]["sales"]
        assert cube["queries"] == 2
        assert cube["generation"] == 0
        assert cube["tiers"]["indexed"]["queries"] == 1
        assert cube["access_counts"]["total"] > 0
        assert stats["cache"]["hits"] == 1
        assert stats["admission"]["completed"] == 2
