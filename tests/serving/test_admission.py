"""Unit tests for admission control: slots, queue, shedding, hand-off."""

from __future__ import annotations

import asyncio

import pytest

from repro.serving.admission import AdmissionController
from repro.serving.errors import Overloaded


def test_admits_up_to_max_inflight() -> None:
    async def run() -> None:
        admission = AdmissionController(max_inflight=2, max_queue=0)
        await admission.acquire()
        await admission.acquire()
        assert admission.inflight == 2
        with pytest.raises(Overloaded):
            await admission.acquire()
        admission.release()
        await admission.acquire()  # freed slot is reusable
        assert admission.inflight == 2

    asyncio.run(run())


def test_queue_absorbs_then_sheds() -> None:
    async def run() -> None:
        admission = AdmissionController(max_inflight=1, max_queue=2)
        await admission.acquire()
        waiters = [
            asyncio.ensure_future(admission.acquire()) for _ in range(2)
        ]
        await asyncio.sleep(0)
        assert admission.queued == 2
        with pytest.raises(Overloaded):
            await admission.acquire()  # queue full: shed
        assert admission.shed == 1
        # Finishing hands the slot to the oldest waiter directly.
        admission.release()
        await waiters[0]
        assert admission.inflight == 1
        assert admission.queued == 1
        admission.release()
        await waiters[1]
        admission.release()
        assert admission.inflight == 0

    asyncio.run(run())


def test_cancelled_waiter_leaves_queue() -> None:
    async def run() -> None:
        admission = AdmissionController(max_inflight=1, max_queue=4)
        await admission.acquire()
        waiter = asyncio.ensure_future(admission.acquire())
        await asyncio.sleep(0)
        assert admission.queued == 1
        waiter.cancel()
        with pytest.raises(asyncio.CancelledError):
            await waiter
        assert admission.queued == 0
        # The held slot is unaffected and still hands over cleanly.
        follow = asyncio.ensure_future(admission.acquire())
        await asyncio.sleep(0)
        admission.release()
        await follow
        assert admission.inflight == 1
        admission.release()

    asyncio.run(run())


def test_timed_out_waiter_does_not_leak_slot() -> None:
    async def run() -> None:
        admission = AdmissionController(max_inflight=1, max_queue=4)
        await admission.acquire()
        with pytest.raises(TimeoutError):
            await asyncio.wait_for(admission.acquire(), timeout=0.02)
        admission.release()
        # Slot must be acquirable again after the timeout.
        await asyncio.wait_for(admission.acquire(), timeout=1.0)
        admission.release()
        assert admission.inflight == 0

    asyncio.run(run())


def test_context_manager_releases_on_error() -> None:
    async def run() -> None:
        admission = AdmissionController(max_inflight=1, max_queue=0)
        with pytest.raises(RuntimeError):
            async with admission:
                assert admission.inflight == 1
                raise RuntimeError("handler blew up")
        assert admission.inflight == 0
        async with admission:
            pass  # still usable afterwards

    asyncio.run(run())


def test_stats_shape_and_peaks() -> None:
    async def run() -> None:
        admission = AdmissionController(max_inflight=2, max_queue=2)
        await admission.acquire()
        await admission.acquire()
        waiter = asyncio.ensure_future(admission.acquire())
        await asyncio.sleep(0)
        stats = admission.stats()
        assert stats["peak_inflight"] == 2
        assert stats["peak_queued"] == 1
        assert stats["queued"] == 1
        admission.release()
        await waiter
        admission.release()
        admission.release()
        final = admission.stats()
        assert final["inflight"] == 0
        assert final["completed"] == 3
        assert final["admitted"] == 3

    asyncio.run(run())


def test_constructor_validation() -> None:
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=0)
    with pytest.raises(ValueError):
        AdmissionController(max_queue=-1)
