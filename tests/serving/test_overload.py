"""Overload behavior: explicit shedding, deadlines, bounded admitted latency."""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.serving import (
    QueryService,
    ServeConfig,
    ServingServer,
    generate_requests,
    run_load,
)
from repro.serving.errors import Overloaded, QueryTimeout


def _slow_service(
    *,
    delay_s: float,
    max_inflight: int,
    max_queue: int,
    timeout_s: float = 30.0,
    workers: int = 2,
) -> QueryService:
    """A service whose every scalar execution sleeps on a worker thread.

    ``offload_cells=0`` forces execution off the event loop, so queries
    genuinely occupy their admission slots while the controller fields
    the rest of the burst.
    """
    rng = np.random.default_rng(0x10AD)
    data = rng.integers(0, 9, size=(6, 6)).astype(np.int64)
    service = QueryService(
        ServeConfig(
            coalesce_window_s=0.0,
            cache_capacity=0,
            max_inflight=max_inflight,
            max_queue=max_queue,
            timeout_s=timeout_s,
            offload_cells=0,
            executor_workers=workers,
        )
    )
    service.register_cube("c", data)
    real = service.router.run_scalar

    def slow(*args, **kwargs):
        time.sleep(delay_s)
        return real(*args, **kwargs)

    service.router.run_scalar = slow  # type: ignore[method-assign]
    return service


PAYLOAD = {"cube": "c", "op": "sum", "ranges": [[0, 5], [0, 5]]}


def test_burst_beyond_queue_is_shed_explicitly() -> None:
    service = _slow_service(delay_s=0.05, max_inflight=2, max_queue=2)

    async def burst() -> list:
        return await asyncio.gather(
            *(service.query(dict(PAYLOAD)) for _ in range(20)),
            return_exceptions=True,
        )

    results = asyncio.run(burst())
    shed = [r for r in results if isinstance(r, Overloaded)]
    completed = [r for r in results if isinstance(r, dict)]
    # The whole burst lands in one tick: 2 slots + 2 queue seats admit
    # exactly 4; the other 16 are declined up front, not queued.
    assert len(completed) == 4
    assert len(shed) == 16
    assert all(r["value"] == completed[0]["value"] for r in completed)
    stats = service.admission.stats()
    assert stats["shed"] == 16
    assert stats["peak_inflight"] == 2
    assert stats["peak_queued"] == 2
    assert stats["inflight"] == 0 and stats["queued"] == 0


def test_admitted_latency_stays_bounded_under_overload() -> None:
    delay = 0.03
    service = _slow_service(delay_s=delay, max_inflight=2, max_queue=2)

    async def burst() -> list[float]:
        async def timed() -> float | None:
            started = time.perf_counter()
            try:
                await service.query(dict(PAYLOAD))
            except Overloaded:
                return None
            return time.perf_counter() - started

        samples = await asyncio.gather(*(timed() for _ in range(30)))
        return [s for s in samples if s is not None]

    latencies = asyncio.run(burst())
    assert latencies
    # Worst case for an admitted request: wait out the in-flight pair
    # plus the queue ahead of it — a few delay quanta, never the whole
    # burst. Generous factor for slow CI machines.
    assert max(latencies) < delay * 4 + 1.0


def test_deadline_expiry_maps_to_timeout() -> None:
    service = _slow_service(
        delay_s=0.5, max_inflight=1, max_queue=4, timeout_s=0.05, workers=1
    )

    async def run() -> None:
        with pytest.raises(QueryTimeout):
            await service.query(dict(PAYLOAD))
        assert service.admission.stats()["timeouts"] == 1
        # The slot was not leaked by the cancelled request.
        assert service.admission.inflight == 0

    asyncio.run(run())


def test_shed_requests_surface_as_429_over_http() -> None:
    service = _slow_service(delay_s=0.02, max_inflight=1, max_queue=1)

    async def drive() -> None:
        server = ServingServer(service)
        await server.start()
        try:
            rng = np.random.default_rng(0x429)
            payloads = generate_requests(
                rng, (6, 6), 60, cube="c", hot_fraction=0.0
            )
            report = await run_load(
                server.host, server.port, payloads, concurrency=8
            )
            # Under 8-way pressure on a 1+1 service, some requests are
            # shed with an explicit 429 and the rest complete normally.
            assert report.shed > 0
            assert report.completed > 0
            assert report.errors == 0
            assert report.completed + report.shed == 60
            # Bounded latency for the admitted requests.
            assert report.p99_ms < 5000
        finally:
            await server.stop()

    asyncio.run(drive())
