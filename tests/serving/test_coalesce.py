"""Unit tests for the request coalescer's batching discipline."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro._util import Box
from repro.serving.coalesce import RequestCoalescer


class Recorder:
    """A fake batch runner recording every dispatched batch."""

    def __init__(self, fail: bool = False) -> None:
        self.batches: list[tuple[str, str, np.ndarray, np.ndarray]] = []
        self.fail = fail

    async def __call__(self, cube, op, lows, highs):
        self.batches.append((cube, op, lows, highs))
        if self.fail:
            raise RuntimeError("batch exploded")
        # Answer each row with its lower-corner sum — enough to check
        # results return to the right submitter.
        return [int(lo.sum()) for lo in lows]


def box(*pairs) -> Box:
    return Box(tuple(p[0] for p in pairs), tuple(p[1] for p in pairs))


def test_concurrent_submissions_form_one_batch() -> None:
    runner = Recorder()
    coalescer = RequestCoalescer(runner, window_s=0.005, max_batch=64)

    async def run() -> list:
        return await asyncio.gather(
            *(
                coalescer.submit("c", "sum", box((k, k + 1), (0, 3)))
                for k in range(8)
            )
        )

    values = asyncio.run(run())
    assert values == [k for k in range(8)]
    assert len(runner.batches) == 1
    assert coalescer.batches == 1
    assert coalescer.largest_batch == 8
    assert coalescer.window_flushes == 1
    cube, op, lows, highs = runner.batches[0]
    assert (cube, op) == ("c", "sum")
    assert lows.shape == (8, 2)


def test_distinct_cubes_and_ops_batch_separately() -> None:
    runner = Recorder()
    coalescer = RequestCoalescer(runner, window_s=0.005, max_batch=64)

    async def run() -> None:
        await asyncio.gather(
            coalescer.submit("a", "sum", box((0, 1))),
            coalescer.submit("a", "count", box((0, 1))),
            coalescer.submit("b", "sum", box((0, 1))),
        )

    asyncio.run(run())
    keys = {(cube, op) for cube, op, _, _ in runner.batches}
    assert keys == {("a", "sum"), ("a", "count"), ("b", "sum")}
    assert coalescer.batches == 3


def test_max_batch_flushes_early() -> None:
    runner = Recorder()
    coalescer = RequestCoalescer(runner, window_s=10.0, max_batch=4)

    async def run() -> list:
        # window is 10s: only the size cap can flush within the test.
        return await asyncio.wait_for(
            asyncio.gather(
                *(
                    coalescer.submit("c", "sum", box((k, k)))
                    for k in range(4)
                )
            ),
            timeout=2.0,
        )

    values = asyncio.run(run())
    assert values == [0, 1, 2, 3]
    assert coalescer.size_flushes == 1
    assert coalescer.largest_batch == 4
    assert coalescer.pending_rows() == 0


def test_window_zero_dispatches_immediately() -> None:
    runner = Recorder()
    coalescer = RequestCoalescer(runner, window_s=0.0, max_batch=64)

    async def run() -> None:
        for k in range(3):
            value = await coalescer.submit("c", "sum", box((k, k)))
            assert value == k

    asyncio.run(run())
    assert coalescer.batches == 3
    assert all(len(lows) == 1 for _, _, lows, _ in runner.batches)


def test_failure_fans_out_to_every_submitter() -> None:
    runner = Recorder(fail=True)
    coalescer = RequestCoalescer(runner, window_s=0.005, max_batch=64)

    async def run() -> list:
        return await asyncio.gather(
            *(
                coalescer.submit("c", "sum", box((k, k)))
                for k in range(3)
            ),
            return_exceptions=True,
        )

    results = asyncio.run(run())
    assert len(results) == 3
    assert all(isinstance(r, RuntimeError) for r in results)
    assert len(runner.batches) == 1  # one failing dispatch, not three


def test_flush_all_drains_pending() -> None:
    runner = Recorder()
    coalescer = RequestCoalescer(runner, window_s=30.0, max_batch=64)

    async def run() -> int:
        task = asyncio.ensure_future(
            coalescer.submit("c", "sum", box((2, 3)))
        )
        await asyncio.sleep(0)  # let the submission park
        assert coalescer.pending_rows() == 1
        await coalescer.flush_all()
        return await asyncio.wait_for(task, timeout=1.0)

    assert asyncio.run(run()) == 2
    assert coalescer.window_flushes == 0


def test_cancelled_size_flush_submitter_does_not_strand_batch() -> None:
    """One waiter's deadline must not abandon its co-batched neighbours.

    Regression: the size-triggered flush ran ``await _run_batch`` inside
    the submitting request's task, so cancelling that submitter
    (``asyncio.wait_for`` deadline) aborted the batch mid-execution and
    every other parked future hung until its own timeout.
    """

    async def run() -> int:
        started = asyncio.Event()
        release = asyncio.Event()

        async def execute(cube, op, lows, highs):
            started.set()
            await release.wait()
            return [int(lo.sum()) for lo in lows]

        coalescer = RequestCoalescer(execute, window_s=30.0, max_batch=2)
        survivor = asyncio.ensure_future(
            coalescer.submit("c", "sum", box((1, 1)))
        )
        await asyncio.sleep(0)  # park the first row
        doomed = asyncio.ensure_future(
            coalescer.submit("c", "sum", box((2, 2)))
        )
        await started.wait()  # the batch of two is executing
        doomed.cancel()
        await asyncio.sleep(0)
        release.set()
        with pytest.raises(asyncio.CancelledError):
            await doomed
        return await asyncio.wait_for(survivor, timeout=2.0)

    assert asyncio.run(run()) == 1


def test_window_flush_survives_suspending_executor() -> None:
    """The window timer must not cancel its own batch.

    Regression: the timer's flush path cancelled the timer task (itself)
    via ``_detach``; the pending self-cancellation was delivered at the
    executor's first suspension point — exactly what a worker-pool
    offload does — aborting the batch with every future unresolved.
    """

    async def execute(cube, op, lows, highs):
        await asyncio.sleep(0)  # suspend, like run_in_executor does
        return [int(lo.sum()) for lo in lows]

    async def run() -> list:
        coalescer = RequestCoalescer(execute, window_s=0.002, max_batch=64)
        return await asyncio.wait_for(
            asyncio.gather(
                coalescer.submit("c", "sum", box((0, 0))),
                coalescer.submit("c", "sum", box((4, 4))),
            ),
            timeout=2.0,
        )

    assert asyncio.run(run()) == [0, 4]


def test_non_coalescible_op_rejected() -> None:
    coalescer = RequestCoalescer(Recorder(), window_s=0.001)

    async def run() -> None:
        await coalescer.submit("c", "max", box((0, 1)))

    with pytest.raises(ValueError, match="cannot coalesce"):
        asyncio.run(run())
