"""Differential tests: served answers ≡ direct engine answers, bit for bit.

Scenarios come from the fuzz harness's generator
(:func:`repro.verify.scenarios.scenario_for` /
:func:`~repro.verify.driver.build_source`), so cube shapes, dtypes, and
backends sweep the same adversarial space the verification suite covers
and every value is exactly representable — equality below is ``==``, not
``approx``.  The reference :class:`RangeQueryEngine` is built
*independently* of the service's, so agreement is end-to-end: parsing,
routing, coalescing, caching, and updates all have to preserve the
engine's answers exactly.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro._util import Box
from repro.core.batch_update import PointUpdate
from repro.index.backend import MemmapBackend
from repro.query import RangeQueryEngine
from repro.serving.service import QueryService, ServeConfig
from repro.verify.driver import build_source
from repro.verify.scenarios import scenario_for

SEEDS = range(10)

BOX_TAG = 0x5E12F
UPDATE_TAG = 0x5E12E


def random_box(rng: np.random.Generator, shape) -> Box:
    lo, hi = [], []
    for size in shape:
        a = int(rng.integers(0, size))
        b = int(rng.integers(0, size))
        lo.append(min(a, b))
        hi.append(max(a, b))
    return Box(tuple(lo), tuple(hi))


def empty_box(rng: np.random.Generator, shape) -> Box:
    box = random_box(rng, shape)
    lo, hi = list(box.lo), list(box.hi)
    dim = int(rng.integers(0, len(shape)))
    lo[dim] = int(rng.integers(1, shape[dim] + 1))
    hi[dim] = lo[dim] - 1
    return Box(tuple(lo), tuple(hi))


def to_ranges(box: Box) -> list:
    return [[int(lo), int(hi)] for lo, hi in zip(box.lo, box.hi)]


def _updatable(dtype: np.dtype) -> bool:
    """Dtypes whose served point updates this test exercises.

    Bool and unsigned cubes need dtype-aware delta envelopes (the fuzz
    harness's update steps own that coverage); here we drive the serving
    path with plain signed deltas.
    """
    return dtype.kind in ("i", "f")


async def _compare_scalars(service, engine, boxes, *, generation):
    """Ask sum/count/average for every box concurrently (coalescing on)
    and compare each answer to the direct engine call, exactly."""
    for op in ("sum", "count", "average"):
        served = await asyncio.gather(
            *(
                service.query(
                    {"cube": "t", "op": op, "ranges": to_ranges(box)}
                )
                for box in boxes
            )
        )
        direct = [getattr(engine, op)(box) for box in boxes]
        for box, got, want in zip(boxes, served, direct):
            assert got["value"] == want, (
                f"{op} over {box} diverged: served {got['value']!r} "
                f"(tier {got['tier']}) vs engine {want!r}"
            )
            assert got["generation"] == generation


async def _compare_witnesses(service, engine, boxes):
    """MAX/MIN: values must match exactly; witnesses must be valid."""
    for op in ("max", "min"):
        for box in boxes:
            if box.is_empty:
                continue
            got = await service.query(
                {"cube": "t", "op": op, "ranges": to_ranges(box)}
            )
            index, value = getattr(engine, op)(box)
            assert got["value"] == value, (
                f"{op} over {box}: served {got['value']!r} vs "
                f"engine {value!r}"
            )
            served_cell = service.cubes["t"].base[
                tuple(got["index"])
            ]
            assert served_cell == value  # any argmax/argmin witness


@pytest.mark.parametrize("seed", SEEDS)
def test_served_equals_engine(seed, tmp_path) -> None:
    scenario = scenario_for("prefix_sum", seed)
    assert scenario is not None  # prefix_sum always has a fuzz profile
    source = build_source(scenario)
    backend = (
        MemmapBackend(tmp_path) if scenario.backend == "memmap" else None
    )
    engine = RangeQueryEngine(source.copy())
    service = QueryService(
        ServeConfig(coalesce_window_s=0.002, coalesce_max_batch=64)
    )
    service.register_cube("t", source, backend=backend)

    rng = np.random.default_rng([BOX_TAG, seed])
    boxes = [random_box(rng, scenario.shape) for _ in range(10)]
    boxes += [empty_box(rng, scenario.shape) for _ in range(2)]

    async def drive() -> None:
        await _compare_scalars(service, engine, boxes, generation=0)
        await _compare_witnesses(service, engine, boxes)
        # Second pass: answers now come from the cache and must still
        # be identical.
        await _compare_scalars(service, engine, boxes, generation=0)
        assert service.cache.stats()["hits"] > 0

        if _updatable(source.dtype):
            update_rng = np.random.default_rng([UPDATE_TAG, seed])
            updates = []
            for _ in range(5):
                index = tuple(
                    int(update_rng.integers(0, n))
                    for n in scenario.shape
                )
                delta = int(update_rng.integers(-9, 10))
                updates.append({"index": list(index), "delta": delta})
            await service.update({"cube": "t", "updates": updates})
            engine.apply_updates(
                [
                    PointUpdate(tuple(u["index"]), u["delta"])
                    for u in updates
                ]
            )
            # Post-update: stale cache entries must not leak through.
            await _compare_scalars(service, engine, boxes, generation=1)
            await _compare_witnesses(service, engine, boxes)

    asyncio.run(drive())
    # The concurrent asks really did coalesce into shared gathers.
    assert service.coalescer.largest_batch >= 2
    assert service.coalescer.batches < service.coalescer.submitted


def test_served_equals_engine_with_counts_cube(tmp_path) -> None:
    """AVERAGE with a real counts cube: the (sum, count) pair end to end."""
    rng = np.random.default_rng(0xAB5E)
    data = rng.integers(-40, 41, size=(6, 7, 4)).astype(np.int64)
    counts = rng.integers(0, 4, size=data.shape).astype(np.int64)
    engine = RangeQueryEngine(data.copy(), counts=counts.copy())
    service = QueryService(ServeConfig(coalesce_window_s=0.001))
    service.register_cube("t", data, counts=counts)

    boxes = [random_box(rng, data.shape) for _ in range(12)]

    async def drive() -> None:
        await _compare_scalars(service, engine, boxes, generation=0)
        await service.update(
            {
                "cube": "t",
                "updates": [{"index": [2, 3, 1], "delta": 17}],
                "count_updates": [{"index": [2, 3, 1], "delta": 2}],
            }
        )
        engine.apply_updates(
            [PointUpdate((2, 3, 1), 17)],
            [PointUpdate((2, 3, 1), 2)],
        )
        await _compare_scalars(service, engine, boxes, generation=1)

    asyncio.run(drive())


def test_coalesced_and_per_query_dispatch_agree() -> None:
    """Window on vs window off must not change a single answer."""
    rng = np.random.default_rng(0xC0A1)
    data = rng.integers(-30, 31, size=(9, 9, 5)).astype(np.int64)
    coalesced = QueryService(ServeConfig(coalesce_window_s=0.002))
    direct = QueryService(ServeConfig(coalesce_window_s=0.0))
    coalesced.register_cube("t", data)
    direct.register_cube("t", data)
    boxes = [random_box(rng, data.shape) for _ in range(16)]

    async def ask(service) -> list:
        results = await asyncio.gather(
            *(
                service.query(
                    {"cube": "t", "op": "sum", "ranges": to_ranges(box)}
                )
                for box in boxes
            )
        )
        return [r["value"] for r in results]

    a = asyncio.run(ask(coalesced))
    b = asyncio.run(ask(direct))
    assert a == b
    assert coalesced.coalescer.largest_batch >= 2
    assert direct.coalescer.batches == 0
