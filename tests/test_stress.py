"""Long randomized operation sequences (fuzz-style stress tests).

Each scenario interleaves batched updates with queries over many rounds,
holding a plain-array mirror as the oracle.  These runs catch state-decay
bugs — stale auxiliary data after particular update interleavings — that
single-batch tests cannot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.core.batch_update import PointUpdate
from repro.core.blocked import BlockedPrefixSumCube
from repro.core.max_update import MaxAssignment, apply_max_updates
from repro.core.partial_prefix import PartialPrefixSumCube
from repro.core.prefix_sum import PrefixSumCube
from repro.core.range_max import RangeMaxTree
from repro.query.naive import naive_max_value, naive_range_sum
from repro.query.workload import make_cube, random_box


@pytest.fixture
def rng():
    return np.random.default_rng(0xFADE)


def random_updates(shape, count, rng, lo=-20, hi=30):
    updates = []
    seen = set()
    while len(updates) < count:
        index = tuple(int(rng.integers(0, n)) for n in shape)
        if index in seen:
            continue
        seen.add(index)
        updates.append(PointUpdate(index, int(rng.integers(lo, hi))))
    return updates


class TestSumStructuresUnderChurn:
    def test_twenty_rounds_of_updates_and_queries(self, rng):
        shape = (24, 18)
        cube = make_cube(shape, rng).astype(np.int64)
        structures = [
            PrefixSumCube(cube),
            BlockedPrefixSumCube(cube, 5),
            PartialPrefixSumCube(cube, [0]),
        ]
        mirror = cube.copy()
        for round_number in range(20):
            batch = random_updates(
                shape, int(rng.integers(1, 15)), rng
            )
            for structure in structures:
                structure.apply_updates(batch)
            for update in batch:
                mirror[update.index] += update.delta
            for _ in range(5):
                box = random_box(shape, rng)
                expected = naive_range_sum(mirror, box)
                for structure in structures:
                    assert structure.range_sum(box) == expected, (
                        round_number,
                        type(structure).__name__,
                        box,
                    )

    def test_prefix_array_exact_after_churn(self, rng):
        from repro.core.prefix_sum import compute_prefix_array

        shape = (12, 12, 6)
        cube = make_cube(shape, rng).astype(np.int64)
        structure = PrefixSumCube(cube)
        for _ in range(15):
            structure.apply_updates(
                random_updates(shape, int(rng.integers(1, 20)), rng)
            )
        assert np.array_equal(
            structure.prefix, compute_prefix_array(structure.source)
        )


class TestMaxTreeUnderChurn:
    @pytest.mark.parametrize("fanout", [2, 3, 5])
    def test_thirty_rounds_with_heavy_ties(self, rng, fanout):
        """Small value domain forces constant ties — the hardest case
        for the §7 bookkeeping (index moves at equal values)."""
        shape = (19, 23)
        cube = rng.integers(0, 8, shape).astype(np.int64)
        tree = RangeMaxTree(cube, fanout)
        mirror = cube.copy()
        for round_number in range(30):
            count = int(rng.integers(1, 12))
            batch = []
            seen = set()
            while len(batch) < count:
                index = tuple(int(rng.integers(0, n)) for n in shape)
                if index in seen:
                    continue
                seen.add(index)
                batch.append(
                    MaxAssignment(index, int(rng.integers(0, 8)))
                )
            apply_max_updates(tree, batch)
            for assignment in batch:
                mirror[assignment.index] = assignment.value
            rebuilt = RangeMaxTree(mirror, fanout)
            for level in range(1, tree.height + 1):
                assert np.array_equal(
                    tree.values[level], rebuilt.values[level]
                ), (round_number, level)
                pointed = mirror.ravel()[tree.positions[level]]
                assert np.array_equal(
                    pointed, tree.values[level]
                ), (round_number, level)
            for _ in range(3):
                box = random_box(shape, rng)
                assert tree.source[tree.max_index(box)] == (
                    naive_max_value(mirror, box)
                )

    def test_monotone_decreasing_storm(self, rng):
        """Every update is a decrease: maximal rescan pressure."""
        shape = (16, 16)
        cube = rng.integers(100, 1000, shape).astype(np.int64)
        tree = RangeMaxTree(cube, 4)
        mirror = cube.copy()
        for _ in range(10):
            batch = []
            seen = set()
            while len(batch) < 8:
                index = tuple(int(rng.integers(0, 16)) for _ in range(2))
                if index in seen:
                    continue
                seen.add(index)
                batch.append(
                    MaxAssignment(
                        index, int(mirror[index] // 2)
                    )
                )
            apply_max_updates(tree, batch)
            for assignment in batch:
                mirror[assignment.index] = assignment.value
            box = Box((0, 0), (15, 15))
            assert tree.source[tree.max_index(box)] == mirror.max()


class TestSparseEnginesUnderQueryStorm:
    def test_five_hundred_random_queries(self, rng):
        from repro.query.workload import clustered_points
        from repro.sparse.sparse_cube import SparseCube
        from repro.sparse.sparse_max import SparseRangeMaxEngine
        from repro.sparse.sparse_sum import SparseRangeSumEngine

        shape = (80, 80)
        cells = clustered_points(
            shape,
            [Box((5, 5), (30, 30)), Box((45, 40), (70, 70))],
            0.8,
            60,
            rng,
        )
        cube = SparseCube(shape, cells)
        sum_engine = SparseRangeSumEngine(cube, block_size=3)
        max_engine = SparseRangeMaxEngine(cube)
        for _ in range(500):
            box = random_box(shape, rng)
            assert sum_engine.range_sum(box) == cube.naive_range_sum(box)
            expected = cube.naive_max(box)
            got = max_engine.max_index(box)
            if expected is None:
                assert got is None
            else:
                assert got is not None and got[1] == expected[1]
