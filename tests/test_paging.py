"""Tests for page-touch accounting (§3.3's storage-level costs)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import Box
from repro.instrumentation.paging import (
    flat_index,
    pages_for_box,
    pages_for_cells,
    theorem1_corner_pages,
)


@pytest.fixture
def rng():
    return np.random.default_rng(239)


def oracle_pages_for_box(box, shape, page_size):
    """Exhaustive oracle: materialize every cell's page."""
    return len(
        {
            flat_index(point, shape) // page_size
            for point in box.iter_points()
        }
    )


class TestFlatIndex:
    def test_row_major(self):
        assert flat_index((0, 0), (3, 4)) == 0
        assert flat_index((1, 2), (3, 4)) == 6
        assert flat_index((2, 3), (3, 4)) == 11

    def test_matches_numpy(self, rng):
        shape = (4, 5, 6)
        for _ in range(20):
            index = tuple(int(rng.integers(0, n)) for n in shape)
            assert flat_index(index, shape) == int(
                np.ravel_multi_index(index, shape)
            )


class TestPagesForCells:
    def test_shared_page_counts_once(self):
        assert pages_for_cells([0, 1, 2, 3], 4) == 1
        assert pages_for_cells([0, 4], 4) == 2
        assert pages_for_cells([], 4) == 0

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            pages_for_cells([0], 0)


class TestPagesForBox:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=10**4),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_oracle(self, n1, n2, page_size, seed):
        local = np.random.default_rng(seed)
        shape = (n1 + 2, n2 + 2)
        lo = tuple(int(local.integers(0, n)) for n in shape)
        hi = tuple(
            int(local.integers(l, n)) for l, n in zip(lo, shape)
        )
        box = Box(lo, hi)
        assert pages_for_box(box, shape, page_size) == (
            oracle_pages_for_box(box, shape, page_size)
        )

    def test_three_dimensional_oracle(self, rng):
        shape = (5, 6, 7)
        for _ in range(40):
            lo = tuple(int(rng.integers(0, n)) for n in shape)
            hi = tuple(
                int(rng.integers(l, n)) for l, n in zip(lo, shape)
            )
            box = Box(lo, hi)
            for page in (1, 3, 16, 64):
                assert pages_for_box(box, shape, page) == (
                    oracle_pages_for_box(box, shape, page)
                )

    def test_full_array_is_all_pages(self):
        box = Box((0, 0), (9, 9))
        assert pages_for_box(box, (10, 10), 10) == 10

    def test_empty_box(self):
        assert pages_for_box(Box((2,), (1,)), (10,), 4) == 0

    def test_one_dimensional(self):
        assert pages_for_box(Box((5,), (14,)), (100,), 4) == 3


class TestTheorem1Pages:
    def test_at_most_2_to_the_d(self, rng):
        shape = (50, 50, 50)
        for _ in range(40):
            lo = tuple(int(rng.integers(0, n)) for n in shape)
            hi = tuple(
                int(rng.integers(l, n)) for l, n in zip(lo, shape)
            )
            pages = theorem1_corner_pages(Box(lo, hi), shape, 64)
            assert pages <= 8

    def test_scan_pages_dwarf_corner_pages(self, rng):
        """The I/O restatement of the headline claim."""
        shape = (200, 200)
        box = Box((10, 10), (189, 189))
        page = 128
        scan = pages_for_box(box, shape, page)
        corners = theorem1_corner_pages(box, shape, page)
        assert corners <= 4
        assert scan > 50 * corners
