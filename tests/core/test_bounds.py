"""Tests for progressive range-sum bounds (paper §11)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import Box
from repro.core.blocked import BlockedPrefixSumCube
from repro.core.bounds import progressive_bounds
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_range_sum
from repro.query.workload import make_cube, random_box


@pytest.fixture
def rng():
    return np.random.default_rng(53)


@st.composite
def nonneg_cube_query(draw):
    n1 = draw(st.integers(min_value=4, max_value=20))
    n2 = draw(st.integers(min_value=4, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    block = draw(st.integers(min_value=1, max_value=6))
    local = np.random.default_rng(seed)
    cube = local.integers(0, 50, (n1, n2)).astype(np.int64)
    lo = tuple(int(local.integers(0, n)) for n in (n1, n2))
    hi = tuple(
        int(local.integers(l, n)) for l, n in zip(lo, (n1, n2))
    )
    return cube, block, Box(lo, hi)


class TestSandwichProperty:
    @given(nonneg_cube_query())
    @settings(max_examples=100, deadline=None)
    def test_lower_exact_upper(self, data):
        cube, block, box = data
        structure = BlockedPrefixSumCube(cube, block)
        bounds = progressive_bounds(structure, box)
        exact = naive_range_sum(cube, box)
        assert bounds.lower <= exact <= bounds.upper
        assert bounds.width() >= 0

    def test_aligned_query_is_exact_both_ways(self, rng):
        cube = make_cube((40, 40), rng)
        structure = BlockedPrefixSumCube(cube, 10)
        box = Box((10, 20), (29, 39))
        bounds = progressive_bounds(structure, box)
        exact = naive_range_sum(cube, box)
        assert bounds.lower == exact == bounds.upper

    def test_thin_query_has_identity_lower_bound(self, rng):
        """A query spanning no full block has an empty internal region."""
        cube = make_cube((40, 40), rng)
        structure = BlockedPrefixSumCube(cube, 10)
        bounds = progressive_bounds(structure, Box((12, 3), (15, 36)))
        assert bounds.inner_region is None
        assert bounds.lower == 0


class TestBoundQuality:
    def test_width_shrinks_with_block_size(self, rng):
        cube = make_cube((120, 120), rng)
        box = Box((7, 7), (106, 106))
        widths = []
        for block in (40, 20, 10, 5):
            structure = BlockedPrefixSumCube(cube, block)
            widths.append(progressive_bounds(structure, box).width())
        assert widths == sorted(widths, reverse=True)
        assert widths[-1] < widths[0]

    def test_constant_access_cost(self, rng):
        """Each bound costs at most 2^d prefix reads — never cube scans."""
        cube = make_cube((100, 100), rng)
        structure = BlockedPrefixSumCube(cube, 10)
        counter = AccessCounter()
        progressive_bounds(structure, Box((13, 17), (88, 91)), counter)
        assert counter.cube_cells == 0
        assert counter.prefix_cells <= 2 * 4

    def test_outer_region_covers_query(self, rng):
        cube = make_cube((60, 60), rng)
        structure = BlockedPrefixSumCube(cube, 8)
        for _ in range(30):
            box = random_box((60, 60), rng)
            bounds = progressive_bounds(structure, box)
            assert bounds.outer_region.contains_box(box)
            if bounds.inner_region is not None:
                assert box.contains_box(bounds.inner_region)

    def test_three_dimensional(self, rng):
        cube = make_cube((24, 24, 24), rng)
        structure = BlockedPrefixSumCube(cube, 6)
        for _ in range(30):
            box = random_box((24, 24, 24), rng)
            bounds = progressive_bounds(structure, box)
            exact = naive_range_sum(cube, box)
            assert bounds.lower <= exact <= bounds.upper
