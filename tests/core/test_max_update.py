"""Tests for the range-max batch updater (paper §7)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import Box
from repro.core.max_update import (
    MaxAssignment,
    apply_max_updates,
    _dedupe_last_wins,
)
from repro.core.range_max import RangeMaxTree
from repro.query.naive import naive_max_value
from repro.query.workload import make_cube, random_box


@pytest.fixture
def rng():
    return np.random.default_rng(23)


def assert_tree_consistent(tree: RangeMaxTree) -> None:
    """Every level must match a freshly built tree's values, and every
    stored position must point at a cell holding that value."""
    rebuilt = RangeMaxTree(tree.source, tree.fanout)
    for level in range(1, tree.height + 1):
        assert np.array_equal(
            tree.values[level], rebuilt.values[level]
        ), f"level {level} values diverge"
        pointed = tree.source.ravel()[tree.positions[level]]
        assert np.array_equal(
            pointed, tree.values[level]
        ), f"level {level} positions are stale"


@st.composite
def tree_and_batch(draw):
    ndim = draw(st.integers(min_value=1, max_value=3))
    shape = tuple(
        draw(st.integers(min_value=2, max_value=10)) for _ in range(ndim)
    )
    size = int(np.prod(shape))
    flat = draw(
        st.lists(
            st.integers(min_value=0, max_value=60),
            min_size=size,
            max_size=size,
        )
    )
    cube = np.array(flat, dtype=np.int64).reshape(shape)
    fanout = draw(st.integers(min_value=2, max_value=4))
    count = draw(st.integers(min_value=0, max_value=8))
    batch = []
    for _ in range(count):
        index = tuple(
            draw(st.integers(min_value=0, max_value=n - 1)) for n in shape
        )
        value = draw(st.integers(min_value=0, max_value=60))
        batch.append(MaxAssignment(index, value))
    return cube, fanout, batch


class TestBatchCorrectness:
    @given(tree_and_batch())
    @settings(max_examples=120, deadline=None)
    def test_tree_matches_rebuild(self, data):
        cube, fanout, batch = data
        tree = RangeMaxTree(cube, fanout)
        apply_max_updates(tree, batch)
        mirror = cube.copy()
        for assignment in batch:
            mirror[assignment.index] = assignment.value
        assert np.array_equal(tree.source, mirror)
        assert_tree_consistent(tree)

    def test_queries_after_updates(self, rng):
        cube = make_cube((30, 30), rng, high=1000)
        tree = RangeMaxTree(cube, fanout=3)
        batch = [
            MaxAssignment(
                (int(rng.integers(0, 30)), int(rng.integers(0, 30))),
                int(rng.integers(0, 2000)),
            )
            for _ in range(40)
        ]
        apply_max_updates(tree, batch)
        for _ in range(40):
            box = random_box((30, 30), rng)
            assert tree.source[tree.max_index(box)] == naive_max_value(
                tree.source, box
            )


class TestUpdateClasses:
    """The §7 case analysis, one scenario per class."""

    def _tree(self):
        cube = np.array(
            [
                [10, 20, 30, 5],
                [1, 2, 3, 4],
                [50, 6, 7, 8],
                [9, 11, 12, 13],
            ],
            dtype=np.int64,
        )
        return RangeMaxTree(cube, fanout=2)

    def test_passive_increase_ignored_upward(self):
        """An increase below the block max must not change any ancestor."""
        tree = self._tree()
        before = [np.array(v) for v in tree.values[1:]]
        stats = apply_max_updates(tree, [MaxAssignment((1, 0), 15)])
        assert tree.source[1, 0] == 15
        for prev, now in zip(before, tree.values[1:]):
            assert np.array_equal(prev, now)
        assert stats.rescans == 0
        assert_tree_consistent(tree)

    def test_active_increase_propagates(self):
        """An increase above the global max reaches the root in one pass."""
        tree = self._tree()
        apply_max_updates(tree, [MaxAssignment((3, 3), 999)])
        root = tree.values[tree.height].ravel()[0]
        assert root == 999
        assert_tree_consistent(tree)

    def test_active_decrease_triggers_rescan(self):
        """Decreasing the stored max with no covering increase rescans."""
        tree = self._tree()
        stats = apply_max_updates(tree, [MaxAssignment((2, 0), 0)])
        assert stats.rescans >= 1
        assert_tree_consistent(tree)

    def test_increase_then_decrease_avoids_rescan(self):
        """Rule 2(b): an earlier active increase makes the decrease moot."""
        tree = self._tree()
        stats = apply_max_updates(
            tree,
            [MaxAssignment((2, 1), 60), MaxAssignment((2, 0), 0)],
        )
        assert stats.rescans == 0
        assert_tree_consistent(tree)

    def test_decrease_then_recovering_increase(self):
        """Rule 1(c): an increase matching v0 recovers a lost max."""
        tree = self._tree()
        stats = apply_max_updates(
            tree,
            [MaxAssignment((2, 0), 0), MaxAssignment((2, 1), 50)],
        )
        assert stats.rescans == 0
        assert_tree_consistent(tree)

    def test_passive_decrease_ignored(self):
        tree = self._tree()
        before = [np.array(v) for v in tree.values[1:]]
        apply_max_updates(tree, [MaxAssignment((1, 1), 0)])
        for prev, now in zip(before, tree.values[1:]):
            assert np.array_equal(prev, now)
        assert_tree_consistent(tree)

    def test_equal_value_tie_move_keeps_ancestors_live(self):
        """An ancestor's stored index must never point at a decreased
        cell, even across equal-value max moves (the tie-propagation
        extension documented in the module)."""
        cube = np.zeros((8,), dtype=np.int64)
        cube[0] = 10
        cube[1] = 10
        tree = RangeMaxTree(cube, fanout=2)
        # Decrease whichever cell the root points at; the equal twin must
        # take over everywhere up the tree.
        root_pos = int(tree.positions[tree.height].ravel()[0])
        apply_max_updates(tree, [MaxAssignment((root_pos,), 0)])
        assert_tree_consistent(tree)
        assert tree.source[tree.max_index(Box((0,), (7,)))] == 10


class TestBatchMechanics:
    def test_empty_batch_is_noop(self, rng):
        cube = make_cube((9, 9), rng)
        tree = RangeMaxTree(cube, fanout=3)
        stats = apply_max_updates(tree, [])
        assert stats.assignments == 0
        assert_tree_consistent(tree)

    def test_last_assignment_wins(self):
        merged = _dedupe_last_wins(
            [MaxAssignment((1,), 5), MaxAssignment((1,), 9)]
        )
        assert merged == [MaxAssignment((1,), 9)]

    def test_phase_lists_shrink(self, rng):
        """Most updates are passive, so upward lists should shrink fast."""
        cube = make_cube((64, 64), rng, high=10**6)
        tree = RangeMaxTree(cube, fanout=4)
        batch = [
            MaxAssignment(
                (int(rng.integers(0, 64)), int(rng.integers(0, 64))),
                int(rng.integers(0, 10**6)),
            )
            for _ in range(100)
        ]
        stats = apply_max_updates(tree, batch)
        assert stats.items_per_phase[0] == stats.assignments
        if len(stats.items_per_phase) > 1:
            assert stats.items_per_phase[1] <= stats.items_per_phase[0]
        assert_tree_consistent(tree)

    def test_wrong_dimensionality_rejected(self, rng):
        tree = RangeMaxTree(make_cube((5, 5), rng), fanout=2)
        with pytest.raises(ValueError, match="dimensionality"):
            apply_max_updates(tree, [MaxAssignment((1,), 3)])

    def test_single_cell_cube(self):
        cube = np.array([7], dtype=np.int64)
        tree = RangeMaxTree(cube, fanout=2)
        apply_max_updates(tree, [MaxAssignment((0,), 11)])
        assert tree.source[0] == 11

    def test_stats_accounting(self, rng):
        cube = make_cube((16,), rng, high=100)
        tree = RangeMaxTree(cube, fanout=2)
        stats = apply_max_updates(
            tree, [MaxAssignment((3,), 500), MaxAssignment((9,), 600)]
        )
        assert stats.assignments == 2
        assert stats.total_items >= 2
        assert stats.nodes_written >= 2


class TestMemmapFlush:
    """Regression: ``apply_max_updates`` mutated spill-backed arrays but
    never synced the backend (cubelint ``memmap-flush``)."""

    def _spy(self, monkeypatch):
        flushed = []
        original = np.memmap.flush

        def spy(self):
            flushed.append(self.filename)
            return original(self)

        monkeypatch.setattr(np.memmap, "flush", spy)
        return flushed

    def test_direct_call_flushes_backend(self, rng, tmp_path, monkeypatch):
        from repro.index.backend import MemmapBackend

        flushed = self._spy(monkeypatch)
        cube = make_cube((16,), rng, high=100)
        tree = RangeMaxTree(cube, fanout=4, backend=MemmapBackend(tmp_path))
        flushed.clear()
        apply_max_updates(tree, [MaxAssignment((3,), 500)])
        assert flushed, "apply_max_updates never flushed its spill files"

    def test_height_zero_path_flushes_backend(
        self, tmp_path, monkeypatch
    ):
        """The early-return path (no tree levels) also writes ``source``."""
        from repro.index.backend import MemmapBackend

        flushed = self._spy(monkeypatch)
        cube = np.array([7], dtype=np.int64)
        tree = RangeMaxTree(cube, fanout=2, backend=MemmapBackend(tmp_path))
        flushed.clear()
        apply_max_updates(tree, [MaxAssignment((0,), 11)])
        assert tree.source[0] == 11
        assert flushed, "height-0 early return skipped the backend flush"
