"""Tests for the tree-hierarchy range-sum comparator (paper §8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import Box
from repro.core.blocked import BlockedPrefixSumCube
from repro.core.tree_sum import TreeSumHierarchy
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_range_sum
from repro.query.workload import make_cube, random_box
from tests.conftest import cube_and_box


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestCorrectness:
    @given(
        cube_and_box(max_ndim=3, max_side=12),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_scan(self, data, fanout):
        cube, box = data
        tree = TreeSumHierarchy(cube, fanout)
        assert tree.range_sum(box) == naive_range_sum(cube, box)

    def test_full_cube_is_one_root_access(self, rng):
        cube = make_cube((27, 27), rng)
        tree = TreeSumHierarchy(cube, 3)
        counter = AccessCounter()
        assert tree.total(counter) == cube.sum()
        assert counter.total == 1

    def test_single_cell(self, rng):
        cube = make_cube((16, 16), rng)
        tree = TreeSumHierarchy(cube, 2)
        assert tree.sum_range([(7, 7), (9, 9)]) == cube[7, 9]

    def test_aligned_subtree_is_one_access(self, rng):
        cube = make_cube((27,), rng)
        tree = TreeSumHierarchy(cube, 3)
        counter = AccessCounter()
        assert tree.sum_range([(9, 17)], counter) == cube[9:18].sum()
        assert counter.total == 1  # exactly one level-2 node covers 9..17

    def test_one_dimensional_sweep(self, rng):
        cube = make_cube((100,), rng)
        tree = TreeSumHierarchy(cube, 4)
        for _ in range(60):
            box = random_box((100,), rng)
            assert tree.range_sum(box) == naive_range_sum(cube, box)

    def test_negative_values(self):
        cube = np.array([[-3, 4], [5, -6]])
        tree = TreeSumHierarchy(cube, 2)
        assert tree.sum_range([(0, 1), (0, 1)]) == 0


class TestFairnessSubtraction:
    def test_near_full_query_uses_subtraction(self, rng):
        """A query missing one cell resolves via root − complement, far
        cheaper than descending for the whole region."""
        cube = make_cube((64,), rng)
        tree = TreeSumHierarchy(cube, 4)
        counter = AccessCounter()
        got = tree.sum_range([(0, 62)], counter)
        assert got == cube[:63].sum()
        assert counter.total < 10


class TestSection8Comparison:
    """§8's claim: the tree is inferior to prefix sums for range-sums."""

    def test_tree_costs_more_than_blocked_prefix(self, rng):
        cube = make_cube((256, 256), rng)
        fanout = 8
        tree = TreeSumHierarchy(cube, fanout)
        blocked = BlockedPrefixSumCube(cube, fanout)
        tree_total = 0
        prefix_total = 0
        for _ in range(25):
            box = random_box(cube.shape, rng, min_length=48)
            tree_counter = AccessCounter()
            prefix_counter = AccessCounter()
            expected = naive_range_sum(cube, box)
            assert tree.range_sum(box, tree_counter) == expected
            assert blocked.range_sum(box, prefix_counter) == expected
            tree_total += tree_counter.total
            prefix_total += prefix_counter.total
        assert tree_total > prefix_total

    def test_space_comparable_to_blocked_prefix(self, rng):
        """§8 grants both methods the same block size; the tree's space is
        the blocked array's times a geometric factor b^d/(b^d − 1)."""
        cube = make_cube((64, 64), rng)
        fanout = 4
        tree = TreeSumHierarchy(cube, fanout)
        blocked = BlockedPrefixSumCube(cube, fanout)
        assert blocked.storage_cells <= tree.node_count
        assert tree.node_count <= 1.5 * blocked.storage_cells


class TestValidation:
    def test_fanout_validation(self, rng):
        with pytest.raises(ValueError):
            TreeSumHierarchy(make_cube((4,), rng), 1)

    def test_out_of_bounds(self, rng):
        tree = TreeSumHierarchy(make_cube((5, 5), rng), 2)
        with pytest.raises(ValueError):
            tree.sum_range([(0, 5), (0, 4)])

    def test_empty_region(self, rng):
        tree = TreeSumHierarchy(make_cube((5, 5), rng), 2)
        with pytest.raises(ValueError):
            tree.range_sum(Box((3, 0), (2, 4)))


class TestAccumulationDtype:
    """Regression: node contraction ran in the source dtype, so an int8
    cube's node sums wrapped (cubelint ``dtype-safety``)."""

    def test_int8_node_sums_do_not_wrap(self):
        cube = np.full((16,), 100, dtype=np.int8)
        tree = TreeSumHierarchy(cube, 4)
        box = Box((0,), (15,))
        assert tree.range_sum(box) == naive_range_sum(cube, box) == 1600

    def test_levels_use_accumulation_dtype(self):
        cube = np.ones((8, 8), dtype=np.int8)
        tree = TreeSumHierarchy(cube, 2)
        for level in tree.levels[1:]:
            assert level is not None
            assert level.dtype == np.int64

    def test_float32_node_sums_keep_integer_precision(self):
        cube = np.full((32,), 2.0**24, dtype=np.float32)
        tree = TreeSumHierarchy(cube, 4)
        box = Box((0,), (31,))
        # 32 · 2^24 is exactly representable in float64, but float32
        # accumulation would round each partial sum.
        assert tree.range_sum(box) == float(32 * 2.0**24)
