"""Tests for the basic prefix-sum method (paper §3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro._util import Box, full_box
from repro.core.operators import SUM
from repro.core.prefix_sum import PrefixSumCube, compute_prefix_array
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_range_sum
from repro.query.workload import make_cube, random_box
from tests.conftest import cube_and_box

#: Figure 1's example array A (3 rows × 6 columns).
FIGURE1_A = np.array(
    [
        [3, 5, 1, 2, 2, 3],
        [7, 3, 2, 6, 8, 2],
        [2, 4, 2, 3, 3, 5],
    ]
)

#: Figure 1's prefix-sum array P for the same A.
FIGURE1_P = np.array(
    [
        [3, 8, 9, 11, 13, 16],
        [10, 18, 21, 29, 39, 44],
        [12, 24, 29, 40, 53, 63],
    ]
)


class TestPaperExamples:
    def test_paper_figure1(self):
        """The construction reproduces Figure 1 exactly."""
        assert np.array_equal(compute_prefix_array(FIGURE1_A), FIGURE1_P)

    def test_paper_worked_example(self):
        """§3.2: Sum(2:3, 1:2) = P[3,2] − P[3,0] − P[1,2] + P[1,0] = 13.

        The paper indexes dimension 1 (size 6) first; our row-major array
        has it second, so the query transposes to rows 1:2, columns 2:3.
        """
        structure = PrefixSumCube(FIGURE1_A)
        assert structure.sum_range([(1, 2), (2, 3)]) == 13

    def test_paper_worked_example_terms(self):
        """The four inclusion-exclusion terms are the paper's 40−11−24+8."""
        prefix = compute_prefix_array(FIGURE1_A)
        assert prefix[2, 3] == 40
        assert prefix[0, 3] == 11
        assert prefix[2, 1] == 24
        assert prefix[0, 1] == 8

    def test_three_dimensional_expansion(self, rng):
        """§3.2's seven-step 3-d expansion, checked term by term."""
        cube = make_cube((4, 5, 6), rng)
        prefix = compute_prefix_array(cube)
        l1, h1, l2, h2, l3, h3 = 1, 2, 2, 4, 0, 3
        expected = (
            prefix[h1, h2, h3]
            - prefix[h1, h2, l3 - 1] * 0  # l3 == 0: term is the implicit 0
            - prefix[h1, l2 - 1, h3]
            + prefix[h1, l2 - 1, l3 - 1] * 0
            - prefix[l1 - 1, h2, h3]
            + prefix[l1 - 1, h2, l3 - 1] * 0
            + prefix[l1 - 1, l2 - 1, h3]
            - prefix[l1 - 1, l2 - 1, l3 - 1] * 0
        )
        structure = PrefixSumCube(cube)
        assert structure.sum_range([(1, 2), (2, 4), (0, 3)]) == expected


class TestConstruction:
    def test_matches_cumsum_composition(self, rng):
        cube = make_cube((5, 6, 7), rng)
        by_hand = np.cumsum(np.cumsum(np.cumsum(cube, 0), 1), 2)
        assert np.array_equal(compute_prefix_array(cube), by_hand)

    def test_does_not_mutate_input(self, rng):
        cube = make_cube((4, 4), rng)
        original = cube.copy()
        compute_prefix_array(cube)
        assert np.array_equal(cube, original)

    def test_one_dimensional(self):
        assert np.array_equal(
            compute_prefix_array(np.array([1, 2, 3])), [1, 3, 6]
        )

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            compute_prefix_array(np.array(5))

    def test_size_one_dimensions(self):
        cube = np.arange(6).reshape(1, 6, 1)
        structure = PrefixSumCube(cube)
        assert structure.sum_range([(0, 0), (2, 4), (0, 0)]) == 2 + 3 + 4

    def test_float_cube(self, rng):
        cube = rng.standard_normal((6, 7))
        structure = PrefixSumCube(cube)
        box = Box((1, 2), (4, 5))
        assert structure.range_sum(box) == pytest.approx(
            float(cube[1:5, 2:6].sum())
        )


class TestQueries:
    @given(cube_and_box())
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_scan(self, data):
        cube, box = data
        structure = PrefixSumCube(cube)
        assert structure.range_sum(box) == naive_range_sum(cube, box)

    def test_full_cube_total(self, rng):
        cube = make_cube((5, 5, 5), rng)
        structure = PrefixSumCube(cube)
        assert structure.total() == cube.sum()

    def test_singleton_query(self, rng):
        cube = make_cube((6, 6), rng)
        structure = PrefixSumCube(cube)
        assert structure.cell((3, 4)) == cube[3, 4]

    def test_random_sweep_4d(self, rng):
        cube = make_cube((4, 5, 3, 6), rng)
        structure = PrefixSumCube(cube)
        for _ in range(50):
            box = random_box(cube.shape, rng)
            assert structure.range_sum(box) == naive_range_sum(cube, box)

    def test_negative_values(self):
        cube = np.array([[-5, 3], [2, -7]])
        structure = PrefixSumCube(cube)
        assert structure.sum_range([(0, 1), (0, 1)]) == -7
        assert structure.sum_range([(1, 1), (1, 1)]) == -7


class TestAccessCounting:
    def test_interior_query_reads_2d_corners(self, rng):
        """A query away from all origin faces reads exactly 2^d cells."""
        cube = make_cube((8, 8, 8), rng)
        structure = PrefixSumCube(cube)
        counter = AccessCounter()
        structure.sum_range([(2, 5), (3, 6), (1, 4)], counter)
        assert counter.prefix_cells == 8
        assert counter.cube_cells == 0

    def test_origin_anchored_query_reads_one(self, rng):
        """Sum(0:x, 0:y, 0:z) is a single P read (all other corners −1)."""
        cube = make_cube((8, 8, 8), rng)
        structure = PrefixSumCube(cube)
        counter = AccessCounter()
        structure.sum_range([(0, 5), (0, 6), (0, 4)], counter)
        assert counter.prefix_cells == 1

    def test_cost_independent_of_volume(self, rng):
        """The §3 headline: constant time irrespective of query volume."""
        cube = make_cube((64, 64), rng)
        structure = PrefixSumCube(cube)
        small = AccessCounter()
        structure.sum_range([(30, 31), (30, 31)], small)
        large = AccessCounter()
        structure.sum_range([(1, 62), (1, 62)], large)
        assert small.total == large.total == 4


class TestStorageConsideration:
    """§3.4: A may be discarded; cells come back from P."""

    def test_discarded_source(self, rng):
        cube = make_cube((5, 7), rng)
        structure = PrefixSumCube(cube, keep_source=False)
        assert structure.source is None
        for index in ((0, 0), (4, 6), (2, 3)):
            assert structure.cell(index) == cube[index]

    def test_reconstruct_cube(self, rng):
        cube = make_cube((4, 5, 6), rng)
        structure = PrefixSumCube(cube, keep_source=False)
        assert np.array_equal(structure.reconstruct_cube(), cube)

    def test_storage_cells_equals_n(self, rng):
        cube = make_cube((6, 7), rng)
        structure = PrefixSumCube(cube)
        assert structure.storage_cells == 42


class TestValidation:
    def test_wrong_dimensionality(self, rng):
        structure = PrefixSumCube(make_cube((4, 4), rng))
        with pytest.raises(ValueError, match="dims"):
            structure.range_sum(Box((0,), (1,)))

    def test_out_of_bounds(self, rng):
        structure = PrefixSumCube(make_cube((4, 4), rng))
        with pytest.raises(ValueError, match="outside"):
            structure.sum_range([(0, 4), (0, 3)])

    def test_empty_region_returns_identity(self, rng):
        structure = PrefixSumCube(make_cube((4, 4), rng))
        assert structure.range_sum(Box((2, 0), (1, 3))) == 0

    def test_negative_low(self, rng):
        structure = PrefixSumCube(make_cube((4, 4), rng))
        with pytest.raises(ValueError):
            structure.sum_range([(-1, 2), (0, 3)])


class TestBatchUpdateIntegration:
    def test_updates_keep_queries_exact(self, rng):
        from repro.core.batch_update import PointUpdate

        cube = make_cube((6, 6), rng).astype(np.int64)
        structure = PrefixSumCube(cube)
        updates = [
            PointUpdate((1, 2), 10),
            PointUpdate((4, 4), -3),
            PointUpdate((0, 0), 7),
        ]
        structure.apply_updates(updates)
        mirror = cube.copy()
        mirror[1, 2] += 10
        mirror[4, 4] -= 3
        mirror[0, 0] += 7
        for _ in range(25):
            box = random_box((6, 6), rng)
            assert structure.range_sum(box) == naive_range_sum(mirror, box)

    def test_updates_affect_source_too(self, rng):
        from repro.core.batch_update import PointUpdate

        cube = make_cube((4, 4), rng).astype(np.int64)
        structure = PrefixSumCube(cube)
        structure.apply_updates([PointUpdate((2, 2), 5)])
        assert structure.source[2, 2] == cube[2, 2] + 5


def test_full_box_helper():
    box = full_box((3, 4))
    assert box == Box((0, 0), (2, 3))
    assert box.volume == 12


def test_operator_identity_on_empty_reduction():
    assert SUM.reduce_box(np.empty((0,))) == 0
