"""Tests for the invertible-operator abstraction (paper §1)."""

from __future__ import annotations

import functools
import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import (
    OPERATORS,
    PRODUCT,
    SUM,
    XOR,
    get_operator,
)
from repro.core.prefix_sum import PrefixSumCube
from repro.query.workload import random_box


class TestRegistry:
    def test_known_names(self):
        assert set(OPERATORS) == {"sum", "xor", "product"}

    def test_get_operator(self):
        assert get_operator("xor") is XOR

    def test_unknown_operator(self):
        with pytest.raises(KeyError, match="unknown operator"):
            get_operator("median")


class TestInverseLaw:
    """The defining law: a ⊕ b ⊖ b == a for every shipped operator."""

    @given(
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_sum_inverse(self, a, b):
        assert SUM.invert(SUM.apply(a, b), b) == a

    @given(
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=0, max_value=2**30),
    )
    @settings(max_examples=50, deadline=None)
    def test_xor_inverse(self, a, b):
        assert XOR.invert(XOR.apply(a, b), b) == a

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_product_inverse(self, a, b):
        assert PRODUCT.invert(PRODUCT.apply(a, b), b) == pytest.approx(a)

    def test_identities(self):
        assert SUM.apply(SUM.identity, 7) == 7
        assert XOR.apply(XOR.identity, 7) == 7
        assert PRODUCT.apply(PRODUCT.identity, 7.0) == 7.0


class TestProductSafety:
    def test_zero_divisor_rejected(self):
        with pytest.raises(ZeroDivisionError, match="zero-free"):
            PRODUCT.invert(np.array([4.0]), np.array([0.0]))

    def test_nonzero_divide(self):
        assert PRODUCT.invert(8.0, 2.0) == 4.0


class TestReduceBox:
    def test_sum_reduction(self):
        assert SUM.reduce_box(np.array([[1, 2], [3, 4]])) == 10

    def test_xor_reduction(self):
        assert XOR.reduce_box(np.array([5, 3, 5])) == 3

    def test_product_reduction(self):
        assert PRODUCT.reduce_box(np.array([2.0, 3.0, 4.0])) == 24.0

    def test_empty_returns_identity(self):
        assert SUM.reduce_box(np.empty((0, 3))) == 0
        assert PRODUCT.reduce_box(np.empty(0)) == 1


class TestPrefixStructuresUnderEachOperator:
    """§1's generality claim executed: prefix structures per operator."""

    def test_xor_range_queries(self, rng):
        cube = rng.integers(0, 256, (8, 9), dtype=np.int64)
        structure = PrefixSumCube(cube, XOR)
        for _ in range(30):
            box = random_box(cube.shape, rng)
            expected = functools.reduce(
                operator.xor, (int(v) for v in cube[box.slices()].ravel())
            )
            assert structure.range_sum(box) == expected

    def test_xor_is_self_inverse_on_ranges(self, rng):
        cube = rng.integers(0, 64, (10,), dtype=np.int64)
        structure = PrefixSumCube(cube, XOR)
        total = structure.sum_range([(0, 9)])
        left = structure.sum_range([(0, 4)])
        right = structure.sum_range([(5, 9)])
        assert total == left ^ right

    def test_product_range_queries(self, rng):
        cube = rng.uniform(0.5, 1.5, (7, 6))
        structure = PrefixSumCube(cube, PRODUCT)
        for _ in range(30):
            box = random_box(cube.shape, rng)
            expected = float(np.prod(cube[box.slices()]))
            got = float(structure.range_sum(box))
            assert got == pytest.approx(expected, rel=1e-9)

    def test_product_singleton_recovery(self, rng):
        cube = rng.uniform(0.5, 2.0, (5, 5))
        structure = PrefixSumCube(cube, PRODUCT, keep_source=False)
        assert float(structure.cell((3, 2))) == pytest.approx(
            float(cube[3, 2])
        )

    def test_blocked_structure_with_xor(self, rng):
        from repro.core.blocked import BlockedPrefixSumCube

        cube = rng.integers(0, 128, (12, 10), dtype=np.int64)
        structure = BlockedPrefixSumCube(cube, 3, XOR)
        for _ in range(30):
            box = random_box(cube.shape, rng)
            expected = functools.reduce(
                operator.xor, (int(v) for v in cube[box.slices()].ravel())
            )
            assert structure.range_sum(box) == expected

    def test_batch_update_with_xor(self, rng):
        from repro.core.batch_update import PointUpdate
        from repro.core.prefix_sum import compute_prefix_array

        cube = rng.integers(0, 64, (6, 6), dtype=np.int64)
        structure = PrefixSumCube(cube, XOR)
        structure.apply_updates(
            [PointUpdate((2, 3), 17), PointUpdate((0, 5), 9)]
        )
        assert np.array_equal(
            structure.prefix, compute_prefix_array(structure.source, XOR)
        )


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestReconstructionUnderEachOperator:
    def test_xor_reconstruction(self, rng):
        cube = rng.integers(0, 256, (6, 7), dtype=np.int64)
        structure = PrefixSumCube(cube, XOR, keep_source=False)
        assert np.array_equal(structure.reconstruct_cube(), cube)

    def test_product_reconstruction(self, rng):
        cube = rng.uniform(0.5, 2.0, (5, 4))
        structure = PrefixSumCube(cube, PRODUCT, keep_source=False)
        assert np.allclose(structure.reconstruct_cube(), cube)

    def test_sum_reconstruction_3d(self, rng):
        cube = rng.integers(-20, 20, (4, 5, 3)).astype(np.int64)
        structure = PrefixSumCube(cube, SUM, keep_source=False)
        assert np.array_equal(structure.reconstruct_cube(), cube)
