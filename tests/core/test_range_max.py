"""Tests for the range-max tree with branch and bound (paper §6)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro._util import Box
from repro.core.range_max import RangeMaxTree, _contract_argmax
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_max_value
from repro.query.workload import make_cube, random_box
from tests.conftest import cube_and_box


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestConstruction:
    def test_level_shapes_contract_by_b(self, rng):
        tree = RangeMaxTree(make_cube((14,), rng), fanout=3)
        # Figure 9's shape: n=14, b=3 → levels of size 5, 2, 1.
        assert tree.level_shape(1) == (5,)
        assert tree.level_shape(2) == (2,)
        assert tree.level_shape(3) == (1,)
        assert tree.height == 3

    def test_positions_point_at_level_values(self, rng):
        cube = make_cube((20, 13), rng, high=10**6)
        tree = RangeMaxTree(cube, fanout=4)
        for level in range(1, tree.height + 1):
            values = tree.values[level]
            positions = tree.positions[level]
            recovered = cube.ravel()[positions]
            assert np.array_equal(recovered, values)

    def test_root_stores_global_max(self, rng):
        cube = make_cube((9, 9, 9), rng, high=10**6)
        tree = RangeMaxTree(cube, fanout=2)
        root_value = tree.values[tree.height].ravel()[0]
        assert root_value == cube.max()

    def test_node_region_clamps_to_edge(self, rng):
        tree = RangeMaxTree(make_cube((10,), rng), fanout=3)
        assert tree.node_region(1, (3,)) == Box((9,), (9,))

    def test_fanout_validation(self, rng):
        with pytest.raises(ValueError):
            RangeMaxTree(make_cube((4,), rng), fanout=1)

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            RangeMaxTree(np.array(["a", "b"]), fanout=2)

    def test_float_cube(self, rng):
        cube = rng.standard_normal((15, 15))
        tree = RangeMaxTree(cube, fanout=3)
        box = Box((2, 3), (11, 13))
        assert cube[tree.max_index(box)] == cube[2:12, 3:14].max()

    def test_contract_argmax_padding(self):
        values = np.array([5, 1, 9, 2, 8])
        positions = np.arange(5, dtype=np.int64)
        out_vals, out_pos = _contract_argmax(values, positions, 2)
        assert list(out_vals) == [5, 9, 8]
        assert list(out_pos) == [0, 2, 4]


class TestQueries:
    @given(cube_and_box(max_ndim=3, max_side=12))
    @settings(max_examples=120, deadline=None)
    def test_value_matches_naive(self, data):
        cube, box = data
        tree = RangeMaxTree(cube, fanout=3)
        index = tree.max_index(box)
        assert box.contains_point(index)
        assert cube[index] == naive_max_value(cube, box)

    def test_returned_index_attains_max(self, rng):
        cube = make_cube((30, 30), rng, high=10**6)
        tree = RangeMaxTree(cube, fanout=4)
        for _ in range(40):
            box = random_box(cube.shape, rng)
            index = tree.max_index(box)
            assert box.contains_point(index)
            assert cube[index] == naive_max_value(cube, box)

    def test_single_cell_query(self, rng):
        cube = make_cube((10, 10), rng)
        tree = RangeMaxTree(cube, fanout=3)
        assert tree.max_index(Box((4, 7), (4, 7))) == (4, 7)

    def test_global_max(self, rng):
        cube = make_cube((25, 25), rng, high=10**6)
        tree = RangeMaxTree(cube, fanout=5)
        index = tree.global_max_index()
        assert cube[index] == cube.max()

    def test_ties_return_some_argmax(self):
        cube = np.zeros((6, 6), dtype=np.int64)
        cube[1, 2] = cube[4, 4] = 7
        tree = RangeMaxTree(cube, fanout=2)
        index = tree.max_index(Box((0, 0), (5, 5)))
        assert index in {(1, 2), (4, 4)}

    def test_max_value_and_max_range(self, rng):
        cube = make_cube((20,), rng, high=1000)
        tree = RangeMaxTree(cube, fanout=4)
        assert tree.max_value(Box((3,), (17,))) == cube[3:18].max()
        index = tree.max_range([(3, 17)])
        assert cube[index] == cube[3:18].max()

    def test_without_branch_and_bound_same_answers(self, rng):
        cube = make_cube((40, 40), rng, high=10**6)
        tree = RangeMaxTree(cube, fanout=3)
        for _ in range(30):
            box = random_box(cube.shape, rng)
            with_bnb = cube[tree.max_index(box, use_branch_and_bound=True)]
            without = cube[tree.max_index(box, use_branch_and_bound=False)]
            assert with_bnb == without

    def test_high_dimensional(self, rng):
        cube = make_cube((5, 6, 4, 7), rng, high=10**6)
        tree = RangeMaxTree(cube, fanout=2)
        for _ in range(30):
            box = random_box(cube.shape, rng)
            assert cube[tree.max_index(box)] == naive_max_value(cube, box)


class TestLowestCoveringNode:
    """§6.1.2: start at the lowest node covering R, not the root."""

    def test_shared_prefix_selects_low_level(self, rng):
        cube = make_cube((81,), rng)
        tree = RangeMaxTree(cube, fanout=3)
        level, node = tree._lowest_covering_node(Box((27,), (53,)))
        assert level == 3 and node == (1,)
        level, node = tree._lowest_covering_node(Box((30,), (32,)))
        assert level == 1 and node == (10,)

    def test_cover_contains_region(self, rng):
        cube = make_cube((50, 50), rng)
        tree = RangeMaxTree(cube, fanout=3)
        for _ in range(50):
            box = random_box(cube.shape, rng)
            level, node = tree._lowest_covering_node(box)
            assert tree.node_region(level, node).contains_box(box)

    def test_small_range_cheaper_than_root_descent(self, rng):
        """The O(b log_b r) bound needs the lowest covering node: a small
        range far from the origin must not pay for the tree height."""
        cube = make_cube((3**6,), rng, high=10**6)
        tree = RangeMaxTree(cube, fanout=3)
        counter = AccessCounter()
        tree.max_index(Box((700,), (705,)), counter)
        assert counter.total <= 3 * 3 * (2 + math.ceil(math.log(6, 3)))


class TestBranchAndBoundPruning:
    def test_pruning_reduces_accesses(self, rng):
        """Disabling the §6 bound test must cost at least as much."""
        cube = make_cube((81, 81), rng, high=10**6)
        tree = RangeMaxTree(cube, fanout=3)
        pruned_total = 0
        unpruned_total = 0
        for _ in range(40):
            box = random_box(cube.shape, rng, min_length=10)
            pruned = AccessCounter()
            tree.max_index(box, pruned, use_branch_and_bound=True)
            unpruned = AccessCounter()
            tree.max_index(box, unpruned, use_branch_and_bound=False)
            assert pruned.total <= unpruned.total
            pruned_total += pruned.total
            unpruned_total += unpruned.total
        assert pruned_total < unpruned_total

    def test_worst_case_bound_one_dimensional(self, rng):
        """§6.1.3: node accesses are O(b·log_b r) in one dimension."""
        b = 4
        cube = make_cube((4**6,), rng, high=10**6)
        tree = RangeMaxTree(cube, fanout=b)
        for _ in range(60):
            box = random_box(cube.shape, rng, min_length=2)
            r = box.volume
            counter = AccessCounter()
            tree.max_index(box, counter, use_branch_and_bound=False)
            bound = 2 * b * (math.log(r, b) + 2)
            assert counter.total <= bound, (box, counter.total, bound)

    def test_average_case_below_theorem3_bound(self, rng):
        """Theorem 3: average accesses ≤ b + 7 + 1/b on random data."""
        b = 5
        cube = rng.permutation(5**5).astype(np.int64)  # distinct values
        tree = RangeMaxTree(cube, fanout=b)
        totals = []
        for _ in range(400):
            box = random_box(cube.shape, rng, min_length=2)
            counter = AccessCounter()
            tree.max_index(box, counter)
            totals.append(counter.total)
        average = sum(totals) / len(totals)
        assert average <= b + 7 + 1 / b, average


class TestValidation:
    def test_out_of_bounds(self, rng):
        tree = RangeMaxTree(make_cube((5, 5), rng), fanout=2)
        with pytest.raises(ValueError):
            tree.max_index(Box((0, 0), (5, 4)))

    def test_dimension_mismatch(self, rng):
        tree = RangeMaxTree(make_cube((5, 5), rng), fanout=2)
        with pytest.raises(ValueError):
            tree.max_index(Box((0,), (4,)))

    def test_empty_region(self, rng):
        tree = RangeMaxTree(make_cube((5, 5), rng), fanout=2)
        with pytest.raises(ValueError):
            tree.max_index(Box((3, 0), (2, 4)))


class TestFloatUpdates:
    def test_float_tree_batch_updates(self, rng):
        from repro.core.max_update import MaxAssignment, apply_max_updates

        cube = rng.standard_normal((20, 20))
        tree = RangeMaxTree(cube, 3)
        batch = [
            MaxAssignment(
                (int(rng.integers(0, 20)), int(rng.integers(0, 20))),
                float(rng.standard_normal()),
            )
            for _ in range(25)
        ]
        apply_max_updates(tree, batch)
        rebuilt = RangeMaxTree(tree.source, 3)
        for level in range(1, tree.height + 1):
            assert np.array_equal(tree.values[level], rebuilt.values[level])

    def test_negative_only_cube(self, rng):
        cube = -np.abs(rng.standard_normal((15, 15))) - 1.0
        tree = RangeMaxTree(cube, 4)
        box = Box((2, 3), (12, 13))
        assert cube[tree.max_index(box)] == cube[2:13, 3:14].max()
