"""Tests for progressive range-max bounds (§11's closing remark)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import Box
from repro.core.bounds import progressive_max_bounds
from repro.core.range_max import RangeMaxTree
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_max_value
from repro.query.workload import make_cube, random_box
from tests.conftest import cube_and_box


@pytest.fixture
def rng():
    return np.random.default_rng(191)


class TestSandwichProperty:
    @given(
        cube_and_box(max_ndim=3, max_side=14),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_lower_exact_upper(self, data, fanout):
        cube, box = data
        tree = RangeMaxTree(cube, fanout)
        bounds = progressive_max_bounds(tree, box)
        exact = naive_max_value(cube, box)
        assert bounds.lower <= exact <= bounds.upper
        assert bounds.width() >= 0

    def test_stored_index_inside_query_is_exact(self, rng):
        """When the covering node's max lands in R, the bounds collapse."""
        cube = np.zeros((27,), dtype=np.int64)
        cube[13] = 100  # the global max is mid-array
        tree = RangeMaxTree(cube, 3)
        bounds = progressive_max_bounds(tree, Box((9,), (17,)))
        assert bounds.lower == bounds.upper == 100

    def test_single_cell_query(self, rng):
        cube = make_cube((10, 10), rng)
        tree = RangeMaxTree(cube, 2)
        bounds = progressive_max_bounds(tree, Box((4, 7), (4, 7)))
        assert bounds.lower == bounds.upper == cube[4, 7]


class TestCost:
    def test_constant_access_cost(self, rng):
        """At most b^d child reads + 2 regardless of the query volume."""
        cube = make_cube((243, 243), rng, high=10**6)
        tree = RangeMaxTree(cube, 3)
        for _ in range(40):
            box = random_box((243, 243), rng, min_length=20)
            counter = AccessCounter()
            progressive_max_bounds(tree, box, counter)
            assert counter.total <= 3 * 3 + 2

    def test_worst_case_below_exact_searchs_worst_case(self, rng):
        """Exact B&B search is cheap *on average* (Theorem 3) but its
        worst case is O(b·log_b r); the bounds' worst case is the flat
        b^d + 2."""
        cube = make_cube((4096,), rng, high=10**6)
        tree = RangeMaxTree(cube, 4)
        worst_bound = 0
        worst_exact = 0
        for _ in range(300):
            box = random_box((4096,), rng, min_length=8)
            counter = AccessCounter()
            progressive_max_bounds(tree, box, counter)
            worst_bound = max(worst_bound, counter.total)
            counter = AccessCounter()
            tree.max_index(box, counter)
            worst_exact = max(worst_exact, counter.total)
        assert worst_bound <= 4 + 2
        assert worst_bound <= worst_exact


class TestTightness:
    def test_bounds_often_exact_on_random_data(self, rng):
        """The stored max frequently falls inside big queries, giving an
        immediately exact answer — the §11 interactivity story."""
        cube = make_cube((81, 81), rng, high=10**6)
        tree = RangeMaxTree(cube, 3)
        exact_hits = 0
        trials = 100
        for _ in range(trials):
            box = random_box((81, 81), rng, min_length=40)
            bounds = progressive_max_bounds(tree, box)
            if bounds.lower == bounds.upper:
                exact_hits += 1
        assert exact_hits >= trials // 4

    def test_upper_bound_is_covering_node_max(self, rng):
        cube = make_cube((64,), rng, high=10**6)
        tree = RangeMaxTree(cube, 4)
        box = Box((5, ), (58,))
        bounds = progressive_max_bounds(tree, box)
        level, node = tree._lowest_covering_node(box)
        cover_max = tree.values[level][node]
        assert bounds.upper <= cover_max
