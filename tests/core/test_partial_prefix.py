"""Tests for dimension-subset prefix sums (paper §9.1 executed)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import Box
from repro.core.operators import XOR
from repro.core.partial_prefix import PartialPrefixSumCube
from repro.core.prefix_sum import PrefixSumCube
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_range_sum
from repro.query.workload import make_cube, random_box
from tests.conftest import cube_and_box


@pytest.fixture
def rng():
    return np.random.default_rng(167)


class TestCorrectness:
    @given(
        cube_and_box(max_ndim=3, max_side=10),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_naive_for_any_subset(self, data, subset_bits):
        cube, box = data
        chosen = [
            j for j in range(cube.ndim) if subset_bits & (1 << j)
        ]
        structure = PartialPrefixSumCube(cube, chosen)
        assert structure.range_sum(box) == naive_range_sum(cube, box)

    def test_all_dims_equals_basic(self, rng):
        cube = make_cube((8, 9), rng)
        partial = PartialPrefixSumCube(cube, [0, 1])
        basic = PrefixSumCube(cube)
        for _ in range(30):
            box = random_box(cube.shape, rng)
            assert partial.range_sum(box) == basic.range_sum(box)

    def test_empty_subset_is_a_scan(self, rng):
        cube = make_cube((6, 6), rng)
        structure = PartialPrefixSumCube(cube, [])
        box = Box((1, 2), (4, 5))
        counter = AccessCounter()
        assert structure.range_sum(box, counter) == naive_range_sum(
            cube, box
        )
        assert counter.prefix_cells == box.volume

    def test_xor_operator(self, rng):
        import functools
        import operator

        cube = rng.integers(0, 64, (7, 8), dtype=np.int64)
        structure = PartialPrefixSumCube(cube, [1], XOR)
        for _ in range(20):
            box = random_box(cube.shape, rng)
            expected = functools.reduce(
                operator.xor,
                (int(v) for v in cube[box.slices()].ravel()),
            )
            assert structure.range_sum(box) == expected


class TestCostModel:
    def test_paper_example_costs(self, rng):
        """§9.1: prefix sums on {d1, d2} of a 3-d cube answer queries
        that pin d3 in 2² slabs of length 1 instead of 2³ terms."""
        cube = make_cube((20, 20, 10), rng)
        structure = PartialPrefixSumCube(cube, [0, 1])
        counter = AccessCounter()
        structure.sum_range([(3, 12), (5, 14), (4, 4)], counter)
        assert counter.prefix_cells == 4  # 2^2 corners × 1 passive cell

    def test_passive_range_multiplies_cost(self, rng):
        cube = make_cube((20, 20, 10), rng)
        structure = PartialPrefixSumCube(cube, [0, 1])
        counter = AccessCounter()
        structure.sum_range([(3, 12), (5, 14), (2, 6)], counter)
        assert counter.prefix_cells == 4 * 5  # 2^2 corners × r3 = 5

    def test_model_is_an_upper_bound(self, rng):
        cube = make_cube((12, 12, 12), rng)
        structure = PartialPrefixSumCube(cube, [0, 2])
        for _ in range(40):
            box = random_box(cube.shape, rng)
            counter = AccessCounter()
            structure.range_sum(box, counter)
            assert counter.prefix_cells <= structure.query_cost(box)

    def test_choosing_ranged_dims_beats_choosing_passive(self, rng):
        """Prefix sums belong on the dimensions queries put ranges on."""
        cube = make_cube((50, 50), rng)
        good = PartialPrefixSumCube(cube, [0])  # ranges arrive on dim 0
        bad = PartialPrefixSumCube(cube, [1])
        good_total = 0
        bad_total = 0
        for _ in range(30):
            start = int(rng.integers(0, 20))
            pin = int(rng.integers(0, 50))
            box = Box((start, pin), (start + 29, pin))
            good_counter = AccessCounter()
            bad_counter = AccessCounter()
            assert good.range_sum(box, good_counter) == bad.range_sum(
                box, bad_counter
            )
            good_total += good_counter.total
            bad_total += bad_counter.total
        assert good_total * 5 < bad_total


class TestValidation:
    def test_out_of_range_dims(self, rng):
        with pytest.raises(ValueError):
            PartialPrefixSumCube(make_cube((4, 4), rng), [2])

    def test_bad_query(self, rng):
        structure = PartialPrefixSumCube(make_cube((4, 4), rng), [0])
        with pytest.raises(ValueError):
            structure.sum_range([(0, 4), (0, 3)])

    def test_duplicate_dims_collapse(self, rng):
        cube = make_cube((5, 5), rng)
        structure = PartialPrefixSumCube(cube, [0, 0])
        assert structure.prefix_dims == (0,)


class TestBatchUpdates:
    def test_updates_keep_queries_exact(self, rng):
        from repro.core.batch_update import PointUpdate
        from repro.core.partial_prefix import PartialPrefixSumCube

        cube = make_cube((8, 9, 5), rng).astype(np.int64)
        structure = PartialPrefixSumCube(cube, [0, 2])
        mirror = cube.copy()
        updates = []
        for _ in range(12):
            index = tuple(int(rng.integers(0, n)) for n in cube.shape)
            delta = int(rng.integers(-10, 15))
            updates.append(PointUpdate(index, delta))
            mirror[index] += delta
        structure.apply_updates(updates)
        for _ in range(40):
            box = random_box(cube.shape, rng)
            assert structure.range_sum(box) == naive_range_sum(mirror, box)

    def test_empty_subset_updates(self, rng):
        from repro.core.batch_update import PointUpdate
        from repro.core.partial_prefix import PartialPrefixSumCube

        cube = make_cube((5, 5), rng).astype(np.int64)
        structure = PartialPrefixSumCube(cube, [])
        structure.apply_updates([PointUpdate((2, 3), 7)])
        assert structure.sum_range([(2, 2), (3, 3)]) == cube[2, 3] + 7

    def test_wrong_dimensionality_rejected(self, rng):
        from repro.core.batch_update import PointUpdate
        from repro.core.partial_prefix import PartialPrefixSumCube

        structure = PartialPrefixSumCube(make_cube((4, 4), rng), [0])
        with pytest.raises(ValueError, match="dimensionality"):
            structure.apply_updates([PointUpdate((1,), 3)])

    def test_region_count_bounded_per_group(self, rng):
        from repro.core.batch_update import (
            PointUpdate,
            theorem2_region_bound,
        )
        from repro.core.partial_prefix import PartialPrefixSumCube

        cube = make_cube((10, 4), rng).astype(np.int64)
        structure = PartialPrefixSumCube(cube, [0])
        # 6 updates all sharing one passive coordinate: one group, 1-d.
        updates = [
            PointUpdate((i, 2), 1) for i in (1, 3, 4, 7, 8, 9)
        ]
        regions = structure.apply_updates(updates)
        assert regions <= theorem2_region_bound(6, 1)
