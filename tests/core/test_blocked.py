"""Tests for the blocked prefix-sum method (paper §4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import Box
from repro.core.blocked import BlockedPrefixSumCube, block_contract
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_range_sum
from repro.query.workload import make_cube, random_box
from tests.conftest import cube_and_box
from tests.core.test_prefix_sum import FIGURE1_A


@pytest.fixture
def rng():
    return np.random.default_rng(41)


class TestPaperExamples:
    def test_paper_figure3(self):
        """Figure 3: the blocked P with b = 2 over Figure 1's array.

        The paper stores P[1,1]=18, P[1,3]=29, P[1,5]=44, P[2,1]=24,
        P[2,3]=40, P[2,5]=63 (row dimension of size 3, so the last row is
        a partial block).  Packed densely that is a 2 × 3 array.
        """
        structure = BlockedPrefixSumCube(FIGURE1_A, 2)
        expected = np.array([[18, 29, 44], [24, 40, 63]])
        assert np.array_equal(structure.blocked_prefix, expected)

    def test_figure5_decomposition(self, rng):
        """Figure 5: Sum(50:349, 50:349) with b=100 → 9 regions, A1..A9."""
        cube = make_cube((400, 400), rng, high=10)
        structure = BlockedPrefixSumCube(cube, 100)
        regions = structure.decompose(Box((50, 50), (349, 349)))
        assert len(regions) == 9
        internal = [r for r in regions if r[2]]
        assert len(internal) == 1
        assert internal[0][0] == Box((100, 100), (299, 299))
        # Figure 5(c): superblocks of the corner regions span whole blocks.
        corner = next(
            r for r in regions if r[0] == Box((50, 50), (99, 99))
        )
        assert corner[1] == Box((0, 0), (99, 99))
        top_right = next(
            r for r in regions if r[0] == Box((50, 300), (99, 349))
        )
        assert top_right[1] == Box((0, 300), (99, 399))

    def test_figure6_method_choice(self, rng):
        """Figure 6: Sum(75:374, 100:354) mixes both boundary methods.

        The region (300:374, 100:299) covers 3/4 of its superblock, so
        the complement method must win there; the thin (75:99, ...) strips
        scan directly.
        """
        cube = make_cube((400, 400), rng, high=10)
        structure = BlockedPrefixSumCube(cube, 100)
        box = Box((75, 100), (374, 354))
        regions = structure.decompose(box)
        assert len(regions) == 6  # the aligned low edge of dim 2 is empty
        wide = Box((300, 100), (374, 299))
        superblock = next(r[1] for r in regions if r[0] == wide)
        complement_cost = superblock.volume - wide.volume + (1 << 2) - 1
        assert complement_cost < wide.volume  # method 2 is chosen
        counter = AccessCounter()
        got = structure.range_sum(box, counter)
        assert got == naive_range_sum(cube, box)
        # Direct scan of everything would touch the full query volume.
        assert counter.cube_cells < box.volume

    def test_decomposition_is_disjoint_partition(self, rng):
        cube = make_cube((60, 60), rng)
        structure = BlockedPrefixSumCube(cube, 7)
        box = Box((3, 10), (52, 41))
        regions = structure.decompose(box)
        total = sum(r[0].volume for r in regions)
        assert total == box.volume
        for i, (a, _, _) in enumerate(regions):
            assert box.contains_box(a)
            for b, _, _ in regions[i + 1 :]:
                assert not a.intersects(b)


class TestBlockContract:
    def test_exact_division(self):
        cube = np.arange(16).reshape(4, 4)
        contracted = block_contract(cube, 2)
        assert contracted.shape == (2, 2)
        assert contracted[0, 0] == 0 + 1 + 4 + 5

    def test_partial_blocks(self):
        cube = np.ones((5, 7), dtype=np.int64)
        contracted = block_contract(cube, 3)
        assert contracted.shape == (2, 3)
        assert contracted[1, 2] == 2 * 1  # 2 rows × 1 column remain

    def test_block_size_one_is_identity(self, rng):
        cube = make_cube((4, 5), rng)
        assert np.array_equal(block_contract(cube, 1), cube)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            block_contract(np.ones((4,)), 0)


class TestCorrectness:
    @given(
        cube_and_box(max_ndim=3, max_side=12),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_scan(self, data, block_size):
        cube, box = data
        structure = BlockedPrefixSumCube(cube, block_size)
        assert structure.range_sum(box) == naive_range_sum(cube, box)

    def test_block_one_equals_basic(self, rng):
        from repro.core.prefix_sum import PrefixSumCube

        cube = make_cube((9, 11), rng)
        basic = PrefixSumCube(cube)
        blocked = BlockedPrefixSumCube(cube, 1)
        for _ in range(30):
            box = random_box(cube.shape, rng)
            assert blocked.range_sum(box) == basic.range_sum(box)

    def test_block_larger_than_cube(self, rng):
        cube = make_cube((5, 5), rng)
        structure = BlockedPrefixSumCube(cube, 64)
        for _ in range(20):
            box = random_box(cube.shape, rng)
            assert structure.range_sum(box) == naive_range_sum(cube, box)

    def test_aligned_query_uses_prefix_only(self, rng):
        """A block-aligned internal region costs P reads, not A scans."""
        cube = make_cube((40, 40), rng)
        structure = BlockedPrefixSumCube(cube, 10)
        counter = AccessCounter()
        got = structure.sum_range([(10, 29), (20, 39)], counter)
        assert got == int(cube[10:30, 20:40].sum())
        assert counter.cube_cells == 0

    def test_case2_thin_query(self, rng):
        """A query thinner than one block in some dimension (case 2)."""
        cube = make_cube((50, 50), rng)
        structure = BlockedPrefixSumCube(cube, 10)
        box = Box((13, 5), (16, 44))  # dim 0 never spans a full block
        assert structure.range_sum(box) == naive_range_sum(cube, box)

    def test_single_cell(self, rng):
        cube = make_cube((30, 30), rng)
        structure = BlockedPrefixSumCube(cube, 8)
        assert structure.sum_range([(17, 17), (23, 23)]) == cube[17, 23]

    def test_full_cube(self, rng):
        cube = make_cube((33, 27), rng)
        structure = BlockedPrefixSumCube(cube, 8)
        assert structure.total() == cube.sum()

    def test_three_dimensional_sweep(self, rng):
        cube = make_cube((17, 23, 11), rng)
        structure = BlockedPrefixSumCube(cube, 4)
        for _ in range(60):
            box = random_box(cube.shape, rng)
            assert structure.range_sum(box) == naive_range_sum(cube, box)


class TestSpaceTimeTradeoff:
    def test_storage_shrinks_by_b_to_the_d(self, rng):
        cube = make_cube((100, 100), rng)
        structure = BlockedPrefixSumCube(cube, 10)
        assert structure.storage_cells == 100  # N/b^d = 10000/100

    def test_cost_grows_with_block_size(self, rng):
        """Bigger blocks → more boundary scanning on unaligned queries."""
        cube = make_cube((120, 120), rng)
        box = Box((7, 7), (106, 106))
        totals = []
        for block in (2, 6, 24):
            counter = AccessCounter()
            BlockedPrefixSumCube(cube, block).range_sum(box, counter)
            totals.append(counter.total)
        assert totals[0] < totals[1] < totals[2]

    def test_cost_tracks_equation3(self, rng):
        """Measured accesses stay within ~2× of 2^d + S·F(b) (Eq. 3)."""
        from repro.optimizer.cost_model import prefix_sum_cost
        from repro.query.stats import QueryStatistics

        cube = make_cube((200, 200), rng)
        structure = BlockedPrefixSumCube(cube, 10)
        measured = []
        predicted = []
        for _ in range(40):
            box = random_box(cube.shape, rng, min_length=40)
            counter = AccessCounter()
            structure.range_sum(box, counter)
            measured.append(counter.total)
            stats = QueryStatistics.from_lengths(box.lengths)
            predicted.append(prefix_sum_cost(stats, 10))
        ratio = sum(measured) / sum(predicted)
        assert 0.4 < ratio < 2.5, ratio


class TestValidation:
    def test_invalid_block_size(self, rng):
        with pytest.raises(ValueError):
            BlockedPrefixSumCube(make_cube((4, 4), rng), 0)

    def test_out_of_bounds_query(self, rng):
        structure = BlockedPrefixSumCube(make_cube((4, 4), rng), 2)
        with pytest.raises(ValueError):
            structure.sum_range([(0, 5), (0, 3)])

    def test_dimension_mismatch(self, rng):
        structure = BlockedPrefixSumCube(make_cube((4, 4), rng), 2)
        with pytest.raises(ValueError):
            structure.range_sum(Box((0,), (3,)))


class TestBatchUpdateIntegration:
    def test_blocked_updates_keep_queries_exact(self, rng):
        from repro.core.batch_update import PointUpdate

        cube = make_cube((20, 20), rng).astype(np.int64)
        structure = BlockedPrefixSumCube(cube, 4)
        updates = [
            PointUpdate(
                (int(rng.integers(0, 20)), int(rng.integers(0, 20))),
                int(rng.integers(-5, 10)),
            )
            for _ in range(15)
        ]
        structure.apply_updates(updates)
        mirror = cube.copy()
        for update in updates:
            mirror[update.index] += update.delta
        assert np.array_equal(structure.source, mirror)
        for _ in range(30):
            box = random_box((20, 20), rng)
            assert structure.range_sum(box) == naive_range_sum(mirror, box)


class TestExplain:
    def test_explain_lists_every_region(self, rng):
        cube = make_cube((400, 400), rng, high=10)
        structure = BlockedPrefixSumCube(cube, 100)
        plan = structure.explain(Box((50, 50), (349, 349)))
        assert plan.count("boundary") == 8
        assert plan.count("internal") == 1
        assert "estimated total" in plan
        assert "naive scan: 90000" in plan

    def test_explain_mentions_both_methods(self, rng):
        cube = make_cube((400, 400), rng, high=10)
        structure = BlockedPrefixSumCube(cube, 100)
        plan = structure.explain(Box((75, 100), (374, 354)))
        assert "scan A" in plan
        assert "superblock" in plan

    def test_estimate_tracks_measurement(self, rng):
        import re

        cube = make_cube((120, 120), rng)
        structure = BlockedPrefixSumCube(cube, 10)
        for _ in range(15):
            box = random_box((120, 120), rng, min_length=20)
            plan = structure.explain(box)
            estimate = int(
                re.search(r"estimated total: ~(\d+)", plan).group(1)
            )
            counter = AccessCounter()
            structure.range_sum(box, counter)
            assert counter.total <= estimate * 1.5 + 8
            assert estimate <= counter.total * 1.5 + 8
