"""Tests for the batch-update algorithm (paper §5, Theorem 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_update import (
    PointUpdate,
    apply_batch_to_prefix,
    apply_updates_naive,
    combine_duplicate_updates,
    contract_updates_to_blocks,
    delta_for_assignment,
    partition_updates,
    theorem2_region_bound,
)
from repro.core.operators import SUM, XOR
from repro.core.prefix_sum import compute_prefix_array
from repro.query.workload import make_cube


@pytest.fixture
def rng():
    return np.random.default_rng(99)


@st.composite
def update_batches(draw, max_ndim=3, max_side=8, max_updates=10):
    shape = tuple(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=max_side),
                min_size=1,
                max_size=max_ndim,
            )
        )
    )
    count = draw(st.integers(min_value=0, max_value=max_updates))
    updates = []
    for _ in range(count):
        index = tuple(
            draw(st.integers(min_value=0, max_value=n - 1)) for n in shape
        )
        delta = draw(st.integers(min_value=-20, max_value=20))
        updates.append(PointUpdate(index, delta))
    return shape, updates


class TestTheorem2Bound:
    def test_known_closed_forms(self):
        """NR(k,2)=k(k+1)/2 and NR(k,3)=k(k+1)(k+2)/6 (paper's examples)."""
        for k in range(1, 10):
            assert theorem2_region_bound(k, 1) == k
            assert theorem2_region_bound(k, 2) == k * (k + 1) // 2
            assert (
                theorem2_region_bound(k, 3)
                == k * (k + 1) * (k + 2) // 6
            )

    def test_zero_updates(self):
        assert theorem2_region_bound(0, 3) == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            theorem2_region_bound(-1, 2)
        with pytest.raises(ValueError):
            theorem2_region_bound(3, 0)

    @given(update_batches())
    @settings(max_examples=100, deadline=None)
    def test_partition_respects_bound(self, data):
        shape, updates = data
        regions = partition_updates(updates, shape)
        distinct = len({u.index for u in updates})
        assert len(regions) <= theorem2_region_bound(
            max(distinct, 1), len(shape)
        )


class TestPartitionProperties:
    @given(update_batches())
    @settings(max_examples=100, deadline=None)
    def test_regions_disjoint_and_cover_affected_cells(self, data):
        shape, updates = data
        regions = partition_updates(updates, shape)
        covered = np.zeros(shape, dtype=np.int64)
        for box, _ in regions:
            covered[box.slices()] += 1
        assert covered.max() <= 1, "regions overlap"
        affected = np.zeros(shape, dtype=bool)
        for update in updates:
            affected[tuple(slice(x, None) for x in update.index)] = True
        assert np.array_equal(covered.astype(bool), affected)

    @given(update_batches())
    @settings(max_examples=100, deadline=None)
    def test_region_deltas_are_exact(self, data):
        """Each affected cell of P receives exactly its combined delta."""
        shape, updates = data
        regions = partition_updates(updates, shape)
        applied = np.zeros(shape, dtype=np.int64)
        for box, delta in regions:
            applied[box.slices()] += delta
        expected = np.zeros(shape, dtype=np.int64)
        for update in updates:
            expected[tuple(slice(x, None) for x in update.index)] += (
                update.delta
            )
        assert np.array_equal(applied, expected)

    def test_paper_figure7_combining(self):
        """Figure 7: two 2-d updates partition into 3 update-classes."""
        shape = (6, 6)
        updates = [PointUpdate((1, 3), 10), PointUpdate((3, 1), 100)]
        regions = partition_updates(updates, shape)
        deltas = sorted(delta for _, delta in regions)
        assert deltas == [10, 100, 110]

    def test_figure8_region_count(self):
        """k=3 diagonal updates in 2-d partition into 6 regions (Fig. 8)."""
        shape = (8, 8)
        updates = [
            PointUpdate((1, 5), 1),
            PointUpdate((3, 3), 2),
            PointUpdate((5, 1), 3),
        ]
        regions = partition_updates(updates, shape)
        assert len(regions) == 6 == theorem2_region_bound(3, 2)


class TestApplication:
    @given(update_batches())
    @settings(max_examples=80, deadline=None)
    def test_batch_equals_recomputation(self, data):
        shape, updates = data
        rng = np.random.default_rng(5)
        cube = rng.integers(0, 50, shape).astype(np.int64)
        prefix = compute_prefix_array(cube)
        apply_batch_to_prefix(prefix, updates)
        for update in updates:
            cube[update.index] += update.delta
        assert np.array_equal(prefix, compute_prefix_array(cube))

    @given(update_batches())
    @settings(max_examples=60, deadline=None)
    def test_batch_equals_naive_suffix_updates(self, data):
        shape, updates = data
        rng = np.random.default_rng(6)
        cube = rng.integers(0, 50, shape).astype(np.int64)
        batch = compute_prefix_array(cube)
        naive = batch.copy()
        apply_batch_to_prefix(batch, updates)
        apply_updates_naive(naive, updates)
        assert np.array_equal(batch, naive)

    def test_batch_writes_each_cell_once(self, rng):
        """The batch algorithm's point: disjoint regions → ≤ N writes."""
        shape = (10, 10)
        cube = make_cube(shape, rng).astype(np.int64)
        prefix = compute_prefix_array(cube)
        updates = [
            PointUpdate((0, 0), 1),
            PointUpdate((0, 1), 2),
            PointUpdate((1, 0), 3),
        ]
        naive_cells = apply_updates_naive(prefix.copy(), updates)
        regions = partition_updates(updates, shape)
        batch_cells = sum(box.volume for box, _ in regions)
        assert batch_cells <= 100
        assert naive_cells > batch_cells  # overlapping suffixes re-written

    def test_empty_batch(self, rng):
        prefix = compute_prefix_array(make_cube((4, 4), rng))
        before = prefix.copy()
        assert apply_batch_to_prefix(prefix, []) == 0
        assert np.array_equal(prefix, before)


class TestHelpers:
    def test_delta_for_assignment(self):
        assert delta_for_assignment(10, 17) == 7
        assert delta_for_assignment(10, 17, XOR) == 10 ^ 17

    def test_combine_duplicates(self):
        updates = [
            PointUpdate((1, 1), 5),
            PointUpdate((1, 1), 3),
            PointUpdate((2, 2), 1),
        ]
        merged = combine_duplicate_updates(updates)
        as_dict = {u.index: u.delta for u in merged}
        assert as_dict == {(1, 1): 8, (2, 2): 1}

    def test_contract_to_blocks(self):
        updates = [
            PointUpdate((0, 1), 5),
            PointUpdate((1, 0), 3),
            PointUpdate((4, 4), 2),
        ]
        contracted = contract_updates_to_blocks(updates, 2)
        as_dict = {u.index: u.delta for u in contracted}
        assert as_dict == {(0, 0): 8, (2, 2): 2}

    def test_contract_invalid_block(self):
        with pytest.raises(ValueError):
            contract_updates_to_blocks([], 0)

    def test_out_of_bounds_update_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            partition_updates([PointUpdate((5,), 1)], (4,))

    def test_wrong_dimensionality_rejected(self):
        with pytest.raises(ValueError, match="dimensionality"):
            partition_updates([PointUpdate((1, 2), 1)], (4,))


class TestOperatorGenerality:
    def test_xor_batch(self, rng):
        shape = (5, 5)
        cube = rng.integers(0, 64, shape).astype(np.int64)
        prefix = compute_prefix_array(cube, XOR)
        updates = [PointUpdate((1, 2), 33), PointUpdate((0, 0), 7)]
        apply_batch_to_prefix(prefix, updates, XOR)
        for update in updates:
            cube[update.index] ^= update.delta
        assert np.array_equal(prefix, compute_prefix_array(cube, XOR))

    def test_sum_is_default(self):
        assert combine_duplicate_updates(
            [PointUpdate((0,), 1), PointUpdate((0,), 2)], SUM
        ) == [PointUpdate((0,), 3)]
