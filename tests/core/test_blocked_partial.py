"""Tests for blocked prefix sums over a dimension subset (§9 combined)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import Box
from repro.core.blocked import BlockedPrefixSumCube
from repro.core.blocked_partial import BlockedPartialPrefixSumCube
from repro.core.operators import XOR
from repro.core.partial_prefix import PartialPrefixSumCube
from repro.instrumentation import AccessCounter
from repro.query.naive import naive_range_sum
from repro.query.workload import make_cube, random_box
from tests.conftest import cube_and_box


@pytest.fixture
def rng():
    return np.random.default_rng(269)


class TestCorrectness:
    @given(
        cube_and_box(max_ndim=3, max_side=10),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_for_any_subset_and_block(
        self, data, subset_bits, block
    ):
        cube, box = data
        chosen = [j for j in range(cube.ndim) if subset_bits & (1 << j)]
        structure = BlockedPartialPrefixSumCube(cube, chosen, block)
        assert structure.range_sum(box) == naive_range_sum(cube, box)

    def test_all_dims_chosen_equals_blocked(self, rng):
        """With X' = all dimensions, results *and access counts* match
        the §4 structure exactly."""
        cube = make_cube((24, 21), rng)
        partial = BlockedPartialPrefixSumCube(cube, [0, 1], 4)
        blocked = BlockedPrefixSumCube(cube, 4)
        for _ in range(40):
            box = random_box(cube.shape, rng)
            partial_counter = AccessCounter()
            blocked_counter = AccessCounter()
            assert partial.range_sum(box, partial_counter) == (
                blocked.range_sum(box, blocked_counter)
            )
            assert (
                partial_counter.snapshot() == blocked_counter.snapshot()
            )

    def test_block_one_agrees_with_partial(self, rng):
        cube = make_cube((15, 12, 6), rng)
        blocked_partial = BlockedPartialPrefixSumCube(cube, [0, 2], 1)
        partial = PartialPrefixSumCube(cube, [0, 2])
        for _ in range(40):
            box = random_box(cube.shape, rng)
            assert blocked_partial.range_sum(box) == partial.range_sum(
                box
            )

    def test_empty_subset_is_a_slab_scan(self, rng):
        cube = make_cube((8, 8), rng)
        structure = BlockedPartialPrefixSumCube(cube, [], 4)
        box = Box((2, 1), (6, 5))
        counter = AccessCounter()
        assert structure.range_sum(box, counter) == naive_range_sum(
            cube, box
        )
        assert counter.cube_cells == box.volume

    def test_xor_operator(self, rng):
        import functools
        import operator

        cube = rng.integers(0, 64, (12, 9), dtype=np.int64)
        structure = BlockedPartialPrefixSumCube(cube, [0], 3, XOR)
        for _ in range(25):
            box = random_box(cube.shape, rng)
            expected = functools.reduce(
                operator.xor,
                (int(v) for v in cube[box.slices()].ravel()),
            )
            assert structure.range_sum(box) == expected


class TestDesignTradeoffs:
    def test_storage_shrinks_only_along_chosen_dims(self, rng):
        cube = make_cube((40, 40, 8), rng)
        structure = BlockedPartialPrefixSumCube(cube, [0, 1], 4)
        assert structure.storage_cells == 10 * 10 * 8  # N / b^{d'}

    def test_paper_section9_example_shape(self, rng):
        """§9's opening example: prefix on all three dims of the cuboid,
        blocked at b = 10, but accumulating only along the ranged dims."""
        cube = make_cube((100, 50, 5), rng)
        structure = BlockedPartialPrefixSumCube(cube, [0, 1], 10)
        counter = AccessCounter()
        got = structure.sum_range([(15, 84), (7, 41), (2, 2)], counter)
        assert got == int(cube[15:85, 7:42, 2].sum())
        # The passive singleton multiplies every charge by 1 only.
        assert counter.total < 70 * 35  # far below the query volume

    def test_passive_range_multiplies_access_cost(self, rng):
        cube = make_cube((40, 40, 6), rng)
        structure = BlockedPartialPrefixSumCube(cube, [0, 1], 5)
        single = AccessCounter()
        structure.sum_range([(3, 33), (6, 36), (2, 2)], single)
        wide = AccessCounter()
        structure.sum_range([(3, 33), (6, 36), (0, 5)], wide)
        assert wide.total == 6 * single.total


class TestValidation:
    def test_invalid_block(self, rng):
        with pytest.raises(ValueError):
            BlockedPartialPrefixSumCube(make_cube((4, 4), rng), [0], 0)

    def test_invalid_dims(self, rng):
        with pytest.raises(ValueError):
            BlockedPartialPrefixSumCube(make_cube((4, 4), rng), [3], 2)

    def test_bad_query(self, rng):
        structure = BlockedPartialPrefixSumCube(
            make_cube((4, 4), rng), [0], 2
        )
        with pytest.raises(ValueError):
            structure.sum_range([(0, 4), (0, 3)])


class TestBatchUpdates:
    @given(
        cube_and_box(max_ndim=3, max_side=8),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_updates_keep_queries_exact(self, data, subset_bits, block):
        cube, box = data
        chosen = [j for j in range(cube.ndim) if subset_bits & (1 << j)]
        structure = BlockedPartialPrefixSumCube(cube, chosen, block)
        local = np.random.default_rng(3)
        mirror = cube.copy()
        from repro.core.batch_update import PointUpdate

        updates = []
        for _ in range(6):
            index = tuple(
                int(local.integers(0, n)) for n in cube.shape
            )
            delta = int(local.integers(-8, 12))
            updates.append(PointUpdate(index, delta))
            mirror[index] += delta
        structure.apply_updates(updates)
        assert structure.range_sum(box) == naive_range_sum(mirror, box)

    def test_wrong_dimensionality_rejected(self, rng):
        from repro.core.batch_update import PointUpdate

        structure = BlockedPartialPrefixSumCube(
            make_cube((4, 4), rng), [0], 2
        )
        with pytest.raises(ValueError, match="dimensionality"):
            structure.apply_updates([PointUpdate((1,), 3)])

    def test_empty_subset_updates(self, rng):
        from repro.core.batch_update import PointUpdate

        cube = make_cube((6, 6), rng).astype(np.int64)
        structure = BlockedPartialPrefixSumCube(cube, [], 3)
        structure.apply_updates([PointUpdate((2, 4), 9)])
        assert structure.sum_range([(2, 2), (4, 4)]) == cube[2, 4] + 9
