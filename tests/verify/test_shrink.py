"""Tests for the greedy scenario shrinker."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import check_query_box
from repro.core.operators import SUM
from repro.index.protocol import NULL_COUNTER, RangeSumIndexMixin
from repro.index.registry import (
    _REGISTRY,
    FuzzProfile,
    register_index,
)
from repro.verify import (
    Scenario,
    run_scenario,
    scenario_for,
    shrink_scenario,
)
from repro.verify.driver import Divergence


def _base_scenario() -> Scenario:
    return Scenario(
        index="prefix_sum",
        seed=1,
        shape=(4, 4),
        dtype="int64",
        operator="sum",
        params=(),
        backend="memmap",
        steps=(("query", 1), ("update", 2), ("query", 3)),
        engine=True,
    )


class TestGreedyDescent:
    def test_drops_everything_irrelevant(self):
        """With a synthetic runner the shrinker strips the scenario to
        the one step that matters, drops the memmap backend, the engine
        phase, and shrinks every axis to 1."""

        def runner(scenario):
            if ("update", 2) in scenario.steps:
                return Divergence(scenario, {"kind": "synthetic"})
            return None

        small, failure = shrink_scenario(
            _base_scenario(), runner=runner
        )
        assert small.steps == (("update", 2),)
        assert small.backend == "memory"
        assert small.engine is False
        assert small.shape == (1, 1)
        assert failure.detail == {"kind": "synthetic"}

    def test_passing_scenario_is_rejected(self):
        with pytest.raises(ValueError, match="does not fail"):
            shrink_scenario(_base_scenario(), runner=lambda s: None)

    def test_attempt_cap_is_respected(self):
        calls = []

        def runner(scenario):
            calls.append(scenario)
            return Divergence(scenario, {})

        shrink_scenario(_base_scenario(), runner=runner, max_attempts=5)
        # 1 initial evaluation + at most max_attempts candidates.
        assert len(calls) <= 6


class TestEndToEndOnBrokenIndex:
    """Register a deliberately buggy index and shrink a real failure."""

    def test_shrinks_to_single_step(self, rng):
        name = "_verify_broken_sum"

        try:

            @register_index(
                name,
                kind="sum",
                persistable=False,
                fuzz_profile=FuzzProfile(
                    dtypes=("int64",),
                    operators=("sum",),
                    max_ndim=3,
                    supports_updates=False,
                ),
            )
            class BrokenSum(RangeSumIndexMixin):
                """Correct except on totals congruent to 3 mod 7."""

                def __init__(self, cube, operator=SUM, backend=None):
                    self.cube = np.asarray(cube)
                    self.shape = self.cube.shape
                    self.operator = operator

                def range_sum(self, box, counter=NULL_COUNTER):
                    if check_query_box(box, self.shape):
                        return 0
                    total = int(self.cube[box.slices()].sum())
                    return total + 1 if total % 7 == 3 else total

                def memory_cells(self):
                    return 0

            failure = None
            for seed in range(100):
                scenario = scenario_for(name, seed)
                failure = run_scenario(scenario)
                if failure is not None:
                    break
            assert failure is not None, "seeded bug never triggered"

            small, small_failure = shrink_scenario(failure.scenario)
            # Steps are independent (no updates), so greedy descent
            # reaches a single failing probe: one step, or none when
            # the engine phase alone reproduces the bug.
            if small.steps:
                assert len(small.steps) == 1
                assert small_failure.detail["kind"] in (
                    "query",
                    "query_many",
                )
            else:
                assert small.engine
                assert small_failure.detail["kind"].startswith("engine_")
            # The shrunk scenario replays from its token.
            replayed = run_scenario(Scenario.from_token(small.to_token()))
            assert replayed is not None
        finally:
            _REGISTRY.pop(name, None)
