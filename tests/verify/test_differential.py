"""Registry-parametrized differential tests (the harness as pytest).

Every index that advertises a fuzz profile is swept against the shadow
oracle with a fixed-seed budget; a failure message carries the replay
token, so a red test here is immediately reproducible with
``python -m repro.verify --replay <token>``.
"""

from __future__ import annotations

import pytest

from repro.index.registry import available_indexes, get_index_info
from repro.verify import (
    Scenario,
    fuzzable_indexes,
    fuzzable_kernels,
    run_scenario,
    scenario_for,
)
from tests.verify.conftest import SEED_BASE


def _sweep(name: str, seeds: "range") -> None:
    for seed in seeds:
        scenario = scenario_for(name, seed)
        assert scenario is not None
        failure = run_scenario(scenario)
        assert failure is None, (
            f"divergence: {failure.detail}\n"
            f"replay with: python -m repro.verify --replay "
            f"{failure.scenario.to_token()}"
        )


def test_every_registered_index_is_fuzzable():
    """Registering an index without a fuzz profile is a review error."""
    assert fuzzable_indexes() == available_indexes()


@pytest.mark.parametrize("name", fuzzable_indexes())
def test_differential_agreement(name, trial_budget):
    """No divergence from the oracle over the per-index budget."""
    _sweep(name, range(SEED_BASE, SEED_BASE + trial_budget))


@pytest.mark.parametrize(
    "name",
    [n for n in fuzzable_indexes() if get_index_info(n).accepts_backend],
)
def test_differential_agreement_on_memmap(name, trial_budget):
    """Every backend-capable index also agrees when spilled to disk."""
    budget = max(2, trial_budget // 2)
    for seed in range(SEED_BASE + 500, SEED_BASE + 500 + budget):
        scenario = scenario_for(name, seed, force_backend="memmap")
        assert scenario.backend == "memmap"
        failure = run_scenario(scenario)
        assert failure is None, (
            f"divergence: {failure.detail}\n"
            f"replay with: python -m repro.verify --replay "
            f"{failure.scenario.to_token()}"
        )


def test_fuzzable_kernels_cover_oracle_and_vectorized():
    """The kernel sweep always includes the oracle and ``threaded``;
    ``numba`` joins exactly when the optional dependency imports."""
    kernels = fuzzable_kernels()
    assert kernels[:2] == ("numpy", "threaded")
    from repro.kernels.numba_kernel import numba_available

    assert ("numba" in kernels) == numba_available()


@pytest.mark.parametrize("kernel", fuzzable_kernels())
@pytest.mark.parametrize("name", fuzzable_indexes())
def test_differential_agreement_per_kernel(name, kernel, trial_budget):
    """Every registered index agrees with the oracle under every
    fuzzable execution kernel (bit-identical answers)."""
    budget = max(2, trial_budget // 2)
    for seed in range(SEED_BASE + 900, SEED_BASE + 900 + budget):
        scenario = scenario_for(name, seed, force_kernel=kernel)
        assert scenario.kernel == kernel
        failure = run_scenario(scenario)
        assert failure is None, (
            f"divergence under kernel {kernel}: {failure.detail}\n"
            f"replay with: python -m repro.verify --replay "
            f"{failure.scenario.to_token()}"
        )


@pytest.mark.parametrize("name", fuzzable_indexes())
def test_token_round_trip(name):
    """A scenario survives serialization bit-identically."""
    scenario = scenario_for(name, SEED_BASE)
    assert Scenario.from_token(scenario.to_token()) == scenario


def test_token_accepts_raw_json():
    scenario = scenario_for("prefix_sum", SEED_BASE)
    import json

    payload = json.dumps(
        {
            "index": scenario.index,
            "seed": scenario.seed,
            "shape": list(scenario.shape),
            "dtype": scenario.dtype,
            "operator": scenario.operator,
            "params": [list(p) for p in scenario.params],
            "backend": scenario.backend,
            "steps": [list(s) for s in scenario.steps],
            "engine": scenario.engine,
            "kernel": scenario.kernel,
        }
    )
    assert Scenario.from_token(payload) == scenario


def test_pre_kernel_token_replays_as_numpy():
    """Tokens minted before the kernel layer carry no ``kernel`` field;
    they must replay under the oracle kernel, not error."""
    import dataclasses
    import json

    scenario = scenario_for("prefix_sum", SEED_BASE)
    payload = json.loads(
        json.dumps(
            {
                "index": scenario.index,
                "seed": scenario.seed,
                "shape": list(scenario.shape),
                "dtype": scenario.dtype,
                "operator": scenario.operator,
                "params": [list(p) for p in scenario.params],
                "backend": scenario.backend,
                "steps": [list(s) for s in scenario.steps],
                "engine": scenario.engine,
            }
        )
    )
    rebuilt = Scenario.from_token(json.dumps(payload))
    assert rebuilt.kernel == "numpy"
    assert rebuilt == dataclasses.replace(scenario, kernel="numpy")


def test_generation_is_deterministic():
    for name in fuzzable_indexes():
        assert scenario_for(name, 123) == scenario_for(name, 123)
        assert scenario_for(name, 123) != scenario_for(name, 124)


def test_cli_sweep_smoke(capsys):
    """The module CLI runs a tiny clean sweep and exits 0."""
    from repro.verify.__main__ import main

    assert main(["--seed", "0", "--trials", "8"]) == 0
    out = capsys.readouterr().out
    assert "no divergences" in out
    assert "coverage:" in out


def test_cli_replay_of_passing_scenario(capsys):
    from repro.verify.__main__ import main

    token = scenario_for("prefix_sum", SEED_BASE).to_token()
    assert main(["--replay", token]) == 0
    assert "no divergence" in capsys.readouterr().out
