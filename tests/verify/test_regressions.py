"""Regression tests for the bugs the differential harness flushed out.

Each test fails on the pre-fix code; the fix it pins is named in the
docstring.  These are deliberately tiny deterministic reproducers — the
harness that found them lives in ``test_differential.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box, full_box
from repro.core.batch_update import PointUpdate
from repro.core.operators import SUM
from repro.core.prefix_sum import PrefixSumCube, accumulated_dtype
from repro.core.range_max import RangeMaxTree
from repro.index.backend import MemmapBackend
from repro.index.protocol import InstrumentedIndex
from repro.index.registry import available_indexes, create_index
from repro.sparse import SparseCube

#: Construction parameters for structures without all-default ctors.
BUILD_PARAMS = {
    "blocked_prefix_sum": {"block_size": 2},
    "partial_prefix_sum": {"prefix_dims": (0,)},
    "blocked_partial_prefix_sum": {"prefix_dims": (0,), "block_size": 2},
    "range_max_tree": {"fanout": 3},
}


def _build(name, cube, backend=None):
    from repro.index.registry import get_index_info

    info = get_index_info(name)
    if info.sparse_input:
        cube = SparseCube.from_dense(cube)
    return create_index(
        name, cube, backend=backend, **BUILD_PARAMS.get(name, {})
    )


def _cube_for(name, rng):
    from repro.index.registry import get_index_info

    profile = get_index_info(name).fuzz_profile
    shape = (6,) if profile.max_ndim == 1 else (5, 4)
    return rng.integers(-40, 41, size=shape).astype(np.int64)


class TestDtypePromotion:
    """S1: prefix accumulation promotes to wide exact dtypes."""

    def test_small_signed_ints_promote_to_int64(self):
        assert accumulated_dtype(SUM, np.dtype(np.int8)) == np.int64
        assert accumulated_dtype(SUM, np.dtype(np.int16)) == np.int64

    def test_unsigned_ints_promote_to_uint64(self):
        assert accumulated_dtype(SUM, np.dtype(np.uint8)) == np.uint64

    def test_float32_promotes_to_float64(self):
        """Pre-fix, float32 prefixes lost integer exactness at 2**24."""
        assert accumulated_dtype(SUM, np.dtype(np.float32)) == np.float64
        cube = np.array([2.0**24, 1.0], dtype=np.float32)
        structure = PrefixSumCube(cube)
        # P[1] − P[0] computed in float32 collapses to 0.0.
        assert structure.sum_range([(1, 1)]) == 1.0

    def test_narrow_int_totals_do_not_wrap(self):
        cube = np.full(300, 100, dtype=np.int8)
        structure = PrefixSumCube(cube)
        assert structure.sum_range([(0, 299)]) == 30000


class TestEmptyRangeIdentity:
    """S2: every SUM index answers the operator identity on empty."""

    @pytest.mark.parametrize("name", available_indexes(kind="sum"))
    def test_scalar_empty_is_identity(self, name, rng):
        cube = _cube_for(name, rng)
        index = _build(name, cube)
        lo = (2,) + (0,) * (cube.ndim - 1)
        hi = (1,) + tuple(n - 1 for n in cube.shape[1:])
        assert index.query(Box(lo, hi)) == 0

    @pytest.mark.parametrize("name", available_indexes(kind="sum"))
    def test_batch_empty_rows_are_identity(self, name, rng):
        cube = _cube_for(name, rng)
        index = _build(name, cube)
        box = full_box(cube.shape)
        lows = np.array([box.lo, (2,) + (0,) * (cube.ndim - 1)])
        highs = np.array(
            [box.hi, (1,) + tuple(n - 1 for n in cube.shape[1:])]
        )
        results = index.query_many(lows, highs)
        assert results[0] == cube.sum()
        assert results[1] == 0


class TestMemmapFlush:
    """S4: ``apply_updates`` flushes memmap spill files."""

    @pytest.mark.parametrize(
        "name", available_indexes(persistable=True)
    )
    def test_apply_updates_flushes_spill_files(
        self, name, rng, tmp_path, monkeypatch
    ):
        """Pre-fix, no structure called ``flush`` after updating."""
        flushed = []
        original = np.memmap.flush

        def spy(self):
            flushed.append(self.filename)
            return original(self)

        monkeypatch.setattr(np.memmap, "flush", spy)
        cube = _cube_for(name, rng)
        index = _build(name, cube, backend=MemmapBackend(tmp_path))
        flushed.clear()
        point = (0,) * cube.ndim
        index.apply_updates([PointUpdate(point, 5)])
        assert flushed, f"{name}.apply_updates never flushed its spill"

    @pytest.mark.parametrize(
        "name", available_indexes(persistable=True)
    )
    def test_spill_update_reload_query_equality(
        self, name, rng, tmp_path
    ):
        """Spill → update → save/load round trip answers like a fresh
        build over the updated cube, for every persistable index."""
        import io

        from repro.io import load_index, save_index
        from repro.query.workload import random_box

        cube = _cube_for(name, rng)
        index = _build(name, cube, backend=MemmapBackend(tmp_path))
        mirror = cube.copy()
        updates = []
        for _ in range(6):
            point = tuple(
                int(rng.integers(0, n)) for n in cube.shape
            )
            delta = int(rng.integers(-20, 21))
            updates.append(PointUpdate(point, delta))
            mirror[point] += delta
        index.apply_updates(updates)
        buffer = io.BytesIO()
        save_index(index, buffer)
        buffer.seek(0)
        clone = InstrumentedIndex(load_index(buffer))
        fresh = InstrumentedIndex(_build(name, mirror))
        for _ in range(10):
            box = random_box(cube.shape, rng)
            assert clone.query(box) == fresh.query(box)


class TestMaxTreeDuplicateDeltas:
    """Harness-flushed: duplicate deltas to one cell must accumulate.

    Pre-fix, ``RangeMaxTree.apply_updates`` converted every delta to an
    assignment against the pre-batch source, so last-wins deduplication
    silently dropped all but the final delta to a cell.
    """

    def test_duplicate_deltas_accumulate_single_cell(self):
        tree = RangeMaxTree(np.array([4.0]), fanout=5)
        tree.apply_updates(
            [
                PointUpdate((0,), 8),
                PointUpdate((0,), -3),
                PointUpdate((0,), -18),
                PointUpdate((0,), 5),
                PointUpdate((0,), -1),
            ]
        )
        # 4 + (8 - 3 - 18 + 5 - 1) = -5; last-wins would answer 4 - 1.
        assert tree.query(Box((0,), (0,))) == ((0,), -5.0)

    def test_duplicate_deltas_accumulate_through_tree(self, rng):
        cube = rng.integers(-40, 41, size=(6, 6)).astype(np.int64)
        tree = RangeMaxTree(cube, fanout=2)
        mirror = cube.copy()
        updates = []
        for _ in range(8):
            point = (int(rng.integers(0, 2)), int(rng.integers(0, 2)))
            delta = int(rng.integers(-10, 11))
            updates.append(PointUpdate(point, delta))
            mirror[point] += delta
        tree.apply_updates(updates)
        box = full_box(cube.shape)
        _, value = tree.query(box)
        assert value == mirror.max()


class TestSparseValueCoercion:
    """Harness-flushed: sparse cells must not keep narrow numpy dtypes."""

    def test_int8_running_sums_do_not_wrap(self):
        cube = SparseCube.from_dense(
            np.array([100, 100], dtype=np.int8)
        )
        index = create_index("sparse_sum_1d", cube)
        assert index.query(Box((0,), (1,))) == 200

    def test_densify_infers_float_dtype(self):
        cube = SparseCube.from_dense(np.array([0.5, 0.0, 2.5]))
        dense = cube.densify(full_box((3,)))
        assert dense.dtype == np.float64
        assert np.array_equal(dense, [0.5, 0.0, 2.5])

    def test_densify_defaults_to_int64_for_ints(self):
        cube = SparseCube.from_dense(np.array([100, 100], dtype=np.int8))
        assert cube.densify(full_box((2,))).dtype == np.int64
