"""Budgets and helpers for the differential suite.

The suite is the harness wearing its pytest hat: the same scenario
generator and driver as ``python -m repro.verify``, parametrized over
the registry.  Tier-1 runs a small fixed-seed budget; ``--fuzz`` (see
the root conftest) raises it to a real sweep.
"""

from __future__ import annotations

import pytest

#: Scenarios per index in the tier-1 (default) run.
TIER1_TRIALS = 4

#: Scenarios per index under ``pytest --fuzz``.
FULL_TRIALS = 50

#: Seed base distinct from the CLI's stride so the suites don't
#: duplicate the CI smoke job's coverage.
SEED_BASE = 7_000_000


@pytest.fixture(scope="session")
def trial_budget(request) -> int:
    """Scenarios per index, honoring ``--fuzz``."""
    if request.config.getoption("--fuzz"):
        return FULL_TRIALS
    return TIER1_TRIALS
