"""Smoke tests: every shipped example must run cleanly end to end.

Each example is executed in-process (``runpy``) with stdout captured;
the assertions inside the examples double as integration checks (every
example verifies its own answers against brute force).
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert EXAMPLES, f"no examples found under {EXAMPLES_DIR}"
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"
