"""Tests for the sparse range-max engine (paper §10.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.instrumentation import AccessCounter
from repro.query.workload import clustered_points, random_box
from repro.sparse.sparse_cube import SparseCube
from repro.sparse.sparse_max import SparseRangeMaxEngine


@pytest.fixture
def rng():
    return np.random.default_rng(149)


@pytest.fixture
def clustered_cube(rng):
    boxes = [Box((5, 5), (20, 20)), Box((40, 35), (58, 55))]
    cells = clustered_points((64, 64), boxes, 0.8, 60, rng, low=1, high=10**6)
    return SparseCube((64, 64), cells)


class TestCorrectness:
    def test_matches_scan_oracle(self, clustered_cube, rng):
        engine = SparseRangeMaxEngine(clustered_cube)
        for _ in range(80):
            box = random_box((64, 64), rng)
            expected = clustered_cube.naive_max(box)
            got = engine.max_index(box)
            if expected is None:
                assert got is None
            else:
                assert got is not None
                assert got[1] == expected[1]
                assert box.contains_point(got[0])
                assert clustered_cube.cells[got[0]] == got[1]

    def test_empty_region_returns_none(self, rng):
        cube = SparseCube((40, 40), {(0, 0): 5})
        engine = SparseRangeMaxEngine(cube)
        assert engine.max_index(Box((10, 10), (20, 20))) is None

    def test_one_dimensional(self, rng):
        cells = {
            (int(k),): int(v)
            for k, v in zip(
                rng.choice(1000, 80, replace=False),
                rng.integers(1, 10**6, 80),
            )
        }
        cube = SparseCube((1000,), cells)
        engine = SparseRangeMaxEngine(cube)
        for _ in range(60):
            box = random_box((1000,), rng)
            expected = cube.naive_max(box)
            got = engine.max_index(box)
            assert (got is None) == (expected is None)
            if got is not None:
                assert got[1] == expected[1]

    def test_dimension_mismatch(self, clustered_cube):
        engine = SparseRangeMaxEngine(clustered_cube)
        with pytest.raises(ValueError):
            engine.max_index(Box((0,), (5,)))


class TestBranchAndBound:
    def test_prunes_most_of_the_tree(self, clustered_cube):
        """§10.3 transplants the §6 pruning: the whole-cube max must be
        found without visiting most nodes."""
        engine = SparseRangeMaxEngine(clustered_cube)
        counter = AccessCounter()
        result = engine.max_index(Box((0, 0), (63, 63)), counter)
        assert result is not None
        assert counter.index_nodes < engine.rtree.node_count / 2
