"""Tests for the from-scratch R*-tree (paper §10.2–10.3 substrate)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import Box
from repro.instrumentation import AccessCounter
from repro.sparse.rtree import Rect, RStarTree


@pytest.fixture
def rng():
    return np.random.default_rng(131)


class TestRect:
    def test_from_cell_is_unit_box(self):
        rect = Rect.from_cell((3, 5))
        assert rect.mins == (3.0, 5.0)
        assert rect.maxs == (4.0, 6.0)
        assert rect.area == 1.0

    def test_from_box_inclusive_semantics(self):
        rect = Rect.from_box(Box((1, 2), (3, 4)))
        assert rect.mins == (1.0, 2.0)
        assert rect.maxs == (4.0, 5.0)
        assert rect.area == 9.0

    def test_union_and_margin(self):
        a = Rect((0.0, 0.0), (2.0, 2.0))
        b = Rect((3.0, 1.0), (5.0, 4.0))
        u = a.union(b)
        assert u == Rect((0.0, 0.0), (5.0, 4.0))
        assert u.margin == 9.0

    def test_intersection_predicates(self):
        a = Rect((0.0, 0.0), (2.0, 2.0))
        assert a.intersects(Rect((1.0, 1.0), (3.0, 3.0)))
        assert not a.intersects(Rect((2.0, 0.0), (3.0, 1.0)))  # touching
        assert a.contains(Rect((0.5, 0.5), (1.5, 1.5)))
        assert not a.contains(Rect((0.5, 0.5), (2.5, 1.5)))

    def test_overlap_area(self):
        a = Rect((0.0, 0.0), (4.0, 4.0))
        b = Rect((2.0, 2.0), (6.0, 6.0))
        assert a.overlap_area(b) == 4.0
        assert a.overlap_area(Rect((4.0, 0.0), (5.0, 1.0))) == 0.0

    def test_enlargement(self):
        a = Rect((0.0, 0.0), (2.0, 2.0))
        assert a.enlargement(Rect((3.0, 0.0), (4.0, 2.0))) == 4.0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Rect((2.0,), (1.0,))


class TestTreeStructure:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RStarTree(max_entries=3)
        with pytest.raises(ValueError):
            RStarTree(max_entries=8, min_entries=5)

    def test_invariants_after_bulk_insert(self, rng):
        tree = RStarTree(max_entries=6)
        for _ in range(400):
            point = (int(rng.integers(0, 100)), int(rng.integers(0, 100)))
            tree.insert_cell(point, payload=point, value=float(rng.random()))
        tree.check_invariants()
        assert len(tree) == 400
        assert tree.height >= 3

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=30),
            ),
            min_size=1,
            max_size=150,
        ),
        st.integers(min_value=4, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_for_any_input(self, points, max_entries):
        tree = RStarTree(max_entries=max_entries)
        for i, point in enumerate(points):
            tree.insert_cell(point, payload=i, value=float(i))
        tree.check_invariants()


class TestSearch:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=25),
                st.integers(min_value=0, max_value=25),
            ),
            unique=True,
            min_size=1,
            max_size=120,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_range_search_oracle(self, points):
        tree = RStarTree(max_entries=5)
        for point in points:
            tree.insert_cell(point, payload=point)
        box = Box((5, 5), (18, 20))
        expected = sorted(p for p in points if box.contains_point(p))
        got = sorted(tree.payloads_in(Rect.from_box(box)))
        assert got == expected

    def test_search_prunes_nodes(self, rng):
        tree = RStarTree(max_entries=8)
        for _ in range(600):
            point = (int(rng.integers(0, 200)), int(rng.integers(0, 200)))
            tree.insert_cell(point, payload=point)
        counter = AccessCounter()
        tree.search(Rect.from_box(Box((0, 0), (10, 10))), counter)
        assert counter.index_nodes < tree.node_count

    def test_rectangle_payloads(self):
        """Region boundaries (not just points) index correctly (§10.2)."""
        tree = RStarTree(max_entries=4)
        regions = [Box((0, 0), (9, 9)), Box((20, 20), (29, 29))]
        for i, region in enumerate(regions):
            tree.insert(Rect.from_box(region), payload=i)
        hits = tree.payloads_in(Rect.from_box(Box((5, 5), (24, 24))))
        assert sorted(hits) == [0, 1]
        hits = tree.payloads_in(Rect.from_box(Box((12, 12), (18, 18))))
        assert hits == []


class TestMaxInRegion:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=-100, max_value=100),
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_linear_scan(self, rows):
        values = {}
        for x, y, v in rows:
            values[(x, y)] = v  # duplicates: last wins
        tree = RStarTree(max_entries=5)
        for point, value in values.items():
            tree.insert_cell(point, payload=point, value=value)
        box = Box((3, 3), (15, 17))
        inside = {p: v for p, v in values.items() if box.contains_point(p)}
        got = tree.max_in_region(Rect.from_box(box))
        if not inside:
            assert got is None
        else:
            assert got is not None
            assert got[2] == max(inside.values())

    def test_branch_and_bound_prunes(self, rng):
        tree = RStarTree(max_entries=8)
        points = {}
        for _ in range(800):
            point = (int(rng.integers(0, 100)), int(rng.integers(0, 100)))
            if point in points:
                continue
            value = int(rng.integers(0, 10**6))
            points[point] = value
            tree.insert_cell(point, payload=point, value=value)
        counter = AccessCounter()
        result = tree.max_in_region(
            Rect.from_box(Box((0, 0), (99, 99))), counter
        )
        assert result is not None
        assert result[2] == max(points.values())
        assert counter.index_nodes < tree.node_count / 2

    def test_empty_tree(self):
        tree = RStarTree()
        assert tree.max_in_region(Rect.from_cell((0,))) is None


class TestEdgeCases:
    def test_single_entry(self):
        tree = RStarTree(max_entries=4)
        tree.insert_cell((5, 5), payload="only", value=1.0)
        assert tree.payloads_in(Rect.from_cell((5, 5))) == ["only"]
        assert tree.payloads_in(Rect.from_cell((6, 6))) == []
        tree.check_invariants()

    def test_many_duplicated_locations(self, rng):
        """Hundreds of rectangles at one spot force splits with zero
        spatial separation — the split code must still terminate."""
        tree = RStarTree(max_entries=5)
        for i in range(200):
            tree.insert_cell((3, 3), payload=i, value=float(i))
        tree.check_invariants()
        hits = tree.payloads_in(Rect.from_cell((3, 3)))
        assert sorted(hits) == list(range(200))
        best = tree.max_in_region(Rect.from_cell((3, 3)))
        assert best is not None and best[2] == 199.0

    def test_one_dimensional_rects(self, rng):
        tree = RStarTree(max_entries=6)
        points = sorted(rng.choice(1000, 150, replace=False).tolist())
        for p in points:
            tree.insert_cell((int(p),), payload=int(p))
        tree.check_invariants()
        got = sorted(
            tree.payloads_in(Rect.from_box(Box((100,), (600,))))
        )
        assert got == [p for p in points if 100 <= p <= 600]

    def test_three_dimensional(self, rng):
        tree = RStarTree(max_entries=8)
        pts = set()
        while len(pts) < 300:
            pts.add(tuple(int(rng.integers(0, 20)) for _ in range(3)))
        for p in pts:
            tree.insert_cell(p, payload=p)
        tree.check_invariants()
        box = Box((5, 5, 5), (14, 14, 14))
        got = sorted(tree.payloads_in(Rect.from_box(box)))
        assert got == sorted(p for p in pts if box.contains_point(p))

    def test_mixed_points_and_regions(self, rng):
        """§10.2's real content: region boundaries and outlier points in
        one tree."""
        tree = RStarTree(max_entries=5)
        regions = [Box((0, 0), (9, 9)), Box((30, 30), (49, 49))]
        for i, region in enumerate(regions):
            tree.insert(Rect.from_box(region), payload=("region", i))
        pts = {(15, 15), (25, 40), (50, 5), (12, 48)}
        for p in pts:
            tree.insert_cell(p, payload=("point", p))
        tree.check_invariants()
        hits = tree.payloads_in(Rect.from_box(Box((8, 8), (26, 45))))
        kinds = {h[0] for h in hits}
        assert kinds == {"region", "point"}

    def test_forced_reinsert_occurs(self, rng):
        """The R* forced-reinsert path must actually trigger on clustered
        inserts (evicting 30% of an overflowing node)."""
        import repro.sparse.rtree as rtree_module

        calls = {"n": 0}
        original = rtree_module.RStarTree._reinsert

        def counting(self, path, overflowed):
            calls["n"] += 1
            return original(self, path, overflowed)

        rtree_module.RStarTree._reinsert = counting
        try:
            tree = RStarTree(max_entries=6)
            for _ in range(120):
                tree.insert_cell(
                    (int(rng.integers(0, 12)), int(rng.integers(0, 12))),
                    payload=None,
                )
        finally:
            rtree_module.RStarTree._reinsert = original
        assert calls["n"] > 0
        tree.check_invariants()

    def test_height_grows_with_size(self, rng):
        tree = RStarTree(max_entries=4)
        heights = []
        pts = set()
        while len(pts) < 300:
            pts.add((int(rng.integers(0, 500)), int(rng.integers(0, 500))))
        for i, p in enumerate(sorted(pts)):
            tree.insert_cell(p, payload=None)
            if i in (10, 100, 299):
                heights.append(tree.height)
        assert heights == sorted(heights)
        assert heights[-1] >= 3
