"""Tests for the from-scratch B+-tree (paper §10.1 substrate)."""

from __future__ import annotations

import bisect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrumentation import AccessCounter
from repro.sparse.btree import BPlusTree


@pytest.fixture
def rng():
    return np.random.default_rng(127)


def reference_find_le(keys, values, probe):
    i = bisect.bisect_right(keys, probe) - 1
    return None if i < 0 else (keys[i], values[keys[i]])


def reference_find_ge(keys, values, probe):
    i = bisect.bisect_left(keys, probe)
    return None if i >= len(keys) else (keys[i], values[keys[i]])


class TestStructure:
    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get(5) is None
        assert tree.find_le(5) is None
        assert tree.find_ge(5) is None
        assert list(tree.items()) == []

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=4)
        for key in range(200):
            tree.insert(key, key)
        tree.check_invariants()
        assert 4 <= tree.height <= 9

    def test_overwrite_keeps_size(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert len(tree) == 1
        assert tree.get(1) == "b"

    @given(
        st.lists(
            st.integers(min_value=0, max_value=10**6),
            unique=True,
            max_size=300,
        ),
        st.integers(min_value=3, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_random_inserts(self, keys, order):
        tree = BPlusTree(order=order)
        for key in keys:
            tree.insert(key, key * 2)
        tree.check_invariants()
        assert list(tree.keys()) == sorted(keys)


class TestSearch:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=1000),
            unique=True,
            max_size=200,
        ),
        st.lists(
            st.integers(min_value=-10, max_value=1010),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=3, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_predecessor_successor_oracle(self, keys, probes, order):
        tree = BPlusTree(order=order)
        values = {}
        for key in keys:
            tree.insert(key, key * 3)
            values[key] = key * 3
        ordered = sorted(keys)
        for probe in probes:
            assert tree.find_le(probe) == reference_find_le(
                ordered, values, probe
            )
            assert tree.find_ge(probe) == reference_find_ge(
                ordered, values, probe
            )

    def test_exact_get(self, rng):
        tree = BPlusTree(order=6)
        keys = rng.choice(5000, size=400, replace=False)
        for key in keys:
            tree.insert(int(key), int(key) + 1)
        for key in keys[:100]:
            assert tree.get(int(key)) == int(key) + 1
        assert tree.get(-1, default="missing") == "missing"

    def test_range_items(self, rng):
        tree = BPlusTree(order=5)
        keys = sorted(rng.choice(1000, size=150, replace=False).tolist())
        for key in keys:
            tree.insert(int(key), None)
        got = [k for k, _ in tree.items(lo=200, hi=700)]
        assert got == [k for k in keys if 200 <= k <= 700]

    def test_items_unbounded(self, rng):
        tree = BPlusTree(order=5)
        for key in (5, 1, 9):
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == [1, 5, 9]

    def test_access_counting(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key)
        counter = AccessCounter()
        tree.find_le(57, counter)
        assert 1 <= counter.index_nodes <= tree.height + 3

    def test_search_cost_logarithmic(self):
        tree = BPlusTree(order=8)
        for key in range(5000):
            tree.insert(key, key)
        counter = AccessCounter()
        tree.get(4321, counter=counter)
        assert counter.index_nodes <= 6


class TestEdgeCases:
    def test_sequential_ascending_inserts(self):
        tree = BPlusTree(order=4)
        for key in range(1000):
            tree.insert(key, key)
        tree.check_invariants()
        assert tree.find_le(999) == (999, 999)
        assert tree.find_ge(0) == (0, 0)

    def test_sequential_descending_inserts(self):
        tree = BPlusTree(order=4)
        for key in reversed(range(1000)):
            tree.insert(key, key)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(1000))

    def test_interleaved_overwrites(self, rng):
        tree = BPlusTree(order=5)
        reference = {}
        for _ in range(2000):
            key = int(rng.integers(0, 200))
            value = int(rng.integers(0, 10**6))
            tree.insert(key, value)
            reference[key] = value
        tree.check_invariants()
        assert len(tree) == len(reference)
        for key, value in reference.items():
            assert tree.get(key) == value

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        words = ["delta", "alpha", "echo", "bravo", "charlie"]
        for word in words:
            tree.insert(word, word.upper())
        assert list(tree.keys()) == sorted(words)
        assert tree.find_le("d") == ("charlie", "CHARLIE")
        assert tree.find_ge("d") == ("delta", "DELTA")

    def test_large_order_single_leaf_root(self):
        tree = BPlusTree(order=128)
        for key in range(100):
            tree.insert(key, None)
        assert tree.height == 1
        tree.check_invariants()

    def test_minimum_order(self):
        tree = BPlusTree(order=3)
        for key in range(64):
            tree.insert(key, key * 7)
        tree.check_invariants()
        for key in range(64):
            assert tree.get(key) == key * 7
