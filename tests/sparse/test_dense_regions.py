"""Tests for the dense-region finder (paper §10.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.query.workload import clustered_points
from repro.sparse.dense_regions import (
    DenseRegionConfig,
    find_dense_regions,
)


@pytest.fixture
def rng():
    return np.random.default_rng(137)


class TestBasicBehaviour:
    def test_empty_input(self):
        result = find_dense_regions([], (10, 10))
        assert result.regions == () and result.outliers == ()

    def test_wrong_dimensionality(self):
        with pytest.raises(ValueError):
            find_dense_regions([(1, 2, 3)], (10, 10))

    def test_single_solid_cluster(self):
        points = [(x, y) for x in range(5, 10) for y in range(5, 10)]
        result = find_dense_regions(points, (30, 30))
        assert len(result.regions) == 1
        assert result.regions[0] == Box((5, 5), (9, 9))
        assert result.outliers == ()

    def test_two_separated_clusters(self):
        points = [(x, y) for x in range(0, 5) for y in range(0, 5)]
        points += [(x, y) for x in range(20, 25) for y in range(20, 25)]
        result = find_dense_regions(points, (30, 30))
        assert len(result.regions) == 2
        found = sorted(result.regions, key=lambda b: b.lo)
        assert found[0] == Box((0, 0), (4, 4))
        assert found[1] == Box((20, 20), (24, 24))

    def test_sparse_noise_becomes_outliers(self, rng):
        points = [
            (int(rng.integers(0, 100)), int(rng.integers(0, 100)))
            for _ in range(20)
        ]
        config = DenseRegionConfig(density_threshold=0.5, min_points=8)
        result = find_dense_regions(set(points), (100, 100), config)
        total = sum(
            sum(1 for p in set(points) if box.contains_point(p))
            for box in result.regions
        ) + len(result.outliers)
        assert total == len(set(points))


class TestPartitionProperties:
    def test_regions_disjoint(self, rng):
        boxes = [Box((0, 0), (15, 15)), Box((30, 5), (45, 25))]
        cells = clustered_points((64, 64), boxes, 0.9, 60, rng)
        result = find_dense_regions(list(cells), (64, 64))
        for i, a in enumerate(result.regions):
            for b in result.regions[i + 1 :]:
                assert not a.intersects(b)

    def test_every_point_accounted_once(self, rng):
        boxes = [Box((2, 2), (12, 12))]
        cells = clustered_points((40, 40), boxes, 0.85, 25, rng)
        result = find_dense_regions(list(cells), (40, 40))
        outliers = set(result.outliers)
        for point in cells:
            in_regions = sum(
                1 for box in result.regions if box.contains_point(point)
            )
            assert in_regions + (point in outliers) == 1, point

    def test_regions_meet_density_threshold(self, rng):
        boxes = [Box((5, 5), (20, 20)), Box((40, 40), (55, 55))]
        cells = clustered_points((64, 64), boxes, 0.9, 40, rng)
        config = DenseRegionConfig(density_threshold=0.4)
        result = find_dense_regions(list(cells), (64, 64), config)
        assert result.regions, "clusters this solid must be found"
        for box in result.regions:
            inside = sum(1 for p in cells if box.contains_point(p))
            assert inside / box.volume >= config.density_threshold


class TestConfig:
    def test_min_points_pushes_to_outliers(self):
        points = [(x, 0) for x in range(5)]
        config = DenseRegionConfig(min_points=10)
        result = find_dense_regions(points, (20, 5), config)
        assert result.regions == ()
        assert len(result.outliers) == 5

    def test_max_depth_caps_recursion(self, rng):
        points = [
            (int(rng.integers(0, 200)), int(rng.integers(0, 200)))
            for _ in range(300)
        ]
        config = DenseRegionConfig(
            density_threshold=0.95, min_points=2, max_depth=2
        )
        result = find_dense_regions(set(points), (200, 200), config)
        # With almost no recursion allowed, most points become outliers.
        assert len(result.outliers) >= len(set(points)) * 0.5

    def test_three_dimensional(self, rng):
        box = Box((2, 2, 2), (7, 7, 7))
        cells = clustered_points((16, 16, 16), [box], 0.95, 10, rng)
        result = find_dense_regions(list(cells), (16, 16, 16))
        assert any(
            region.volume >= 0.5 * box.volume for region in result.regions
        )
