"""Tests for the sparse range-sum engines (paper §10.1–10.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import Box
from repro.instrumentation import AccessCounter
from repro.query.workload import clustered_points, random_box
from repro.sparse.sparse_cube import SparseCube
from repro.sparse.sparse_sum import SparseRangeSum1D, SparseRangeSumEngine


@pytest.fixture
def rng():
    return np.random.default_rng(139)


class TestSparseCube:
    def test_from_dense_roundtrip(self, rng):
        dense = rng.integers(0, 3, (8, 8)).astype(np.int64)
        cube = SparseCube.from_dense(dense)
        assert np.array_equal(cube.to_dense(), dense)
        assert cube.nnz == int(np.count_nonzero(dense))

    def test_density(self):
        cube = SparseCube((10, 10), {(0, 0): 1, (5, 5): 2})
        assert cube.density == 0.02
        assert cube.volume == 100

    def test_out_of_bounds_cell(self):
        with pytest.raises(ValueError):
            SparseCube((5,), {(5,): 1})

    def test_densify_region(self):
        cube = SparseCube((10, 10), {(2, 3): 7, (4, 4): 9, (9, 9): 1})
        window = cube.densify(Box((2, 2), (5, 5)))
        assert window.shape == (4, 4)
        assert window[0, 1] == 7 and window[2, 2] == 9
        assert window.sum() == 16


class TestSparse1D:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=500),
            st.integers(min_value=1, max_value=50),
            max_size=60,
        ),
        st.integers(min_value=0, max_value=499),
        st.integers(min_value=0, max_value=499),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scan_oracle(self, cells, a, b):
        lo, hi = min(a, b), max(a, b)
        cube = SparseCube((501,), {(k,): v for k, v in cells.items()})
        engine = SparseRangeSum1D(cube)
        box = Box((lo,), (hi,))
        assert engine.range_sum(box) == cube.naive_range_sum(box)

    def test_two_predecessor_searches(self, rng):
        cells = {
            (int(k),): int(v)
            for k, v in zip(
                rng.choice(10**6, 500, replace=False),
                rng.integers(1, 100, 500),
            )
        }
        cube = SparseCube((10**6,), cells)
        engine = SparseRangeSum1D(cube)
        counter = AccessCounter()
        engine.range_sum(Box((1000,), (900000,)), counter)
        # Two root-to-leaf descents in a B-tree over 500 keys.
        assert counter.index_nodes <= 2 * (engine.index.height + 2)

    def test_empty_cube(self):
        cube = SparseCube((100,), {})
        engine = SparseRangeSum1D(cube)
        assert engine.range_sum(Box((0,), (99,))) == 0

    def test_rejects_multidimensional(self):
        cube = SparseCube((4, 4), {})
        with pytest.raises(ValueError):
            SparseRangeSum1D(cube)

    def test_range_validation(self):
        engine = SparseRangeSum1D(SparseCube((10,), {(3,): 1}))
        with pytest.raises(ValueError):
            engine.range_sum(Box((0,), (10,)))


class TestSparseEngine:
    @pytest.fixture
    def clustered_cube(self, rng):
        boxes = [Box((4, 4), (19, 19)), Box((34, 30), (53, 49))]
        cells = clustered_points((64, 64), boxes, 0.85, 50, rng)
        return SparseCube((64, 64), cells)

    def test_matches_scan_oracle(self, clustered_cube, rng):
        engine = SparseRangeSumEngine(clustered_cube, block_size=1)
        for _ in range(60):
            box = random_box((64, 64), rng)
            assert engine.range_sum(box) == clustered_cube.naive_range_sum(
                box
            )

    def test_blocked_regions_agree(self, clustered_cube, rng):
        basic = SparseRangeSumEngine(clustered_cube, block_size=1)
        blocked = SparseRangeSumEngine(clustered_cube, block_size=4)
        for _ in range(40):
            box = random_box((64, 64), rng)
            assert basic.range_sum(box) == blocked.range_sum(box)

    def test_finds_dense_regions(self, clustered_cube):
        engine = SparseRangeSumEngine(clustered_cube)
        assert engine.dense_region_count >= 1
        assert engine.outlier_count < clustered_cube.nnz

    def test_storage_below_full_materialization(self, clustered_cube):
        """§10.2's point: prefix arrays exist only over dense regions."""
        engine = SparseRangeSumEngine(clustered_cube)
        assert engine.storage_cells() < clustered_cube.volume / 2

    def test_three_dimensional(self, rng):
        boxes = [Box((1, 1, 1), (8, 8, 8))]
        cells = clustered_points((20, 20, 20), boxes, 0.9, 30, rng)
        cube = SparseCube((20, 20, 20), cells)
        engine = SparseRangeSumEngine(cube, block_size=2)
        for _ in range(40):
            box = random_box((20, 20, 20), rng)
            assert engine.range_sum(box) == cube.naive_range_sum(box)

    def test_pure_noise_cube(self, rng):
        cells = {
            (int(rng.integers(0, 50)), int(rng.integers(0, 50))): 1
            for _ in range(25)
        }
        cube = SparseCube((50, 50), cells)
        engine = SparseRangeSumEngine(cube)
        for _ in range(30):
            box = random_box((50, 50), rng)
            assert engine.range_sum(box) == cube.naive_range_sum(box)

    def test_dimension_mismatch(self, clustered_cube):
        engine = SparseRangeSumEngine(clustered_cube)
        with pytest.raises(ValueError):
            engine.range_sum(Box((0,), (5,)))


class TestSparse1DBlocked:
    """§10.1's 'similar solution applies to b > 1'."""

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=500),
            st.integers(min_value=1, max_value=50),
            max_size=60,
        ),
        st.integers(min_value=2, max_value=32),
        st.integers(min_value=0, max_value=499),
        st.integers(min_value=0, max_value=499),
    )
    @settings(max_examples=60, deadline=None)
    def test_blocked_matches_oracle(self, cells, block, a, b):
        lo, hi = min(a, b), max(a, b)
        cube = SparseCube((501,), {(k,): v for k, v in cells.items()})
        engine = SparseRangeSum1D(cube, block_size=block)
        box = Box((lo,), (hi,))
        assert engine.range_sum(box) == cube.naive_range_sum(box)

    def test_blocked_stores_fewer_cumulative_entries(self, rng):
        cells = {
            (int(k),): int(v)
            for k, v in zip(
                rng.choice(10_000, 800, replace=False),
                rng.integers(1, 50, 800),
            )
        }
        cube = SparseCube((10_000,), cells)
        basic = SparseRangeSum1D(cube, block_size=1)
        blocked = SparseRangeSum1D(cube, block_size=64)
        assert blocked.stored_entries < basic.stored_entries

    def test_blocked_agrees_with_basic(self, rng):
        cells = {
            (int(k),): int(v)
            for k, v in zip(
                rng.choice(2000, 300, replace=False),
                rng.integers(1, 100, 300),
            )
        }
        cube = SparseCube((2000,), cells)
        basic = SparseRangeSum1D(cube, block_size=1)
        blocked = SparseRangeSum1D(cube, block_size=16)
        for _ in range(60):
            box = random_box((2000,), rng)
            assert basic.range_sum(box) == blocked.range_sum(box)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            SparseRangeSum1D(SparseCube((10,), {}), block_size=0)

    def test_empty_blocked_cube(self):
        engine = SparseRangeSum1D(SparseCube((100,), {}), block_size=8)
        assert engine.range_sum(Box((0,), (99,))) == 0


class TestIncrementalUpdates:
    """§5 meets §10.2: absorbing point updates without a rebuild."""

    @pytest.fixture
    def engine_and_cube(self, rng):
        boxes = [Box((4, 4), (19, 19)), Box((34, 30), (53, 49))]
        cells = clustered_points((64, 64), boxes, 0.85, 40, rng)
        cube = SparseCube((64, 64), cells)
        return SparseRangeSumEngine(cube, block_size=4), cube

    def test_update_routing(self, engine_and_cube):
        engine, cube = engine_and_cube
        region_box = engine.regions[0].box
        inside = region_box.lo
        assert engine.apply_update(inside, 5) == "region"
        fresh = (63, 0)
        while fresh in cube.cells:
            fresh = (fresh[0], fresh[1] + 1)
        assert engine.apply_update(fresh, 3) == "new-outlier"
        assert engine.apply_update(fresh, 2) == "outlier"

    def test_queries_stay_exact_under_update_storm(
        self, engine_and_cube, rng
    ):
        engine, cube = engine_and_cube
        for _ in range(60):
            point = (
                int(rng.integers(0, 64)),
                int(rng.integers(0, 64)),
            )
            engine.apply_update(point, int(rng.integers(-5, 15)))
        for _ in range(60):
            box = random_box((64, 64), rng)
            assert engine.range_sum(box) == cube.naive_range_sum(box)

    def test_out_of_bounds_update_rejected(self, engine_and_cube):
        engine, _ = engine_and_cube
        with pytest.raises(ValueError):
            engine.apply_update((64, 0), 1)
