"""Streamed builds ≡ in-memory builds, plus failure atomicity.

The tentpole invariant: one streaming pass over a record stream must
produce *bit-identical* structures to densifying first and building in
memory — for every registered dense structure, on both array backends.
Integer measures make bit-identity exact (scatter order cannot change
integer sums).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.index.backend import MemmapBackend, MemoryBackend
from repro.index.registry import available_indexes, create_index
from repro.ingest import (
    IngestError,
    IngestPlan,
    batches_from_cube,
    batches_from_records,
    in_memory_reference,
    ingest,
    ingest_per_scan,
    plan_cuboids,
)
from repro.optimizer.materialize import MaterializedCuboidSet
from repro.query.ranges import RangeQuery, RangeSpec

SHAPE = (13, 9, 5)
#: Every registered *dense* structure (sparse ones take coordinate
#: lists, not cubes, and have their own ingestion story).
DENSE = tuple(
    name for name in available_indexes() if not name.startswith("sparse")
)


def params_for(name: str, ndim: int) -> dict:
    return {
        "prefix_sum": {},
        "blocked_prefix_sum": {"block_size": 4},
        "partial_prefix_sum": {"prefix_dims": tuple(range(0, ndim, 2))},
        "blocked_partial_prefix_sum": {
            "prefix_dims": (0,),
            "block_size": 4,
        },
        "range_max_tree": {"fanout": 3},
    }[name]


@pytest.fixture
def rng():
    return np.random.default_rng(0xF00D)


@pytest.fixture
def cube(rng):
    return rng.integers(0, 100, size=SHAPE).astype(np.int64)


def make_backend(kind: str, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    return MemmapBackend(tmp_path / "spill")


def streamed_base(cube, backend) -> np.ndarray:
    plan = IngestPlan(shape=cube.shape, measure_dtype=str(cube.dtype))
    result = ingest(batches_from_cube(cube, batch_rows=97), plan, backend)
    return result.cuboid_set.base


class TestStreamedEqualsInMemory:
    @pytest.mark.parametrize("name", DENSE)
    @pytest.mark.parametrize("backend_kind", ["memory", "memmap"])
    def test_every_dense_structure_bit_identical(
        self, name, backend_kind, cube, tmp_path
    ):
        """Registry-parametrized: structure built over the streamed base
        equals the one built over the dense cube, array for array."""
        backend = make_backend(backend_kind, tmp_path)
        base = streamed_base(cube, backend)
        assert np.array_equal(np.asarray(base), cube)
        params = params_for(name, cube.ndim)
        reference = create_index(name, cube, **params)
        streamed = create_index(name, np.asarray(base), **params)
        for key, value in reference.state_dict().items():
            if isinstance(value, np.ndarray):
                got = streamed.state_dict()[key]
                assert value.dtype == got.dtype, key
                assert np.array_equal(value, np.asarray(got)), key

    @pytest.mark.parametrize("backend_kind", ["memory", "memmap"])
    def test_cuboid_set_bit_identical(self, backend_kind, cube, tmp_path):
        """One-pass multi-cuboid accumulation vs base.sum(axis=...)."""
        keys = [(0,), (0, 1), (1, 2), (0, 1, 2)]
        plan = IngestPlan(
            shape=cube.shape, cuboids=plan_cuboids(cube.shape, keys, 4)
        )
        backend = make_backend(backend_kind, tmp_path)
        result = ingest(
            batches_from_cube(cube, batch_rows=101), plan, backend
        )
        reference = MaterializedCuboidSet(cube, plan.cuboids)
        assert result.rows == cube.size
        for got, want in zip(result.cuboid_set.cuboids, reference.cuboids):
            assert got.key == want.key
            for key, value in want.structure.state_dict().items():
                if isinstance(value, np.ndarray):
                    mine = got.structure.state_dict()[key]
                    assert value.dtype == mine.dtype, (got.key, key)
                    assert np.array_equal(value, np.asarray(mine)), (
                        got.key,
                        key,
                    )

    def test_query_answers_match(self, cube, tmp_path):
        keys = [(0, 1), (2,)]
        plan = IngestPlan(
            shape=cube.shape,
            cuboids=plan_cuboids(cube.shape, keys, 4),
            budget_bytes=1,  # force a spill
            spill_directory=tmp_path / "spill",
        )
        result = ingest(batches_from_cube(cube, batch_rows=64), plan)
        assert result.spilled
        reference = in_memory_reference(batches_from_cube(cube), plan)
        query = RangeQuery(
            (
                RangeSpec.between(2, 11),
                RangeSpec.all(),
                RangeSpec.between(1, 3),
            )
        )
        assert result.cuboid_set.range_sum(query) == reference.range_sum(
            query
        )

    def test_per_scan_baseline_equivalent(self, cube, tmp_path):
        plan = IngestPlan(
            shape=cube.shape,
            cuboids=plan_cuboids(cube.shape, [(0, 1), (1,)], 4),
        )
        one_pass = ingest(batches_from_cube(cube, batch_rows=50), plan)
        per_scan = ingest_per_scan(
            lambda: batches_from_cube(cube, batch_rows=50), plan
        )
        assert per_scan.rows == one_pass.rows
        np.testing.assert_array_equal(
            np.asarray(per_scan.cuboid_set.base),
            np.asarray(one_pass.cuboid_set.base),
        )
        for a, b in zip(
            per_scan.cuboid_set.cuboids, one_pass.cuboid_set.cuboids
        ):
            np.testing.assert_array_equal(
                np.asarray(a.structure.source),
                np.asarray(b.structure.source),
            )

    def test_duplicate_records_accumulate(self):
        coords = np.array([[1, 1], [1, 1], [0, 2]], dtype=np.int64)
        values = np.array([5, 7, 2], dtype=np.int64)
        plan = IngestPlan(shape=(3, 3))
        result = ingest(batches_from_records(coords, values), plan)
        base = np.asarray(result.cuboid_set.base)
        assert base[1, 1] == 12
        assert base[0, 2] == 2


class TestBudgetAndSpill:
    def test_over_budget_spills(self, cube, tmp_path):
        plan = IngestPlan(
            shape=cube.shape,
            budget_bytes=8,
            spill_directory=tmp_path / "spill",
        )
        assert plan.spills
        result = ingest(batches_from_cube(cube), plan)
        assert result.spilled
        assert isinstance(result.backend, MemmapBackend)
        assert isinstance(result.base_backend, MemmapBackend)
        assert result.base_backend.live_arrays == 1  # the base accumulator
        assert result.backend.live_arrays == 0  # scopes hold everything

    def test_under_budget_stays_in_memory(self, cube):
        plan = IngestPlan(
            shape=cube.shape, budget_bytes=cube.nbytes + 1
        )
        assert not plan.spills
        result = ingest(batches_from_cube(cube), plan)
        assert not result.spilled

    def test_spill_without_directory_is_an_error(self, cube):
        plan = IngestPlan(shape=cube.shape, budget_bytes=1)
        with pytest.raises(ValueError, match="no spill_directory"):
            plan.make_backend()

    def test_release_reclaims_everything(self, cube, tmp_path):
        plan = IngestPlan(
            shape=cube.shape,
            cuboids=plan_cuboids(cube.shape, [(0, 1), (2,)], 4),
            budget_bytes=1,
            spill_directory=tmp_path / "spill",
        )
        result = ingest(batches_from_cube(cube), plan)
        assert result.release() > 0
        assert not list((tmp_path / "spill").rglob("*.npy"))


class TestFailureAtomicity:
    def bad_stream(self, cube):
        """A stream whose second batch is out of the cube's bounds."""
        yield next(batches_from_cube(cube, batch_rows=50))
        yield next(
            batches_from_records(
                np.array([[99, 99, 99]], dtype=np.int64),
                np.ones(1, dtype=np.int64),
            )
        )

    def test_malformed_batch_leaves_no_partial_spill_files(
        self, cube, tmp_path
    ):
        spill = tmp_path / "spill"
        plan = IngestPlan(
            shape=cube.shape,
            cuboids=plan_cuboids(cube.shape, [(0, 1)], 4),
            budget_bytes=1,
            spill_directory=spill,
        )
        with pytest.raises(IngestError, match="outside cube shape"):
            ingest(self.bad_stream(cube), plan)
        assert not list(spill.rglob("*.npy"))

    def test_source_error_mid_stream_cleans_up(self, cube, tmp_path):
        def dying_stream():
            yield next(batches_from_cube(cube, batch_rows=50))
            raise OSError("disk went away")

        spill = tmp_path / "spill"
        plan = IngestPlan(
            shape=cube.shape, budget_bytes=1, spill_directory=spill
        )
        with pytest.raises(OSError, match="disk went away"):
            ingest(dying_stream(), plan)
        assert not list(spill.rglob("*.npy"))

    def test_abort_spares_sibling_arrays_on_shared_backend(
        self, cube, tmp_path
    ):
        """An aborted ingest on a caller-provided backend releases only
        its own scopes — never sibling builds' live spill files."""
        backend = MemmapBackend(tmp_path / "spill")
        sibling = backend.empty("sibling", (4,), np.int64)
        sibling[...] = 7
        plan = IngestPlan(
            shape=cube.shape,
            cuboids=plan_cuboids(cube.shape, [(0, 1)], 4),
        )
        with pytest.raises(IngestError, match="outside cube shape"):
            ingest(self.bad_stream(cube), plan, backend)
        assert backend.live_arrays == 1
        survivor = backend.spill_files[0]
        assert survivor.exists()
        assert np.array_equal(np.load(survivor), sibling)
        leftovers = [
            p
            for p in (tmp_path / "spill").rglob("*.npy")
            if p != survivor
        ]
        assert not leftovers

    def test_per_scan_abort_spares_sibling_arrays(self, cube, tmp_path):
        backend = MemmapBackend(tmp_path / "spill")
        sibling = backend.empty("sibling", (4,), np.int64)
        sibling[...] = 3
        plan = IngestPlan(
            shape=cube.shape,
            cuboids=plan_cuboids(cube.shape, [(0, 1)], 4),
        )
        with pytest.raises(IngestError, match="outside cube shape"):
            ingest_per_scan(lambda: self.bad_stream(cube), plan, backend)
        assert backend.live_arrays == 1
        assert np.array_equal(np.load(backend.spill_files[0]), sibling)

    def test_dimension_mismatch(self):
        plan = IngestPlan(shape=(4, 4))
        stream = batches_from_records(
            np.zeros((2, 3), dtype=np.int64), np.ones(2, dtype=np.int64)
        )
        with pytest.raises(IngestError, match="3-d coordinates"):
            ingest(stream, plan)


class TestPlanValidation:
    def test_rejects_empty_cuboid(self):
        from repro.optimizer.cuboid_selection import Materialization

        with pytest.raises(ValueError, match="empty cuboid"):
            IngestPlan(shape=(4, 4), cuboids=(Materialization((), 2, 1.0),))

    def test_rejects_out_of_range_cuboid(self):
        with pytest.raises(ValueError, match="exceeds"):
            IngestPlan(
                shape=(4, 4), cuboids=plan_cuboids((4, 4, 4), [(0, 2)])
            )

    def test_rejects_bad_dtype(self):
        with pytest.raises(ValueError, match="integer or float"):
            IngestPlan(shape=(4,), measure_dtype="complex128")

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="positive extents"):
            IngestPlan(shape=(4, 0))

    def test_accumulator_bytes_counts_every_accumulator(self):
        plan = IngestPlan(
            shape=(8, 8),
            cuboids=plan_cuboids((8, 8), [(0,)], 4),
            measure_dtype="int32",
        )
        # base: 64 cells * 4B; cuboid (0,): 8 cells * 8B (sum-promoted)
        assert plan.accumulator_bytes() == 64 * 4 + 8 * 8

    def test_full_key_cuboid_keeps_measure_dtype(self, rng):
        """The (0, 1)-cuboid of a 2-d int32 cube IS the base cube, so it
        must accumulate in int32 — MaterializedCuboidSet uses the base
        itself when nothing is dropped, and dtypes must agree."""
        cube = rng.integers(0, 50, size=(6, 4)).astype(np.int32)
        plan = IngestPlan(
            shape=cube.shape,
            cuboids=plan_cuboids(cube.shape, [(0, 1)], 2),
            measure_dtype="int32",
        )
        result = ingest(batches_from_cube(cube), plan)
        reference = MaterializedCuboidSet(cube, plan.cuboids)
        got = result.cuboid_set.cuboids[0].structure.source
        want = reference.cuboids[0].structure.source
        assert np.asarray(got).dtype == np.asarray(want).dtype
        assert np.array_equal(np.asarray(got), np.asarray(want))
