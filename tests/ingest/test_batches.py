"""Batch-source behaviour: CSV parsing, column mapping, soft pyarrow."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.ingest import (
    ENV_DISABLE_PYARROW,
    IngestError,
    RecordBatch,
    batches_from_cube,
    batches_from_records,
    infer_shape,
    iter_arrow_batches,
    iter_csv_batches,
    iter_parquet_batches,
    open_batches,
    pyarrow_available,
)


@pytest.fixture
def facts_csv(tmp_path):
    path = tmp_path / "facts.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["store", "day", "sales"])
        writer.writerows([[0, 0, 5], [1, 2, 7], [0, 0, 3], [2, 1, 1]])
    return path


class TestRecordBatch:
    def test_validates_shapes(self):
        with pytest.raises(IngestError, match="2-D"):
            RecordBatch(np.zeros(3, dtype=np.int64), np.zeros(3))
        with pytest.raises(IngestError, match="1-D"):
            RecordBatch(
                np.zeros((3, 2), dtype=np.int64), np.zeros((3, 1))
            )
        with pytest.raises(IngestError, match="3 coordinate rows"):
            RecordBatch(np.zeros((3, 2), dtype=np.int64), np.zeros(2))

    def test_rows(self):
        batch = RecordBatch(np.zeros((4, 2), dtype=np.int64), np.ones(4))
        assert batch.rows == 4


class TestInMemorySources:
    def test_batches_from_records_slices(self):
        coords = np.arange(10, dtype=np.int64).reshape(5, 2)
        values = np.arange(5)
        batches = list(batches_from_records(coords, values, batch_rows=2))
        assert [b.rows for b in batches] == [2, 2, 1]
        assert np.array_equal(
            np.concatenate([b.values for b in batches]), values
        )

    def test_batches_from_cube_roundtrip(self):
        cube = np.arange(24, dtype=np.int64).reshape(2, 3, 4)
        rebuilt = np.zeros_like(cube)
        for batch in batches_from_cube(cube, batch_rows=7):
            np.add.at(rebuilt, tuple(batch.coords.T), batch.values)
        assert np.array_equal(rebuilt, cube)

    def test_bad_batch_rows(self):
        with pytest.raises(IngestError, match="batch_rows"):
            list(batches_from_records(np.zeros((1, 1)), np.zeros(1), 0))


class TestCsvSource:
    def test_reads_headered_csv(self, facts_csv):
        batches = list(iter_csv_batches(facts_csv))
        assert sum(b.rows for b in batches) == 4
        coords = np.concatenate([b.coords for b in batches])
        values = np.concatenate([b.values for b in batches])
        assert np.array_equal(coords[1], [1, 2])
        assert values.tolist() == [5, 7, 3, 1]

    def test_column_selection(self, facts_csv):
        (batch,) = iter_csv_batches(
            facts_csv, dims=["day", "store"], measure="sales"
        )
        # dims order defines cube-dimension order
        assert np.array_equal(batch.coords[1], [2, 1])

    def test_unknown_measure_column(self, facts_csv):
        with pytest.raises(IngestError, match="measure column"):
            list(iter_csv_batches(facts_csv, measure="revenue"))

    def test_unknown_dimension_column(self, facts_csv):
        with pytest.raises(IngestError, match="dimension column"):
            list(iter_csv_batches(facts_csv, dims=["warehouse"]))

    def test_ragged_row_names_line(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b,v\n1,2,3\n4,5\n")
        with pytest.raises(IngestError, match=r":3: expected 3 fields"):
            list(iter_csv_batches(path))

    def test_non_integer_coordinate(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,v\nx,2,3\n")
        with pytest.raises(IngestError, match="non-integer coordinate"):
            list(iter_csv_batches(path))

    def test_unparseable_measure(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,v\n1,2,3.5\n")
        with pytest.raises(IngestError, match="does not parse as int64"):
            list(iter_csv_batches(path, dtype=np.int64))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(IngestError, match="empty file"):
            list(iter_csv_batches(path))

    def test_batching_respects_batch_rows(self, facts_csv):
        batches = list(iter_csv_batches(facts_csv, batch_rows=3))
        assert [b.rows for b in batches] == [3, 1]


class TestOpenBatches:
    def test_suffix_dispatch_csv(self, facts_csv):
        batches = list(open_batches(facts_csv))
        assert sum(b.rows for b in batches) == 4

    def test_unknown_format(self, facts_csv):
        with pytest.raises(IngestError, match="unknown format"):
            open_batches(facts_csv, fmt="xml")

    def test_infer_shape(self, facts_csv):
        assert infer_shape(open_batches(facts_csv)) == (3, 3)

    def test_infer_shape_empty_stream(self):
        with pytest.raises(IngestError, match="empty stream"):
            infer_shape(iter(()))

    def test_infer_shape_negative_coordinate(self):
        batch = RecordBatch(
            np.array([[-1, 0]], dtype=np.int64), np.ones(1)
        )
        with pytest.raises(IngestError, match="negative"):
            infer_shape(iter([batch]))


class TestPyarrowGate:
    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv(ENV_DISABLE_PYARROW, "1")
        assert not pyarrow_available()

    def test_arrow_without_pyarrow_is_clean_error(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(ENV_DISABLE_PYARROW, "1")
        path = tmp_path / "t.arrow"
        path.write_bytes(b"")
        with pytest.raises(IngestError, match="requires pyarrow"):
            list(iter_arrow_batches(path))
        with pytest.raises(IngestError, match="requires pyarrow"):
            list(iter_parquet_batches(tmp_path / "t.parquet"))

    @pytest.mark.skipif(
        not pyarrow_available(), reason="pyarrow not installed"
    )
    def test_parquet_roundtrip(self, tmp_path):
        import pyarrow as pa
        import pyarrow.parquet as pq

        table = pa.table(
            {
                "a": pa.array([0, 1, 2], type=pa.int64()),
                "b": pa.array([1, 0, 1], type=pa.int64()),
                "v": pa.array([10, 20, 30], type=pa.int64()),
            }
        )
        path = tmp_path / "t.parquet"
        pq.write_table(table, path)
        (batch,) = open_batches(path)
        assert np.array_equal(batch.coords[:, 0], [0, 1, 2])
        assert batch.values.tolist() == [10, 20, 30]

    @pytest.mark.skipif(
        not pyarrow_available(), reason="pyarrow not installed"
    )
    def test_arrow_ipc_roundtrip(self, tmp_path):
        import pyarrow as pa

        table = pa.table(
            {
                "a": pa.array([3, 1], type=pa.int64()),
                "v": pa.array([7, 9], type=pa.int64()),
            }
        )
        path = tmp_path / "t.arrow"
        with pa.OSFile(str(path), "wb") as sink:
            with pa.ipc.new_file(sink, table.schema) as writer:
                writer.write_table(table)
        (batch,) = open_batches(path)
        assert batch.coords[:, 0].tolist() == [3, 1]
        assert batch.values.tolist() == [7, 9]
