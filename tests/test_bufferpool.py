"""Tests for the simulated LRU buffer pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.instrumentation.bufferpool import BufferPool
from repro.instrumentation.paging import pages_for_box


@pytest.fixture
def rng():
    return np.random.default_rng(271)


class TestLRU:
    def test_hit_after_fault(self):
        pool = BufferPool(page_size=4, capacity=2)
        assert pool.touch_cell(0) is True
        assert pool.touch_cell(3) is False  # same page
        assert pool.faults == 1 and pool.hits == 1

    def test_eviction_order_is_lru(self):
        pool = BufferPool(page_size=1, capacity=2)
        pool.touch_page(1)
        pool.touch_page(2)
        pool.touch_page(1)  # refresh page 1
        pool.touch_page(3)  # evicts page 2 (least recent)
        assert pool.touch_page(1) is False
        assert pool.touch_page(2) is True

    def test_capacity_respected(self):
        pool = BufferPool(page_size=1, capacity=3)
        for page in range(10):
            pool.touch_page(page)
        assert pool.resident_pages == 3

    def test_unbounded_pool_never_refaults(self):
        pool = BufferPool(page_size=1)
        for page in [5, 6, 5, 6, 5]:
            pool.touch_page(page)
        assert pool.faults == 2 and pool.hits == 3

    def test_reset(self):
        pool = BufferPool(page_size=1, capacity=2)
        pool.touch_page(0)
        pool.reset()
        assert pool.faults == 0 and pool.resident_pages == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferPool(page_size=0)
        with pytest.raises(ValueError):
            BufferPool(page_size=4, capacity=0)


class TestAccessPatterns:
    def test_cold_scan_faults_equal_distinct_pages(self, rng):
        shape = (20, 30)
        for _ in range(30):
            lo = tuple(int(rng.integers(0, n)) for n in shape)
            hi = tuple(
                int(rng.integers(l, n)) for l, n in zip(lo, shape)
            )
            box = Box(lo, hi)
            pool = BufferPool(page_size=7)
            faults = pool.scan_box(box, shape)
            assert faults == pages_for_box(box, shape, 7)

    def test_warm_rescan_is_free_with_enough_buffer(self):
        shape = (16, 16)
        box = Box((2, 2), (13, 13))
        pool = BufferPool(page_size=8, capacity=64)
        first = pool.scan_box(box, shape)
        second = pool.scan_box(box, shape)
        assert first > 0 and second == 0

    def test_tiny_buffer_thrashes_on_column_order(self):
        """Touching cells down a column of a row-major array with a
        one-page buffer faults on every access — §3.3's bad schedule."""
        shape = (64, 64)
        pool = BufferPool(page_size=64, capacity=1)
        for row in range(64):
            pool.touch_index((row, 0), shape)
        assert pool.faults == 64

    def test_theorem1_constant_faults(self, rng):
        shape = (100, 100)
        pool = BufferPool(page_size=128, capacity=4)
        worst = 0
        for _ in range(50):
            lo = tuple(int(rng.integers(0, n)) for n in shape)
            hi = tuple(
                int(rng.integers(l, n)) for l, n in zip(lo, shape)
            )
            pool.reset()
            worst = max(
                worst, pool.theorem1_corners(Box(lo, hi), shape)
            )
        assert worst <= 4  # ≤ 2^d pages, any query volume

    def test_empty_box_scan(self):
        pool = BufferPool(page_size=4)
        assert pool.scan_box(Box((2,), (1,)), (10,)) == 0
