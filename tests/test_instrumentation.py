"""Tests for the access-count instrumentation."""

from __future__ import annotations

from repro.instrumentation import NULL_COUNTER, AccessCounter


class TestAccessCounter:
    def test_counts_accumulate(self):
        counter = AccessCounter()
        counter.count_cube(3)
        counter.count_prefix()
        counter.count_tree(2)
        counter.count_index(4)
        assert counter.cube_cells == 3
        assert counter.prefix_cells == 1
        assert counter.tree_nodes == 2
        assert counter.index_nodes == 4
        assert counter.total == 10

    def test_reset(self):
        counter = AccessCounter()
        counter.count_cube(5)
        counter.reset()
        assert counter.total == 0

    def test_snapshot(self):
        counter = AccessCounter()
        counter.count_prefix(2)
        snap = counter.snapshot()
        assert snap == {
            "cube_cells": 0,
            "prefix_cells": 2,
            "tree_nodes": 0,
            "index_nodes": 0,
            "total": 2,
        }
        counter.count_prefix()
        assert snap["prefix_cells"] == 2  # snapshots are detached

    def test_disabled_counter(self):
        counter = AccessCounter(enabled=False)
        counter.count_cube(100)
        assert counter.total == 0


class TestNullCounter:
    def test_ignores_everything(self):
        NULL_COUNTER.count_cube(10)
        NULL_COUNTER.count_prefix(10)
        NULL_COUNTER.count_tree(10)
        NULL_COUNTER.count_index(10)
        assert NULL_COUNTER.total == 0
