"""Exhaustive validation of the §9.2 selector against brute force.

The greedy-plus-fine-tuning algorithm of Figure 13 is a heuristic for an
NP-complete problem, so these tests pick instances small enough to
enumerate *every* feasible ``(cuboid, block size)`` assignment (d ≤ 3,
a handful of candidate cuboids, single-digit block caps) and assert the
selector's final plan cost equals the enumerated optimum — including
under the Theorem-2 update-cost term and from arbitrary warm starts.
"""

from __future__ import annotations

import itertools

import pytest

from repro.optimizer import (
    CuboidSelector,
    Materialization,
    materialization_space,
    workloads_from_log,
)
from repro.query.ranges import RangeQuery, RangeSpec


def brute_force_optimum(selector: CuboidSelector) -> float:
    """Enumerate every feasible solution; return the minimum total cost."""
    options: list[list[Materialization | None]] = []
    for key in selector.universe:
        cells = selector.cuboid_cells(key)
        choices: list[Materialization | None] = [None]
        for block in range(1, selector.max_block + 1):
            space = materialization_space(cells, len(key), block)
            if space <= selector.space_limit:
                choices.append(Materialization(key, block, space))
        options.append(choices)
    best = selector.total_cost([])
    combos = 0
    for combo in itertools.product(*options):
        solution = [m for m in combo if m is not None]
        if sum(m.space for m in solution) > selector.space_limit:
            continue
        combos += 1
        best = min(best, selector.total_cost(solution))
    assert combos > 1, "instance too constrained to exercise anything"
    return best


def rq(specs: list[tuple[int, int] | None], ndim: int) -> RangeQuery:
    out = []
    for dim in range(ndim):
        spec = specs[dim]
        if spec is None:
            out.append(RangeSpec.all())
        else:
            out.append(RangeSpec.between(spec[0], spec[1]))
    return RangeQuery(tuple(out))


CASES = [
    pytest.param(
        (8, 6),
        [([(0, 5)], 12), ([(1, 4), (0, 3)], 6)],
        60.0,
        4,
        0.0,
        1.0,
        id="d2-two-cuboids",
    ),
    pytest.param(
        (8, 6),
        [([(0, 7)], 20)],
        10.0,
        4,
        0.0,
        1.0,
        id="d2-tight-budget",
    ),
    pytest.param(
        (6, 4, 4),
        [([(0, 4), (0, 2)], 15), ([(1, 3), None, (0, 2)], 5)],
        100.0,
        3,
        0.0,
        1.0,
        id="d3-two-cuboids",
    ),
    pytest.param(
        (6, 4, 4),
        [([(0, 4), (0, 2)], 15)],
        100.0,
        3,
        8.0,
        1.0,
        id="d3-update-heavy",
    ),
    pytest.param(
        (6, 4, 4),
        [([(0, 4), (0, 2)], 15), ([(1, 3), None, (0, 2)], 5)],
        100.0,
        3,
        3.0,
        16.0,
        id="d3-batched-updates",
    ),
    pytest.param(
        (5, 5, 5),
        [
            ([(0, 3), (1, 4)], 9),
            ([None, (0, 3), (0, 3)], 9),
            ([(1, 3), None, None], 4),
        ],
        80.0,
        3,
        1.0,
        4.0,
        id="d3-three-cuboids",
    ),
]


def build_selector(
    shape, specs_and_counts, budget, max_block, update_weight, update_batch
) -> CuboidSelector:
    queries: list[RangeQuery] = []
    for specs, count in specs_and_counts:
        padded = list(specs) + [None] * (len(shape) - len(specs))
        queries.extend([rq(padded, len(shape))] * count)
    return CuboidSelector(
        shape,
        workloads_from_log(queries, shape),
        budget,
        max_block=max_block,
        update_weight=update_weight,
        update_batch=update_batch,
    )


class TestSelectorMatchesBruteForce:
    @pytest.mark.parametrize(
        "shape,workload,budget,max_block,update_weight,update_batch",
        CASES,
    )
    def test_solve_reaches_the_enumerated_optimum(
        self, shape, workload, budget, max_block, update_weight, update_batch
    ) -> None:
        selector = build_selector(
            shape, workload, budget, max_block, update_weight, update_batch
        )
        optimum = brute_force_optimum(selector)
        result = selector.solve()
        assert result.final_cost == pytest.approx(optimum)
        assert result.total_space <= selector.space_limit + 1e-9

    @pytest.mark.parametrize(
        "shape,workload,budget,max_block,update_weight,update_batch",
        CASES,
    )
    def test_warm_start_cannot_worsen_the_result(
        self, shape, workload, budget, max_block, update_weight, update_batch
    ) -> None:
        selector = build_selector(
            shape, workload, budget, max_block, update_weight, update_batch
        )
        optimum = brute_force_optimum(selector)
        # Seed with a deliberately bad incumbent: the largest cuboid at
        # the coarsest block (low benefit, real maintenance).
        worst_key = max(selector.universe, key=len)
        cells = selector.cuboid_cells(worst_key)
        seed = Materialization(
            worst_key,
            max_block,
            materialization_space(cells, len(worst_key), max_block),
        )
        result = selector.solve(initial=[seed])
        assert result.final_cost == pytest.approx(optimum)

    def test_update_weight_changes_the_argmin(self) -> None:
        """The Theorem-2 term is live: churn flips the chosen plan."""
        quiet = build_selector(
            (6, 4, 4), [([(0, 4), (0, 2)], 15)], 100.0, 3, 0.0, 1.0
        )
        churny = build_selector(
            (6, 4, 4), [([(0, 4), (0, 2)], 15)], 100.0, 3, 50.0, 1.0
        )
        quiet_plan = quiet.solve().chosen
        churny_plan = churny.solve().chosen
        assert quiet_plan  # the quiet instance materializes something
        assert churny_plan != quiet_plan
        # And both still match their own brute-force optima.
        assert quiet.solve().final_cost == pytest.approx(
            brute_force_optimum(quiet)
        )
        assert churny.solve().final_cost == pytest.approx(
            brute_force_optimum(churny)
        )
