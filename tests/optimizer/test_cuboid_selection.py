"""Tests for the §9.2 greedy cuboid selector (Figure 13)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optimizer.cuboid_selection import (
    CuboidSelector,
    CuboidWorkload,
    workloads_from_log,
)
from repro.query.ranges import RangeQuery, RangeSpec
from repro.query.stats import QueryStatistics
from repro.query.workload import WorkloadProfile, generate_query_log


@pytest.fixture
def rng():
    return np.random.default_rng(113)


def simple_workloads():
    return [
        CuboidWorkload(
            (0, 1), QueryStatistics.from_lengths([40, 40]), 100
        ),
        CuboidWorkload((0,), QueryStatistics.from_lengths([60]), 50),
    ]


class TestWorkloadBucketing:
    def test_assignment_rule(self):
        """Queries bucket by the dimensions they constrain (§9)."""
        shape = (100, 50, 20)
        queries = [
            RangeQuery(
                (
                    RangeSpec.between(0, 9),
                    RangeSpec.between(5, 14),
                    RangeSpec.all(),
                )
            ),
            RangeQuery(
                (
                    RangeSpec.between(0, 19),
                    RangeSpec.all(),
                    RangeSpec.all(),
                )
            ),
            RangeQuery(
                (RangeSpec.all(), RangeSpec.all(), RangeSpec.at(3))
            ),
        ]
        workloads = workloads_from_log(queries, shape)
        keys = {w.key: w for w in workloads}
        assert set(keys) == {(0, 1), (0,), (2,)}
        assert keys[(0, 1)].stats.lengths == (10.0, 10.0)
        assert keys[(2,)].stats.lengths == (1.0,)

    def test_all_all_queries_dropped(self):
        queries = [RangeQuery.full(2)]
        assert workloads_from_log(queries, (10, 10)) == []

    def test_averaging_within_bucket(self):
        shape = (100,)
        queries = [
            RangeQuery((RangeSpec.between(0, 9),)),
            RangeQuery((RangeSpec.between(0, 29),)),
        ]
        workloads = workloads_from_log(queries, shape)
        assert workloads[0].stats.lengths == (20.0,)
        assert workloads[0].query_count == 2


class TestSelector:
    def test_budget_respected(self):
        selector = CuboidSelector(
            (100, 100), simple_workloads(), space_limit=500
        )
        result = selector.solve()
        assert result.total_space <= 500

    def test_benefit_nonnegative(self):
        selector = CuboidSelector(
            (100, 100), simple_workloads(), space_limit=20000
        )
        result = selector.solve()
        assert result.benefit >= 0
        assert result.final_cost <= result.baseline_cost

    def test_large_budget_materializes_usefully(self):
        selector = CuboidSelector(
            (100, 100), simple_workloads(), space_limit=10**6
        )
        result = selector.solve()
        assert result.chosen, "a huge budget should pick something"
        # With unbounded space the base cuboid gets an unblocked prefix
        # sum: query cost collapses to 2^d per query.
        assert result.final_cost <= (
            100 * (4 + 1e-9) + 50 * (4 + 1e-9)
        )

    def test_zero_budget_chooses_nothing(self):
        selector = CuboidSelector(
            (100, 100), simple_workloads(), space_limit=0
        )
        result = selector.solve()
        assert result.chosen == ()
        assert result.final_cost == result.baseline_cost

    def test_ancestor_serves_descendant(self):
        """A prefix sum on (0, 1) must reduce the (0,) workload's cost."""
        workloads = [
            CuboidWorkload((0,), QueryStatistics.from_lengths([60]), 10)
        ]
        selector = CuboidSelector((100, 100), workloads, space_limit=10**9)
        from repro.optimizer.cuboid_selection import Materialization

        with_parent = selector.total_cost(
            [Materialization((0, 1), 1, 10**4)]
        )
        assert with_parent < selector.total_cost([])

    def test_fine_tune_never_worse(self, rng):
        shape = (60, 40, 20)
        profile = WorkloadProfile(
            range_probability=(0.7, 0.5, 0.2),
            singleton_probability=0.5,
            range_lengths=((5, 30), (4, 20), (2, 8)),
        )
        log = generate_query_log(shape, profile, 120, rng)
        workloads = workloads_from_log(log, shape)
        selector = CuboidSelector(shape, workloads, space_limit=5000)
        greedy_only = selector.solve(fine_tune=False)
        tuned = selector.solve(fine_tune=True)
        assert tuned.final_cost <= greedy_only.final_cost + 1e-9

    def test_universe_restricted_to_useful_ancestors(self):
        workloads = [
            CuboidWorkload((0,), QueryStatistics.from_lengths([30]), 5)
        ]
        selector = CuboidSelector((10, 10, 10), workloads, space_limit=100)
        assert (1, 2) not in selector.universe
        assert (0,) in selector.universe
        assert (0, 1) in selector.universe

    def test_cuboid_cells(self):
        selector = CuboidSelector((10, 20, 30), [], space_limit=0)
        assert selector.cuboid_cells((0, 2)) == 300
