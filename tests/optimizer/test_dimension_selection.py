"""Tests for §9.1 dimension selection (heuristic + exact Gray-code)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.dimension_selection import (
    active_range_lengths,
    brute_force_selection,
    exact_selection,
    figure12_example,
    heuristic_selection,
    subset_cost,
)
from repro.query.ranges import RangeQuery, RangeSpec


@st.composite
def length_matrices(draw):
    m = draw(st.integers(min_value=1, max_value=6))
    d = draw(st.integers(min_value=1, max_value=5))
    rows = []
    for _ in range(m):
        row = [
            draw(
                st.one_of(
                    st.just(1.0),
                    st.integers(min_value=2, max_value=60).map(float),
                )
            )
            for _ in range(d)
        ]
        rows.append(row)
    return np.array(rows)


class TestFigure12:
    def test_paper_example(self):
        lengths, sums, chosen = figure12_example()
        assert lengths.shape == (3, 5)
        assert list(sums) == [701.0, 601.0, 102.0, 5.0, 3.0]
        assert chosen == [0, 1, 2]  # the paper's X' = {1, 2, 3}, 1-based

    def test_threshold_is_2m(self):
        """R_j = 2m sits exactly on the inclusion boundary."""
        lengths = np.array([[6.0, 5.0], [1.0, 1.0], [1.0, 1.0]])
        chosen, sums = heuristic_selection(lengths)
        assert sums[0] == 8.0 and sums[1] == 7.0
        assert chosen == [0, 1]  # both >= 2m = 6
        lengths = np.array([[3.0, 2.0], [1.0, 1.0], [1.0, 1.0]])
        chosen, _ = heuristic_selection(lengths)
        assert chosen == []


class TestCostModel:
    def test_subset_cost_multiplicative(self):
        lengths = np.array([[10.0, 4.0]])
        assert subset_cost(lengths, []) == 40.0
        assert subset_cost(lengths, [0]) == 8.0
        assert subset_cost(lengths, [0, 1]) == 4.0

    def test_choosing_a_passive_dimension_hurts(self):
        """Prefix-summing a never-ranged attribute doubles each query."""
        lengths = np.ones((4, 1))
        assert subset_cost(lengths, [0]) == 8.0
        assert subset_cost(lengths, []) == 4.0


class TestExactSelection:
    @given(length_matrices())
    @settings(max_examples=80, deadline=None)
    def test_gray_walk_matches_brute_force(self, lengths):
        chosen_fast, cost_fast = exact_selection(lengths)
        _, cost_slow = brute_force_selection(lengths)
        assert cost_fast == pytest.approx(cost_slow, rel=1e-9)
        assert subset_cost(lengths, chosen_fast) == pytest.approx(
            cost_fast, rel=1e-9
        )

    def test_empty_log(self):
        chosen, cost = exact_selection(np.empty((0, 3)))
        assert chosen == [] and cost == 0.0

    def test_obvious_choice(self):
        lengths = np.array([[50.0, 1.0], [60.0, 1.0]])
        chosen, _ = exact_selection(lengths)
        assert chosen == [0]

    @given(length_matrices())
    @settings(max_examples=60, deadline=None)
    def test_heuristic_never_beats_exact(self, lengths):
        heuristic_chosen, _ = heuristic_selection(lengths)
        _, exact_cost = exact_selection(lengths)
        assert (
            subset_cost(lengths, heuristic_chosen) >= exact_cost - 1e-9
        )


class TestActiveRangeLengths:
    def test_matrix_from_queries(self):
        shape = (100, 10, 3)
        queries = [
            RangeQuery(
                (
                    RangeSpec.between(10, 29),
                    RangeSpec.at(3),
                    RangeSpec.all(),
                )
            ),
            RangeQuery(
                (
                    RangeSpec.all(),
                    RangeSpec.between(2, 5),
                    RangeSpec.between(0, 1),
                )
            ),
        ]
        matrix = active_range_lengths(queries, shape)
        assert matrix.tolist() == [[20, 1, 1], [1, 4, 2]]

    def test_full_domain_range_counts_passive(self):
        shape = (10,)
        queries = [RangeQuery((RangeSpec.between(0, 9),))]
        matrix = active_range_lengths(queries, shape)
        assert matrix.tolist() == [[1.0]]

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            active_range_lengths([RangeQuery.full(2)], (10,))
