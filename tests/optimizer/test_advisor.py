"""Tests for the §9 end-to-end physical-design advisor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instrumentation import AccessCounter
from repro.optimizer.advisor import advise
from repro.query.workload import (
    WorkloadProfile,
    generate_query_log,
    make_cube,
)

SHAPE = (60, 40, 10)


@pytest.fixture
def rng():
    return np.random.default_rng(251)


@pytest.fixture
def log(rng):
    profile = WorkloadProfile(
        range_probability=(0.85, 0.55, 0.05),
        singleton_probability=0.5,
        range_lengths=((6, 40), (4, 25), (2, 4)),
    )
    return generate_query_log(SHAPE, profile, 200, rng)


class TestAdvise:
    def test_diagnosis_flags_range_heavy_dims(self, log):
        design = advise(SHAPE, log, space_budget=5000)
        assert 0 in design.range_heavy_dims
        assert 2 not in design.range_heavy_dims
        assert len(design.column_sums) == 3
        assert design.query_count == 200

    def test_budget_respected(self, log):
        design = advise(SHAPE, log, space_budget=1500)
        assert design.selection.total_space <= 1500

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            advise(SHAPE, [], space_budget=100)

    def test_report_mentions_everything(self, log):
        design = advise(SHAPE, log, space_budget=5000)
        report = design.report(dim_names=["day", "store", "channel"])
        assert "day" in report and "store" in report
        assert "range-heavy" in report and "passive" in report
        assert "cost cut" in report
        for chosen in design.plan:
            assert f"b = {chosen.block_size}" in report

    def test_report_with_default_names(self, log):
        design = advise(SHAPE, log, space_budget=5000)
        assert "d0" in design.report()

    def test_zero_budget_report(self, log):
        design = advise(SHAPE, log, space_budget=0)
        assert "nothing pays off" in design.report()


class TestBuild:
    def test_build_serves_the_log(self, log, rng):
        cube = make_cube(SHAPE, rng, high=100)
        design = advise(SHAPE, log, space_budget=8000)
        served = design.build(cube)
        total_tuned = 0
        total_naive = 0
        for query in log[:80]:
            box = query.to_box(SHAPE)
            counter = AccessCounter()
            assert served.range_sum(query, counter) == int(
                cube[box.slices()].sum()
            )
            total_tuned += counter.total
            total_naive += box.volume
        assert total_tuned < total_naive

    def test_build_shape_mismatch(self, log, rng):
        design = advise(SHAPE, log, space_budget=8000)
        with pytest.raises(ValueError, match="shape"):
            design.build(make_cube((10, 10), rng))


class TestPrefixDimRestriction:
    """§9.1 applied per chosen cuboid (the paper's d3 narrative)."""

    def test_restriction_drops_range_light_dims(self, log):
        design = advise(
            SHAPE, log, space_budget=8000, restrict_prefix_dims=True
        )
        restricted = [
            m for m in design.plan if m.prefix_dims is not None
        ]
        # Dimension 2 is almost never ranged, so any chosen cuboid
        # containing it (plus a range-heavy dim) gets a restriction.
        for chosen in restricted:
            assert set(chosen.prefix_dims) < set(chosen.key)
            assert 2 not in chosen.prefix_dims
        assert any(
            2 in m.key for m in design.plan
        ), "workload should materialize something covering dim 2"

    def test_restricted_plan_builds_and_serves(self, log, rng):
        cube = make_cube(SHAPE, rng, high=100)
        design = advise(
            SHAPE, log, space_budget=8000, restrict_prefix_dims=True
        )
        served = design.build(cube)
        for query in log[:60]:
            box = query.to_box(SHAPE)
            assert served.range_sum(query) == int(
                cube[box.slices()].sum()
            )

    def test_unrestricted_by_default(self, log):
        design = advise(SHAPE, log, space_budget=8000)
        assert all(m.prefix_dims is None for m in design.plan)
