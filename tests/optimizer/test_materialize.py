"""Tests for the executed §9 plan (materialized cuboid prefix sums)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instrumentation import AccessCounter
from repro.optimizer.cuboid_selection import (
    CuboidSelector,
    Materialization,
    workloads_from_log,
)
from repro.optimizer.materialize import MaterializedCuboidSet
from repro.query.ranges import RangeQuery, RangeSpec
from repro.query.workload import (
    WorkloadProfile,
    generate_query_log,
    make_cube,
)

SHAPE = (40, 30, 8)


@pytest.fixture
def rng():
    return np.random.default_rng(173)


@pytest.fixture
def cube(rng):
    return make_cube(SHAPE, rng, high=100)


def brute_force(cube, query):
    return int(cube[query.to_box(cube.shape).slices()].sum())


class TestRouting:
    def test_query_routes_to_covering_cuboid(self, cube):
        plan = [Materialization((0, 1), 4, 0.0)]
        served = MaterializedCuboidSet(cube, plan)
        query = RangeQuery(
            (RangeSpec.between(5, 20), RangeSpec.at(7), RangeSpec.all())
        )
        routed = served.route(query)
        assert routed is not None and routed.key == (0, 1)

    def test_uncovered_query_falls_back(self, cube):
        plan = [Materialization((0, 1), 4, 0.0)]
        served = MaterializedCuboidSet(cube, plan)
        query = RangeQuery(
            (RangeSpec.all(), RangeSpec.all(), RangeSpec.between(1, 5))
        )
        assert served.route(query) is None
        counter = AccessCounter()
        assert served.range_sum(query, counter) == brute_force(cube, query)
        assert counter.cube_cells > 0

    def test_cheapest_ancestor_wins(self, cube):
        """A fine-blocked small cuboid beats the coarse base cuboid."""
        plan = [
            Materialization((0, 1, 2), 16, 0.0),
            Materialization((0,), 1, 0.0),
        ]
        served = MaterializedCuboidSet(cube, plan)
        query = RangeQuery(
            (RangeSpec.between(3, 30), RangeSpec.all(), RangeSpec.all())
        )
        routed = served.route(query)
        assert routed is not None and routed.key == (0,)


class TestAnswers:
    def test_answers_match_brute_force(self, cube, rng):
        plan = [
            Materialization((0, 1, 2), 4, 0.0),
            Materialization((0, 1), 2, 0.0),
            Materialization((1,), 1, 0.0),
        ]
        served = MaterializedCuboidSet(cube, plan)
        profile = WorkloadProfile(
            range_probability=(0.7, 0.6, 0.3),
            singleton_probability=0.5,
            range_lengths=((4, 30), (3, 20), (2, 6)),
        )
        for query in generate_query_log(SHAPE, profile, 120, rng):
            assert served.range_sum(query) == brute_force(cube, query)

    def test_group_by_projection(self, cube):
        """A query on (1,) served by the (0, 1) cuboid sums out dim 0."""
        plan = [Materialization((0, 1), 1, 0.0)]
        served = MaterializedCuboidSet(cube, plan)
        query = RangeQuery(
            (RangeSpec.all(), RangeSpec.between(10, 19), RangeSpec.all())
        )
        counter = AccessCounter()
        got = served.range_sum(query, counter)
        assert got == int(cube[:, 10:20, :].sum())
        # Any raw-cell reads are boundary cells of the small group-by
        # array, never a scan of the 3200-cell base region.
        assert counter.cube_cells <= 4

    def test_empty_plan_is_all_scans(self, cube):
        served = MaterializedCuboidSet(cube, [])
        query = RangeQuery.full(3)
        counter = AccessCounter()
        assert served.range_sum(query, counter) == int(cube.sum())
        assert counter.cube_cells == cube.size

    def test_storage_accounting(self, cube):
        plan = [
            Materialization((0, 1, 2), 2, 0.0),
            Materialization((0,), 1, 0.0),
        ]
        served = MaterializedCuboidSet(cube, plan)
        expected = (20 * 15 * 4) + 40
        assert served.storage_cells == expected

    def test_invalid_cuboid_rejected(self, cube):
        with pytest.raises(ValueError):
            MaterializedCuboidSet(cube, [Materialization((5,), 1, 0.0)])


class TestEndToEndWithSelector:
    def test_selected_plan_serves_the_log(self, cube, rng):
        """The full §9 loop: log → selector → build → serve → verify."""
        profile = WorkloadProfile(
            range_probability=(0.8, 0.5, 0.2),
            singleton_probability=0.6,
            range_lengths=((5, 30), (4, 20), (2, 6)),
        )
        log = generate_query_log(SHAPE, profile, 150, rng)
        workloads = workloads_from_log(log, SHAPE)
        selector = CuboidSelector(SHAPE, workloads, space_limit=3000)
        plan = selector.solve()
        served = MaterializedCuboidSet(cube, plan.chosen)
        assert served.storage_cells <= 3000 * 1.05
        naive_total = 0
        served_total = 0
        for query in log:
            counter = AccessCounter()
            assert served.range_sum(query, counter) == brute_force(
                cube, query
            )
            served_total += counter.total
            naive_total += query.to_box(SHAPE).volume
        assert served_total < naive_total


class TestMaintenance:
    def test_updates_propagate_to_every_cuboid(self, cube, rng):
        from repro.core.batch_update import PointUpdate

        plan = [
            Materialization((0, 1, 2), 4, 0.0),
            Materialization((0, 1), 1, 0.0),
            Materialization((1,), 2, 0.0),
        ]
        served = MaterializedCuboidSet(cube, plan)
        mirror = cube.copy()
        updates = []
        for _ in range(20):
            index = tuple(int(rng.integers(0, n)) for n in SHAPE)
            delta = int(rng.integers(-10, 20))
            updates.append(PointUpdate(index, delta))
            mirror[index] += delta
        served.apply_updates(updates)
        profile = WorkloadProfile(
            range_probability=(0.7, 0.6, 0.3),
            singleton_probability=0.5,
            range_lengths=((4, 30), (3, 20), (2, 6)),
        )
        for query in generate_query_log(SHAPE, profile, 60, rng):
            expected = int(mirror[query.to_box(SHAPE).slices()].sum())
            assert served.range_sum(query) == expected

    def test_caller_array_untouched(self, cube):
        from repro.core.batch_update import PointUpdate

        original = cube.copy()
        served = MaterializedCuboidSet(
            cube, [Materialization((0,), 1, 0.0)]
        )
        served.apply_updates([PointUpdate((0, 0, 0), 100)])
        assert np.array_equal(cube, original)

    def test_empty_cuboid_rejected(self, cube):
        with pytest.raises(ValueError, match="empty cuboid"):
            MaterializedCuboidSet(cube, [Materialization((), 1, 0.0)])


class TestSubsetMaterializations:
    """§9.1 within §9.2: per-cuboid prefix-dim restrictions."""

    def test_subset_structure_answers_exactly(self, cube, rng):
        # Accumulate only along dim 0 of the (0, 2) cuboid; dim 2 is
        # always a singleton in this workload.
        plan = [
            Materialization((0, 2), 4, 0.0, prefix_dims=(0,)),
        ]
        served = MaterializedCuboidSet(cube, plan)
        for _ in range(40):
            lo = int(rng.integers(0, 30))
            hi = int(rng.integers(lo, 40))
            pin = int(rng.integers(0, 8))
            query = RangeQuery(
                (
                    RangeSpec.between(lo, hi)
                    if lo < hi
                    else RangeSpec.at(lo),
                    RangeSpec.all(),
                    RangeSpec.at(pin),
                )
            )
            assert served.range_sum(query) == brute_force(cube, query)

    def test_subset_updates_propagate(self, cube, rng):
        from repro.core.batch_update import PointUpdate

        plan = [Materialization((0, 1), 2, 0.0, prefix_dims=(1,))]
        served = MaterializedCuboidSet(cube, plan)
        mirror = cube.copy()
        updates = []
        for _ in range(15):
            index = tuple(int(rng.integers(0, n)) for n in SHAPE)
            delta = int(rng.integers(-10, 20))
            updates.append(PointUpdate(index, delta))
            mirror[index] += delta
        served.apply_updates(updates)
        query = RangeQuery(
            (RangeSpec.between(5, 30), RangeSpec.at(7), RangeSpec.all())
        )
        assert served.range_sum(query) == int(
            mirror[5:31, 7, :].sum()
        )

    def test_invalid_subset_rejected(self, cube):
        with pytest.raises(ValueError, match="not part of"):
            MaterializedCuboidSet(
                cube,
                [Materialization((0, 1), 2, 0.0, prefix_dims=(2,))],
            )
