"""Tests for the §8/§9.3 analytic cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.cost_model import (
    ancestor_constrained_optimum,
    benefit_space_ratio,
    boundary_cells_per_surface,
    figure11_difference,
    materialization_benefit,
    materialization_space,
    naive_cost,
    optimal_block_size_real,
    prefix_sum_cost,
    tree_sum_cost,
)
from repro.query.stats import QueryStatistics


class TestFOfB:
    def test_even_block(self):
        assert boundary_cells_per_surface(8) == 2.0

    def test_odd_block(self):
        assert boundary_cells_per_surface(5) == pytest.approx(
            5 / 4 - 1 / 20
        )

    def test_unblocked_is_zero(self):
        """F(1) = 1/4 − 1/4 = 0: the basic method has no boundary cost."""
        assert boundary_cells_per_surface(1) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            boundary_cells_per_surface(0)

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_close_to_quarter(self, b):
        assert boundary_cells_per_surface(b) == pytest.approx(
            b / 4, abs=0.25
        )


class TestCostFormulas:
    def test_equation3_basic(self):
        """b = 1: cost is exactly 2^d."""
        stats = QueryStatistics.from_lengths([20, 20, 20])
        assert prefix_sum_cost(stats, 1) == 8.0

    def test_equation3_blocked(self):
        stats = QueryStatistics.from_lengths([20, 20])
        assert prefix_sum_cost(stats, 4) == pytest.approx(
            4 + stats.surface * 1.0
        )

    def test_naive_cost_is_volume(self):
        stats = QueryStatistics.from_lengths([5, 6])
        assert naive_cost(stats) == 30

    def test_tree_cost_series(self):
        """Explicit two-level series: F(b)·(S + S/b^{d−1})."""
        stats = QueryStatistics.from_lengths([16, 16])
        cost = tree_sum_cost(stats, 4, depth=2)
        f_b = 1.0
        assert cost == pytest.approx(f_b * (stats.surface + stats.surface / 4))

    def test_tree_cost_one_dimension_sums_levels(self):
        stats = QueryStatistics.from_lengths([64])
        assert tree_sum_cost(stats, 4, depth=3) == pytest.approx(
            1.0 * 3 * stats.surface
        )

    def test_tree_needs_fanout_two(self):
        with pytest.raises(ValueError):
            tree_sum_cost(QueryStatistics.from_lengths([4]), 1)

    def test_tree_beats_nothing_prefix_wins(self):
        """§8's conclusion: prefix sums win for large queries."""
        for d in (2, 3, 4):
            stats = QueryStatistics.from_lengths([100.0] * d)
            assert prefix_sum_cost(stats, 10) < tree_sum_cost(stats, 10)


class TestFigure11:
    def test_closed_form_values(self):
        """d·α^{d−1}·b/2 − 2^d at a few grid points of the figure."""
        assert figure11_difference(1, 10, 2) == 2 * 1 * 5 - 4
        assert figure11_difference(20, 20, 4) == pytest.approx(
            4 * 20**3 * 10 - 16
        )

    def test_monotone_in_alpha(self):
        for d in (2, 3, 4):
            for b in (10, 20):
                values = [
                    figure11_difference(a, b, d) for a in range(1, 21)
                ]
                assert values == sorted(values)

    def test_ordering_matches_figure(self):
        """At α = 20 the curves order by d then b, as plotted."""
        def at(d, b):
            return figure11_difference(20, b, d)

        assert at(4, 20) > at(4, 10) > at(3, 20) > at(3, 10) > at(2, 20)

    def test_exact_variant_agrees_in_sign(self):
        for alpha in (2, 5, 10, 20):
            closed = figure11_difference(alpha, 10, 3)
            exact = figure11_difference(
                alpha, 10, 3, depth=4, closed_form=False
            )
            assert (closed > 0) == (exact > 0)


class TestBenefitSpace:
    def test_figure14_shape(self):
        """The paper's example: d=3, N_Q/N = 1/100, V−2^d = 1000, S = 400
        gives benefit/space = 100·b² × ... rising then falling, zero at
        b = 4(V−2^d)/S = 10."""
        stats_like = QueryStatistics.from_lengths([1, 1, 1])
        # Build synthetic stats with the paper's V−2^d and S directly.
        ratios = []
        for b in range(1, 11):
            benefit = 1.0 * (1000.0 - 400.0 * b / 4)
            space = 100.0 / b**3
            ratios.append(benefit / space)
        # b² shape: 100·b²·(10 − b)/10 → rises to b≈6.67 then falls.
        assert ratios.index(max(ratios)) + 1 == 7
        assert abs(ratios[-1]) < 1e-9  # zero benefit at b = 10
        assert stats_like.ndim == 3

    def test_ratio_matches_expansion(self):
        """benefit/space == (N_Q/N)[(V−2^d)b^d − (S/4)b^{d+1}] for b>1."""
        stats = QueryStatistics.from_lengths([30, 40])
        nq, cells, b = 50, 10**6, 6
        lhs = benefit_space_ratio(stats, nq, cells, b)
        d = stats.ndim
        rhs = (nq / cells) * (
            (stats.volume - 2**d) * b**d
            - (stats.surface / 4) * b ** (d + 1)
        )
        assert lhs == pytest.approx(rhs)

    def test_optimum_formula_is_the_argmax(self):
        """b* = ((V−2^d)/(S/4))·d/(d+1) maximizes the ratio."""
        stats = QueryStatistics.from_lengths([60, 45, 50])
        b_star = optimal_block_size_real(stats)
        best_b = max(
            range(2, 200),
            key=lambda b: benefit_space_ratio(stats, 10, 10**6, b),
        )
        assert abs(best_b - b_star) <= 1.0

    def test_no_headroom_means_zero(self):
        stats = QueryStatistics.from_lengths([2, 2])  # V = 4 = 2^d
        assert optimal_block_size_real(stats) == 0.0
        assert materialization_benefit(stats, 10, 1) == 0.0

    def test_benefit_clamped_nonnegative(self):
        stats = QueryStatistics.from_lengths([3, 3])
        assert materialization_benefit(stats, 10, 50) == 0.0

    def test_space_formula(self):
        assert materialization_space(10**6, 3, 10) == 1000.0

    def test_ancestor_constrained_optimum(self):
        """§9.3: with an ancestor at b', the maxima is b'·d/(d+1)."""
        assert ancestor_constrained_optimum(12, 3) == 9.0
        with pytest.raises(ValueError):
            ancestor_constrained_optimum(0, 2)
