"""Tests for the §9.3 block-size optimizer."""

from __future__ import annotations


from repro.optimizer.block_size import BlockSizeChoice, choose_block_size
from repro.optimizer.cost_model import (
    benefit_space_ratio,
    optimal_block_size_real,
)
from repro.query.stats import QueryStatistics


class TestUnconstrained:
    def test_picks_integer_near_closed_form(self):
        stats = QueryStatistics.from_lengths([50, 40, 30])
        b_star = optimal_block_size_real(stats)
        choice = choose_block_size(stats, query_count=100, cells=10**6)
        assert choice is not None
        assert abs(choice.block_size - b_star) <= 1.0

    def test_chosen_ratio_beats_neighbours(self):
        stats = QueryStatistics.from_lengths([80, 60])
        choice = choose_block_size(stats, query_count=10, cells=10**6)
        assert choice is not None
        for b in range(2, 80):
            assert (
                benefit_space_ratio(stats, 10, 10**6, b)
                <= choice.ratio + 1e-9
            )

    def test_no_benefit_when_volume_small(self):
        """V ≤ 2^d: no benefit with or without blocking (§9.3)."""
        stats = QueryStatistics.from_lengths([2, 2])
        assert choose_block_size(stats, 100, 10**6) is None

    def test_blocking_never_pays_for_thin_queries(self):
        """V − 2^d ≤ S/4: only b = 1 can help (§9.3)."""
        stats = QueryStatistics.from_lengths([3, 3])
        choice = choose_block_size(stats, 100, 10**6)
        assert choice is not None
        assert choice.block_size == 1

    def test_ratio_property(self):
        choice = BlockSizeChoice(block_size=4, benefit=800.0, space=100.0)
        assert choice.ratio == 8.0


class TestAncestorConstraint:
    def test_only_smaller_blocks_help(self):
        stats = QueryStatistics.from_lengths([50, 50])
        choice = choose_block_size(
            stats, query_count=100, cells=10**6, ancestor_block=8
        )
        assert choice is not None
        assert choice.block_size < 8

    def test_constrained_optimum_formula(self):
        """The maxima under an ancestor at b' is b'·d/(d+1) (§9.3)."""
        stats = QueryStatistics.from_lengths([100, 100, 100])
        choice = choose_block_size(
            stats, query_count=100, cells=10**6, ancestor_block=16
        )
        assert choice is not None
        assert abs(choice.block_size - 16 * 3 / 4) <= 1.0

    def test_tiny_ancestor_blocks_everything(self):
        stats = QueryStatistics.from_lengths([50, 50])
        choice = choose_block_size(
            stats, query_count=100, cells=10**6, ancestor_block=1
        )
        assert choice is None  # cannot improve on an unblocked ancestor


class TestDescendantBenefits:
    def test_extra_benefit_shifts_choice(self):
        """A descendant benefiting only from small blocks pulls b down."""
        stats = QueryStatistics.from_lengths([100, 100])
        base = choose_block_size(stats, query_count=10, cells=10**6)
        assert base is not None

        def descendant(b: int) -> float:
            return 5000.0 * max(0, 6 - b)  # benefit vanishes at b >= 6

        shifted = choose_block_size(
            stats,
            query_count=10,
            cells=10**6,
            descendant_benefits=[descendant],
        )
        assert shifted is not None
        assert shifted.block_size <= base.block_size

    def test_dominant_descendant_benefit_sets_the_breakpoint(self):
        """When a descendant's benefit dwarfs the cuboid's own, the
        chosen block must stay below the descendant's breakpoint."""
        stats = QueryStatistics.from_lengths([40, 40])
        choice = choose_block_size(
            stats,
            query_count=10,
            cells=10**6,
            descendant_benefits=[lambda b: 1e9 * max(0, 6 - b)],
        )
        assert choice is not None
        assert choice.block_size <= 6
        assert choice.benefit >= 1e9  # the descendant term is included


class TestDegenerate:
    def test_zero_cells(self):
        stats = QueryStatistics.from_lengths([10, 10])
        assert choose_block_size(stats, 10, 0) is None
