"""The online advisor: DesignDelta accounting, hysteresis, degradation.

Satellite regression pinned here: a zero-traffic observer window must
never let :func:`average_statistics`'s empty-input ``ValueError`` escape
an advice path — ``re_advise`` returns a HOLD delta instead.
"""

from __future__ import annotations

import pytest

from repro.optimizer import (
    CuboidSelector,
    Materialization,
    materialization_space,
    re_advise,
    workloads_from_weighted,
)
from repro.optimizer.advisor import DesignDelta, advise_from_snapshot
from repro.query import WorkloadObserver
from repro.query.ranges import RangeQuery, RangeSpec

SHAPE = (32, 32, 8)


def hot_01(lo: int = 2, length: int = 12) -> RangeQuery:
    return RangeQuery(
        (
            RangeSpec.between(lo, lo + length - 1),
            RangeSpec.between(lo, lo + length - 1),
            RangeSpec.all(),
        )
    )


def hot_2(lo: int = 1, length: int = 5) -> RangeQuery:
    return RangeQuery(
        (RangeSpec.all(), RangeSpec.all(), RangeSpec.between(lo, lo + length - 1))
    )


def window(queries, updates: int = 0, decay: float = 1.0):
    observer = WorkloadObserver(SHAPE, capacity=None, decay=decay)
    for query in queries:
        observer.observe_query(query)
    if updates:
        observer.observe_update(updates)
    return observer.snapshot()


def member(key, block: int) -> Materialization:
    cells = 1
    for j in key:
        cells *= SHAPE[j]
    return Materialization(
        key, block, materialization_space(cells, len(key), block)
    )


class TestGracefulDegradation:
    def test_zero_traffic_returns_incumbent_without_raising(self) -> None:
        incumbent = (member((0, 1), 2),)
        delta = re_advise(
            window([]), incumbent, space_budget=5000.0
        )
        assert delta.candidate == incumbent
        assert delta.is_noop
        assert not delta.should_swap
        assert "no queries" in delta.reason

    def test_below_threshold_window_holds(self) -> None:
        delta = re_advise(
            window([hot_01()]),
            (),
            space_budget=5000.0,
            min_query_weight=10.0,
        )
        assert delta.is_noop and not delta.should_swap
        assert "below" in delta.reason

    def test_all_cells_only_traffic_holds(self) -> None:
        full = RangeQuery.full(len(SHAPE))
        delta = re_advise(
            window([full] * 20), (), space_budget=5000.0
        )
        assert delta.is_noop and not delta.should_swap

    def test_empty_statistics_error_cannot_escape(self) -> None:
        # The raw stats helper still raises on empty input...
        from repro.query.stats import average_statistics

        with pytest.raises(ValueError):
            average_statistics([])
        # ...but the advice path over the same empty window does not.
        re_advise(window([]), (), space_budget=100.0)


class TestDeltaAccounting:
    def test_cold_start_recommends_builds(self) -> None:
        delta = re_advise(
            window([hot_01()] * 50), (), space_budget=5000.0, max_block=16
        )
        assert delta.builds and not delta.drops
        assert delta.should_swap
        assert delta.gain > 0
        assert delta.build_cost > 0
        assert delta.improvement_ratio > 1.15

    def test_recommendation_is_self_stable(self) -> None:
        snapshot = window([hot_01()] * 50)
        first = re_advise(snapshot, (), space_budget=5000.0, max_block=16)
        second = re_advise(
            snapshot, first.candidate, space_budget=5000.0, max_block=16
        )
        assert second.is_noop
        assert not second.should_swap

    def test_drift_produces_drops_and_builds(self) -> None:
        before = re_advise(
            window([hot_01()] * 50), (), space_budget=800.0, max_block=16
        )
        assert before.should_swap
        # The workload moves wholesale to the ⟨d1, d2⟩ cuboid, with
        # update churn: the stale ⟨d0, d1⟩ structure stops earning
        # queries but keeps paying Theorem-2 maintenance, so
        # fine-tuning drops it.
        hot_12 = RangeQuery(
            (
                RangeSpec.all(),
                RangeSpec.between(4, 15),
                RangeSpec.between(1, 6),
            )
        )
        drifted = window([hot_12] * 50, updates=20)
        after = re_advise(
            drifted, before.candidate, space_budget=800.0, max_block=16
        )
        assert after.should_swap
        new_keys = {m.key for m in after.candidate}
        assert (1, 2) in new_keys or (0, 1, 2) in new_keys
        assert any(m.key == (0, 1) for m in after.drops)

    def test_resize_detected_as_rebuild(self) -> None:
        incumbent = (member((0, 1), 7),)
        delta = re_advise(
            window([hot_01()] * 50),
            incumbent,
            space_budget=(32 * 32) + 10.0,
            max_block=8,
        )
        if delta.resizes:
            old, new = delta.resizes[0]
            assert old.key == new.key == (0, 1)
            assert old.block_size != new.block_size
            assert delta.build_cost > 0

    def test_hysteresis_gates_marginal_swaps(self) -> None:
        snapshot = window([hot_01()] * 50)
        eager = re_advise(
            snapshot, (), space_budget=5000.0, hysteresis=1.0001
        )
        reluctant = re_advise(
            snapshot, (), space_budget=5000.0, hysteresis=1e9
        )
        assert eager.should_swap
        assert not reluctant.should_swap
        assert eager.candidate == reluctant.candidate

    def test_hysteresis_below_one_rejected(self) -> None:
        with pytest.raises(ValueError, match="hysteresis"):
            re_advise(window([]), (), space_budget=10.0, hysteresis=0.5)

    def test_to_dict_round_trips_json(self) -> None:
        import json

        delta = re_advise(
            window([hot_01()] * 30), (), space_budget=5000.0, max_block=8
        )
        payload = delta.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["should_swap"] == delta.should_swap
        assert payload["builds"]

    def test_report_mentions_verdict(self) -> None:
        delta = re_advise(
            window([hot_01()] * 30), (), space_budget=5000.0, max_block=8
        )
        text = delta.report()
        assert "SWAP" in text or "HOLD" in text


class TestUpdateAwareness:
    def test_update_heavy_window_prunes_the_plan(self) -> None:
        queries = [hot_01()] * 10
        quiet = re_advise(
            window(queries), (), space_budget=50_000.0, max_block=16
        )
        churny = re_advise(
            window(queries, updates=5000),
            (),
            space_budget=50_000.0,
            max_block=16,
            update_batch=1.0,
        )
        # Theorem-2 maintenance makes structures strictly less
        # attractive under churn: never more materializations, and the
        # modeled candidate cost now includes the update term.
        assert len(churny.candidate) <= len(quiet.candidate)

    def test_batching_amortizes_maintenance(self) -> None:
        snapshot = window([hot_01()] * 10, updates=5000)
        selector_kwargs = dict(space_budget=50_000.0, max_block=16)
        unbatched = re_advise(snapshot, (), update_batch=1.0, **selector_kwargs)
        batched = re_advise(snapshot, (), update_batch=64.0, **selector_kwargs)
        assert len(batched.candidate) >= len(unbatched.candidate)


class TestWeightedWorkloads:
    def test_decay_shifts_the_bucket_average(self) -> None:
        # Old traffic is long (length 20), new traffic short (length 4):
        # with aggressive decay the bucket mean hugs the fresh length.
        old = [hot_01(0, 20)] * 10
        new = [hot_01(0, 4)] * 10
        snap = window(old + new, decay=0.5)
        (workload,) = [
            w for w in snap.workloads() if w.key == (0, 1)
        ]
        assert workload.stats.lengths[0] == pytest.approx(4.0, abs=0.1)

    def test_nonpositive_weights_are_skipped(self) -> None:
        workloads = workloads_from_weighted(
            [(hot_01(), 0.0), (hot_01(), -1.0)], SHAPE
        )
        assert workloads == []


class TestAdviseFromSnapshot:
    def test_full_pipeline_over_a_window(self) -> None:
        design = advise_from_snapshot(
            window([hot_01()] * 40), space_budget=5000.0, max_block=16
        )
        assert design.plan
        assert 0 in design.range_heavy_dims
        assert design.query_count == 40

    def test_empty_window_raises_like_advise(self) -> None:
        with pytest.raises(ValueError, match="at least one"):
            advise_from_snapshot(window([]), space_budget=100.0)


class TestSelectorWarmStart:
    def test_seed_discards_stale_shape_members(self) -> None:
        selector = CuboidSelector(
            SHAPE,
            workloads_from_weighted([(hot_01(), 1.0)], SHAPE),
            space_limit=5000.0,
            max_block=8,
        )
        stale = Materialization((0, 1, 5), 2, 123.0)  # dim 5 ∉ shape
        seeded = selector._seed_from([stale, member((0, 1), 2)])
        assert [m.key for m in seeded] == [(0, 1)]

    def test_seed_respects_budget_by_cheapest_eviction(self) -> None:
        selector = CuboidSelector(
            SHAPE,
            workloads_from_weighted([(hot_01(), 1.0)], SHAPE),
            space_limit=300.0,
            max_block=8,
        )
        seeded = selector._seed_from(
            [member((0, 1), 2), member((0, 1, 2), 2)]
        )
        assert sum(m.space for m in seeded) <= 300.0
