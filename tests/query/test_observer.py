"""WorkloadObserver window semantics and the QueryLog shim contract."""

from __future__ import annotations

import pytest

from repro._util import Box
from repro.query import QueryLog, WorkloadObserver
from repro.query.observer import UPDATE_OP
from repro.query.ranges import RangeQuery, RangeSpec


def q(lo: int, hi: int, extra: RangeSpec | None = None) -> RangeQuery:
    specs = [RangeSpec.between(lo, hi)]
    if extra is not None:
        specs.append(extra)
    else:
        specs.append(RangeSpec.all())
    return RangeQuery(tuple(specs))


SHAPE = (16, 8)


class TestRecording:
    def test_returns_query_for_inline_use(self) -> None:
        observer = WorkloadObserver(SHAPE)
        query = q(1, 5)
        assert observer.observe_query(query) is query
        assert observer.queries == (query,)

    def test_rejects_wrong_dimensionality(self) -> None:
        observer = WorkloadObserver(SHAPE)
        with pytest.raises(ValueError, match="observer expects"):
            observer.observe_query(RangeQuery((RangeSpec.all(),)))

    def test_rejects_out_of_bounds(self) -> None:
        observer = WorkloadObserver(SHAPE)
        with pytest.raises(ValueError):
            observer.observe_query(q(0, 40))

    def test_observe_box_skips_empty(self) -> None:
        observer = WorkloadObserver(SHAPE)
        assert observer.observe_box(Box((3, 2), (2, 2))) is None
        assert len(observer) == 0
        assert observer.queries_seen == 0

    def test_observe_box_recovers_spec_kinds(self) -> None:
        observer = WorkloadObserver(SHAPE)
        recovered = observer.observe_box(Box((0, 3), (15, 3)))
        assert recovered is not None
        kinds = [spec.kind.name for spec in recovered.specs]
        assert kinds == ["ALL", "SINGLETON"]

    def test_update_counting(self) -> None:
        observer = WorkloadObserver(SHAPE)
        observer.observe_update(3)
        assert observer.updates_seen == 3
        assert observer.snapshot().update_weight == pytest.approx(3.0)
        with pytest.raises(ValueError):
            observer.observe_update(-1)


class TestWindowing:
    def test_capacity_bounds_retention(self) -> None:
        observer = WorkloadObserver(SHAPE, capacity=4)
        for i in range(10):
            observer.observe_query(q(i, i + 1))
        assert len(observer) == 4
        # Oldest dropped: the ring keeps the last four lows (6..9).
        lows = [query.specs[0].lo for query in observer.queries]
        assert lows == [6, 7, 8, 9]
        assert observer.queries_seen == 10

    def test_unbounded_legacy_mode(self) -> None:
        observer = WorkloadObserver(SHAPE, capacity=None, decay=1.0)
        for i in range(100):
            observer.observe_query(q(0, i % 8))
        assert len(observer) == 100
        weights = {w for _, w in observer.snapshot().queries}
        assert weights == {1.0}

    def test_decay_weights_age_with_events(self) -> None:
        observer = WorkloadObserver(SHAPE, decay=0.5)
        observer.observe_query(q(0, 1))
        observer.observe_query(q(0, 2))
        observer.observe_query(q(0, 3))
        weights = [w for _, w in observer.snapshot().queries]
        assert weights == pytest.approx([0.25, 0.5, 1.0])

    def test_updates_age_queries_too(self) -> None:
        observer = WorkloadObserver(SHAPE, decay=0.5)
        observer.observe_query(q(0, 1))
        observer.observe_update(2)  # two events: weight halves twice
        (entry,) = observer.snapshot().queries
        assert entry[1] == pytest.approx(0.25)

    def test_op_mix_decays(self) -> None:
        observer = WorkloadObserver(SHAPE, decay=0.5)
        observer.observe_query(q(0, 1), op="sum")
        observer.observe_query(q(0, 1), op="max")
        snap = observer.snapshot()
        assert snap.op_weights["sum"] == pytest.approx(0.5)
        assert snap.op_weights["max"] == pytest.approx(1.0)

    def test_invalid_parameters(self) -> None:
        with pytest.raises(ValueError, match="capacity"):
            WorkloadObserver(SHAPE, capacity=0)
        with pytest.raises(ValueError, match="decay"):
            WorkloadObserver(SHAPE, decay=0.0)
        with pytest.raises(ValueError, match="decay"):
            WorkloadObserver(SHAPE, decay=1.5)

    def test_clear_resets_everything(self) -> None:
        observer = WorkloadObserver(SHAPE, decay=0.9)
        observer.observe_query(q(0, 1))
        observer.observe_update()
        observer.clear()
        assert len(observer) == 0
        snap = observer.snapshot()
        assert not snap.has_queries()
        assert snap.op_weights == {}
        assert snap.queries_seen == 0 and snap.updates_seen == 0


class TestSnapshot:
    def test_snapshot_is_frozen_in_time(self) -> None:
        observer = WorkloadObserver(SHAPE, decay=0.5)
        observer.observe_query(q(0, 1))
        snap = observer.snapshot()
        observer.observe_query(q(0, 7))
        assert len(snap.queries) == 1
        assert snap.queries[0][1] == pytest.approx(1.0)

    def test_statistics_none_on_empty_window(self) -> None:
        snap = WorkloadObserver(SHAPE).snapshot()
        assert snap.statistics() is None
        assert not snap.has_queries()
        assert snap.update_query_ratio == 0.0

    def test_statistics_weighted_toward_recent(self) -> None:
        observer = WorkloadObserver(SHAPE, decay=0.1)
        observer.observe_query(q(0, 7))  # length 8, nearly decayed away
        observer.observe_query(q(0, 1))  # length 2, fresh
        stats = observer.snapshot().statistics()
        assert stats is not None
        # weights 0.1 and 1.0 → mean ≈ (0.8 + 2) / 1.1
        assert stats.lengths[0] == pytest.approx(2.8 / 1.1)

    def test_workloads_and_length_matrix(self) -> None:
        observer = WorkloadObserver(SHAPE)
        observer.observe_query(q(0, 3))
        observer.observe_query(q(0, 3, RangeSpec.at(2)))
        workloads = observer.snapshot().workloads()
        assert sorted(w.key for w in workloads) == [(0,), (0, 1)]
        matrix = observer.snapshot().length_matrix()
        assert matrix.shape == (2, len(SHAPE))

    def test_to_dict_is_json_ready(self) -> None:
        import json

        observer = WorkloadObserver(SHAPE, decay=0.9)
        observer.observe_query(q(1, 4))
        observer.observe_update()
        payload = observer.snapshot().to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["op_weights"][UPDATE_OP] == pytest.approx(1.0)


class TestQueryLogShim:
    """The grow-forever QueryLog rides on the observer unchanged."""

    def test_truthiness_is_a_type_error(self) -> None:
        # The old footgun: an empty log is falsy, so ``if logbook:``
        # silently skipped save/advise paths.  Presence and traffic are
        # now explicit, and boolean coercion fails loudly.
        log = QueryLog(SHAPE)
        with pytest.raises(TypeError, match="has_entries"):
            bool(log)
        with pytest.raises(TypeError):
            if log:  # pragma: no cover — raises before the branch
                pass

    def test_has_entries_and_len(self) -> None:
        log = QueryLog(SHAPE)
        assert not log.has_entries()
        assert len(log) == 0
        log.record(q(0, 3))
        assert log.has_entries()
        assert len(log) == 1

    def test_record_rewrites_error_prefix(self) -> None:
        log = QueryLog(SHAPE)
        with pytest.raises(ValueError, match="log expects"):
            log.record(RangeQuery((RangeSpec.all(),)))

    def test_never_evicts(self) -> None:
        log = QueryLog(SHAPE)
        for i in range(5000):
            log.record(q(0, i % 8))
        assert len(log) == 5000

    def test_observer_property_exposes_the_window(self) -> None:
        log = QueryLog(SHAPE)
        log.record(q(0, 3))
        assert log.observer.queries_seen == 1
        assert log.observer.capacity is None
