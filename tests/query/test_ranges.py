"""Tests for the range-query model (paper §2 and §9.1 definitions)."""

from __future__ import annotations

import pytest

from repro._util import Box
from repro.query.ranges import RangeQuery, RangeSpec, SpecKind


class TestRangeSpec:
    def test_all(self):
        spec = RangeSpec.all()
        assert spec.kind is SpecKind.ALL
        assert spec.resolve(10) == (0, 9)
        assert spec.length(10) == 10

    def test_singleton(self):
        spec = RangeSpec.at(3)
        assert spec.kind is SpecKind.SINGLETON
        assert spec.resolve(10) == (3, 3)
        assert spec.length(10) == 1

    def test_range(self):
        spec = RangeSpec.between(2, 7)
        assert spec.kind is SpecKind.RANGE
        assert spec.resolve(10) == (2, 7)
        assert spec.length(10) == 6

    def test_degenerate_range_becomes_singleton(self):
        assert RangeSpec.between(4, 4).kind is SpecKind.SINGLETON

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            RangeSpec.between(5, 2)

    def test_resolve_out_of_bounds(self):
        with pytest.raises(ValueError):
            RangeSpec.between(2, 12).resolve(10)


class TestActivity:
    """§9.1: active = contiguous range, neither singleton nor all."""

    def test_proper_range_is_active(self):
        assert RangeSpec.between(2, 7).is_active(10)

    def test_singleton_is_passive(self):
        assert not RangeSpec.at(3).is_active(10)

    def test_all_is_passive(self):
        assert not RangeSpec.all().is_active(10)

    def test_full_domain_range_is_passive(self):
        assert not RangeSpec.between(0, 9).is_active(10)

    def test_full_range_in_larger_domain_is_active(self):
        assert RangeSpec.between(0, 9).is_active(20)


class TestRangeQuery:
    def test_to_box(self):
        query = RangeQuery(
            (RangeSpec.between(1, 3), RangeSpec.all(), RangeSpec.at(2))
        )
        assert query.to_box((5, 6, 4)) == Box((1, 0, 2), (3, 5, 2))

    def test_from_bounds(self):
        query = RangeQuery.from_bounds([(0, 2), (1, 1)])
        assert query.specs[0].kind is SpecKind.RANGE
        assert query.specs[1].kind is SpecKind.SINGLETON

    def test_full(self):
        query = RangeQuery.full(3)
        assert all(s.kind is SpecKind.ALL for s in query.specs)

    def test_dimension_mismatch(self):
        query = RangeQuery.full(2)
        with pytest.raises(ValueError):
            query.to_box((4, 4, 4))

    def test_active_dimensions(self):
        query = RangeQuery(
            (
                RangeSpec.between(1, 3),
                RangeSpec.at(0),
                RangeSpec.all(),
                RangeSpec.between(0, 7),
            )
        )
        assert query.active_dimensions((10, 10, 10, 8)) == (0,)

    def test_cuboid_key(self):
        """§9's assignment rule: constrained dims define the cuboid."""
        query = RangeQuery(
            (RangeSpec.between(1, 3), RangeSpec.all(), RangeSpec.at(2))
        )
        assert query.cuboid_key((10, 10, 10)) == (0, 2)
