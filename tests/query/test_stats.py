"""Tests for the Table 1 query statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.ranges import RangeQuery, RangeSpec
from repro.query.stats import QueryStatistics, average_statistics


class TestFormulas:
    def test_volume_is_length_product(self):
        stats = QueryStatistics.from_lengths([3, 4, 5])
        assert stats.volume == 60

    def test_surface_formula(self):
        """S = Σ 2V/x_i: a 3×4 rectangle has S = 2·12/3 + 2·12/4 = 14."""
        stats = QueryStatistics.from_lengths([3, 4])
        assert stats.surface == pytest.approx(14.0)

    def test_cube_surface(self):
        """For an x^d hypercube: S = 2·d·x^{d−1}."""
        stats = QueryStatistics.from_lengths([10, 10, 10])
        assert stats.surface == pytest.approx(2 * 3 * 100)

    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=100.0),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_surface_definition_holds(self, lengths):
        stats = QueryStatistics.from_lengths(lengths)
        expected = sum(2 * stats.volume / x for x in lengths)
        assert stats.surface == pytest.approx(expected)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            QueryStatistics.from_lengths([3, 0])


class TestFromQuery:
    def test_lengths_from_specs(self):
        query = RangeQuery(
            (RangeSpec.between(2, 7), RangeSpec.all(), RangeSpec.at(1))
        )
        stats = QueryStatistics.from_query(query, (10, 20, 5))
        assert stats.lengths == (6.0, 20.0, 1.0)

    def test_scaled(self):
        stats = QueryStatistics.from_lengths([2, 4]).scaled(3)
        assert stats.lengths == (6.0, 12.0)


class TestAveraging:
    def test_mean_lengths(self):
        a = QueryStatistics.from_lengths([2, 10])
        b = QueryStatistics.from_lengths([4, 20])
        mean = average_statistics([a, b])
        assert mean.lengths == (3.0, 15.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_statistics([])

    def test_mixed_dimensionality_rejected(self):
        with pytest.raises(ValueError):
            average_statistics(
                [
                    QueryStatistics.from_lengths([2]),
                    QueryStatistics.from_lengths([2, 3]),
                ]
            )
