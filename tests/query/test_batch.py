"""Randomized cross-check harness for the batch query execution layer.

Every ``*_many`` method must be element-wise identical to the scalar
method it shadows and to the naive full-scan baseline — with **no
tolerance** for SUM / COUNT / MAX / MIN on integer cubes.  The harness
sweeps dimensionalities 1–4 and block sizes {1, 3, 4}, ~200 random boxes
per case, always including the degenerate single-cell and full-cube
queries.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro._util import Box, full_box
from repro.core.operators import XOR
from repro.core.prefix_sum import PrefixSumCube
from repro.instrumentation import AccessCounter
from repro.query.batch import (
    boxes_to_arrays,
    combine_corner_values,
    corner_table,
    normalize_query_arrays,
    rolling_window_bounds,
)
from repro.query.engine import RangeQueryEngine
from repro.query.naive import naive_range_sum
from repro.query.ranges import RangeQuery, RangeSpec
from repro.query.workload import (
    make_cube,
    random_box,
    random_query_arrays,
    run_query_log,
)

SHAPES = {1: (41,), 2: (13, 11), 3: (8, 7, 6), 4: (6, 5, 4, 3)}
N_BOXES = 200


def _case_boxes(shape, rng):
    """~200 random boxes plus the degenerate single-cell and full-cube."""
    boxes = [random_box(shape, rng) for _ in range(N_BOXES)]
    cell = tuple(int(rng.integers(0, n)) for n in shape)
    boxes.append(Box(cell, cell))
    boxes.append(full_box(shape))
    return boxes


@pytest.fixture
def rng():
    return np.random.default_rng(20250806)


@pytest.mark.parametrize("ndim", [1, 2, 3, 4])
@pytest.mark.parametrize("block_size", [1, 3, 4])
class TestBatchEqualsScalarEqualsNaive:
    """The tentpole invariant, per structure family and dimensionality."""

    def test_sum_count_average(self, ndim, block_size, rng):
        shape = SHAPES[ndim]
        cube = make_cube(shape, rng)
        counts = rng.integers(1, 5, size=shape).astype(np.int64)
        engine = RangeQueryEngine(
            cube, block_size=block_size, max_fanout=None, counts=counts
        )
        boxes = _case_boxes(shape, rng)
        lows, highs = boxes_to_arrays(boxes, shape)
        sums = engine.sum_many(lows, highs)
        cnts = engine.count_many(lows, highs)
        avgs = engine.average_many(lows, highs)
        for k, box in enumerate(boxes):
            assert sums[k] == engine.sum(box)
            assert sums[k] == naive_range_sum(cube, box)
            assert cnts[k] == engine.count(box)
            assert cnts[k] == naive_range_sum(counts, box)
            assert avgs[k] == engine.average(box)

    def test_max_min(self, ndim, block_size, rng):
        shape = SHAPES[ndim]
        cube = make_cube(shape, rng, low=-100, high=100)
        engine = RangeQueryEngine(
            cube, block_size=block_size, max_fanout=3
        )
        boxes = _case_boxes(shape, rng)
        max_idx, max_vals = engine.max_many(boxes)
        min_idx, min_vals = engine.min_many(boxes)
        for k, box in enumerate(boxes):
            window = cube[box.slices()]
            _, scalar_max = engine.max(box)
            _, scalar_min = engine.min(box)
            assert max_vals[k] == scalar_max == window.max()
            assert min_vals[k] == scalar_min == window.min()
            # The witness index must lie in the box and attain the value.
            assert box.contains_point(tuple(max_idx[k]))
            assert cube[tuple(max_idx[k])] == max_vals[k]
            assert box.contains_point(tuple(min_idx[k]))
            assert cube[tuple(min_idx[k])] == min_vals[k]


@pytest.mark.parametrize(
    "ndim,prefix_dims",
    [(2, [0]), (3, [0, 2]), (3, []), (4, [1, 3])],
)
def test_partial_prefix_batch(ndim, prefix_dims, rng):
    """§9.1 subset structures answer batches through the same kernel."""
    shape = SHAPES[ndim]
    cube = make_cube(shape, rng)
    engine = RangeQueryEngine(
        cube, max_fanout=None, prefix_dims=prefix_dims
    )
    boxes = _case_boxes(shape, rng)
    sums = engine.sum_many(boxes)
    for k, box in enumerate(boxes):
        assert sums[k] == engine.sum(box)
        assert sums[k] == naive_range_sum(cube, box)


def test_partial_prefix_cache_invalidated_on_update(rng):
    from repro.core.batch_update import PointUpdate
    from repro.core.partial_prefix import PartialPrefixSumCube

    cube = make_cube((9, 7), rng)
    structure = PartialPrefixSumCube(cube, [0])
    lows, highs = random_query_arrays((9, 7), 20, rng)
    structure.sum_many(lows, highs)  # builds the cache
    structure.apply_updates([PointUpdate((4, 3), 17)])
    mirror = cube.copy()
    mirror[4, 3] += 17
    got = structure.sum_many(lows, highs)
    for k in range(20):
        box = Box(tuple(lows[k]), tuple(highs[k]))
        assert got[k] == naive_range_sum(mirror, box)


def test_batch_kernel_generic_operator(rng):
    """The gather kernel honours any invertible ufunc pair (here XOR)."""
    cube = rng.integers(0, 1 << 30, size=(9, 8), dtype=np.int64)
    structure = PrefixSumCube(cube, operator=XOR)
    boxes = _case_boxes((9, 8), rng)
    lows, highs = boxes_to_arrays(boxes, (9, 8))
    got = structure.sum_many(lows, highs)
    for k, box in enumerate(boxes):
        assert got[k] == structure.range_sum(box)


def test_float_cube_batch_close(rng):
    """Float batches agree with scalar up to summation-order rounding."""
    cube = rng.standard_normal((10, 9, 8))
    engine = RangeQueryEngine(cube, max_fanout=None)
    boxes = _case_boxes((10, 9, 8), rng)
    sums = engine.sum_many(boxes)
    want = np.array([engine.sum(box) for box in boxes])
    np.testing.assert_allclose(sums, want, rtol=1e-9, atol=1e-9)


class TestBatchInputValidation:
    def test_shape_mismatch(self, rng):
        engine = RangeQueryEngine(make_cube((6, 6), rng), max_fanout=None)
        with pytest.raises(ValueError, match=r"\(K, 2\)"):
            engine.sum_many(np.zeros((3, 3), int), np.ones((3, 3), int))

    def test_lo_above_hi_yields_identity(self, rng):
        cube = make_cube((6, 6), rng)
        engine = RangeQueryEngine(cube, max_fanout=None)
        sums = engine.sum_many(
            np.array([[0, 0], [3, 3]]), np.array([[5, 5], [2, 5]])
        )
        assert sums[0] == cube.sum()
        assert sums[1] == 0  # empty row: the SUM identity

    def test_lo_above_hi_rejected_for_max(self, rng):
        engine = RangeQueryEngine(make_cube((6, 6), rng), max_fanout=3)
        with pytest.raises(ValueError, match="empty query region at row 1"):
            engine.max_many(
                np.array([[0, 0], [3, 3]]), np.array([[5, 5], [2, 5]])
            )

    def test_out_of_bounds(self, rng):
        engine = RangeQueryEngine(make_cube((6, 6), rng), max_fanout=None)
        with pytest.raises(ValueError, match="outside cube"):
            engine.sum_many(
                np.array([[0, 0]]), np.array([[6, 5]])
            )

    def test_non_integer_bounds(self, rng):
        engine = RangeQueryEngine(make_cube((6, 6), rng), max_fanout=None)
        with pytest.raises(ValueError, match="must be integers"):
            engine.sum_many(
                np.array([[0.0, 0.0]]), np.array([[2.0, 2.0]])
            )

    def test_empty_batch(self, rng):
        engine = RangeQueryEngine(make_cube((6, 6), rng), max_fanout=3)
        empty = np.empty((0, 2), dtype=np.int64)
        assert engine.sum_many(empty, empty).shape == (0,)
        assert engine.count_many(empty, empty).shape == (0,)
        indices, values = engine.max_many(empty, empty)
        assert indices.shape == (0, 2) and values.shape == (0,)

    def test_average_many_zero_count_is_none(self, rng):
        cube = make_cube((4, 4), rng)
        counts = np.zeros((4, 4), dtype=np.int64)
        counts[2, 2] = 3
        engine = RangeQueryEngine(cube, counts=counts, max_fanout=None)
        averages = engine.average_many(
            np.array([[0, 0], [2, 2]]), np.array([[1, 1], [2, 2]])
        )
        assert averages.dtype == object
        assert averages[0] is None  # zero records under the region
        assert averages[1] == float(cube[2, 2]) / 3.0

    def test_range_query_objects_accepted(self, rng):
        cube = make_cube((10, 10), rng)
        engine = RangeQueryEngine(cube, max_fanout=None)
        queries = [
            RangeQuery((RangeSpec.between(2, 5), RangeSpec.all())),
            Box((0, 0), (9, 9)),
        ]
        sums = engine.sum_many(queries)
        assert sums[0] == cube[2:6].sum()
        assert sums[1] == cube.sum()


class TestCornerTable:
    def test_shape_and_signs(self):
        take_hi, signs = corner_table(3)
        assert take_hi.shape == (8, 3)
        assert signs.shape == (8,)
        # The all-high corner is +1; flipping one choice flips the sign.
        assert signs[np.flatnonzero(take_hi.all(axis=1))[0]] == 1
        assert int(signs.sum()) == 0

    def test_cached_and_readonly(self):
        a1, s1 = corner_table(2)
        a2, s2 = corner_table(2)
        assert a1 is a2 and s1 is s2
        with pytest.raises(ValueError):
            a1[0, 0] = True


class TestNormalization:
    def test_single_query_promoted(self):
        lo, hi = normalize_query_arrays([1, 2], [3, 4], (6, 6))
        assert lo.shape == hi.shape == (1, 2)

    def test_boxes_to_arrays_roundtrip(self, rng):
        boxes = [random_box((7, 7), rng) for _ in range(10)]
        lows, highs = boxes_to_arrays(boxes, (7, 7))
        for k, box in enumerate(boxes):
            assert tuple(lows[k]) == box.lo
            assert tuple(highs[k]) == box.hi


class TestRollingSumBatch:
    def test_matches_per_window_queries(self, rng):
        cube = make_cube((40, 6), rng)
        engine = RangeQueryEngine(cube, max_fanout=None)
        results = list(engine.rolling_sum(axis=0, window=7))
        assert len(results) == 34
        for start, value in results:
            assert isinstance(value, int)
            assert value == cube[start : start + 7].sum()

    def test_window_bounds_shape(self):
        lows, highs = rolling_window_bounds(
            (10, 4), axis=0, window=3, fixed=[(0, 9), (1, 2)]
        )
        assert lows.shape == highs.shape == (8, 2)
        assert (highs[:, 0] - lows[:, 0] == 2).all()
        assert (lows[:, 1] == 1).all() and (highs[:, 1] == 2).all()

    def test_blocked_engine_rolling(self, rng):
        cube = make_cube((30, 8), rng)
        engine = RangeQueryEngine(cube, block_size=4, max_fanout=None)
        for start, value in engine.rolling_sum(axis=1, window=3):
            assert value == cube[:, start : start + 3].sum()


class TestWorkloadRouting:
    def test_run_query_log_matches_scalar(self, rng):
        shape = (12, 10)
        cube = make_cube(shape, rng)
        engine = RangeQueryEngine(cube, max_fanout=3)
        queries = [random_box(shape, rng) for _ in range(50)]
        assert (
            run_query_log(engine, queries, "sum")
            == [engine.sum(q) for q in queries]
        ).all()
        assert (
            run_query_log(engine, queries, "max")
            == [engine.max(q)[1] for q in queries]
        ).all()
        assert (
            run_query_log(engine, queries, "min")
            == [engine.min(q)[1] for q in queries]
        ).all()

    def test_unknown_aggregate(self, rng):
        engine = RangeQueryEngine(make_cube((4, 4), rng), max_fanout=None)
        with pytest.raises(ValueError, match="unknown aggregate"):
            run_query_log(engine, [], "median")

    def test_random_query_arrays_valid(self, rng):
        lows, highs = random_query_arrays((9, 5, 7), 300, rng)
        assert (lows >= 0).all()
        assert (lows <= highs).all()
        assert (highs < np.array([9, 5, 7])).all()


class TestCounterParity:
    def test_prefix_corner_charges_match_scalar(self, rng):
        """Batch charges exactly the valid-corner reads, like scalar."""
        cube = make_cube((9, 9), rng)
        engine = RangeQueryEngine(cube, max_fanout=None)
        boxes = [random_box((9, 9), rng) for _ in range(40)]
        scalar_counter = AccessCounter()
        for box in boxes:
            engine.sum(box, scalar_counter)
        batch_counter = AccessCounter()
        engine.sum_many(boxes, counter=batch_counter)
        assert batch_counter.prefix_cells == scalar_counter.prefix_cells
        assert batch_counter.cube_cells == 0


class TestMinUnsignedRegression:
    """MIN on unsigned/bool cubes must not wrap through negation."""

    @pytest.mark.parametrize(
        "dtype", [np.uint8, np.uint16, np.uint32, np.uint64]
    )
    def test_unsigned_min_exact_no_warning(self, dtype):
        cube = np.arange(12, dtype=dtype)
        engine = RangeQueryEngine(cube, max_fanout=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            index, value = engine.min(Box((0,), (11,)))
        assert value == 0
        assert index == (0,)
        _, top = engine.max(Box((3,), (11,)))
        assert top == 11

    def test_unsigned_min_random(self, rng):
        cube = rng.integers(0, 200, size=(9, 8)).astype(np.uint32)
        engine = RangeQueryEngine(cube, max_fanout=3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for _ in range(50):
                box = random_box((9, 8), rng)
                _, value = engine.min(box)
                assert value == int(cube[box.slices()].min())
            _, values = engine.min_many(
                *random_query_arrays((9, 8), 50, rng)
            )
        assert values.min() >= 0

    def test_bool_cube_min_max(self):
        cube = np.zeros((4, 4), dtype=bool)
        cube[2, 3] = True
        engine = RangeQueryEngine(cube, max_fanout=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _, lowest = engine.min(Box((0, 0), (3, 3)))
            _, highest = engine.max(Box((0, 0), (3, 3)))
        assert lowest == 0
        assert highest == 1


class TestPythonScalarReturns:
    """Engine aggregates return plain Python scalars on every path."""

    @pytest.mark.parametrize("block_size", [1, 4])
    def test_sum_count_are_ints(self, block_size, rng):
        cube = make_cube((10, 10), rng)
        counts = rng.integers(1, 3, (10, 10)).astype(np.int64)
        engine = RangeQueryEngine(
            cube, block_size=block_size, max_fanout=2, counts=counts
        )
        box = Box((1, 2), (7, 8))
        assert type(engine.sum(box)) is int
        assert type(engine.count(box)) is int
        assert type(engine.average(box)) is float
        _, top = engine.max(box)
        _, bottom = engine.min(box)
        assert type(top) is int
        assert type(bottom) is int

    def test_rolling_sum_yields_ints(self, rng):
        engine = RangeQueryEngine(make_cube((12,), rng), max_fanout=None)
        for start, value in engine.rolling_sum(axis=0, window=5):
            assert type(start) is int
            assert type(value) is int

    def test_float_cube_sum_is_float(self, rng):
        engine = RangeQueryEngine(
            rng.standard_normal((6, 6)), max_fanout=None
        )
        assert type(engine.sum(Box((0, 0), (3, 3)))) is float


class TestCombineCornerDtype:
    """Regression companion to cubelint ``dtype-safety``: the corner
    reduction states its dtype explicitly, so narrow corner values can
    never wrap even if a caller skips the prefix-layer promotion."""

    def test_narrow_corner_values_promote(self):
        from repro.core.operators import SUM

        values = np.array([[120, -120]], dtype=np.int8)
        valid = np.ones((1, 2), dtype=bool)
        signs = np.array([1, -1], dtype=np.int64)
        result = combine_corner_values(values, valid, signs, SUM)
        assert result.dtype == np.int64
        assert result[0] == 240

    def test_xor_stays_in_source_dtype(self):
        values = np.array([[0x5A, 0x0F]], dtype=np.int8)
        valid = np.ones((1, 2), dtype=bool)
        signs = np.array([1, -1], dtype=np.int64)
        result = combine_corner_values(values, valid, signs, XOR)
        assert result.dtype == np.int8
        assert result[0] == (0x5A ^ 0x0F)
