"""Tests for the naive scan baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.instrumentation import AccessCounter
from repro.query.naive import (
    naive_max_index,
    naive_max_value,
    naive_range_sum,
    naive_sum_range,
)
from repro.query.workload import make_cube


@pytest.fixture
def rng():
    return np.random.default_rng(91)


class TestNaiveSum:
    def test_matches_numpy(self, rng):
        cube = make_cube((6, 7), rng)
        box = Box((1, 2), (4, 5))
        assert naive_range_sum(cube, box) == cube[1:5, 2:6].sum()

    def test_cost_is_volume(self, rng):
        cube = make_cube((10, 10), rng)
        counter = AccessCounter()
        naive_range_sum(cube, Box((2, 3), (7, 8)), counter)
        assert counter.cube_cells == 36

    def test_bounds_wrapper(self, rng):
        cube = make_cube((5, 5), rng)
        assert naive_sum_range(cube, [(0, 4), (2, 2)]) == cube[:, 2].sum()


class TestNaiveMax:
    def test_index_and_value_agree(self, rng):
        cube = make_cube((9, 9), rng, high=10**6)
        box = Box((2, 1), (8, 6))
        index = naive_max_index(cube, box)
        assert box.contains_point(index)
        assert cube[index] == naive_max_value(cube, box)
        assert cube[index] == cube[2:9, 1:7].max()

    def test_cost_is_volume(self, rng):
        cube = make_cube((10, 10), rng)
        counter = AccessCounter()
        naive_max_index(cube, Box((0, 0), (9, 9)), counter)
        assert counter.cube_cells == 100


class TestValidation:
    def test_out_of_bounds(self, rng):
        cube = make_cube((4, 4), rng)
        with pytest.raises(ValueError):
            naive_range_sum(cube, Box((0, 0), (4, 3)))

    def test_dimension_mismatch(self, rng):
        cube = make_cube((4, 4), rng)
        with pytest.raises(ValueError):
            naive_range_sum(cube, Box((0,), (3,)))

    def test_empty_region_returns_identity(self, rng):
        cube = make_cube((4, 4), rng)
        assert naive_range_sum(cube, Box((2, 0), (1, 3))) == 0
