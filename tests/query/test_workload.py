"""Tests for the workload/query-log generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box, full_box
from repro.query.ranges import SpecKind
from repro.query.workload import (
    WorkloadProfile,
    clustered_points,
    fixed_size_box,
    generate_query_log,
    make_cube,
    make_float_cube,
    random_box,
)


@pytest.fixture
def rng():
    return np.random.default_rng(101)


class TestCubeGenerators:
    def test_make_cube_bounds(self, rng):
        cube = make_cube((5, 5), rng, low=3, high=9)
        assert cube.min() >= 3 and cube.max() < 9
        assert cube.dtype == np.int64

    def test_make_float_cube(self, rng):
        cube = make_float_cube((4, 4), rng)
        assert cube.shape == (4, 4) and cube.dtype == np.float64

    def test_reproducibility(self):
        a = make_cube((6, 6), np.random.default_rng(5))
        b = make_cube((6, 6), np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestBoxGenerators:
    def test_random_box_within_bounds(self, rng):
        bounds = full_box((10, 20, 5))
        for _ in range(100):
            box = random_box((10, 20, 5), rng)
            assert bounds.contains_box(box)
            assert not box.is_empty

    def test_random_box_length_caps(self, rng):
        for _ in range(50):
            box = random_box((50,), rng, min_length=5, max_length=9)
            assert 5 <= box.volume <= 9

    def test_fixed_size_box(self, rng):
        for _ in range(50):
            box = fixed_size_box((30, 30), (7, 11), rng)
            assert box.lengths == (7, 11)
            assert full_box((30, 30)).contains_box(box)

    def test_fixed_size_invalid_length(self, rng):
        with pytest.raises(ValueError):
            fixed_size_box((5,), (6,), rng)


class TestQueryLogGenerator:
    def test_profile_shapes_the_log(self, rng):
        profile = WorkloadProfile(
            range_probability=(1.0, 0.0),
            singleton_probability=1.0,
            range_lengths=((3, 8), (2, 2)),
        )
        log = generate_query_log((50, 50), profile, 100, rng)
        assert len(log) == 100
        for query in log:
            assert query.specs[0].kind is SpecKind.RANGE
            assert 3 <= query.specs[0].length(50) <= 8
            assert query.specs[1].kind is SpecKind.SINGLETON

    def test_all_dimension(self, rng):
        profile = WorkloadProfile(
            range_probability=(0.0,),
            singleton_probability=0.0,
            range_lengths=((2, 3),),
        )
        log = generate_query_log((10,), profile, 20, rng)
        assert all(q.specs[0].kind is SpecKind.ALL for q in log)

    def test_dimension_mismatch(self, rng):
        profile = WorkloadProfile(
            range_probability=(0.5,),
            singleton_probability=0.5,
            range_lengths=((2, 3),),
        )
        with pytest.raises(ValueError):
            generate_query_log((10, 10), profile, 5, rng)


class TestClusteredPoints:
    def test_clusters_are_dense(self, rng):
        box = Box((10, 10), (19, 19))
        points = clustered_points((40, 40), [box], 0.9, 0, rng)
        inside = [p for p in points if box.contains_point(p)]
        assert len(inside) >= 0.7 * box.volume

    def test_noise_outside_clusters_exists(self, rng):
        box = Box((0, 0), (4, 4))
        points = clustered_points((100, 100), [box], 1.0, 200, rng)
        outside = [p for p in points if not box.contains_point(p)]
        assert len(outside) > 100

    def test_values_positive(self, rng):
        points = clustered_points(
            (20, 20), [Box((0, 0), (5, 5))], 1.0, 10, rng, low=1, high=50
        )
        assert all(1 <= v < 50 for v in points.values())
