"""The engine's deprecation shims and registry-driven construction.

The pre-registry kwargs (``block_size`` / ``max_fanout`` /
``prefix_dims``) and private structure attributes (``_sum_index`` /
``_max_tree`` / ...) must keep working — warning, but answering exactly
like their spec-based replacements.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.index.registry import IndexSpec
from repro.query.engine import RangeQueryEngine
from repro.query.workload import make_cube, random_query_arrays


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestLegacyKwargs:
    def test_block_size_warns_and_matches_spec(self, rng):
        cube = make_cube((18, 14), rng)
        with pytest.warns(DeprecationWarning, match="block_size"):
            legacy = RangeQueryEngine(cube, block_size=4, max_index=None)
        modern = RangeQueryEngine(
            cube,
            sum_index=IndexSpec.of("blocked_prefix_sum", block_size=4),
            max_index=None,
        )
        assert legacy.sum_spec == modern.sum_spec
        lows, highs = random_query_arrays(cube.shape, 20, rng)
        assert np.array_equal(
            legacy.sum_many(lows, highs), modern.sum_many(lows, highs)
        )

    def test_prefix_dims_warns_and_maps_to_partial(self, rng):
        cube = make_cube((10, 8, 6), rng)
        with pytest.warns(DeprecationWarning, match="prefix_dims"):
            legacy = RangeQueryEngine(
                cube, prefix_dims=(0, 2), max_index=None
            )
        assert legacy.sum_spec.name == "partial_prefix_sum"
        assert legacy.sum_spec.as_dict()["prefix_dims"] == (0, 2)

    def test_max_fanout_warns_and_maps_to_tree(self, rng):
        cube = make_cube((9, 9), rng)
        with pytest.warns(DeprecationWarning, match="max_fanout"):
            engine = RangeQueryEngine(cube, max_fanout=3)
        assert engine.max_spec == IndexSpec.of("range_max_tree", fanout=3)

    def test_max_fanout_none_disables_trees(self, rng):
        cube = make_cube((6, 6), rng)
        with pytest.warns(DeprecationWarning):
            engine = RangeQueryEngine(cube, max_fanout=None)
        assert engine.max_spec is None
        assert engine.route("max") is None

    def test_default_construction_is_warning_free(self, rng):
        cube = make_cube((7, 7), rng)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = RangeQueryEngine(cube)
        assert engine.sum_spec.name == "prefix_sum"
        assert engine.max_spec.name == "range_max_tree"

    def test_legacy_and_modern_sum_kwargs_conflict(self, rng):
        cube = make_cube((5, 5), rng)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="cannot combine"):
                RangeQueryEngine(
                    cube, sum_index="prefix_sum", block_size=4
                )

    def test_legacy_and_modern_max_kwargs_conflict(self, rng):
        cube = make_cube((5, 5), rng)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="cannot combine"):
                RangeQueryEngine(cube, max_index=None, max_fanout=3)

    def test_block_size_and_prefix_dims_still_exclusive(self, rng):
        cube = make_cube((5, 5), rng)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="cannot combine"):
                RangeQueryEngine(cube, block_size=3, prefix_dims=(0,))


class TestDeprecatedAttributes:
    def test_sum_index_property(self, rng):
        from repro.core.prefix_sum import PrefixSumCube

        engine = RangeQueryEngine(make_cube((6, 6), rng))
        with pytest.warns(DeprecationWarning, match="_sum_index"):
            structure = engine._sum_index
        assert isinstance(structure, PrefixSumCube)

    def test_max_tree_property(self, rng):
        from repro.core.range_max import RangeMaxTree

        engine = RangeQueryEngine(make_cube((6, 6), rng))
        with pytest.warns(DeprecationWarning, match="_max_tree"):
            assert isinstance(engine._max_tree, RangeMaxTree)
        with pytest.warns(DeprecationWarning, match="_min_tree"):
            assert isinstance(engine._min_tree, RangeMaxTree)

    def test_count_index_property_none_without_counts(self, rng):
        engine = RangeQueryEngine(make_cube((6, 6), rng))
        with pytest.warns(DeprecationWarning, match="_count_index"):
            assert engine._count_index is None

    def test_block_size_property(self, rng):
        cube = make_cube((12, 12), rng)
        with pytest.warns(DeprecationWarning):
            engine = RangeQueryEngine(cube, block_size=3, max_index=None)
        with pytest.warns(DeprecationWarning, match="block_size"):
            assert engine.block_size == 3
        plain = RangeQueryEngine(cube, max_index=None)
        with pytest.warns(DeprecationWarning, match="block_size"):
            assert plain.block_size == 1


class TestRegistryDrivenEngine:
    def test_string_sum_index(self, rng):
        cube = make_cube((8, 8), rng)
        engine = RangeQueryEngine(
            cube,
            sum_index="blocked_prefix_sum",
            sum_params={"block_size": 2},
            max_index=None,
        )
        assert engine.sum_spec == IndexSpec.of(
            "blocked_prefix_sum", block_size=2
        )

    def test_sum_params_merge_over_spec(self, rng):
        cube = make_cube((8, 8), rng)
        engine = RangeQueryEngine(
            cube,
            sum_index=IndexSpec.of("blocked_prefix_sum", block_size=2),
            sum_params={"block_size": 4},
            max_index=None,
        )
        assert engine.sum_spec.as_dict()["block_size"] == 4

    def test_wrong_kind_rejected(self, rng):
        cube = make_cube((5, 5), rng)
        with pytest.raises(ValueError, match="'sum' index"):
            RangeQueryEngine(cube, sum_index="range_max_tree")
        with pytest.raises(ValueError, match="'max' index"):
            RangeQueryEngine(cube, max_index="prefix_sum")

    def test_route_unknown_aggregate(self, rng):
        engine = RangeQueryEngine(make_cube((5, 5), rng))
        with pytest.raises(KeyError, match="unknown aggregate"):
            engine.route("median")

    def test_describe_lists_built_routes(self, rng):
        cube = make_cube((6, 6), rng)
        engine = RangeQueryEngine(cube, counts=np.ones_like(cube))
        info = engine.describe()
        assert set(info) == {"sum", "count", "max", "min"}
        assert info["sum"]["index"] == "prefix_sum"
        assert info["max"]["index"] == "range_max_tree"

    def test_no_structure_specific_branches(self):
        """The acceptance criterion: the engine's query methods consult
        the routing table only — no isinstance/if-elif on structures."""
        import inspect

        import repro.query.engine as engine_module

        source = inspect.getsource(engine_module.RangeQueryEngine)
        for cls_name in (
            "PrefixSumCube",
            "BlockedPrefixSumCube",
            "PartialPrefixSumCube",
            "BlockedPartialPrefixSumCube",
            "RangeMaxTree",
        ):
            assert cls_name not in source
