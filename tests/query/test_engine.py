"""Tests for the RangeQueryEngine facade and derived aggregates."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import Box
from repro.instrumentation import AccessCounter
from repro.query.engine import RangeQueryEngine
from repro.query.ranges import RangeQuery, RangeSpec
from repro.query.workload import make_cube, random_box


@pytest.fixture
def rng():
    return np.random.default_rng(83)


class TestSumPaths:
    def test_basic_and_blocked_agree(self, rng):
        cube = make_cube((30, 30), rng)
        basic = RangeQueryEngine(cube, block_size=1, max_fanout=None)
        blocked = RangeQueryEngine(cube, block_size=6, max_fanout=None)
        for _ in range(30):
            box = random_box(cube.shape, rng)
            assert basic.sum(box) == blocked.sum(box)

    def test_range_query_objects_accepted(self, rng):
        cube = make_cube((10, 10), rng)
        engine = RangeQueryEngine(cube, max_fanout=None)
        query = RangeQuery((RangeSpec.between(2, 5), RangeSpec.all()))
        assert engine.sum(query) == cube[2:6].sum()


class TestDerivedAggregates:
    def test_count_from_counts_cube(self, rng):
        cube = make_cube((8, 8), rng)
        counts = rng.integers(0, 5, (8, 8)).astype(np.int64)
        engine = RangeQueryEngine(cube, counts=counts, max_fanout=None)
        box = Box((1, 1), (5, 6))
        assert engine.count(box) == counts[1:6, 1:7].sum()

    def test_count_without_counts_is_volume(self, rng):
        engine = RangeQueryEngine(make_cube((8, 8), rng), max_fanout=None)
        assert engine.count(Box((1, 1), (5, 6))) == 30

    def test_average_is_sum_over_count(self, rng):
        cube = make_cube((8, 8), rng)
        counts = rng.integers(1, 5, (8, 8)).astype(np.int64)
        engine = RangeQueryEngine(cube, counts=counts, max_fanout=None)
        box = Box((2, 0), (6, 7))
        expected = cube[2:7].sum() / counts[2:7].sum()
        assert engine.average(box) == pytest.approx(expected)

    def test_average_zero_count_is_none(self, rng):
        cube = np.zeros((4, 4), dtype=np.int64)
        counts = np.zeros((4, 4), dtype=np.int64)
        engine = RangeQueryEngine(cube, counts=counts, max_fanout=None)
        assert engine.average(Box((0, 0), (1, 1))) is None

    def test_counts_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            RangeQueryEngine(
                make_cube((4, 4), rng), counts=np.zeros((3, 3))
            )

    def test_min_is_negated_max(self, rng):
        cube = make_cube((20, 20), rng, low=-50, high=50)
        engine = RangeQueryEngine(cube, max_fanout=4)
        box = Box((3, 5), (15, 18))
        index, value = engine.min(box)
        assert value == cube[3:16, 5:19].min()
        assert cube[index] == value

    def test_max(self, rng):
        cube = make_cube((20, 20), rng)
        engine = RangeQueryEngine(cube, max_fanout=4)
        box = Box((0, 0), (19, 10))
        index, value = engine.max(box)
        assert value == cube[:, :11].max()
        assert cube[index] == value

    def test_max_disabled(self, rng):
        engine = RangeQueryEngine(make_cube((4, 4), rng), max_fanout=None)
        with pytest.raises(RuntimeError):
            engine.max(Box((0, 0), (1, 1)))


class TestRollingWindows:
    def test_rolling_sum_matches_direct(self, rng):
        cube = make_cube((12, 5), rng)
        engine = RangeQueryEngine(cube, max_fanout=None)
        results = dict(engine.rolling_sum(axis=0, window=4))
        assert len(results) == 9
        for start, value in results.items():
            assert value == cube[start : start + 4].sum()

    def test_rolling_sum_with_fixed_bounds(self, rng):
        cube = make_cube((10, 10), rng)
        engine = RangeQueryEngine(cube, max_fanout=None)
        results = dict(
            engine.rolling_sum(axis=1, window=3, fixed=[(2, 4), (0, 9)])
        )
        for start, value in results.items():
            assert value == cube[2:5, start : start + 3].sum()

    def test_rolling_sum_constant_cost_per_window(self, rng):
        """Each window is one prefix-sum query: 2^d reads, not O(window)."""
        cube = make_cube((256,), rng)
        engine = RangeQueryEngine(cube, max_fanout=None)
        counter = AccessCounter()
        windows = list(engine.rolling_sum(axis=0, window=128, counter=counter))
        assert len(windows) == 129
        assert counter.prefix_cells <= 2 * 129

    def test_invalid_axis(self, rng):
        engine = RangeQueryEngine(make_cube((5,), rng), max_fanout=None)
        with pytest.raises(ValueError):
            list(engine.rolling_sum(axis=1, window=2))

    def test_invalid_window(self, rng):
        engine = RangeQueryEngine(make_cube((5,), rng), max_fanout=None)
        with pytest.raises(ValueError):
            list(engine.rolling_sum(axis=0, window=6))


class TestPrefixDimsDesign:
    """§9.1 subset design wired through the engine."""

    def test_subset_engine_matches_full(self, rng):
        cube = make_cube((20, 20, 6), rng)
        full = RangeQueryEngine(cube, max_fanout=None)
        subset = RangeQueryEngine(
            cube, max_fanout=None, prefix_dims=[0, 1]
        )
        for _ in range(30):
            box = random_box(cube.shape, rng)
            assert subset.sum(box) == full.sum(box)

    def test_subset_with_counts(self, rng):
        cube = make_cube((10, 10), rng)
        counts = rng.integers(1, 4, (10, 10)).astype(np.int64)
        engine = RangeQueryEngine(
            cube, max_fanout=None, counts=counts, prefix_dims=[0]
        )
        box = Box((2, 3), (7, 8))
        assert engine.count(box) == counts[2:8, 3:9].sum()
        assert engine.average(box) == pytest.approx(
            cube[2:8, 3:9].sum() / counts[2:8, 3:9].sum()
        )

    def test_subset_and_blocking_conflict(self, rng):
        with pytest.raises(ValueError, match="cannot combine"):
            RangeQueryEngine(
                make_cube((8, 8), rng), block_size=4, prefix_dims=[0]
            )

    def test_datacube_prefix_dims_by_name(self, rng):
        from repro.cube.datacube import DataCube
        from repro.cube.dimensions import IntegerDimension

        measures = make_cube((12, 8), rng)
        cube = DataCube(
            [IntegerDimension("a", 0, 11), IntegerDimension("b", 0, 7)],
            measures,
        )
        cube.build_index(prefix_dims=["a"], max_fanout=None)
        assert cube.sum(a=(3, 9)) == measures[3:10].sum()


class TestEngineUpdates:
    """The engine-level §5/§7 batch path."""

    def test_all_structures_stay_exact(self, rng):
        from repro.core.batch_update import PointUpdate

        cube = make_cube((20, 20), rng, high=1000).astype(np.int64)
        counts = rng.integers(1, 5, (20, 20)).astype(np.int64)
        engine = RangeQueryEngine(
            cube, block_size=4, max_fanout=3, counts=counts
        )
        mirror = cube.copy()
        count_mirror = counts.copy()
        for _ in range(5):
            updates = []
            count_updates = []
            for _ in range(10):
                index = (
                    int(rng.integers(0, 20)),
                    int(rng.integers(0, 20)),
                )
                delta = int(rng.integers(-50, 100))
                updates.append(PointUpdate(index, delta))
                count_updates.append(PointUpdate(index, 1))
                mirror[index] += delta
                count_mirror[index] += 1
            engine.apply_updates(updates, count_updates)
            for _ in range(8):
                box = random_box((20, 20), rng)
                window = mirror[box.slices()]
                assert engine.sum(box) == window.sum()
                assert engine.count(box) == count_mirror[box.slices()].sum()
                _, top = engine.max(box)
                assert top == window.max()
                _, bottom = engine.min(box)
                assert bottom == window.min()

    def test_duplicate_cells_merge_before_assignment(self, rng):
        from repro.core.batch_update import PointUpdate

        cube = make_cube((8, 8), rng).astype(np.int64)
        engine = RangeQueryEngine(cube, max_fanout=2)
        engine.apply_updates(
            [PointUpdate((3, 3), 500), PointUpdate((3, 3), 700)]
        )
        _, top = engine.max(Box((3, 3), (3, 3)))
        assert top == cube[3, 3] + 1200

    def test_count_updates_without_counts_cube(self, rng):
        from repro.core.batch_update import PointUpdate

        engine = RangeQueryEngine(make_cube((5, 5), rng), max_fanout=None)
        with pytest.raises(ValueError, match="without a counts cube"):
            engine.apply_updates([], [PointUpdate((0, 0), 1)])
