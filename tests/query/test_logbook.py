"""Tests for the query logbook (the §9 tuning loop's input)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.query.logbook import QueryLog
from repro.query.ranges import RangeQuery, RangeSpec
from repro.query.workload import WorkloadProfile, generate_query_log


@pytest.fixture
def rng():
    return np.random.default_rng(211)


def sample_query():
    return RangeQuery(
        (RangeSpec.between(2, 9), RangeSpec.all(), RangeSpec.at(1))
    )


class TestRecording:
    def test_record_returns_query(self):
        log = QueryLog((20, 10, 5))
        query = sample_query()
        assert log.record(query) is query
        assert len(log) == 1
        assert log.queries == (query,)

    def test_dimension_mismatch_rejected(self):
        log = QueryLog((20, 10))
        with pytest.raises(ValueError):
            log.record(sample_query())

    def test_out_of_bounds_query_rejected(self):
        log = QueryLog((5, 10, 5))
        with pytest.raises(ValueError):
            log.record(sample_query())  # 2..9 exceeds size 5

    def test_clear(self):
        log = QueryLog((20, 10, 5))
        log.record(sample_query())
        log.clear()
        assert len(log) == 0


class TestOptimizerBridges:
    def test_workloads_bucket_by_cuboid(self):
        log = QueryLog((20, 10, 5))
        log.record(sample_query())
        log.record(
            RangeQuery(
                (RangeSpec.all(), RangeSpec.between(0, 4), RangeSpec.all())
            )
        )
        workloads = log.workloads()
        assert {w.key for w in workloads} == {(0, 2), (1,)}

    def test_length_matrix_matches_direct_call(self, rng):
        from repro.optimizer.dimension_selection import (
            active_range_lengths,
        )

        shape = (30, 20, 8)
        profile = WorkloadProfile(
            range_probability=(0.7, 0.4, 0.1),
            singleton_probability=0.5,
            range_lengths=((3, 15), (2, 10), (2, 4)),
        )
        queries = generate_query_log(shape, profile, 50, rng)
        log = QueryLog(shape)
        for query in queries:
            log.record(query)
        assert np.array_equal(
            log.length_matrix(), active_range_lengths(queries, shape)
        )

    def test_end_to_end_retuning_cycle(self, rng):
        """serve → log → select → materialize, from the logbook alone."""
        from repro.optimizer.cuboid_selection import CuboidSelector
        from repro.optimizer.materialize import MaterializedCuboidSet
        from repro.query.workload import make_cube

        shape = (30, 20, 8)
        cube = make_cube(shape, rng, high=50)
        log = QueryLog(shape)
        profile = WorkloadProfile(
            range_probability=(0.8, 0.5, 0.1),
            singleton_probability=0.5,
            range_lengths=((4, 20), (3, 12), (2, 4)),
        )
        for query in generate_query_log(shape, profile, 80, rng):
            log.record(query)
        plan = CuboidSelector(shape, log.workloads(), 2000).solve()
        served = MaterializedCuboidSet(cube, plan.chosen)
        for query in log.queries[:40]:
            expected = int(cube[query.to_box(shape).slices()].sum())
            assert served.range_sum(query) == expected


class TestPersistence:
    def test_json_roundtrip(self, rng):
        shape = (30, 20, 8)
        profile = WorkloadProfile(
            range_probability=(0.6, 0.5, 0.3),
            singleton_probability=0.4,
            range_lengths=((3, 15), (2, 10), (2, 4)),
        )
        log = QueryLog(shape)
        for query in generate_query_log(shape, profile, 40, rng):
            log.record(query)
        restored = QueryLog.from_json(log.to_json())
        assert restored.shape == log.shape
        assert restored.queries == log.queries

    def test_file_roundtrip(self, tmp_path):
        log = QueryLog((20, 10, 5))
        log.record(sample_query())
        path = tmp_path / "log.json"
        log.save(path)
        restored = QueryLog.load(path)
        assert restored.queries == log.queries

    def test_bad_spec_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown spec kind"):
            QueryLog.from_json(
                '{"shape": [4], "queries": [[["median", 1]]]}'
            )
