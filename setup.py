"""Setuptools shim so editable installs work without network access.

All project metadata lives in ``pyproject.toml``; this file only exists to
enable ``pip install -e .`` on environments whose pip lacks the ``wheel``
package required by the PEP 660 editable path.
"""

from setuptools import setup

setup()
