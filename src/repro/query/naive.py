"""Naive range-query baselines (no precomputation).

The paper's point of departure (§1): without auxiliary information a
range-sum or range-max must touch every cell of the query region — a cost
equal to the query's volume, versus the prefix-sum method's constant
``2^d``.  These scanners are the control arm of every benchmark.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import Box
from repro.core.operators import SUM, InvertibleOperator
from repro.instrumentation import NULL_COUNTER, AccessCounter


def naive_range_sum(
    cube: np.ndarray,
    box: Box,
    counter: AccessCounter = NULL_COUNTER,
    operator: InvertibleOperator = SUM,
) -> object:
    """Aggregate every cell of ``box`` directly from the cube."""
    _check(cube, box)
    counter.count_cube(box.volume)
    return operator.reduce_box(cube[box.slices()])


def naive_max_index(
    cube: np.ndarray, box: Box, counter: AccessCounter = NULL_COUNTER
) -> tuple[int, ...]:
    """Index of a maximum cell of ``box`` by full scan."""
    _check(cube, box)
    counter.count_cube(box.volume)
    window = cube[box.slices()]
    local = np.unravel_index(int(np.argmax(window)), window.shape)
    return tuple(l + o for l, o in zip(box.lo, local))


def naive_max_value(
    cube: np.ndarray, box: Box, counter: AccessCounter = NULL_COUNTER
) -> object:
    """Maximum value of ``box`` by full scan."""
    return cube[naive_max_index(cube, box, counter)]


def naive_sum_range(
    cube: np.ndarray,
    bounds: Sequence[tuple[int, int]],
    counter: AccessCounter = NULL_COUNTER,
) -> object:
    """Convenience wrapper taking ``(lo, hi)`` pairs per dimension."""
    box = Box(
        tuple(lo for lo, _ in bounds), tuple(hi for _, hi in bounds)
    )
    return naive_range_sum(cube, box, counter)


def _check(cube: np.ndarray, box: Box) -> None:
    if box.ndim != cube.ndim:
        raise ValueError(
            f"query has {box.ndim} dims, cube has {cube.ndim}"
        )
    if box.is_empty:
        raise ValueError(f"empty query region {box}")
    for j, (lo, hi, n) in enumerate(zip(box.lo, box.hi, cube.shape)):
        if not 0 <= lo <= hi < n:
            raise ValueError(
                f"range {lo}:{hi} outside dimension {j} of size {n}"
            )
