"""Naive range-query baselines (no precomputation).

The paper's point of departure (§1): without auxiliary information a
range-sum or range-max must touch every cell of the query region — a cost
equal to the query's volume, versus the prefix-sum method's constant
``2^d``.  These scanners are the control arm of every benchmark.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._util import Box, check_query_box
from repro.core.operators import SUM, InvertibleOperator
from repro.instrumentation import NULL_COUNTER, AccessCounter


def naive_range_sum(
    cube: np.ndarray,
    box: Box,
    counter: AccessCounter = NULL_COUNTER,
    operator: InvertibleOperator = SUM,
) -> object:
    """Aggregate every cell of ``box`` directly from the cube.

    The oracle follows the normative empty-range rule: an empty box
    aggregates zero cells, which is the operator identity.
    """
    if check_query_box(box, cube.shape):
        return operator.identity
    counter.count_cube(box.volume)
    return operator.reduce_box(cube[box.slices()])


def naive_max_index(
    cube: np.ndarray, box: Box, counter: AccessCounter = NULL_COUNTER
) -> tuple[int, ...]:
    """Index of a maximum cell of ``box`` by full scan.

    An empty box has no witness cell, so it stays an error here (the
    ``None`` answer lives on the protocol ``query`` surface).
    """
    check_query_box(box, cube.shape, allow_empty=False)
    counter.count_cube(box.volume)
    window = cube[box.slices()]
    local = np.unravel_index(int(np.argmax(window)), window.shape)
    return tuple(l + o for l, o in zip(box.lo, local))


def naive_max_value(
    cube: np.ndarray, box: Box, counter: AccessCounter = NULL_COUNTER
) -> object:
    """Maximum value of ``box`` by full scan."""
    return cube[naive_max_index(cube, box, counter)]


def naive_sum_range(
    cube: np.ndarray,
    bounds: Sequence[tuple[int, int]],
    counter: AccessCounter = NULL_COUNTER,
) -> object:
    """Convenience wrapper taking ``(lo, hi)`` pairs per dimension."""
    box = Box(
        tuple(lo for lo, _ in bounds), tuple(hi for _, hi in bounds)
    )
    return naive_range_sum(cube, box, counter)
