"""Query-log recording — feeding the §9 optimizers from live traffic.

Section 9 assumes *"we are given either a query log, or statistics which
capture the average query statistics for each cuboid as well as the
number of queries"*.  :class:`QueryLog` produces that input from served
traffic: wrap an engine's queries with :meth:`record`, then hand
:meth:`workloads` to :class:`~repro.optimizer.CuboidSelector` or
:meth:`length_matrix` to the §9.1 dimension-selection algorithms — the
self-tuning loop *serve → log → re-tune → re-materialize*.

Logs serialize to plain JSON so tuning can run offline.
"""

from __future__ import annotations

import json
import os
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro._util import Box
from repro.query.ranges import RangeQuery, RangeSpec, SpecKind

if TYPE_CHECKING:
    from repro.optimizer.cuboid_selection import CuboidWorkload


class QueryLog:
    """An append-only log of range queries over one cube shape.

    Args:
        shape: Rank-domain shape of the cube the queries target.
    """

    def __init__(self, shape: Sequence[int]) -> None:
        self.shape = tuple(int(n) for n in shape)
        self._queries: list[RangeQuery] = []

    def __len__(self) -> int:
        return len(self._queries)

    def record(self, query: RangeQuery) -> RangeQuery:
        """Append one query (validated against the shape); returns it so
        call sites can log and execute in one expression."""
        if query.ndim != len(self.shape):
            raise ValueError(
                f"query has {query.ndim} dims, log expects "
                f"{len(self.shape)}"
            )
        query.to_box(self.shape)  # validates every spec's bounds
        self._queries.append(query)
        return query

    def record_box(self, box: Box) -> RangeQuery | None:
        """Record a served box, recovering its all/singleton/range form.

        The serving layer (:mod:`repro.serving`) answers canonical
        :class:`~repro._util.Box` regions; this classifies them back
        through :meth:`RangeQuery.from_box` so the §9 optimizers see the
        cuboid assignment live traffic implies.  Empty boxes are legal
        queries but carry no workload signal, so they are skipped
        (returns ``None``).
        """
        if box.is_empty:
            return None
        return self.record(RangeQuery.from_box(box, self.shape))

    @property
    def queries(self) -> tuple[RangeQuery, ...]:
        """The recorded queries, oldest first."""
        return tuple(self._queries)

    def workloads(self) -> list[CuboidWorkload]:
        """Per-cuboid averaged statistics for the §9.2 selector."""
        from repro.optimizer.cuboid_selection import workloads_from_log

        return workloads_from_log(self._queries, self.shape)

    def length_matrix(self) -> np.ndarray:
        """The §9.1 ``r_ij`` matrix for dimension selection."""
        from repro.optimizer.dimension_selection import (
            active_range_lengths,
        )

        return active_range_lengths(self._queries, self.shape)

    def clear(self) -> None:
        """Forget all recorded queries (e.g. after a re-tuning cycle)."""
        self._queries.clear()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the log (shape + per-query specs) to JSON."""
        payload = {
            "shape": list(self.shape),
            "queries": [
                [_spec_to_json(spec) for spec in query.specs]
                for query in self._queries
            ],
        }
        return json.dumps(payload)

    def save(self, path: str | os.PathLike[str]) -> None:
        """Write the JSON serialization to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> QueryLog:
        """Rebuild a log from :meth:`to_json` output."""
        payload = json.loads(text)
        log = cls(payload["shape"])
        for specs in payload["queries"]:
            log.record(
                RangeQuery(tuple(_spec_from_json(s) for s in specs))
            )
        return log

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> QueryLog:
        """Read a log previously written by :meth:`save`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def _spec_to_json(spec: RangeSpec) -> list[object]:
    if spec.kind is SpecKind.ALL:
        return ["all"]
    if spec.kind is SpecKind.SINGLETON:
        return ["at", spec.lo]
    return ["between", spec.lo, spec.hi]


def _spec_from_json(data: Sequence[Any]) -> RangeSpec:
    kind = data[0]
    if kind == "all":
        return RangeSpec.all()
    if kind == "at":
        return RangeSpec.at(int(data[1]))
    if kind == "between":
        return RangeSpec.between(int(data[1]), int(data[2]))
    raise ValueError(f"unknown spec kind {kind!r}")
