"""Query-log recording — feeding the §9 optimizers from live traffic.

Section 9 assumes *"we are given either a query log, or statistics which
capture the average query statistics for each cuboid as well as the
number of queries"*.  :class:`QueryLog` produces that input from served
traffic: wrap an engine's queries with :meth:`record`, then hand
:meth:`workloads` to :class:`~repro.optimizer.CuboidSelector` or
:meth:`length_matrix` to the §9.1 dimension-selection algorithms — the
self-tuning loop *serve → log → re-tune → re-materialize*.

Since the adaptive-advisor refactor, :class:`QueryLog` is a thin
compatibility shim over :class:`~repro.query.observer.WorkloadObserver`
configured for the legacy behaviour (unbounded retention, uniform
weights).  Online consumers should use the observer directly — it
bounds memory and re-weights toward recent traffic; the shim keeps the
offline serialize/re-tune workflow and its JSON format stable.

Logs serialize to plain JSON so tuning can run offline.

.. note::
   ``QueryLog`` deliberately has **no truth value**: it defines
   ``__len__``, so ``if log:`` would silently mean "non-empty", and a
   zero-traffic log would vanish from ``is it configured?`` checks (the
   ``save_logbooks`` bug fixed in the serving layer's review).  ``bool``
   on a log raises; write ``log is not None`` for presence and
   ``log.has_entries()`` (or ``len(log)``) for traffic.
"""

from __future__ import annotations

import json
import os
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any, NoReturn

import numpy as np

from repro._util import Box
from repro.query.observer import WorkloadObserver
from repro.query.ranges import RangeQuery, RangeSpec, SpecKind

if TYPE_CHECKING:
    from repro.optimizer.cuboid_selection import CuboidWorkload


class QueryLog:
    """An append-only log of range queries over one cube shape.

    Args:
        shape: Rank-domain shape of the cube the queries target.
    """

    def __init__(self, shape: Sequence[int]) -> None:
        self._observer = WorkloadObserver(
            shape, capacity=None, decay=1.0
        )

    @property
    def shape(self) -> tuple[int, ...]:
        """Rank-domain shape the log validates queries against."""
        return self._observer.shape

    @property
    def observer(self) -> WorkloadObserver:
        """The backing observer (unbounded, uniform-weight)."""
        return self._observer

    def __len__(self) -> int:
        return len(self._observer)

    def __bool__(self) -> NoReturn:
        """Refuse truthiness outright — it has two plausible meanings.

        ``__len__`` made ``bool(log)`` mean "has entries", which reads
        identically to the presence check ``if logbook:`` — the exact
        confusion behind the ``save_logbooks`` zero-traffic bug.  Use
        ``log is not None`` for presence, :meth:`has_entries` or
        ``len(log)`` for traffic.
        """
        raise TypeError(
            "QueryLog has no truth value: use 'log is not None' for "
            "presence and 'log.has_entries()' or 'len(log)' for traffic"
        )

    def has_entries(self) -> bool:
        """Whether any query has been recorded."""
        return len(self._observer) > 0

    def record(self, query: RangeQuery) -> RangeQuery:
        """Append one query (validated against the shape); returns it so
        call sites can log and execute in one expression."""
        try:
            return self._observer.observe_query(query)
        except ValueError as exc:
            # Preserve the legacy message's "log" wording.
            raise ValueError(
                str(exc).replace("observer expects", "log expects")
            ) from None

    def record_box(self, box: Box) -> RangeQuery | None:
        """Record a served box, recovering its all/singleton/range form.

        The serving layer (:mod:`repro.serving`) answers canonical
        :class:`~repro._util.Box` regions; this classifies them back
        through :meth:`RangeQuery.from_box` so the §9 optimizers see the
        cuboid assignment live traffic implies.  Empty boxes are legal
        queries but carry no workload signal, so they are skipped
        (returns ``None``).
        """
        return self._observer.observe_box(box)

    @property
    def queries(self) -> tuple[RangeQuery, ...]:
        """The recorded queries, oldest first."""
        return self._observer.queries

    def workloads(self) -> list[CuboidWorkload]:
        """Per-cuboid averaged statistics for the §9.2 selector."""
        from repro.optimizer.cuboid_selection import workloads_from_log

        return workloads_from_log(self.queries, self.shape)

    def length_matrix(self) -> np.ndarray:
        """The §9.1 ``r_ij`` matrix for dimension selection."""
        from repro.optimizer.dimension_selection import (
            active_range_lengths,
        )

        return active_range_lengths(self.queries, self.shape)

    def clear(self) -> None:
        """Forget all recorded queries (e.g. after a re-tuning cycle)."""
        self._observer.clear()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the log (shape + per-query specs) to JSON."""
        payload = {
            "shape": list(self.shape),
            "queries": [
                [_spec_to_json(spec) for spec in query.specs]
                for query in self.queries
            ],
        }
        return json.dumps(payload)

    def save(self, path: str | os.PathLike[str]) -> None:
        """Write the JSON serialization to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> QueryLog:
        """Rebuild a log from :meth:`to_json` output."""
        payload = json.loads(text)
        log = cls(payload["shape"])
        for specs in payload["queries"]:
            log.record(
                RangeQuery(tuple(_spec_from_json(s) for s in specs))
            )
        return log

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> QueryLog:
        """Read a log previously written by :meth:`save`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def _spec_to_json(spec: RangeSpec) -> list[object]:
    if spec.kind is SpecKind.ALL:
        return ["all"]
    if spec.kind is SpecKind.SINGLETON:
        return ["at", spec.lo]
    return ["between", spec.lo, spec.hi]


def _spec_from_json(data: Sequence[Any]) -> RangeSpec:
    kind = data[0]
    if kind == "all":
        return RangeSpec.all()
    if kind == "at":
        return RangeSpec.at(int(data[1]))
    if kind == "between":
        return RangeSpec.between(int(data[1]), int(data[2]))
    raise ValueError(f"unknown spec kind {kind!r}")
