"""Range-query specification model.

The paper (§2) describes a range query over a d-dimensional array by one
contiguous range ``l_j : h_j`` per dimension.  At the user level (§9.1) each
dimension of a query is one of

* **all** — the full domain (the query does not constrain the dimension);
* a **singleton** — a single value;
* an **active range** — a contiguous range that is neither a singleton nor
  the full domain.

The all/singleton/active distinction drives the physical-design algorithms
in :mod:`repro.optimizer`, so :class:`RangeSpec` keeps it explicit instead
of collapsing everything to ``(lo, hi)`` pairs immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from collections.abc import Sequence

from repro._util import Box, check_query_box, validate_range


class SpecKind(Enum):
    """How a query constrains one dimension."""

    ALL = "all"
    SINGLETON = "singleton"
    RANGE = "range"


@dataclass(frozen=True)
class RangeSpec:
    """Constraint on a single dimension of a range query.

    Use the factory classmethods :meth:`all`, :meth:`at`, :meth:`between`
    rather than the constructor.
    """

    kind: SpecKind
    lo: int | None = None
    hi: int | None = None

    @classmethod
    def all(cls) -> RangeSpec:
        """The dimension is unconstrained (the paper's ``all`` value)."""
        return cls(SpecKind.ALL)

    @classmethod
    def at(cls, value: int) -> RangeSpec:
        """The dimension is pinned to a single rank ``value``."""
        return cls(SpecKind.SINGLETON, value, value)

    @classmethod
    def between(cls, lo: int, hi: int) -> RangeSpec:
        """The dimension is constrained to ``lo <= i <= hi`` (inclusive)."""
        if lo > hi:
            raise ValueError(f"empty range {lo}:{hi}")
        if lo == hi:
            return cls.at(lo)
        return cls(SpecKind.RANGE, lo, hi)

    def resolve(self, size: int) -> tuple[int, int]:
        """Concrete inclusive bounds for a dimension of ``size`` ranks."""
        if self.kind is SpecKind.ALL:
            return 0, size - 1
        assert self.lo is not None and self.hi is not None
        validate_range(self.lo, self.hi, size)
        return self.lo, self.hi

    def is_active(self, size: int) -> bool:
        """Paper §9.1: active = contiguous range, neither singleton nor all.

        A RANGE spec that happens to cover the full domain counts as
        passive, matching the paper's definition.
        """
        if self.kind is not SpecKind.RANGE:
            return False
        return not (self.lo == 0 and self.hi == size - 1)

    def length(self, size: int) -> int:
        """Number of ranks selected in a dimension of ``size`` ranks."""
        lo, hi = self.resolve(size)
        return hi - lo + 1


@dataclass(frozen=True)
class RangeQuery:
    """A complete range query: one :class:`RangeSpec` per dimension."""

    specs: tuple[RangeSpec, ...]

    @classmethod
    def from_bounds(cls, bounds: Sequence[tuple[int, int]]) -> RangeQuery:
        """Build a query from explicit ``(lo, hi)`` pairs."""
        return cls(tuple(RangeSpec.between(lo, hi) for lo, hi in bounds))

    @classmethod
    def from_box(cls, box: Box, shape: Sequence[int]) -> RangeQuery:
        """Recover the §9.1 all/singleton/range classification of a box.

        The inverse of :meth:`to_box` up to classification: a dimension
        spanning its full extent becomes ``all``, a single rank becomes a
        singleton, anything else an active range.  The distinction feeds
        the §9 physical-design statistics, so query logs built from
        served boxes (:mod:`repro.serving`) see the same cuboid
        assignment a user-written :class:`RangeQuery` would.

        Raises:
            ValueError: On dimensionality mismatch or an empty box
                (an empty range has no spec-level spelling).
        """
        if box.ndim != len(shape):
            raise ValueError(
                f"box has {box.ndim} dims but shape has {len(shape)}"
            )
        if box.is_empty:
            raise ValueError(f"empty box {box} has no RangeSpec form")
        specs = []
        for lo, hi, size in zip(box.lo, box.hi, shape):
            if lo == 0 and hi == size - 1:
                specs.append(RangeSpec.all())
            else:
                specs.append(RangeSpec.between(int(lo), int(hi)))
        return cls(tuple(specs))

    @classmethod
    def full(cls, ndim: int) -> RangeQuery:
        """The query selecting the entire cube."""
        return cls(tuple(RangeSpec.all() for _ in range(ndim)))

    @property
    def ndim(self) -> int:
        """Number of dimensions the query addresses."""
        return len(self.specs)

    def to_box(self, shape: Sequence[int]) -> Box:
        """Resolve against a concrete array shape to an inclusive box."""
        if len(shape) != self.ndim:
            raise ValueError(
                f"query has {self.ndim} dims but array has {len(shape)}"
            )
        bounds = [
            spec.resolve(size) for spec, size in zip(self.specs, shape)
        ]
        return Box(
            tuple(lo for lo, _ in bounds), tuple(hi for _, hi in bounds)
        )

    def active_dimensions(self, shape: Sequence[int]) -> tuple[int, ...]:
        """Indices of the dimensions that are active per paper §9.1."""
        return tuple(
            j
            for j, (spec, size) in enumerate(zip(self.specs, shape))
            if spec.is_active(size)
        )

    def cuboid_key(self, shape: Sequence[int]) -> tuple[int, ...]:
        """The cuboid a query is assigned to (paper §9).

        *"Queries with ranges on dimensions d1 and d2 and all on dimension
        d3 will be assigned to the cuboid <d1, d2>"* — i.e. the set of
        dimensions that the query constrains at all (singleton or range).
        """
        return tuple(
            j
            for j, spec in enumerate(self.specs)
            if spec.kind is not SpecKind.ALL
        )


def canonical_box(
    query: RangeQuery | Box | Sequence[tuple[int, int]],
    shape: Sequence[int],
    *,
    allow_empty: bool = True,
) -> Box:
    """Resolve any query spelling to one validated, canonical :class:`Box`.

    The single normalizer shared by the scalar engine path
    (:meth:`~repro.query.engine.RangeQueryEngine.sum` and friends), the
    batch conversion helpers of :mod:`repro.query.batch`, and the serving
    layer's result-cache key (:mod:`repro.serving`): one query region has
    exactly one canonical form, so equal queries hash equal no matter how
    they were spelled (``Box``, ``RangeQuery``, raw ``(lo, hi)`` pairs,
    numpy vs Python ints).

    Args:
        query: A :class:`Box`, a :class:`RangeQuery`, or a sequence of
            per-dimension ``(lo, hi)`` pairs.
        shape: The cube shape to resolve and validate against.
        allow_empty: Forwarded to :func:`repro._util.check_query_box` —
            identity-valued aggregates accept empty regions, witness
            paths (MAX/MIN) reject them.

    Returns:
        The validated box with plain-``int`` bounds.

    Raises:
        ValueError: Dimensionality mismatch, non-empty bounds outside the
            cube, or an empty region with ``allow_empty=False``.
    """
    if isinstance(query, RangeQuery):
        box = query.to_box(shape)
    elif isinstance(query, Box):
        box = query
    else:
        pairs = [tuple(pair) for pair in query]
        if any(len(pair) != 2 for pair in pairs):
            raise ValueError(
                "bounds must be (lo, hi) pairs, one per dimension"
            )
        box = Box(
            tuple(lo for lo, _ in pairs), tuple(hi for _, hi in pairs)
        )
    box = Box(
        tuple(int(v) for v in box.lo), tuple(int(v) for v in box.hi)
    )
    check_query_box(box, shape, allow_empty=allow_empty)
    return box
