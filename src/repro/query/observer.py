"""Windowed, decay-weighted workload observation (the §9 loop's eyes).

Section 9 assumes the physical-design algorithms are *"given either a
query log, or statistics which capture the average query statistics for
each cuboid as well as the number of queries"*.  The original
:class:`~repro.query.logbook.QueryLog` produced that input by retaining
every query forever — fine for offline tuning, wrong for an online
advisor: memory grows without bound and last week's dashboard traffic
outvotes the workload of the last five minutes.

:class:`WorkloadObserver` replaces those internals with a bounded ring
buffer plus exponential event decay:

* at most ``capacity`` queries are retained (the ring drops the oldest);
* every observed event (query *or* update) ages earlier events by a
  factor ``decay``, so an entry that is ``a`` events old carries weight
  ``decay**a`` — the window re-estimates the Table-1 statistics
  (``V``, per-dimension ``x̄_i``, ``S``) and the per-operator
  query/update mix from *recent* traffic;
* :meth:`snapshot` freezes the current window into an immutable
  :class:`WorkloadSnapshot` the §9 advisor consumes without racing the
  live stream.

``capacity=None`` with ``decay=1.0`` degenerates to the historical
grow-forever, uniformly-weighted log, which is how
:class:`~repro.query.logbook.QueryLog` keeps its exact legacy behaviour
as a compatibility shim over this class.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro._util import Box
from repro.query.ranges import RangeQuery
from repro.query.stats import QueryStatistics, average_statistics

if TYPE_CHECKING:  # pragma: no cover
    from repro.optimizer.cuboid_selection import CuboidWorkload

#: Operator labels the observer tallies (serving's scalar surface plus
#: the update stream; anything else lands under its own label).
QUERY_OPS = ("sum", "count", "average", "max", "min")

#: The event label for point updates in the mix.
UPDATE_OP = "update"


@dataclass(frozen=True)
class WorkloadSnapshot:
    """An immutable view of the observed window, advisor-ready.

    Attributes:
        shape: Rank-domain shape of the observed cube.
        queries: The retained window, oldest first, each query paired
            with its decay weight at snapshot time.
        op_weights: Decay-weighted event count per operator label
            (queries under their operator, updates under ``"update"``).
        queries_seen: Lifetime query count (not windowed, not decayed).
        updates_seen: Lifetime update count.
    """

    shape: tuple[int, ...]
    queries: tuple[tuple[RangeQuery, float], ...]
    op_weights: dict[str, float] = field(default_factory=dict)
    queries_seen: int = 0
    updates_seen: int = 0

    @property
    def query_weight(self) -> float:
        """Total decayed weight of the retained queries."""
        return sum(w for _, w in self.queries)

    @property
    def update_weight(self) -> float:
        """Decayed weight of observed updates."""
        return float(self.op_weights.get(UPDATE_OP, 0.0))

    @property
    def update_query_ratio(self) -> float:
        """Decay-weighted updates per query (∞-free: 0 when no queries)."""
        qw = self.query_weight
        return self.update_weight / qw if qw > 0 else 0.0

    def has_queries(self) -> bool:
        """Whether the window retained any query at all."""
        return bool(self.queries)

    def statistics(self) -> QueryStatistics | None:
        """Weighted-average Table-1 statistics (V, x̄_i, S) of the window.

        Returns ``None`` on a zero-traffic window instead of raising —
        the advisor's graceful-degradation contract.
        """
        if not self.queries:
            return None
        stats = [
            QueryStatistics.from_query(q, self.shape)
            for q, _ in self.queries
        ]
        weights = [w for _, w in self.queries]
        return average_statistics(stats, weights=weights)

    def workloads(self) -> list[CuboidWorkload]:
        """Per-cuboid decay-weighted statistics for the §9.2 selector."""
        from repro.optimizer.cuboid_selection import (
            workloads_from_weighted,
        )

        return workloads_from_weighted(self.queries, self.shape)

    def length_matrix(self) -> np.ndarray:
        """The §9.1 ``r_ij`` matrix over the retained window."""
        from repro.optimizer.dimension_selection import (
            active_range_lengths,
        )

        return active_range_lengths(
            [q for q, _ in self.queries], self.shape
        )

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready summary (the ``/design`` endpoint's view)."""
        stats = self.statistics()
        return {
            "shape": list(self.shape),
            "window_queries": len(self.queries),
            "query_weight": self.query_weight,
            "update_weight": self.update_weight,
            "update_query_ratio": self.update_query_ratio,
            "queries_seen": self.queries_seen,
            "updates_seen": self.updates_seen,
            "op_weights": {
                op: w for op, w in sorted(self.op_weights.items())
            },
            "mean_lengths": (
                None if stats is None else list(stats.lengths)
            ),
            "volume": None if stats is None else stats.volume,
            "surface": None if stats is None else stats.surface,
        }


class WorkloadObserver:
    """A bounded, decay-weighted window over live query/update traffic.

    Args:
        shape: Rank-domain shape of the cube the traffic targets.
        capacity: Queries retained in the ring buffer; ``None`` retains
            everything (the legacy :class:`QueryLog` behaviour).
        decay: Per-event aging factor in ``(0, 1]``.  ``1.0`` weights
            all retained events equally; ``0.999`` halves an entry's
            vote roughly every 700 events.
    """

    def __init__(
        self,
        shape: Sequence[int],
        *,
        capacity: int | None = 4096,
        decay: float = 1.0,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.shape = tuple(int(n) for n in shape)
        self.capacity = capacity
        self.decay = float(decay)
        self._ring: deque[tuple[RangeQuery, int]] = deque(
            maxlen=capacity
        )
        self._events = 0  # lifetime event counter (queries + updates)
        self._op_weights: dict[str, float] = {}
        self.queries_seen = 0
        self.updates_seen = 0

    def __len__(self) -> int:
        """Queries currently retained in the window."""
        return len(self._ring)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _tick(self, op: str) -> None:
        """Age every tallied operator by one event; credit ``op``."""
        if self.decay < 1.0:
            for key in self._op_weights:
                self._op_weights[key] *= self.decay
        self._op_weights[op] = self._op_weights.get(op, 0.0) + 1.0
        self._events += 1

    def observe_query(
        self, query: RangeQuery, op: str = "sum"
    ) -> RangeQuery:
        """Record one query (validated against the shape); returns it so
        call sites can observe and execute in one expression."""
        if query.ndim != len(self.shape):
            raise ValueError(
                f"query has {query.ndim} dims, observer expects "
                f"{len(self.shape)}"
            )
        query.to_box(self.shape)  # validates every spec's bounds
        self._tick(op)
        self._ring.append((query, self._events - 1))
        self.queries_seen += 1
        return query

    def observe_box(self, box: Box, op: str = "sum") -> RangeQuery | None:
        """Record a served box, recovering its all/singleton/range form.

        Empty boxes are legal queries but carry no workload signal, so
        they are skipped (returns ``None``).
        """
        if box.is_empty:
            return None
        return self.observe_query(
            RangeQuery.from_box(box, self.shape), op
        )

    def observe_update(self, count: int = 1) -> None:
        """Record ``count`` applied point updates (one event each)."""
        if count < 0:
            raise ValueError(f"update count must be >= 0, got {count}")
        for _ in range(count):
            self._tick(UPDATE_OP)
        self.updates_seen += count

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def _weight(self, event_index: int) -> float:
        """Decay weight of the event recorded at ``event_index``."""
        if self.decay >= 1.0:
            return 1.0
        return self.decay ** (self._events - 1 - event_index)

    @property
    def queries(self) -> tuple[RangeQuery, ...]:
        """The retained queries, oldest first (weights dropped)."""
        return tuple(q for q, _ in self._ring)

    def snapshot(self) -> WorkloadSnapshot:
        """Freeze the current window into an immutable snapshot."""
        return WorkloadSnapshot(
            shape=self.shape,
            queries=tuple(
                (q, self._weight(at)) for q, at in self._ring
            ),
            op_weights=dict(self._op_weights),
            queries_seen=self.queries_seen,
            updates_seen=self.updates_seen,
        )

    def clear(self) -> None:
        """Forget the window and every tally (a fresh observer)."""
        self._ring.clear()
        self._op_weights.clear()
        self._events = 0
        self.queries_seen = 0
        self.updates_seen = 0
