"""Query model, statistics, baselines, workloads and the engine facade."""

from repro.query.batch import (
    batch_max_index,
    boxes_to_arrays,
    normalize_query_arrays,
    prefix_sum_many,
    rolling_window_bounds,
)
from repro.query.engine import RangeQueryEngine
from repro.query.logbook import QueryLog
from repro.query.naive import (
    naive_max_index,
    naive_max_value,
    naive_range_sum,
    naive_sum_range,
)
from repro.query.observer import (
    WorkloadObserver,
    WorkloadSnapshot,
)
from repro.query.ranges import (
    RangeQuery,
    RangeSpec,
    SpecKind,
    canonical_box,
)
from repro.query.stats import QueryStatistics, average_statistics
from repro.query.workload import (
    WorkloadProfile,
    clustered_points,
    fixed_size_box,
    generate_query_log,
    make_cube,
    make_float_cube,
    random_box,
    random_query_arrays,
    run_query_log,
)

__all__ = [
    "QueryLog",
    "QueryStatistics",
    "RangeQuery",
    "RangeQueryEngine",
    "RangeSpec",
    "SpecKind",
    "WorkloadObserver",
    "WorkloadProfile",
    "WorkloadSnapshot",
    "average_statistics",
    "batch_max_index",
    "boxes_to_arrays",
    "canonical_box",
    "clustered_points",
    "fixed_size_box",
    "generate_query_log",
    "make_cube",
    "make_float_cube",
    "naive_max_index",
    "naive_max_value",
    "naive_range_sum",
    "naive_sum_range",
    "normalize_query_arrays",
    "prefix_sum_many",
    "random_box",
    "random_query_arrays",
    "rolling_window_bounds",
    "run_query_log",
]
