"""Query model, statistics, baselines, workloads and the engine facade."""

from repro.query.engine import RangeQueryEngine
from repro.query.logbook import QueryLog
from repro.query.naive import (
    naive_max_index,
    naive_max_value,
    naive_range_sum,
    naive_sum_range,
)
from repro.query.ranges import RangeQuery, RangeSpec, SpecKind
from repro.query.stats import QueryStatistics, average_statistics
from repro.query.workload import (
    WorkloadProfile,
    clustered_points,
    fixed_size_box,
    generate_query_log,
    make_cube,
    make_float_cube,
    random_box,
)

__all__ = [
    "QueryLog",
    "QueryStatistics",
    "RangeQuery",
    "RangeQueryEngine",
    "RangeSpec",
    "SpecKind",
    "WorkloadProfile",
    "average_statistics",
    "clustered_points",
    "fixed_size_box",
    "generate_query_log",
    "make_cube",
    "make_float_cube",
    "naive_max_index",
    "naive_max_value",
    "naive_range_sum",
    "naive_sum_range",
    "random_box",
]
