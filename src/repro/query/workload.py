"""Synthetic workload and query-log generators.

The paper's physical-design algorithms (§9) consume "either a query log,
or statistics which capture the average query statistics for each cuboid
as well as the number of queries".  This module generates both, plus the
synthetic cubes the benchmarks run against.

All generators take an explicit ``numpy.random.Generator`` so every
experiment is reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro._util import Box
from repro.query.ranges import RangeQuery, RangeSpec


def make_cube(
    shape: Sequence[int],
    rng: np.random.Generator,
    low: int = 0,
    high: int = 100,
) -> np.ndarray:
    """A dense integer cube with uniform values in ``[low, high)``."""
    return rng.integers(low, high, size=tuple(shape), dtype=np.int64)


def make_float_cube(
    shape: Sequence[int], rng: np.random.Generator
) -> np.ndarray:
    """A dense float cube with standard-normal values."""
    return rng.standard_normal(tuple(shape))


def random_box(
    shape: Sequence[int],
    rng: np.random.Generator,
    min_length: int = 1,
    max_length: int | None = None,
) -> Box:
    """A uniformly random query box within ``shape``.

    Per dimension, a length is drawn uniformly in
    ``[min_length, max_length]`` (clamped to the dimension size) and a
    start position uniformly among the valid offsets.
    """
    lo = []
    hi = []
    for n in shape:
        cap = n if max_length is None else min(max_length, n)
        floor = min(min_length, cap)
        length = int(rng.integers(floor, cap + 1))
        start = int(rng.integers(0, n - length + 1))
        lo.append(start)
        hi.append(start + length - 1)
    return Box(tuple(lo), tuple(hi))


def random_query_arrays(
    shape: Sequence[int],
    count: int,
    rng: np.random.Generator,
    min_length: int = 1,
    max_length: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``count`` random query boxes as ``(K, d)`` bound arrays.

    The batch-native sibling of :func:`random_box`: the same per-
    dimension length/start distribution, drawn vectorized, returned in
    the ``(lows, highs)`` form the ``*_many`` engine methods consume.
    """
    lows = np.empty((count, len(shape)), dtype=np.int64)
    highs = np.empty((count, len(shape)), dtype=np.int64)
    for j, n in enumerate(shape):
        cap = n if max_length is None else min(max_length, n)
        floor = min(min_length, cap)
        lengths = rng.integers(floor, cap + 1, size=count)
        starts = rng.integers(0, n - lengths + 1)
        lows[:, j] = starts
        highs[:, j] = starts + lengths - 1
    return lows, highs


def run_query_log(
    engine: object,
    queries: Sequence[RangeQuery | Box],
    aggregate: str = "sum",
) -> np.ndarray:
    """Execute a query log through the engine's batch path.

    Replaces the serve-one-at-a-time loop: the whole log is converted to
    ``(K, d)`` bound arrays once and answered by the matching ``*_many``
    method — a single gather for SUM/COUNT/AVERAGE, a shared-frontier
    descent for MAX/MIN.

    Args:
        engine: A :class:`~repro.query.engine.RangeQueryEngine`.
        queries: The recorded queries (``RangeQuery`` or ``Box``).
        aggregate: One of ``sum``, ``count``, ``average``, ``max``,
            ``min`` (MAX/MIN return the value arrays).

    Returns:
        A ``(K,)`` array of results in log order.
    """
    dispatch = {
        "sum": lambda: engine.sum_many(queries),
        "count": lambda: engine.count_many(queries),
        "average": lambda: engine.average_many(queries),
        "max": lambda: engine.max_many(queries)[1],
        "min": lambda: engine.min_many(queries)[1],
    }
    try:
        method = dispatch[aggregate]
    except KeyError:
        known = ", ".join(sorted(dispatch))
        raise ValueError(
            f"unknown aggregate {aggregate!r}; known: {known}"
        ) from None
    return method()


def fixed_size_box(
    shape: Sequence[int],
    lengths: Sequence[int],
    rng: np.random.Generator,
) -> Box:
    """A random box with exact per-dimension ``lengths``."""
    lo = []
    hi = []
    for n, length in zip(shape, lengths):
        if not 1 <= length <= n:
            raise ValueError(
                f"length {length} invalid for dimension of size {n}"
            )
        start = int(rng.integers(0, n - length + 1))
        lo.append(start)
        hi.append(start + length - 1)
    return Box(tuple(lo), tuple(hi))


@dataclass(frozen=True)
class WorkloadProfile:
    """Per-dimension behaviour of a synthetic query log (paper §9.1).

    ``range_probability[j]`` — chance dimension ``j`` carries an active
    range; otherwise it is a singleton with ``singleton_probability`` or
    ``all``.  Active ranges draw their length uniformly from
    ``range_lengths[j]``.
    """

    range_probability: tuple[float, ...]
    singleton_probability: float
    range_lengths: tuple[tuple[int, int], ...]


def generate_query_log(
    shape: Sequence[int],
    profile: WorkloadProfile,
    count: int,
    rng: np.random.Generator,
) -> list[RangeQuery]:
    """Draw ``count`` range queries following a workload profile."""
    shape = tuple(int(n) for n in shape)
    if len(profile.range_probability) != len(shape):
        raise ValueError("profile dimensionality does not match the shape")
    queries = []
    for _ in range(count):
        specs = []
        for j, n in enumerate(shape):
            roll = rng.random()
            if roll < profile.range_probability[j] and n >= 2:
                lo_len, hi_len = profile.range_lengths[j]
                lo_len = max(2, min(lo_len, n))
                hi_len = max(lo_len, min(hi_len, n))
                length = int(rng.integers(lo_len, hi_len + 1))
                start = int(rng.integers(0, n - length + 1))
                specs.append(RangeSpec.between(start, start + length - 1))
            elif rng.random() < profile.singleton_probability:
                specs.append(RangeSpec.at(int(rng.integers(0, n))))
            else:
                specs.append(RangeSpec.all())
        queries.append(RangeQuery(tuple(specs)))
    return queries


def clustered_points(
    shape: Sequence[int],
    cluster_boxes: Sequence[Box],
    cluster_density: float,
    noise_points: int,
    rng: np.random.Generator,
    low: int = 1,
    high: int = 100,
) -> dict[tuple[int, ...], int]:
    """Sparse-cube generator: dense rectangular clusters plus noise (§10).

    The paper notes OLAP cubes run ≈20% sparse overall with *dense
    sub-clusters* — exactly the structure this produces.

    Returns:
        Mapping from cell index to value (non-zero cells only).
    """
    points: dict[tuple[int, ...], int] = {}
    for box in cluster_boxes:
        for point in box.iter_points():
            if rng.random() < cluster_density:
                points[point] = int(rng.integers(low, high))
    for _ in range(noise_points):
        point = tuple(int(rng.integers(0, n)) for n in shape)
        points[point] = int(rng.integers(low, high))
    return points
