"""High-level query engine tying the structures to the query model.

:class:`RangeQueryEngine` is the facade a downstream user talks to: it
builds the chosen precomputed structures over a raw cube once and then
answers :class:`~repro.query.ranges.RangeQuery` objects.

It also derives the aggregate family the paper reduces to SUM and MAX:

* ``COUNT`` is a SUM over a 0/1 (or record-count) cube;
* ``AVERAGE`` keeps the (sum, count) pair — one prefix structure each;
* ``MIN`` is a MAX over the negated cube;
* ``ROLLING SUM`` / ``ROLLING AVERAGE`` are range-sum/average specials
  (a window sliding along one dimension).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro._util import Box
from repro.core.blocked import BlockedPrefixSumCube
from repro.core.partial_prefix import PartialPrefixSumCube
from repro.core.prefix_sum import PrefixSumCube
from repro.core.range_max import RangeMaxTree
from repro.instrumentation import NULL_COUNTER, AccessCounter
from repro.query.ranges import RangeQuery


def _py_scalar(value: object) -> object:
    """Convert numpy scalars (and 0-d arrays) to plain Python scalars.

    Engine aggregate methods promise plain ``int`` / ``float`` / ``bool``
    returns regardless of which structure answered, so downstream
    exact-equality checks never trip over ``np.uint32`` vs ``int``.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray) and value.ndim == 0:
        return value.item()
    return value


def _maxtree_source(cube: np.ndarray) -> np.ndarray:
    """A max-tree-compatible view of the cube (bool promotes to int8)."""
    if cube.dtype == np.bool_:
        return cube.astype(np.int8)
    return cube


def _negation_safe(cube: np.ndarray) -> np.ndarray:
    """Promote dtypes whose negation wraps before building the min tree.

    ``MIN = MAX over −A`` (§1) is only sound when ``−A`` is exact:
    negating an unsigned cube wraps around (``min`` over
    ``np.arange(12, dtype=np.uint32)`` used to come back as 1 with a
    RuntimeWarning), and bool has no negative values at all.  Unsigned
    ints below 64 bits promote to int64; uint64 — which has no lossless
    signed home — promotes to float64 (exact up to 2^53); bool promotes
    to int8.
    """
    if cube.dtype == np.bool_:
        return cube.astype(np.int8)
    if np.issubdtype(cube.dtype, np.unsignedinteger):
        if cube.dtype.itemsize < 8:
            return cube.astype(np.int64)
        return cube.astype(np.float64)
    return cube


class RangeQueryEngine:
    """Answer range SUM / COUNT / AVERAGE / MAX / MIN queries over a cube.

    Args:
        cube: The raw measure cube ``A``.
        block_size: ``1`` builds the basic prefix-sum array (§3);
            ``b > 1`` builds the blocked structure (§4).
        max_fanout: Fanout of the range-max (and range-min) trees; pass
            ``None`` to skip building them.
        counts: Optional cube of record counts per cell.  When given,
            ``count`` and ``average`` queries are answered from its own
            prefix structure (the paper's (sum, count) 2-tuple).
        prefix_dims: Restrict prefix sums to a dimension subset (§9.1) —
            typically the output of
            :func:`repro.optimizer.heuristic_selection`.  Mutually
            exclusive with ``block_size > 1``.
    """

    def __init__(
        self,
        cube: np.ndarray,
        block_size: int = 1,
        max_fanout: int | None = 4,
        counts: np.ndarray | None = None,
        prefix_dims: "Sequence[int] | None" = None,
    ) -> None:
        cube = np.asarray(cube)
        self.shape = tuple(int(n) for n in cube.shape)
        self.block_size = int(block_size)
        if prefix_dims is not None and block_size != 1:
            raise ValueError(
                "prefix_dims and block_size > 1 cannot combine; pick the "
                "§9.1 subset design or the §4 blocked design"
            )
        self._sum_index: (
            PrefixSumCube | BlockedPrefixSumCube | PartialPrefixSumCube
        )
        if prefix_dims is not None:
            self._sum_index = PartialPrefixSumCube(cube, prefix_dims)
        elif block_size == 1:
            self._sum_index = PrefixSumCube(cube)
        else:
            self._sum_index = BlockedPrefixSumCube(cube, block_size)
        self._count_index: (
            PrefixSumCube
            | BlockedPrefixSumCube
            | PartialPrefixSumCube
            | None
        ) = None
        if counts is not None:
            if counts.shape != cube.shape:
                raise ValueError("counts cube must match the measure cube")
            if prefix_dims is not None:
                self._count_index = PartialPrefixSumCube(
                    counts, prefix_dims
                )
            elif block_size == 1:
                self._count_index = PrefixSumCube(counts)
            else:
                self._count_index = BlockedPrefixSumCube(counts, block_size)
        self._max_tree: RangeMaxTree | None = None
        self._min_tree: RangeMaxTree | None = None
        if max_fanout is not None:
            self._max_tree = RangeMaxTree(_maxtree_source(cube), max_fanout)
            self._min_tree = RangeMaxTree(-_negation_safe(cube), max_fanout)

    def _resolve(self, query: RangeQuery | Box) -> Box:
        if isinstance(query, Box):
            return query
        return query.to_box(self.shape)

    def sum(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """Range-sum of the measure (a plain Python scalar)."""
        return _py_scalar(
            self._sum_index.range_sum(self._resolve(query), counter)
        )

    def count(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """Range-count: record counts if provided, else cell count."""
        box = self._resolve(query)
        if self._count_index is None:
            return box.volume
        return _py_scalar(self._count_index.range_sum(box, counter))

    def average(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> float:
        """Range-average from the (sum, count) pair (§1)."""
        box = self._resolve(query)
        total = self.sum(box, counter)
        denominator = self.count(box, counter)
        if denominator == 0:
            raise ZeroDivisionError("average over a region with no records")
        return float(total) / float(denominator)

    def max(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[tuple[int, ...], object]:
        """Range-max: ``(index, value)`` of a maximum cell."""
        if self._max_tree is None:
            raise RuntimeError("engine was built without max trees")
        box = self._resolve(query)
        index = self._max_tree.max_index(box, counter)
        return index, _py_scalar(self._max_tree.source[index])

    def min(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[tuple[int, ...], object]:
        """Range-min via MAX over the negated cube (§1).

        The negated cube is dtype-promoted first (see
        :func:`_negation_safe`), so unsigned and bool cubes return their
        true minimum instead of a wrapped value.
        """
        if self._min_tree is None:
            raise RuntimeError("engine was built without max trees")
        box = self._resolve(query)
        index = self._min_tree.max_index(box, counter)
        return index, _py_scalar(-self._min_tree.source[index])

    # ------------------------------------------------------------------
    # Batch query execution (the vectorized path of repro.query.batch)
    # ------------------------------------------------------------------

    def _batch_arrays(
        self, lows: object, highs: object
    ) -> tuple[np.ndarray, np.ndarray]:
        """Normalize a query batch to validated ``(K, d)`` arrays.

        Accepts either ``(lows, highs)`` integer arrays of shape
        ``(K, d)`` or, when ``highs`` is None, a sequence of
        :class:`Box` / :class:`RangeQuery` objects as ``lows``.
        """
        from repro.query.batch import boxes_to_arrays, normalize_query_arrays

        if highs is None:
            lows, highs = boxes_to_arrays(lows, self.shape)
        return normalize_query_arrays(lows, highs, self.shape)

    def sum_many(
        self,
        lows: object,
        highs: object | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Range-sums for ``K`` queries in O(1) numpy ops (not O(K)).

        All ``K · 2^d`` Theorem-1 corner reads happen in a single
        fancy-indexed gather on the prefix array; the blocked structure
        vectorizes its internal regions and falls back per query only
        for boundary pieces.  Element-wise identical to :meth:`sum` for
        exact dtypes.

        Args:
            lows: ``(K, d)`` inclusive lower bounds, or a sequence of
                ``Box`` / ``RangeQuery`` objects (then omit ``highs``).
            highs: ``(K, d)`` inclusive upper bounds.
            counter: Standard access counter.

        Returns:
            A ``(K,)`` numpy array of sums, in query order.
        """
        lo, hi = self._batch_arrays(lows, highs)
        return self._sum_index.sum_many(lo, hi, counter)

    def count_many(
        self,
        lows: object,
        highs: object | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Range-counts for ``K`` queries (batch analogue of :meth:`count`).

        With a counts cube this is a second gather on the counts prefix
        structure (the paper's (sum, count) pair); without one it is the
        queries' cell volumes, computed in one vectorized product.
        """
        lo, hi = self._batch_arrays(lows, highs)
        if self._count_index is None:
            return np.prod(hi - lo + 1, axis=1)
        return self._count_index.sum_many(lo, hi, counter)

    def average_many(
        self,
        lows: object,
        highs: object | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Range-averages for ``K`` queries from the (sum, count) pair.

        One gather for the sums, one for the counts, one vectorized
        division — each element equals the scalar :meth:`average` of the
        same box exactly (same two integers, same float division).

        Raises:
            ZeroDivisionError: If any query's count is zero.
        """
        lo, hi = self._batch_arrays(lows, highs)
        totals = self._sum_index.sum_many(lo, hi, counter)
        if self._count_index is None:
            denominators = np.prod(hi - lo + 1, axis=1)
        else:
            denominators = self._count_index.sum_many(lo, hi, counter)
        if np.any(denominators == 0):
            k = int(np.argmax(denominators == 0))
            raise ZeroDivisionError(
                f"average over a region with no records (query {k})"
            )
        return totals.astype(np.float64) / denominators.astype(np.float64)

    def max_many(
        self,
        lows: object,
        highs: object | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Range-max for ``K`` queries via one shared-frontier descent.

        Every search walks the §6 tree together, one vectorized wave per
        level, with branch-and-bound pruning applied across the whole
        frontier.  Values are exact; tied argmax indices may differ from
        the scalar path's pick (both are valid witnesses).

        Returns:
            ``(indices, values)``: a ``(K, d)`` int64 array of argmax
            coordinates and the ``(K,)`` array of maxima.
        """
        if self._max_tree is None:
            raise RuntimeError("engine was built without max trees")
        lo, hi = self._batch_arrays(lows, highs)
        return self._max_tree.max_index_many(lo, hi, counter)

    def min_many(
        self,
        lows: object,
        highs: object | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Range-min for ``K`` queries (MAX descent over the negated cube).

        Returns:
            ``(indices, values)``: a ``(K, d)`` int64 array of argmin
            coordinates and the ``(K,)`` array of minima.
        """
        if self._min_tree is None:
            raise RuntimeError("engine was built without max trees")
        lo, hi = self._batch_arrays(lows, highs)
        indices, negated = self._min_tree.max_index_many(lo, hi, counter)
        return indices, -negated

    def apply_updates(
        self,
        updates: "Sequence[PointUpdate]",
        count_updates: "Sequence[PointUpdate] | None" = None,
    ) -> None:
        """Absorb a batch of measure deltas into every built structure.

        The sum index takes the §5 batch path; the max/min trees convert
        each delta into the §7 assignment it implies (new value = current
        value ± delta).  Duplicate cells are merged first so the
        conversion reads each cell's pre-batch value exactly once.

        Args:
            updates: Measure deltas per cell.
            count_updates: Optional record-count deltas (needed when the
                engine was built with a counts cube and AVERAGE must stay
                exact).
        """
        from repro.core.batch_update import combine_duplicate_updates
        from repro.core.max_update import (
            MaxAssignment,
            apply_max_updates,
        )

        merged = combine_duplicate_updates(updates)
        self._sum_index.apply_updates(merged)
        if count_updates is not None:
            if self._count_index is None:
                raise ValueError(
                    "engine was built without a counts cube"
                )
            self._count_index.apply_updates(
                combine_duplicate_updates(count_updates)
            )
        if self._max_tree is not None:
            apply_max_updates(
                self._max_tree,
                [
                    MaxAssignment(
                        u.index, self._max_tree.source[u.index] + u.delta
                    )
                    for u in merged
                ],
            )
        if self._min_tree is not None:
            apply_max_updates(
                self._min_tree,
                [
                    MaxAssignment(
                        u.index, self._min_tree.source[u.index] - u.delta
                    )
                    for u in merged
                ],
            )

    def rolling_sum(
        self,
        axis: int,
        window: int,
        fixed: Sequence[tuple[int, int]] | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> Iterator[tuple[int, object]]:
        """ROLLING SUM along one dimension (§1: a range-sum special case).

        Args:
            axis: Dimension the window slides along.
            window: Window length in ranks.
            fixed: Optional ``(lo, hi)`` bounds for the other dimensions
                (defaults to their full extent).

        Returns:
            An iterator of ``(start_rank, window_sum)`` per position.
            The whole sweep is evaluated as one query batch (shifted
            prefix differences via :meth:`sum_many`) — no per-window
            loop — before the first pair is yielded.
        """
        from repro.query.batch import rolling_window_bounds

        lows, highs = rolling_window_bounds(
            self.shape, axis, window, fixed
        )
        values = self._sum_index.sum_many(lows, highs, counter)
        return iter(
            [
                (int(start), _py_scalar(value))
                for start, value in zip(lows[:, axis], values)
            ]
        )
