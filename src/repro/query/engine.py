"""High-level query engine tying the structures to the query model.

:class:`RangeQueryEngine` is the facade a downstream user talks to: it
builds the chosen precomputed structures over a raw cube once and then
answers :class:`~repro.query.ranges.RangeQuery` objects.

It also derives the aggregate family the paper reduces to SUM and MAX:

* ``COUNT`` is a SUM over a 0/1 (or record-count) cube;
* ``AVERAGE`` keeps the (sum, count) pair — one prefix structure each;
* ``MIN`` is a MAX over the negated cube;
* ``ROLLING SUM`` / ``ROLLING AVERAGE`` are range-sum/average specials
  (a window sliding along one dimension).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro._util import Box
from repro.core.blocked import BlockedPrefixSumCube
from repro.core.partial_prefix import PartialPrefixSumCube
from repro.core.prefix_sum import PrefixSumCube
from repro.core.range_max import RangeMaxTree
from repro.instrumentation import NULL_COUNTER, AccessCounter
from repro.query.ranges import RangeQuery


class RangeQueryEngine:
    """Answer range SUM / COUNT / AVERAGE / MAX / MIN queries over a cube.

    Args:
        cube: The raw measure cube ``A``.
        block_size: ``1`` builds the basic prefix-sum array (§3);
            ``b > 1`` builds the blocked structure (§4).
        max_fanout: Fanout of the range-max (and range-min) trees; pass
            ``None`` to skip building them.
        counts: Optional cube of record counts per cell.  When given,
            ``count`` and ``average`` queries are answered from its own
            prefix structure (the paper's (sum, count) 2-tuple).
        prefix_dims: Restrict prefix sums to a dimension subset (§9.1) —
            typically the output of
            :func:`repro.optimizer.heuristic_selection`.  Mutually
            exclusive with ``block_size > 1``.
    """

    def __init__(
        self,
        cube: np.ndarray,
        block_size: int = 1,
        max_fanout: int | None = 4,
        counts: np.ndarray | None = None,
        prefix_dims: "Sequence[int] | None" = None,
    ) -> None:
        cube = np.asarray(cube)
        self.shape = tuple(int(n) for n in cube.shape)
        self.block_size = int(block_size)
        if prefix_dims is not None and block_size != 1:
            raise ValueError(
                "prefix_dims and block_size > 1 cannot combine; pick the "
                "§9.1 subset design or the §4 blocked design"
            )
        self._sum_index: (
            PrefixSumCube | BlockedPrefixSumCube | PartialPrefixSumCube
        )
        if prefix_dims is not None:
            self._sum_index = PartialPrefixSumCube(cube, prefix_dims)
        elif block_size == 1:
            self._sum_index = PrefixSumCube(cube)
        else:
            self._sum_index = BlockedPrefixSumCube(cube, block_size)
        self._count_index: (
            PrefixSumCube
            | BlockedPrefixSumCube
            | PartialPrefixSumCube
            | None
        ) = None
        if counts is not None:
            if counts.shape != cube.shape:
                raise ValueError("counts cube must match the measure cube")
            if prefix_dims is not None:
                self._count_index = PartialPrefixSumCube(
                    counts, prefix_dims
                )
            elif block_size == 1:
                self._count_index = PrefixSumCube(counts)
            else:
                self._count_index = BlockedPrefixSumCube(counts, block_size)
        self._max_tree: RangeMaxTree | None = None
        self._min_tree: RangeMaxTree | None = None
        if max_fanout is not None:
            self._max_tree = RangeMaxTree(cube, max_fanout)
            self._min_tree = RangeMaxTree(-cube, max_fanout)

    def _resolve(self, query: RangeQuery | Box) -> Box:
        if isinstance(query, Box):
            return query
        return query.to_box(self.shape)

    def sum(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """Range-sum of the measure."""
        return self._sum_index.range_sum(self._resolve(query), counter)

    def count(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """Range-count: record counts if provided, else cell count."""
        box = self._resolve(query)
        if self._count_index is None:
            return box.volume
        return self._count_index.range_sum(box, counter)

    def average(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> float:
        """Range-average from the (sum, count) pair (§1)."""
        box = self._resolve(query)
        total = self.sum(box, counter)
        denominator = self.count(box, counter)
        if denominator == 0:
            raise ZeroDivisionError("average over a region with no records")
        return float(total) / float(denominator)

    def max(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[tuple[int, ...], object]:
        """Range-max: ``(index, value)`` of a maximum cell."""
        if self._max_tree is None:
            raise RuntimeError("engine was built without max trees")
        box = self._resolve(query)
        index = self._max_tree.max_index(box, counter)
        return index, self._max_tree.source[index]

    def min(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[tuple[int, ...], object]:
        """Range-min via MAX over the negated cube (§1)."""
        if self._min_tree is None:
            raise RuntimeError("engine was built without max trees")
        box = self._resolve(query)
        index = self._min_tree.max_index(box, counter)
        return index, -self._min_tree.source[index]

    def apply_updates(
        self,
        updates: "Sequence[PointUpdate]",
        count_updates: "Sequence[PointUpdate] | None" = None,
    ) -> None:
        """Absorb a batch of measure deltas into every built structure.

        The sum index takes the §5 batch path; the max/min trees convert
        each delta into the §7 assignment it implies (new value = current
        value ± delta).  Duplicate cells are merged first so the
        conversion reads each cell's pre-batch value exactly once.

        Args:
            updates: Measure deltas per cell.
            count_updates: Optional record-count deltas (needed when the
                engine was built with a counts cube and AVERAGE must stay
                exact).
        """
        from repro.core.batch_update import combine_duplicate_updates
        from repro.core.max_update import (
            MaxAssignment,
            apply_max_updates,
        )

        merged = combine_duplicate_updates(updates)
        self._sum_index.apply_updates(merged)
        if count_updates is not None:
            if self._count_index is None:
                raise ValueError(
                    "engine was built without a counts cube"
                )
            self._count_index.apply_updates(
                combine_duplicate_updates(count_updates)
            )
        if self._max_tree is not None:
            apply_max_updates(
                self._max_tree,
                [
                    MaxAssignment(
                        u.index, self._max_tree.source[u.index] + u.delta
                    )
                    for u in merged
                ],
            )
        if self._min_tree is not None:
            apply_max_updates(
                self._min_tree,
                [
                    MaxAssignment(
                        u.index, self._min_tree.source[u.index] - u.delta
                    )
                    for u in merged
                ],
            )

    def rolling_sum(
        self,
        axis: int,
        window: int,
        fixed: Sequence[tuple[int, int]] | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> Iterator[tuple[int, object]]:
        """ROLLING SUM along one dimension (§1: a range-sum special case).

        Args:
            axis: Dimension the window slides along.
            window: Window length in ranks.
            fixed: Optional ``(lo, hi)`` bounds for the other dimensions
                (defaults to their full extent).

        Yields:
            ``(start_rank, window_sum)`` per window position.
        """
        if not 0 <= axis < len(self.shape):
            raise ValueError(f"axis {axis} out of range")
        if not 1 <= window <= self.shape[axis]:
            raise ValueError(f"window {window} invalid for axis {axis}")
        bounds = (
            [(0, n - 1) for n in self.shape]
            if fixed is None
            else [list(pair) for pair in fixed]
        )
        for start in range(self.shape[axis] - window + 1):
            window_bounds = [tuple(pair) for pair in bounds]
            window_bounds[axis] = (start, start + window - 1)
            box = Box(
                tuple(lo for lo, _ in window_bounds),
                tuple(hi for _, hi in window_bounds),
            )
            yield start, self._sum_index.range_sum(box, counter)
