"""High-level query engine tying the structures to the query model.

:class:`RangeQueryEngine` is the facade a downstream user talks to — and
since the registry refactor, a thin *planner*: the constructor resolves
:class:`~repro.index.IndexSpec`s (by registry name) into live structures
and installs them in a routing table, one entry per aggregate.  Query
methods never branch on concrete structure types; they forward to the
route's protocol surface (``query`` / ``query_many`` / ``apply_updates``
via :class:`~repro.index.InstrumentedIndex`).

It also derives the aggregate family the paper reduces to SUM and MAX:

* ``COUNT`` is a SUM over a 0/1 (or record-count) cube;
* ``AVERAGE`` keeps the (sum, count) pair — one prefix structure each;
* ``MIN`` is a MAX over the negated cube;
* ``ROLLING SUM`` / ``ROLLING AVERAGE`` are range-sum/average specials
  (a window sliding along one dimension).

The historical structure-selection kwargs (``block_size``,
``max_fanout``, ``prefix_dims``) still work but emit
``DeprecationWarning``; they are translated to registry specs by
:func:`_legacy_sum_spec` / :func:`_legacy_max_spec` and nowhere else.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterator, Sequence
from typing import Any

import numpy as np

from repro._util import Box
from repro.index.backend import ArrayBackend
from repro.index.protocol import InstrumentedIndex
from repro.index.registry import IndexSpec
from repro.instrumentation import NULL_COUNTER, AccessCounter
from repro.query.ranges import RangeQuery, canonical_box

#: Sentinel distinguishing "not passed" from an explicit legacy value, so
#: default construction stays warning-free.
_UNSET = object()

#: The aggregates the routing table serves.
AGGREGATES = ("sum", "count", "max", "min")


def _py_scalar(value: object) -> object:
    """Convert numpy scalars (and 0-d arrays) to plain Python scalars.

    Engine aggregate methods promise plain ``int`` / ``float`` / ``bool``
    returns regardless of which structure answered, so downstream
    exact-equality checks never trip over ``np.uint32`` vs ``int``.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray) and value.ndim == 0:
        return value.item()
    return value


def _maxtree_source(cube: np.ndarray) -> np.ndarray:
    """A max-index-compatible view of the cube (bool promotes to int8)."""
    if cube.dtype == np.bool_:
        return cube.astype(np.int8)
    return cube


def _negation_safe(cube: np.ndarray) -> np.ndarray:
    """Promote dtypes whose negation wraps before building the min index.

    ``MIN = MAX over −A`` (§1) is only sound when ``−A`` is exact:
    negating an unsigned cube wraps around (``min`` over
    ``np.arange(12, dtype=np.uint32)`` used to come back as 1 with a
    RuntimeWarning), and bool has no negative values at all.  Unsigned
    ints below 64 bits promote to int64; uint64 — which has no lossless
    signed home — promotes to float64 (exact up to 2^53); bool promotes
    to int8.
    """
    if cube.dtype == np.bool_:
        return cube.astype(np.int8)
    if np.issubdtype(cube.dtype, np.unsignedinteger):
        if cube.dtype.itemsize < 8:
            return cube.astype(np.int64)
        return cube.astype(np.float64)
    return cube


def _negated_delta(delta: object) -> object:
    """``−delta`` computed wrap-free (unsigned numpy scalars demote)."""
    if isinstance(delta, np.generic):
        delta = delta.item()
    return -delta


def _as_spec(index: str | IndexSpec, params: dict[str, Any] | None) -> IndexSpec:
    """Normalize a name-or-spec plus optional params into one IndexSpec."""
    if isinstance(index, IndexSpec):
        if params:
            merged = {**index.as_dict(), **params}
            return IndexSpec.of(index.name, **merged)
        return index
    return IndexSpec.of(str(index), **(params or {}))


def _legacy_sum_spec(
    block_size: int, prefix_dims: Sequence[int] | None
) -> IndexSpec:
    """The deprecation shim: map pre-registry kwargs to a sum spec.

    This function (with :func:`_legacy_max_spec`) is the *only* place the
    engine knows which structure a legacy kwarg combination meant.
    """
    if prefix_dims is not None and block_size != 1:
        raise ValueError(
            "prefix_dims and block_size > 1 cannot combine; pick the "
            "§9.1 subset design or the §4 blocked design"
        )
    if prefix_dims is not None:
        return IndexSpec.of(
            "partial_prefix_sum", prefix_dims=tuple(prefix_dims)
        )
    if block_size != 1:
        return IndexSpec.of("blocked_prefix_sum", block_size=block_size)
    return IndexSpec.of("prefix_sum")


def _legacy_max_spec(max_fanout: int | None) -> IndexSpec | None:
    """The deprecation shim for the max side: fanout → tree spec."""
    if max_fanout is None:
        return None
    return IndexSpec.of("range_max_tree", fanout=max_fanout)


class RangeQueryEngine:
    """Answer range SUM / COUNT / AVERAGE / MAX / MIN queries over a cube.

    Args:
        cube: The raw measure cube ``A``.
        sum_index: Registry name or :class:`~repro.index.IndexSpec` of the
            range-sum structure (default ``"prefix_sum"``).  The same spec
            serves COUNT over the counts cube.
        sum_params: Extra construction params for ``sum_index``
            (merged over the spec's own params).
        max_index: Registry name or spec of the range-max structure
            (default ``"range_max_tree"``); pass ``None`` to skip building
            the max/min side.  The same spec over the negated cube serves
            MIN.
        max_params: Extra construction params for ``max_index``.
        counts: Optional cube of record counts per cell.  When given,
            ``count`` and ``average`` queries are answered from its own
            prefix structure (the paper's (sum, count) 2-tuple).
        backend: :class:`~repro.index.ArrayBackend` threaded into every
            structure that supports out-of-core allocation.
        counter: Engine-level :class:`AccessCounter` observing every
            query; a counter passed to an individual call still wins.
        kernel: Execution-kernel selection for the batch query path — a
            registry name (``"numpy"``, ``"threaded"``, ``"numba"``,
            ``"auto"``) or a live
            :class:`~repro.kernels.ExecutionKernel`.  Installed as the
            per-index override on every sum-family structure the engine
            builds; ``None`` defers to ``$REPRO_KERNEL`` and the
            registry default.
        block_size: **Deprecated** — use
            ``sum_index=IndexSpec.of("blocked_prefix_sum", block_size=b)``.
        max_fanout: **Deprecated** — use
            ``max_index=IndexSpec.of("range_max_tree", fanout=b)`` or
            ``max_index=None``.
        prefix_dims: **Deprecated** — use
            ``sum_index=IndexSpec.of("partial_prefix_sum",
            prefix_dims=dims)``.
    """

    def __init__(
        self,
        cube: np.ndarray,
        sum_index: str | IndexSpec | None = None,
        sum_params: dict[str, Any] | None = None,
        max_index: str | IndexSpec | None = _UNSET,
        max_params: dict[str, Any] | None = None,
        counts: np.ndarray | None = None,
        backend: ArrayBackend | None = None,
        counter: AccessCounter | None = None,
        kernel: object | None = None,
        block_size: object = _UNSET,
        max_fanout: object = _UNSET,
        prefix_dims: object = _UNSET,
    ) -> None:
        cube = np.asarray(cube)
        self.shape = tuple(int(n) for n in cube.shape)
        self.backend = backend
        self.counter = NULL_COUNTER if counter is None else counter
        self.kernel = kernel

        legacy_sum = block_size is not _UNSET or prefix_dims is not _UNSET
        if legacy_sum:
            warnings.warn(
                "block_size/prefix_dims are deprecated; pass "
                "sum_index=IndexSpec.of(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if sum_index is not None:
                raise ValueError(
                    "cannot combine sum_index with the deprecated "
                    "block_size/prefix_dims kwargs"
                )
        effective_block = 1 if block_size is _UNSET else int(block_size)
        effective_dims = None if prefix_dims is _UNSET else prefix_dims
        if sum_index is None:
            sum_spec = _legacy_sum_spec(effective_block, effective_dims)
        else:
            sum_spec = _as_spec(sum_index, sum_params)
        if sum_spec.kind != "sum":
            raise ValueError(
                f"sum_index must name a 'sum' index, "
                f"{sum_spec.name!r} is {sum_spec.kind!r}"
            )

        if max_fanout is not _UNSET:
            warnings.warn(
                "max_fanout is deprecated; pass "
                "max_index=IndexSpec.of('range_max_tree', fanout=b) or "
                "max_index=None instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if max_index is not _UNSET:
                raise ValueError(
                    "cannot combine max_index with the deprecated "
                    "max_fanout kwarg"
                )
            max_spec = _legacy_max_spec(max_fanout)  # type: ignore[arg-type]
        elif max_index is _UNSET:
            max_spec = _legacy_max_spec(4)
        elif max_index is None:
            max_spec = None
        else:
            max_spec = _as_spec(max_index, max_params)
        if max_spec is not None and max_spec.kind != "max":
            raise ValueError(
                f"max_index must name a 'max' index, "
                f"{max_spec.name!r} is {max_spec.kind!r}"
            )
        self.sum_spec = sum_spec
        self.max_spec = max_spec

        # The routing table: aggregate name -> instrumented index (or
        # None when that aggregate was not built).  Query methods only
        # ever consult this table — never concrete structure types.
        self._routes: dict[str, InstrumentedIndex | None] = {
            name: None for name in AGGREGATES
        }
        self._routes["sum"] = self._instrument(
            sum_spec.build(cube, backend=backend)
        )
        if counts is not None:
            counts = np.asarray(counts)
            if counts.shape != cube.shape:
                raise ValueError("counts cube must match the measure cube")
            self._routes["count"] = self._instrument(
                sum_spec.build(counts, backend=backend)
            )
        if max_spec is not None:
            self._routes["max"] = self._instrument(
                max_spec.build(_maxtree_source(cube), backend=backend)
            )
            self._routes["min"] = self._instrument(
                max_spec.build(-_negation_safe(cube), backend=backend)
            )

    def _instrument(self, index: object) -> InstrumentedIndex:
        if self.kernel is not None and hasattr(index, "kernel"):
            index.kernel = self.kernel
        return InstrumentedIndex(index, self.counter)

    def route(self, aggregate: str) -> InstrumentedIndex | None:
        """The index serving ``aggregate`` (``None`` when not built)."""
        if aggregate not in self._routes:
            raise KeyError(
                f"unknown aggregate {aggregate!r}; one of {AGGREGATES}"
            )
        return self._routes[aggregate]

    def describe(self) -> dict[str, Any]:
        """Per-aggregate descriptions of every built structure."""
        return {
            name: route.describe()
            for name, route in self._routes.items()
            if route is not None
        }

    # ------------------------------------------------------------------
    # Deprecated structure attributes (pre-registry private surface)
    # ------------------------------------------------------------------

    def _deprecated_route(self, old: str, aggregate: str) -> object:
        warnings.warn(
            f"RangeQueryEngine.{old} is deprecated; use "
            f"engine.route({aggregate!r}) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        route = self._routes[aggregate]
        return None if route is None else route.index

    @property
    def _sum_index(self) -> object:
        """Deprecated alias for ``route("sum")``'s wrapped structure."""
        return self._deprecated_route("_sum_index", "sum")

    @property
    def _count_index(self) -> object:
        """Deprecated alias for ``route("count")``'s wrapped structure."""
        return self._deprecated_route("_count_index", "count")

    @property
    def _max_tree(self) -> object:
        """Deprecated alias for ``route("max")``'s wrapped structure."""
        return self._deprecated_route("_max_tree", "max")

    @property
    def _min_tree(self) -> object:
        """Deprecated alias for ``route("min")``'s wrapped structure."""
        return self._deprecated_route("_min_tree", "min")

    @property
    def block_size(self) -> int:
        """Deprecated: the sum structure's block size (1 when unblocked)."""
        warnings.warn(
            "RangeQueryEngine.block_size is deprecated; read "
            "engine.sum_spec instead",
            DeprecationWarning,
            stacklevel=2,
        )
        route = self._routes["sum"]
        assert route is not None
        return int(getattr(route, "block_size", 1))

    # ------------------------------------------------------------------
    # Scalar query path
    # ------------------------------------------------------------------

    def _resolve(self, query: RangeQuery | Box) -> Box:
        return canonical_box(query, self.shape)

    def sum(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """Range-sum of the measure (a plain Python scalar)."""
        route = self._routes["sum"]
        assert route is not None
        return _py_scalar(route.query(self._resolve(query), counter))

    def count(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """Range-count: record counts if provided, else cell count."""
        box = self._resolve(query)
        route = self._routes["count"]
        if route is None:
            return box.volume
        return _py_scalar(route.query(box, counter))

    def average(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> float | None:
        """Range-average from the (sum, count) pair (§1).

        Returns:
            The average as a float, or ``None`` when the region holds no
            records (zero count — the documented SQL ``AVG``-over-empty
            answer, which also covers empty boxes).
        """
        box = self._resolve(query)
        total = self.sum(box, counter)
        denominator = self.count(box, counter)
        if denominator == 0:
            return None
        return float(total) / float(denominator)

    def max(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[tuple[int, ...], object]:
        """Range-max: ``(index, value)`` of a maximum cell."""
        route = self._routes["max"]
        if route is None:
            raise RuntimeError("engine was built without max trees")
        box = self._resolve(query)
        hit = route.query(box, counter)
        if hit is None:
            raise ValueError(f"no non-empty cell in {box}")
        index, value = hit
        return index, _py_scalar(value)

    def min(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[tuple[int, ...], object]:
        """Range-min via MAX over the negated cube (§1).

        The negated cube is dtype-promoted first (see
        :func:`_negation_safe`), so unsigned and bool cubes return their
        true minimum instead of a wrapped value.
        """
        route = self._routes["min"]
        if route is None:
            raise RuntimeError("engine was built without max trees")
        box = self._resolve(query)
        hit = route.query(box, counter)
        if hit is None:
            raise ValueError(f"no non-empty cell in {box}")
        index, negated = hit
        return index, _py_scalar(_negated_delta(negated))

    # ------------------------------------------------------------------
    # Batch query execution (the vectorized path of repro.query.batch)
    # ------------------------------------------------------------------

    def _batch_arrays(
        self, lows: object, highs: object, *, allow_empty: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Normalize a query batch to validated ``(K, d)`` arrays.

        Accepts either ``(lows, highs)`` integer arrays of shape
        ``(K, d)`` or, when ``highs`` is None, a sequence of
        :class:`Box` / :class:`RangeQuery` objects as ``lows``.
        ``allow_empty`` follows the empty-range rule: identity-valued
        aggregates (sum/count/average) accept empty rows, witness-valued
        ones (max/min) reject them.
        """
        from repro.query.batch import boxes_to_arrays, normalize_query_arrays

        if highs is None:
            lows, highs = boxes_to_arrays(lows, self.shape)
        return normalize_query_arrays(
            lows, highs, self.shape, allow_empty=allow_empty
        )

    def sum_many(
        self,
        lows: object,
        highs: object | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Range-sums for ``K`` queries through the batch protocol path.

        Structures with a vectorized kernel (one fancy-indexed gather for
        all ``K · 2^d`` Theorem-1 corners) answer in O(1) numpy ops; the
        rest fall back to the protocol's scalar loop.  Element-wise
        identical to :meth:`sum` for exact dtypes.

        Args:
            lows: ``(K, d)`` inclusive lower bounds, or a sequence of
                ``Box`` / ``RangeQuery`` objects (then omit ``highs``).
            highs: ``(K, d)`` inclusive upper bounds.
            counter: Standard access counter.

        Returns:
            A ``(K,)`` numpy array of sums, in query order; empty rows
            (``hi < lo``) yield the operator identity.
        """
        lo, hi = self._batch_arrays(lows, highs, allow_empty=True)
        route = self._routes["sum"]
        assert route is not None
        return route.query_many(lo, hi, counter)

    def count_many(
        self,
        lows: object,
        highs: object | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Range-counts for ``K`` queries (batch analogue of :meth:`count`).

        With a counts cube this is a second gather on the counts prefix
        structure (the paper's (sum, count) pair); without one it is the
        queries' cell volumes, computed in one vectorized product.
        Empty rows count zero cells.
        """
        lo, hi = self._batch_arrays(lows, highs, allow_empty=True)
        route = self._routes["count"]
        if route is None:
            # Clamp per-dimension lengths at zero so an empty row's
            # volume is 0, not a product of negative extents.
            return np.prod(np.maximum(hi - lo + 1, 0), axis=1)
        return route.query_many(lo, hi, counter)

    def average_many(
        self,
        lows: object,
        highs: object | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Range-averages for ``K`` queries from the (sum, count) pair.

        One gather for the sums, one for the counts, one vectorized
        division — each element equals the scalar :meth:`average` of the
        same box exactly (same two integers, same float division).

        Returns:
            A ``(K,)`` float64 array of averages.  When any query's
            count is zero, the result is instead an object array whose
            zero-count entries are ``None`` (matching the scalar
            :meth:`average` contract).
        """
        lo, hi = self._batch_arrays(lows, highs, allow_empty=True)
        sum_route = self._routes["sum"]
        assert sum_route is not None
        totals = sum_route.query_many(lo, hi, counter)
        count_route = self._routes["count"]
        if count_route is None:
            denominators = np.prod(np.maximum(hi - lo + 1, 0), axis=1)
        else:
            denominators = count_route.query_many(lo, hi, counter)
        zero = np.asarray(denominators) == 0
        if np.any(zero):
            out = np.empty(len(zero), dtype=object)
            for k in range(len(zero)):
                out[k] = (
                    None
                    if zero[k]
                    else float(totals[k]) / float(denominators[k])
                )
            return out
        return totals.astype(np.float64) / np.asarray(
            denominators, dtype=np.float64
        )

    def max_many(
        self,
        lows: object,
        highs: object | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Range-max for ``K`` queries through the batch protocol path.

        The tree-backed structure walks all searches together, one
        vectorized wave per level, with branch-and-bound pruning applied
        across the whole frontier.  Values are exact; tied argmax indices
        may differ from the scalar path's pick (both are valid
        witnesses).

        Returns:
            ``(indices, values)``: a ``(K, d)`` int64 array of argmax
            coordinates and the ``(K,)`` array of maxima.
        """
        route = self._routes["max"]
        if route is None:
            raise RuntimeError("engine was built without max trees")
        lo, hi = self._batch_arrays(lows, highs)
        return route.query_many(lo, hi, counter)

    def min_many(
        self,
        lows: object,
        highs: object | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Range-min for ``K`` queries (MAX descent over the negated cube).

        Returns:
            ``(indices, values)``: a ``(K, d)`` int64 array of argmin
            coordinates and the ``(K,)`` array of minima.
        """
        route = self._routes["min"]
        if route is None:
            raise RuntimeError("engine was built without max trees")
        lo, hi = self._batch_arrays(lows, highs)
        indices, negated = route.query_many(lo, hi, counter)
        return indices, -negated

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def apply_updates(
        self,
        updates: Sequence[PointUpdate],
        count_updates: Sequence[PointUpdate] | None = None,
    ) -> None:
        """Absorb a batch of measure deltas into every built structure.

        Every route takes the same protocol call: the sum/count indexes
        run their §5 batch machinery; the max index converts deltas to
        the §7 assignments they imply; the min index receives the
        *negated* deltas (it holds ``−A``).  Duplicate cells are merged
        first so each structure reads each cell's pre-batch value exactly
        once.

        Args:
            updates: Measure deltas per cell.
            count_updates: Optional record-count deltas (needed when the
                engine was built with a counts cube and AVERAGE must stay
                exact).
        """
        from repro.core.batch_update import (
            PointUpdate,
            combine_duplicate_updates,
        )

        merged = combine_duplicate_updates(updates)
        sum_route = self._routes["sum"]
        assert sum_route is not None
        sum_route.apply_updates(merged)
        if count_updates is not None:
            count_route = self._routes["count"]
            if count_route is None:
                raise ValueError(
                    "engine was built without a counts cube"
                )
            count_route.apply_updates(
                combine_duplicate_updates(count_updates)
            )
        max_route = self._routes["max"]
        if max_route is not None:
            max_route.apply_updates(merged)
        min_route = self._routes["min"]
        if min_route is not None:
            min_route.apply_updates(
                [
                    PointUpdate(u.index, _negated_delta(u.delta))
                    for u in merged
                ]
            )

    def rolling_sum(
        self,
        axis: int,
        window: int,
        fixed: Sequence[tuple[int, int]] | None = None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> Iterator[tuple[int, object]]:
        """ROLLING SUM along one dimension (§1: a range-sum special case).

        Args:
            axis: Dimension the window slides along.
            window: Window length in ranks.
            fixed: Optional ``(lo, hi)`` bounds for the other dimensions
                (defaults to their full extent).

        Returns:
            An iterator of ``(start_rank, window_sum)`` per position.
            The whole sweep is evaluated as one query batch (shifted
            prefix differences via :meth:`sum_many`) — no per-window
            loop — before the first pair is yielded.
        """
        from repro.query.batch import rolling_window_bounds

        lows, highs = rolling_window_bounds(
            self.shape, axis, window, fixed
        )
        route = self._routes["sum"]
        assert route is not None
        values = route.query_many(lows, highs, counter)
        return iter(
            [
                (int(start), _py_scalar(value))
                for start, value in zip(lows[:, axis], values)
            ]
        )
