"""Query statistics from Table 1 of the paper.

Table 1 defines, for a single query (and §9 reuses the same symbols for
per-cuboid averages over a query log):

* ``V`` — the volume of the query (product of per-dimension lengths);
* ``x_i`` — the length of the query in dimension ``i``;
* ``S`` — the total surface area of the query, ``S = Σ_i 2·V / x_i``.

These feed every cost formula in §8 and §9 (``2^d + S·F(b)`` for the
blocked prefix sum, the tree-sum series, and the benefit/space function
whose maxima picks block sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.query.ranges import RangeQuery


@dataclass(frozen=True)
class QueryStatistics:
    """The (V, x_i, S) triple of Table 1 for one query or a log average."""

    lengths: tuple[float, ...]

    @classmethod
    def from_query(
        cls, query: RangeQuery, shape: Sequence[int]
    ) -> QueryStatistics:
        """Statistics of a concrete query against a concrete cube shape."""
        return cls(
            tuple(
                float(spec.length(size))
                for spec, size in zip(query.specs, shape)
            )
        )

    @classmethod
    def from_lengths(cls, lengths: Iterable[float]) -> QueryStatistics:
        """Statistics from per-dimension side lengths directly."""
        sides = tuple(float(x) for x in lengths)
        if any(x <= 0 for x in sides):
            raise ValueError(f"query lengths must be positive, got {sides}")
        return cls(sides)

    @property
    def ndim(self) -> int:
        """Dimensionality d of the query."""
        return len(self.lengths)

    @property
    def volume(self) -> float:
        """``V`` — product of the per-dimension lengths."""
        vol = 1.0
        for x in self.lengths:
            vol *= x
        return vol

    @property
    def surface(self) -> float:
        """``S = Σ_i 2·V / x_i`` — total surface area (Table 1)."""
        vol = self.volume
        return sum(2.0 * vol / x for x in self.lengths)

    def scaled(self, factor: float) -> QueryStatistics:
        """Statistics of the same query shape scaled by ``factor``."""
        return QueryStatistics(tuple(x * factor for x in self.lengths))


def average_statistics(
    stats: Sequence[QueryStatistics],
    weights: Sequence[float] | None = None,
) -> QueryStatistics:
    """Average per-dimension lengths across a set of query statistics.

    Section 9: *"we use the notation in Table 1 to denote the average rather
    than the numbers for a single query."*  Averaging the side lengths (and
    deriving V and S from the averages) keeps the cost formulas well defined
    for a log of heterogeneous queries.

    Args:
        stats: The per-query statistics to average.
        weights: Optional per-query weights (e.g. the exponential-decay
            weights of a :class:`~repro.query.observer.WorkloadObserver`
            window); ``None`` weights every query equally.  Weights must
            be non-negative with a positive total.
    """
    if not stats:
        raise ValueError("cannot average an empty list of statistics")
    ndim = stats[0].ndim
    if any(s.ndim != ndim for s in stats):
        raise ValueError("all statistics must share the same dimensionality")
    if weights is None:
        weights = [1.0] * len(stats)
    if len(weights) != len(stats):
        raise ValueError(
            f"{len(weights)} weights for {len(stats)} statistics"
        )
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive total")
    mean_lengths = tuple(
        sum(w * s.lengths[j] for s, w in zip(stats, weights)) / total
        for j in range(ndim)
    )
    return QueryStatistics(mean_lengths)
