"""Vectorized batch execution of range queries.

Every structure in :mod:`repro.core` answers one query at a time through a
Python-level loop over its ``2^d`` corners (or ``3^d`` blocked pieces).
That is the right shape for the paper's *element-access* cost model, but a
server answering thousands of structurally identical queries pays the
Python interpreter ``K`` times for work numpy can do once.

This module is the batch kernel.  Queries arrive as a pair of ``(K, d)``
integer arrays (inclusive lower/upper bounds per query); Theorem 1's
``2^d``-corner combination is evaluated for *all* ``K`` queries with a
constant number of numpy operations:

1. a cached ``(2^d, d)`` corner table is broadcast against the bounds to
   form all ``K · 2^d`` corner coordinates at once;
2. corners with a ``−1`` component (the implicit zero reads of Theorem 1)
   are masked out;
3. the remaining coordinates are raveled into flat offsets and resolved
   with a **single fancy-indexed gather** on ``P.ravel()``;
4. the gathered values are combined along the corner axis with the
   operator's ufunc (alternating-sign subtraction for SUM).

The same kernel serves the basic prefix-sum cube (§3), the partial
prefix-sum cube (§9.1, through a lazily built full-prefix cache), and the
block-aligned internal regions of the blocked cube (§4).  MAX/MIN batches
run a level-synchronous *shared-frontier* descent of the §6 tree: all
``K`` searches walk the tree together, one vectorized wave per level, with
the branch-and-bound prune applied across the whole frontier.

Results are element-wise identical to the scalar paths for exact dtypes
(integers, bool); floating-point results may differ only by summation
order.
"""

from __future__ import annotations

from functools import lru_cache
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro._util import Box
from repro.core.operators import InvertibleOperator
from repro.instrumentation import NULL_COUNTER, AccessCounter

# The corner primitives moved to repro.kernels.corner when the pluggable
# backend layer was introduced (every backend builds on them); they are
# re-exported here because this module is their historical home.
from repro.kernels.corner import (
    combine_corner_values as combine_corner_values,
    corner_table as corner_table,
    gather_corner_values as gather_corner_values,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.range_max import RangeMaxTree
    from repro.query.ranges import RangeQuery


# ----------------------------------------------------------------------
# Query normalization
# ----------------------------------------------------------------------


def normalize_query_arrays(
    lows: object,
    highs: object,
    shape: Sequence[int],
    *,
    allow_empty: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a query batch to ``(K, d)`` int64 arrays.

    Args:
        lows: Inclusive lower bounds, array-like of shape ``(K, d)``
            (a single ``(d,)`` query is promoted to ``K = 1``).
        highs: Inclusive upper bounds, same shape as ``lows``.
        shape: The cube shape the queries must fit inside.
        allow_empty: When True, rows with ``hi < lo`` anywhere are legal
            empty queries (the identity-returning paths pass this);
            their bounds are not range-checked, matching the scalar
            empty-box rule of :func:`repro._util.check_query_box`.

    Returns:
        ``(lows, highs)`` as int64 arrays of shape ``(K, d)``.

    Raises:
        ValueError: On shape mismatch, non-integral input, an empty range
            (``hi < lo``) unless ``allow_empty``, or bounds outside the
            cube.
    """
    ndim = len(shape)
    lo = np.asarray(lows)
    hi = np.asarray(highs)
    if lo.ndim == 1:
        lo = lo[None, :]
    if hi.ndim == 1:
        hi = hi[None, :]
    if lo.shape != hi.shape:
        raise ValueError(
            f"lows shape {lo.shape} does not match highs shape {hi.shape}"
        )
    if lo.ndim != 2 or lo.shape[1] != ndim:
        raise ValueError(
            f"queries must have shape (K, {ndim}); got {lo.shape}"
        )
    for name, arr in (("lows", lo), ("highs", hi)):
        if not np.issubdtype(arr.dtype, np.integer):
            raise ValueError(
                f"{name} must be integers, got dtype {arr.dtype}"
            )
    lo = lo.astype(np.int64, copy=False)
    hi = hi.astype(np.int64, copy=False)
    if lo.shape[0] == 0:
        return lo, hi
    empty = np.any(hi < lo, axis=1)
    if not allow_empty and np.any(empty):
        k = int(np.argmax(empty))
        raise ValueError(f"empty query region at row {k}: lo > hi")
    sizes = np.asarray(shape, dtype=np.int64)
    bad = np.any((lo < 0) | (hi >= sizes), axis=1) & ~empty
    if np.any(bad):
        k = int(np.argmax(bad))
        raise ValueError(
            f"query {k} ({lo[k]}..{hi[k]}) outside cube of shape {shape}"
        )
    return lo, hi


def solve_with_identity(
    lo: np.ndarray,
    hi: np.ndarray,
    identity: object,
    solve: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> np.ndarray:
    """Run a batch solver on the non-empty rows, filling empty rows.

    The batch counterpart of the scalar empty-range rule: each row with
    ``hi < lo`` in any dimension contributes the operator identity, and
    the underlying kernel only ever sees validated non-empty rows.

    Args:
        lo, hi: Normalized ``(K, d)`` bounds (``allow_empty=True``).
        identity: The operator identity written into empty rows.
        solve: Kernel mapping non-empty ``(M, d)`` bounds to ``(M,)``
            results; decides the result dtype.

    Returns:
        A ``(K,)`` array of aggregates.
    """
    empty = np.any(hi < lo, axis=1)
    if not np.any(empty):
        return solve(lo, hi)
    filled = solve(lo[~empty], hi[~empty])
    out = np.full(lo.shape[0], identity, dtype=filled.dtype)
    out[~empty] = filled
    return out


def boxes_to_arrays(
    queries: Sequence[Box | RangeQuery],
    shape: Sequence[int],
) -> tuple[np.ndarray, np.ndarray]:
    """Convert a sequence of :class:`Box` / ``RangeQuery`` to bound arrays.

    Args:
        queries: Boxes or range-query objects (mixed freely).
        shape: Cube shape used to resolve ``RangeQuery`` specs.

    Returns:
        ``(lows, highs)`` int64 arrays of shape ``(K, d)``.
    """
    from repro.query.ranges import canonical_box

    ndim = len(shape)
    lows = np.empty((len(queries), ndim), dtype=np.int64)
    highs = np.empty((len(queries), ndim), dtype=np.int64)
    for k, query in enumerate(queries):
        box = canonical_box(query, shape)
        lows[k] = box.lo
        highs[k] = box.hi
    return lows, highs


# ----------------------------------------------------------------------
# The corner-gather kernel (Theorem 1, batched)
# ----------------------------------------------------------------------


def prefix_sum_many(
    prefix: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    operator: InvertibleOperator,
    counter: AccessCounter = NULL_COUNTER,
    kernel: object | None = None,
) -> np.ndarray:
    """Answer ``K`` range-sums against a full prefix array in O(1) ops.

    This is the tentpole kernel: one corner broadcast, one gather, two
    ufunc reductions — no per-query Python.

    Args:
        prefix: The prefix array ``P`` with every dimension accumulated.
        lows: Validated ``(K, d)`` inclusive lower bounds.
        highs: Validated ``(K, d)`` inclusive upper bounds.
        operator: The structure's invertible operator.
        counter: Charged per valid corner read, as in the scalar path.
        kernel: Execution backend (name or instance); ``None`` resolves
            via :func:`repro.kernels.resolve_kernel` (env var, then the
            ``numpy`` default).

    Returns:
        A ``(K,)`` array of aggregates.
    """
    from repro.kernels import resolve_kernel

    if lows.shape[0] == 0:
        return np.empty(0, dtype=prefix.dtype)
    return resolve_kernel(kernel).corner_gather(
        prefix, lows, highs, operator, counter
    )


# ----------------------------------------------------------------------
# Blocked structures: vectorized internal region, per-query boundaries
# ----------------------------------------------------------------------


def blocked_sum_many(
    structure: object,
    lows: np.ndarray,
    highs: np.ndarray,
    counter: AccessCounter = NULL_COUNTER,
    kernel: object | None = None,
) -> np.ndarray:
    """Batch range-sums for :class:`BlockedPrefixSumCube` (§4).

    The block-aligned internal region of every query (the all-middle
    member of the ``3^d`` decomposition) maps to Theorem 1 on the
    *blocked* prefix array, so all ``K`` internal regions are resolved
    with one :func:`prefix_sum_many` gather.  Boundary regions depend on
    per-query raw-cube scans of varying shape and fall back to the scalar
    machinery query by query.

    This is the ``serial_boundaries`` oracle path; kernels that clear
    that flag route to
    :func:`repro.kernels.blocked_sum_many_vectorized` instead (the
    structure's ``sum_many`` makes that choice).

    Args:
        structure: A ``BlockedPrefixSumCube`` (duck-typed: needs
            ``block_size``, ``shape``, ``operator``, ``blocked_prefix``,
            ``_plan_dimension`` and ``_boundary_region_sum``).
        lows: Validated ``(K, d)`` lower bounds.
        highs: Validated ``(K, d)`` upper bounds.
        counter: Standard access counter.
        kernel: Execution backend for the internal-region gather.

    Returns:
        A ``(K,)`` array of aggregates.
    """
    from itertools import product

    op = structure.operator
    b = structure.block_size
    K, ndim = lows.shape
    if K == 0:
        return np.empty(0, dtype=structure.blocked_prefix.dtype)
    # Per-dimension aligned bounds: l' = b⌈lo/b⌉, h' = b⌊hi/b⌋ (§4.2).
    low_up = -(-lows // b) * b
    high_down = (highs // b) * b
    internal_dims = low_up < high_down  # case 1 per dimension
    has_internal = internal_dims.all(axis=1)
    internal_values = np.zeros(K, dtype=structure.blocked_prefix.dtype)
    if np.any(has_internal):
        block_lo = low_up[has_internal] // b
        block_hi = high_down[has_internal] // b - 1
        internal_values[has_internal] = prefix_sum_many(
            structure.blocked_prefix,
            block_lo,
            block_hi,
            op,
            counter,
            kernel=kernel,
        )
    results: list[object] = []
    for k in range(K):
        plans = [
            structure._plan_dimension(int(lo), int(hi), n)
            for lo, hi, n in zip(lows[k], highs[k], structure.shape)
        ]
        value = (
            internal_values[k] if has_internal[k] else op.identity
        )
        for combo in product(*(plan.pieces for plan in plans)):
            if all(piece[4] for piece in combo):
                continue  # the internal region: already gathered above
            region = Box(
                tuple(piece[0] for piece in combo),
                tuple(piece[1] for piece in combo),
            )
            if region.is_empty:
                continue
            superblock = Box(
                tuple(piece[2] for piece in combo),
                tuple(piece[3] for piece in combo),
            )
            value = op.apply(
                value,
                structure._boundary_region_sum(region, superblock, counter),
            )
        results.append(value)
    return np.asarray(results)


# ----------------------------------------------------------------------
# Batched MAX / MIN: shared-frontier tree descent
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def _child_offsets(fanout: int, ndim: int) -> np.ndarray:
    """The ``(fanout^d, d)`` offset grid of a node's children."""
    grids = np.meshgrid(
        *([np.arange(fanout)] * ndim), indexing="ij"
    )
    offsets = np.stack([g.reshape(-1) for g in grids], axis=1).astype(
        np.int64
    )
    offsets.setflags(write=False)
    return offsets


def batch_max_index(
    tree: RangeMaxTree,
    lows: np.ndarray,
    highs: np.ndarray,
    counter: AccessCounter = NULL_COUNTER,
) -> tuple[np.ndarray, np.ndarray]:
    """Answer ``K`` range-max queries with one shared tree descent (§6).

    All searches walk the tree together, level-synchronously: each wave
    processes every live ``(query, node)`` pair at one level with
    vectorized classification (internal / boundary-resolved / descend)
    and applies the §6.1.3 branch-and-bound prune across the whole
    frontier — a node whose precomputed max cannot beat its query's best
    value so far is dropped without expansion.

    Maximum *values* are exact.  When several cells tie, the reported
    index may differ from the scalar path's choice (both are valid
    argmax witnesses inside the query box).

    Args:
        tree: A built :class:`RangeMaxTree`.
        lows: Validated ``(K, d)`` lower bounds.
        highs: Validated ``(K, d)`` upper bounds.
        counter: Charged per tree node and raw cell touched.

    Returns:
        ``(indices, values)``: a ``(K, d)`` int64 array of argmax cell
        coordinates and the ``(K,)`` array of maxima.
    """
    K, ndim = lows.shape
    source_flat = tree.source.reshape(-1)
    if K == 0:
        return (
            np.empty((0, ndim), dtype=np.int64),
            np.empty(0, dtype=tree.source.dtype),
        )
    fanout = tree.fanout
    shape_arr = np.asarray(tree.shape, dtype=np.int64)
    # Seed every query's best with A[l] (the scalar path's seed).
    best_flat = np.ravel_multi_index(tuple(lows.T), tree.shape)
    best_value = source_flat[best_flat].copy()
    counter.count_cube(K)
    # Lowest covering level per query (§6.1.2): smallest i with
    # l_j // b^i == h_j // b^i in every dimension, capped at the root.
    levels = np.full(K, tree.height, dtype=np.int64)
    assigned = np.zeros(K, dtype=bool)
    span = 1
    for level in range(tree.height + 1):
        same = ((lows // span) == (highs // span)).all(axis=1)
        newly = same & ~assigned
        levels[newly] = level
        assigned |= newly
        span *= fanout
    # Frontier entries per level: (query ids, node coordinates).
    frontier: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
    for level in range(1, tree.height + 1):
        at_level = np.nonzero(levels == level)[0]
        if at_level.size:
            span = fanout**level
            frontier.setdefault(level, []).append(
                (at_level, lows[at_level] // span)
            )
    # Queries whose covering level is 0 are single cells: already seeded.
    for level in range(tree.height, 0, -1):
        parts = frontier.pop(level, [])
        if not parts:
            continue
        qid = np.concatenate([p[0] for p in parts])
        nodes = np.concatenate([p[1] for p in parts])
        node_values = tree.values[level][tuple(nodes.T)]
        counter.count_tree(len(qid))
        # Branch-and-bound across the whole frontier: a node whose max
        # cannot strictly improve its query's best is dropped.
        alive = node_values > best_value[qid]
        if not np.any(alive):
            continue
        qid = qid[alive]
        nodes = nodes[alive]
        node_values = node_values[alive]
        stored_flat = tree.positions[level][tuple(nodes.T)]
        stored = np.stack(
            np.unravel_index(stored_flat, tree.shape), axis=1
        )
        resolved = (
            (stored >= lows[qid]) & (stored <= highs[qid])
        ).all(axis=1)
        # I ∪ B_in: the stored argmax lies inside the query region, so
        # one access settles the node (internal nodes always land here).
        if np.any(resolved):
            rq = qid[resolved]
            rv = node_values[resolved]
            np.maximum.at(best_value, rq, rv)
            winners = rv >= best_value[rq]
            best_flat[rq[winners]] = stored_flat[resolved][winners]
        # B_out: descend into children overlapping the query region.
        descend = ~resolved
        if not np.any(descend):
            continue
        dq = qid[descend]
        dn = nodes[descend]
        offsets = _child_offsets(fanout, ndim)
        children = dn[:, None, :] * fanout + offsets[None, :, :]
        child_shape = np.asarray(
            tree.level_shape(level - 1), dtype=np.int64
        )
        exists = (children < child_shape).all(axis=2)
        child_span = fanout ** (level - 1)
        cover_lo = children * child_span
        cover_hi = np.minimum(
            cover_lo + child_span - 1, shape_arr - 1
        )
        overlaps = (
            (cover_lo <= highs[dq][:, None, :])
            & (cover_hi >= lows[dq][:, None, :])
        ).all(axis=2)
        select = (exists & overlaps).reshape(-1)
        if not np.any(select):
            continue
        per_entry = offsets.shape[0]
        next_qid = np.repeat(dq, per_entry)[select]
        next_nodes = children.reshape(-1, ndim)[select]
        if level - 1 == 0:
            # Leaf wave: children are raw cube cells inside the region.
            flat = np.ravel_multi_index(tuple(next_nodes.T), tree.shape)
            cell_values = source_flat[flat]
            counter.count_cube(len(flat))
            np.maximum.at(best_value, next_qid, cell_values)
            winners = cell_values >= best_value[next_qid]
            best_flat[next_qid[winners]] = flat[winners]
        else:
            frontier.setdefault(level - 1, []).append(
                (next_qid, next_nodes)
            )
    indices = np.stack(
        np.unravel_index(best_flat, tree.shape), axis=1
    ).astype(np.int64)
    return indices, best_value


# ----------------------------------------------------------------------
# Rolling windows as a query batch
# ----------------------------------------------------------------------


def rolling_window_bounds(
    shape: Sequence[int],
    axis: int,
    window: int,
    fixed: Sequence[tuple[int, int]] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Bounds arrays for every position of a sliding window (§1).

    A rolling sum along ``axis`` is ``n − w + 1`` structurally identical
    range queries; expressing them as a ``(K, d)`` batch lets the prefix
    kernel answer the whole sweep with shifted-prefix differences in one
    gather instead of a per-window loop.

    Args:
        shape: Cube shape.
        axis: Dimension the window slides along.
        window: Window length in ranks.
        fixed: Optional ``(lo, hi)`` bounds for the other dimensions
            (defaults to their full extent).

    Returns:
        ``(lows, highs)`` int64 arrays of shape ``(n_axis − w + 1, d)``.
    """
    ndim = len(shape)
    if not 0 <= axis < ndim:
        raise ValueError(f"axis {axis} out of range")
    if not 1 <= window <= shape[axis]:
        raise ValueError(f"window {window} invalid for axis {axis}")
    bounds = (
        [(0, n - 1) for n in shape]
        if fixed is None
        else [tuple(pair) for pair in fixed]
    )
    if len(bounds) != ndim:
        raise ValueError(
            f"fixed bounds cover {len(bounds)} dims, cube has {ndim}"
        )
    positions = shape[axis] - window + 1
    lows = np.empty((positions, ndim), dtype=np.int64)
    highs = np.empty((positions, ndim), dtype=np.int64)
    for j, (lo, hi) in enumerate(bounds):
        lows[:, j] = lo
        highs[:, j] = hi
    starts = np.arange(positions, dtype=np.int64)
    lows[:, axis] = starts
    highs[:, axis] = starts + window - 1
    return lows, highs
