"""Differential correctness harness (the repo's fuzzing subsystem).

Every structure registered in :mod:`repro.index.registry` with a
:class:`~repro.index.registry.FuzzProfile` is exercised against the
naive scan oracle of :mod:`repro.query.naive` under randomized
scenarios: adversarial shapes (size-1 axes, high dimensionality), every
declared dtype, every declared operator, interleaved query / batch
update / persistence steps, and both the in-memory and the memmap
array backend.  A failing scenario is shrunk to a minimal reproducer
and serialized to a replayable seed token.

Entry points:

* ``python -m repro.verify --seed 0 --trials 200`` — the CLI sweep.
* :func:`run_scenario` / :func:`scenario_for` — programmatic use; the
  ``tests/verify`` suite parametrizes these over the registry.
* :func:`shrink_scenario` — greedy minimization of a failing scenario.
"""

from repro.verify.driver import Divergence, run_scenario
from repro.verify.scenarios import (
    Scenario,
    fuzzable_indexes,
    fuzzable_kernels,
    scenario_for,
)
from repro.verify.shrink import shrink_scenario

__all__ = [
    "Divergence",
    "Scenario",
    "fuzzable_indexes",
    "fuzzable_kernels",
    "run_scenario",
    "scenario_for",
    "shrink_scenario",
]
