"""Greedy minimization of a failing scenario.

Because every step owns its seed (see
:class:`~repro.verify.scenarios.Scenario`), dropping a step never
changes the randomness of the steps that remain — so the shrinker can
delete steps, shorten axes, swap the memmap backend for memory, and
switch the engine phase off, keeping any candidate that still fails.
The result is the smallest scenario this greedy descent finds, which in
practice is a one- or two-step reproducer on a tiny cube.
"""

from __future__ import annotations

from dataclasses import replace
from collections.abc import Callable, Iterator

from repro.verify.driver import Divergence, run_scenario
from repro.verify.scenarios import Scenario


def shrink_scenario(
    scenario: Scenario,
    *,
    runner: Callable[[Scenario], Divergence | None] = run_scenario,
    max_attempts: int = 200,
) -> tuple[Scenario, Divergence]:
    """Minimize a failing scenario while it keeps failing.

    Args:
        scenario: A scenario for which ``runner`` reports a divergence.
        runner: The evaluation function (injectable for tests).
        max_attempts: Cap on candidate evaluations.

    Returns:
        ``(smallest, divergence)`` — the most-shrunk still-failing
        scenario and its divergence record.

    Raises:
        ValueError: ``scenario`` does not fail under ``runner``.
    """
    failure = runner(scenario)
    if failure is None:
        raise ValueError("scenario does not fail; nothing to shrink")
    best, best_failure = scenario, failure
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(best):
            attempts += 1
            result = runner(candidate)
            if result is not None:
                best, best_failure = candidate, result
                improved = True
                break
            if attempts >= max_attempts:
                break
    return best, best_failure


def _candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Strictly-smaller variants, most aggressive first."""
    steps = scenario.steps
    # Halve the tail first (log-time on long sequences), then singles.
    if len(steps) > 1:
        yield replace(scenario, steps=steps[: len(steps) // 2])
    for k in reversed(range(len(steps))):
        yield replace(scenario, steps=steps[:k] + steps[k + 1 :])
    if scenario.backend == "memmap":
        yield replace(scenario, backend="memory")
    if scenario.engine:
        yield replace(scenario, engine=False)
    if scenario.kernel != "numpy":
        # If the bug reproduces under the oracle kernel it is not a
        # kernel-layer bug — prefer the simpler reproducer.
        yield replace(scenario, kernel="numpy")
    for dim, size in enumerate(scenario.shape):
        if size > 1:
            shape = list(scenario.shape)
            shape[dim] = max(1, size // 2)
            yield replace(scenario, shape=tuple(shape))
