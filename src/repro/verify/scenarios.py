"""Scenario generation and serialization for the differential harness.

A :class:`Scenario` is a *complete, deterministic* description of one
fuzzing episode: which index to build, over what shape/dtype/operator,
with which construction parameters and backend, and the sequence of
steps (queries, batch updates, persistence round-trips) to drive it
through.  Everything random is derived from the scenario's integer
seeds, so a scenario replays bit-identically from its token — the
shrinker and the CLI ``--replay`` flag both rely on this.

Generation is profile-driven: :func:`scenario_for` reads the
:class:`~repro.index.registry.FuzzProfile` an index registered and only
draws combinations the structure declares support for, with two
semantic filters on top (``xor`` needs an integer domain, ``product``
a zero-free float64 domain of exact powers of two).
"""

from __future__ import annotations

import base64
import json
import zlib
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.index.registry import available_indexes, get_index_info

#: Hard cap on cube cells — keeps the naive oracle cheap per scenario.
MAX_CELLS = 2048

#: Seed-sequence tags separating the harness's random streams.
GEN_TAG = 0xD1FF01
DATA_TAG = 0xD1FF02
STEP_TAG = 0xD1FF03
ENGINE_TAG = 0xD1FF04

#: Step kinds a scenario may contain.
STEP_KINDS = ("query", "query_empty", "query_many", "update", "persist")

_TOKEN_PREFIX = "rv1-"


@dataclass(frozen=True)
class Scenario:
    """One deterministic fuzzing episode (see module docstring).

    Attributes:
        index: Registry name of the structure under test.
        seed: Root seed for cube data and step randomness.
        shape: Cube shape (possibly with size-1 axes).
        dtype: Numpy dtype name of the source cube.
        operator: Operator name for SUM-family indexes (``""`` for
            max-kind indexes, which take no operator).
        params: Sorted ``(name, value)`` construction parameters.
        backend: ``"memory"`` or ``"memmap"``.
        steps: ``(kind, step_seed)`` pairs; each step draws its own rng
            from ``step_seed`` so dropping steps during shrinking never
            shifts the randomness of the steps that remain.
        engine: Whether to also drive a :class:`RangeQueryEngine` built
            on this index through the derived-aggregate surface.
        kernel: Execution-kernel registry name the batch path runs
            under (``"numpy"`` is the oracle default; tokens minted
            before the kernel layer replay as ``"numpy"``).
    """

    index: str
    seed: int
    shape: tuple[int, ...]
    dtype: str
    operator: str
    params: tuple[tuple[str, object], ...]
    backend: str
    steps: tuple[tuple[str, int], ...]
    engine: bool = False
    kernel: str = "numpy"

    def param_dict(self) -> dict:
        """Construction parameters as a plain keyword dict."""
        return {name: value for name, value in self.params}

    def to_token(self) -> str:
        """Serialize to a compact, replayable seed string."""
        payload = {
            "index": self.index,
            "seed": self.seed,
            "shape": list(self.shape),
            "dtype": self.dtype,
            "operator": self.operator,
            "params": [[k, v] for k, v in self.params],
            "backend": self.backend,
            "steps": [[kind, seed] for kind, seed in self.steps],
            "engine": self.engine,
            "kernel": self.kernel,
        }
        raw = json.dumps(payload, separators=(",", ":")).encode()
        body = base64.urlsafe_b64encode(zlib.compress(raw, 9)).decode()
        return _TOKEN_PREFIX + body

    @classmethod
    def from_token(cls, token: str) -> Scenario:
        """Rebuild a scenario from :meth:`to_token` output (or raw JSON)."""
        token = token.strip()
        if token.startswith("{"):
            payload = json.loads(token)
        else:
            if token.startswith(_TOKEN_PREFIX):
                token = token[len(_TOKEN_PREFIX) :]
            raw = zlib.decompress(base64.urlsafe_b64decode(token.encode()))
            payload = json.loads(raw.decode())
        return cls(
            index=str(payload["index"]),
            seed=int(payload["seed"]),
            shape=tuple(int(n) for n in payload["shape"]),
            dtype=str(payload["dtype"]),
            operator=str(payload["operator"]),
            params=tuple(
                (str(k), _freeze(v)) for k, v in payload["params"]
            ),
            backend=str(payload["backend"]),
            steps=tuple(
                (str(kind), int(seed)) for kind, seed in payload["steps"]
            ),
            engine=bool(payload.get("engine", False)),
            kernel=str(payload.get("kernel", "numpy")),
        )


def _freeze(value: object) -> object:
    """JSON round-trips tuples as lists; restore hashable params."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


def fuzzable_indexes(
    names: Sequence[str] | None = None,
) -> tuple[str, ...]:
    """Registered index names that advertise a fuzz profile.

    Args:
        names: Optional subset to restrict to; unknown names raise
            through :func:`get_index_info` so typos fail loudly.
    """
    selected: Iterable[str] = names if names else available_indexes()
    return tuple(
        name
        for name in selected
        if get_index_info(name).fuzz_profile is not None
    )


def fuzzable_kernels() -> tuple[str, ...]:
    """Execution-kernel names the harness cycles scenarios through.

    Always the ``numpy`` oracle and the vectorizing ``threaded``
    backend; ``numba`` joins when the optional dependency is importable
    (its silent-degradation path is then fuzzed too).
    """
    from repro.kernels.numba_kernel import numba_available

    kernels = ["numpy", "threaded"]
    if numba_available():
        kernels.append("numba")
    return tuple(kernels)


def updates_allowed(
    supports_updates: bool, dtype: str, operator: str
) -> bool:
    """Whether the harness generates ``update`` steps for a combination.

    Update fuzzing covers signed-integer and float cubes: bool cells
    cannot absorb additive deltas (the source write saturates while the
    prefix array adds exactly), and unsigned cells reject the negative
    Python deltas the generator draws.  Those dtype/update pairs are a
    documented non-goal, not a silent gap — see ``docs/TESTING.md``.
    """
    if not supports_updates:
        return False
    if dtype == "bool" or dtype.startswith("uint"):
        return False
    return operator in ("sum", "xor", "")


def scenario_for(
    name: str,
    seed: int,
    *,
    force_backend: str | None = None,
    force_kernel: str | None = None,
) -> Scenario | None:
    """Draw the scenario for ``(name, seed)`` from the index's profile.

    Args:
        name: Registry name.
        seed: Root seed; the same pair always yields the same scenario.
        force_backend: Pin ``"memory"`` / ``"memmap"`` instead of letting
            the generator choose (ignored when the structure does not
            accept a backend).
        force_kernel: Pin an execution-kernel name instead of cycling
            through :func:`fuzzable_kernels`.

    Returns:
        The scenario, or ``None`` when the index has no fuzz profile.
    """
    info = get_index_info(name)
    profile = info.fuzz_profile
    if profile is None:
        return None
    rng = np.random.default_rng(
        [GEN_TAG, zlib.crc32(name.encode()), seed]
    )
    ndim = int(rng.integers(profile.min_ndim, profile.max_ndim + 1))
    shape = _draw_shape(rng, ndim)
    dtype = str(rng.choice(profile.dtypes))
    operator = _draw_operator(rng, profile.operators, dtype)
    params: dict = (
        profile.sample_params(rng, shape) if profile.sample_params else {}
    )
    if info.accepts_backend:
        if force_backend is not None:
            backend = force_backend
        else:
            backend = "memmap" if rng.random() < 0.25 else "memory"
    else:
        backend = "memory"
    steps = _draw_steps(rng, info, profile, dtype, operator)
    engine = (
        info.kind == "sum"
        and not info.sparse_input
        and operator == "sum"
        and rng.random() < 0.3
    )
    # Drawn last so adding the kernel dimension did not shift the rng
    # stream of any field above (historical tokens replay unchanged).
    if force_kernel is not None:
        kernel = force_kernel
    else:
        kernel = str(rng.choice(fuzzable_kernels()))
    return Scenario(
        index=name,
        seed=int(seed),
        shape=shape,
        dtype=dtype,
        operator=operator,
        params=tuple(sorted(params.items())),
        backend=backend,
        steps=steps,
        engine=engine,
        kernel=kernel,
    )


def _draw_shape(rng: np.random.Generator, ndim: int) -> tuple[int, ...]:
    """Small adversarial shapes: short axes, frequent size-1 axes."""
    sizes = [int(rng.integers(1, 9)) for _ in range(ndim)]
    if ndim > 1 and rng.random() < 0.3:
        sizes[int(rng.integers(0, ndim))] = 1
    while int(np.prod(sizes)) > MAX_CELLS:
        widest = int(np.argmax(sizes))
        sizes[widest] = max(1, sizes[widest] // 2)
    return tuple(sizes)


def _draw_operator(
    rng: np.random.Generator, operators: tuple[str, ...], dtype: str
) -> str:
    """Pick an operator the dtype can host exactly.

    ``xor`` is bitwise, so float cubes are excluded; ``product`` needs
    the zero-free power-of-two float64 domain the data generator builds.
    """
    if not operators:
        return ""
    allowed = [
        op
        for op in operators
        if not (op == "xor" and dtype.startswith("float"))
        and not (op == "product" and dtype != "float64")
    ]
    if not allowed:
        allowed = ["sum"]
    return str(rng.choice(allowed))


def _draw_steps(
    rng: np.random.Generator,
    info: object,
    profile: object,
    dtype: str,
    operator: str,
) -> tuple[tuple[str, int], ...]:
    """A step mix biased toward queries, honoring the capabilities."""
    kinds = ["query", "query", "query_many", "query_empty"]
    if updates_allowed(profile.supports_updates, dtype, operator):
        kinds.append("update")
        kinds.append("update")
    if info.persistable:
        kinds.append("persist")
    count = int(rng.integers(3, 9))
    return tuple(
        (str(rng.choice(kinds)), int(rng.integers(0, 2**31)))
        for _ in range(count)
    )
