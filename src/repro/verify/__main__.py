"""CLI for the differential harness: ``python -m repro.verify``.

Sweep mode (the default) round-robins scenarios over every registered
index that advertises a fuzz profile::

    python -m repro.verify --seed 0 --trials 200

On the first divergence the scenario is shrunk to a minimal reproducer,
its replay token is printed, an optional JSON artifact is written, and
the process exits 1.  Replay mode re-runs one token::

    python -m repro.verify --replay rv1-...

``--time-budget`` bounds wall-clock for CI smoke jobs; trials past the
budget are skipped and reported, never silently dropped.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.verify.driver import Divergence, run_scenario
from repro.verify.scenarios import Scenario, fuzzable_indexes, scenario_for
from repro.verify.shrink import shrink_scenario

#: Spreads trial numbers across scenario seed space per root seed.
SEED_STRIDE = 1_000_003


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differentially fuzz every registered index "
        "against the naive oracle.",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root seed (default 0)"
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=100,
        help="scenarios to run, round-robin over indexes (default 100)",
    )
    parser.add_argument(
        "--index",
        action="append",
        metavar="NAME",
        help="restrict to this registry name (repeatable)",
    )
    parser.add_argument(
        "--backend",
        choices=("both", "memory", "memmap"),
        default="both",
        help="pin the array backend (default: generator's choice)",
    )
    parser.add_argument(
        "--kernel",
        metavar="NAME",
        help="pin the execution kernel (default: cycle through "
        "numpy/threaded, plus numba when importable)",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop starting new trials after this much wall-clock",
    )
    parser.add_argument(
        "--artifact",
        metavar="PATH",
        help="write a JSON failure artifact here on divergence",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report the raw failing scenario without minimizing",
    )
    parser.add_argument(
        "--replay",
        metavar="TOKEN",
        help="re-run one serialized scenario instead of sweeping",
    )
    return parser


def _report(failure: Divergence, artifact: str | None) -> None:
    token = failure.scenario.to_token()
    print("DIVERGENCE:", failure.describe())
    print(json.dumps(failure.detail, indent=2, default=str))
    print(f"replay with: python -m repro.verify --replay {token}")
    if artifact:
        record = {
            "index": failure.scenario.index,
            "scenario": json.loads(_scenario_json(failure)),
            "detail": failure.detail,
            "token": token,
        }
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, default=str)
        print(f"artifact written to {artifact}")


def _scenario_json(failure: Divergence) -> str:
    scenario = failure.scenario
    return json.dumps(
        {
            "index": scenario.index,
            "seed": scenario.seed,
            "shape": list(scenario.shape),
            "dtype": scenario.dtype,
            "operator": scenario.operator,
            "params": [list(pair) for pair in scenario.params],
            "backend": scenario.backend,
            "steps": [list(step) for step in scenario.steps],
            "engine": scenario.engine,
            "kernel": scenario.kernel,
        }
    )


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.replay:
        scenario = Scenario.from_token(args.replay)
        failure = run_scenario(scenario)
        if failure is None:
            print(f"{scenario.index}: scenario passes (no divergence)")
            return 0
        _report(failure, args.artifact)
        return 1

    names = fuzzable_indexes(args.index)
    if not names:
        print("no fuzzable indexes selected", file=sys.stderr)
        return 2
    force = None if args.backend == "both" else args.backend
    started = time.monotonic()
    completed = 0
    per_index: dict[str, int] = {name: 0 for name in names}
    for trial in range(args.trials):
        elapsed = time.monotonic() - started
        if args.time_budget is not None and elapsed > args.time_budget:
            print(
                f"time budget of {args.time_budget:.0f}s exhausted "
                f"after {completed}/{args.trials} trials"
            )
            break
        name = names[trial % len(names)]
        scenario = scenario_for(
            name,
            args.seed * SEED_STRIDE + trial,
            force_backend=force,
            force_kernel=args.kernel,
        )
        completed += 1
        per_index[name] += 1
        failure = run_scenario(scenario)
        if failure is not None:
            if not args.no_shrink:
                _, failure = shrink_scenario(failure.scenario)
            _report(failure, args.artifact)
            return 1
    coverage = ", ".join(
        f"{name}:{count}" for name, count in sorted(per_index.items())
    )
    print(
        f"OK: {completed} scenarios, {len(names)} indexes, "
        "no divergences"
    )
    print(f"coverage: {coverage}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
