"""Shadow-cube oracles the harness diffs every index answer against.

The driver mirrors the source cube into a *shadow* array held in a wide
exact dtype (int64, or float64 when the domain is floating).  Scenario
values are chosen so every aggregate is exactly representable there —
small integers for SUM/XOR, powers of two for PRODUCT — which is what
lets :func:`repro.index.protocol.values_match` demand bit-exact
agreement with no tolerance.

These reducers intentionally mirror :func:`repro.query.naive` semantics
(empty range → operator identity; max over an empty or all-zero sparse
region → ``None``) while staying an *independent* implementation: the
oracle windows the shadow array directly and never touches ``Box``
validation, prefix arrays, or any code under test.
"""

from __future__ import annotations

import numpy as np

from repro._util import Box

#: Operator identities, keyed by operator name (empty range answers).
IDENTITIES = {"sum": 0, "xor": 0, "product": 1}

_REDUCERS = {
    "sum": lambda window: window.sum(),
    "xor": lambda window: np.bitwise_xor.reduce(window, axis=None),
    "product": lambda window: window.prod(),
}


def shadow_dtype(dtype: object, operator: str) -> np.dtype:
    """The wide exact dtype the shadow mirror is held in."""
    if operator == "product" or np.issubdtype(
        np.dtype(dtype), np.floating
    ):
        return np.dtype(np.float64)
    return np.dtype(np.int64)


def oracle_aggregate(
    shadow: np.ndarray, box: Box, operator: str
) -> object:
    """The SUM-family answer for ``box`` by direct scan of the shadow."""
    window = shadow[box.slices()]
    if window.size == 0:
        return IDENTITIES[operator]
    return _REDUCERS[operator](window)


def oracle_max_value(shadow: np.ndarray, box: Box) -> object:
    """The dense MAX answer: the max cell value, or ``None`` if empty."""
    window = shadow[box.slices()]
    if window.size == 0:
        return None
    return window.max()


def oracle_sparse_max_value(shadow: np.ndarray, box: Box) -> object:
    """The sparse MAX answer: max over *stored* (non-zero) cells only."""
    window = shadow[box.slices()]
    stored = window[window != 0]
    if stored.size == 0:
        return None
    return stored.max()
