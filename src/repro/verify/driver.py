"""The differential scenario driver: build, drive, diff, report.

:func:`run_scenario` materializes a :class:`~repro.verify.scenarios.Scenario`
— source cube, shadow mirror, index under test — and replays its step
sequence, diffing every answer against the :mod:`repro.verify.oracle`
shadow reducers.  SUM-family answers go through the protocol layer's
:meth:`~repro.index.protocol.InstrumentedIndex.compare_query` /
``compare_query_many`` helpers; MAX answers need semantic validation
(any cell attaining the maximum is a correct witness), which the driver
performs itself.  Any exception escaping a step is itself a divergence:
a fuzzer input must never crash a structure that declared support for
it.

The driver is deliberately oracle-first: the expected answer is always
computed *before* the index is consulted, from a shadow array the index
never sees.
"""

from __future__ import annotations

import io
import tempfile
import traceback
from dataclasses import dataclass

import numpy as np

from repro._util import Box
from repro.core.batch_update import PointUpdate
from repro.core.operators import get_operator
from repro.index.backend import MemmapBackend
from repro.index.protocol import InstrumentedIndex, values_match
from repro.index.registry import IndexInfo, create_index, get_index_info
from repro.verify.oracle import (
    IDENTITIES,
    oracle_aggregate,
    oracle_max_value,
    oracle_sparse_max_value,
    shadow_dtype,
)
from repro.verify.scenarios import (
    DATA_TAG,
    ENGINE_TAG,
    STEP_TAG,
    Scenario,
    updates_allowed,
)

#: Cell values stay inside this envelope through every update, so the
#: narrowest fuzzed dtype (int8) never overflows and float32 cells stay
#: exactly representable.
VALUE_BOUND = 80


@dataclass
class Divergence:
    """One disagreement between an index and the oracle."""

    scenario: Scenario
    detail: dict

    def describe(self) -> str:
        """A one-paragraph human summary (the CLI's failure banner)."""
        what = self.detail.get("kind", "divergence")
        return (
            f"{self.scenario.index} diverged ({what}) on shape "
            f"{self.scenario.shape} dtype {self.scenario.dtype} "
            f"backend {self.scenario.backend}: {self.detail}"
        )


def run_scenario(scenario: Scenario) -> Divergence | None:
    """Replay ``scenario`` and return its first divergence, if any.

    Exceptions raised by the structure under test are reported as
    ``kind="exception"`` divergences rather than propagated — a crash
    on declared-valid input is a bug the harness exists to catch.
    """
    try:
        with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
            return _run(scenario, tmp)
    except Exception:
        return Divergence(
            scenario,
            {
                "kind": "exception",
                "error": traceback.format_exc(limit=20),
            },
        )


def build_source(scenario: Scenario) -> np.ndarray:
    """The scenario's source cube, fully determined by its seed.

    Every value is exactly representable in the scenario dtype *and* in
    the shadow dtype: small integers for SUM/XOR domains, powers of two
    for PRODUCT (whose running products then span at most ``2**±40``,
    far inside float64).  Sparse-input scenarios zero out ~75% of cells
    so the dense-region finder and the outlier R*-tree both get work.
    """
    rng = np.random.default_rng([DATA_TAG, scenario.seed])
    shape = scenario.shape
    dtype = np.dtype(scenario.dtype)
    if scenario.operator == "product":
        values = np.ones(shape, dtype=np.float64)
        flat = values.reshape(-1)
        budget = min(flat.size, 40)
        doubles = int(rng.integers(0, budget + 1))
        halves = int(rng.integers(0, budget + 1))
        order = rng.permutation(flat.size)
        flat[order[:doubles]] = 2.0
        flat[order[doubles : doubles + halves]] = 0.5
        return values
    if scenario.operator == "xor":
        data = rng.integers(0, 64, size=shape)
    elif dtype == np.bool_:
        data = rng.integers(0, 2, size=shape)
    elif dtype.kind == "u":
        data = rng.integers(0, 51, size=shape)
    else:
        data = rng.integers(-50, 51, size=shape)
    if get_index_info(scenario.index).sparse_input:
        data[rng.random(shape) < 0.75] = 0
    return data.astype(dtype)


def _run(scenario: Scenario, tmpdir: str) -> Divergence | None:
    info = get_index_info(scenario.index)
    source = build_source(scenario)
    shadow = source.astype(
        shadow_dtype(scenario.dtype, scenario.operator)
    )
    params = scenario.param_dict()
    if info.kind == "sum" and not info.sparse_input:
        params["operator"] = get_operator(scenario.operator)
    backend = (
        MemmapBackend(tmpdir) if scenario.backend == "memmap" else None
    )
    if info.sparse_input:
        from repro.sparse import SparseCube

        cube: object = SparseCube.from_dense(source)
    else:
        cube = source
    inner = create_index(scenario.index, cube, backend=backend, **params)
    if scenario.kernel != "numpy" and hasattr(inner, "kernel"):
        inner.kernel = scenario.kernel
    index = InstrumentedIndex(inner)
    for position, (kind, step_seed) in enumerate(scenario.steps):
        rng = np.random.default_rng(
            [STEP_TAG, scenario.seed, step_seed]
        )
        runner = _STEP_RUNNERS[kind]
        detail = runner(scenario, info, index, shadow, rng)
        if detail is not None:
            detail.setdefault("step", position)
            detail.setdefault("step_kind", kind)
            return Divergence(scenario, detail)
    if scenario.engine:
        detail = _run_engine_phase(scenario)
        if detail is not None:
            detail.setdefault("step_kind", "engine")
            return Divergence(scenario, detail)
    return None


# ---------------------------------------------------------------------------
# Steps


def _random_box(rng: np.random.Generator, shape: tuple) -> Box:
    lo, hi = [], []
    for size in shape:
        a = int(rng.integers(0, size))
        b = int(rng.integers(0, size))
        lo.append(min(a, b))
        hi.append(max(a, b))
    return Box(tuple(lo), tuple(hi))


def _empty_box(rng: np.random.Generator, shape: tuple) -> Box:
    """A box that is empty in one randomly chosen dimension."""
    box = _random_box(rng, shape)
    lo, hi = list(box.lo), list(box.hi)
    dim = int(rng.integers(0, len(shape)))
    lo[dim] = int(rng.integers(1, shape[dim] + 1))
    hi[dim] = lo[dim] - 1
    return Box(tuple(lo), tuple(hi))


def _box_payload(box: Box) -> list:
    return [list(map(int, box.lo)), list(map(int, box.hi))]


def _check_max_query(
    info: IndexInfo,
    index: object,
    shadow: np.ndarray,
    box: Box,
    *,
    kind: str = "query",
) -> dict | None:
    """Semantic witness validation for one MAX query.

    The index is free to return *any* cell attaining the maximum, so
    the check is: the value equals the oracle's maximum, the witness
    lies inside the box, and the shadow holds that value at the witness.
    """
    if info.sparse_input:
        expected = oracle_sparse_max_value(shadow, box)
    else:
        expected = oracle_max_value(shadow, box)
    actual = index.query(box)
    if actual is None or expected is None:
        if actual is None and expected is None:
            return None
        return {
            "kind": kind,
            "box": _box_payload(box),
            "expected": repr(expected),
            "actual": repr(actual),
        }
    witness, value = actual
    witness = tuple(int(i) for i in np.atleast_1d(np.asarray(witness)))
    problem = None
    if not values_match(value, expected):
        problem = "value is not the region maximum"
    elif not box.contains_point(witness):
        problem = "witness index outside the query box"
    elif not values_match(shadow[witness], value):
        problem = "witness cell does not hold the reported value"
    if problem is None:
        return None
    return {
        "kind": kind,
        "box": _box_payload(box),
        "expected": repr(expected),
        "actual": f"({witness}, {value!r})",
        "problem": problem,
    }


def _step_query(scenario, info, index, shadow, rng):
    box = _random_box(rng, scenario.shape)
    if info.kind == "max":
        return _check_max_query(info, index, shadow, box)
    expected = oracle_aggregate(shadow, box, scenario.operator)
    return index.compare_query(box, expected)


def _step_query_empty(scenario, info, index, shadow, rng):
    box = _empty_box(rng, scenario.shape)
    if info.kind == "max":
        actual = index.query(box)
        if actual is None:
            return None
        return {
            "kind": "query_empty",
            "box": _box_payload(box),
            "expected": "None",
            "actual": repr(actual),
        }
    return index.compare_query(box, IDENTITIES[scenario.operator])


def _step_query_many(scenario, info, index, shadow, rng):
    count = int(rng.integers(2, 9))
    if info.kind == "max":
        return _check_max_query_many(
            scenario, info, index, shadow, rng, count
        )
    boxes = []
    for _ in range(count):
        if rng.random() < 0.25:
            boxes.append(_empty_box(rng, scenario.shape))
        else:
            boxes.append(_random_box(rng, scenario.shape))
    lows = np.array([box.lo for box in boxes])
    highs = np.array([box.hi for box in boxes])
    expected = np.array(
        [
            oracle_aggregate(shadow, box, scenario.operator)
            for box in boxes
        ]
    )
    return index.compare_query_many(lows, highs, expected)


def _check_max_query_many(scenario, info, index, shadow, rng, count):
    """Batch MAX probe; every box is anchored at a stored cell.

    The batch MAX path demands a witness per query, so boxes covering
    no stored cell are rejected by contract (that behaviour is pinned
    by unit tests); the fuzzer only feeds it witness-bearing boxes.
    """
    stored = np.argwhere(shadow != 0)
    if info.sparse_input and stored.size == 0:
        return None
    boxes = []
    for _ in range(count):
        box = _random_box(rng, scenario.shape)
        if info.sparse_input:
            anchor = stored[int(rng.integers(0, stored.shape[0]))]
            box = Box(
                tuple(min(l, int(a)) for l, a in zip(box.lo, anchor)),
                tuple(max(h, int(a)) for h, a in zip(box.hi, anchor)),
            )
        boxes.append(box)
    lows = np.array([box.lo for box in boxes])
    highs = np.array([box.hi for box in boxes])
    indices, values = index.query_many(lows, highs)
    for k, box in enumerate(boxes):
        if info.sparse_input:
            expected = oracle_sparse_max_value(shadow, box)
        else:
            expected = oracle_max_value(shadow, box)
        witness = tuple(int(i) for i in np.atleast_1d(indices[k]))
        value = values[k]
        problem = None
        if not values_match(value, expected):
            problem = "value is not the region maximum"
        elif not box.contains_point(witness):
            problem = "witness index outside the query box"
        elif not values_match(shadow[witness], value):
            problem = "witness cell does not hold the reported value"
        if problem is not None:
            return {
                "kind": "query_many",
                "row": int(k),
                "box": _box_payload(box),
                "expected": repr(expected),
                "actual": f"({witness}, {value!r})",
                "problem": problem,
            }
    return None


def _draw_delta(
    rng: np.random.Generator, current: object, operator: str
) -> tuple:
    """A delta keeping the cell inside the exact-value envelope.

    Returns ``(delta, new_value)``; the caller writes ``new_value``
    into the shadow and hands ``delta`` to the index.
    """
    if operator == "xor":
        delta = int(rng.integers(0, 64))
        return delta, int(current) ^ delta
    draw = int(rng.integers(-30, 31))
    new = int(np.clip(int(current) + draw, -VALUE_BOUND, VALUE_BOUND))
    return new - int(current), new


def _step_update(scenario, info, index, shadow, rng):
    count = int(rng.integers(1, 6))
    updates = []
    for _ in range(count):
        point = tuple(
            int(rng.integers(0, size)) for size in scenario.shape
        )
        delta, new = _draw_delta(rng, shadow[point], scenario.operator)
        shadow[point] = new
        updates.append(PointUpdate(point, delta))
    index.apply_updates(updates)
    # Immediately probe: a stale prefix/tree/cell shows up right here.
    return _step_query(scenario, info, index, shadow, rng)


def _step_persist(scenario, info, index, shadow, rng):
    from repro.io import load_index, save_index

    buffer = io.BytesIO()
    save_index(index, buffer)
    buffer.seek(0)
    clone = InstrumentedIndex(load_index(buffer))
    box = _random_box(rng, scenario.shape)
    if info.kind == "max":
        detail = _check_max_query(info, clone, shadow, box, kind="persist")
    else:
        expected = oracle_aggregate(shadow, box, scenario.operator)
        detail = clone.compare_query(box, expected)
        if detail is not None:
            detail["kind"] = "persist"
    return detail


_STEP_RUNNERS = {
    "query": _step_query,
    "query_empty": _step_query_empty,
    "query_many": _step_query_many,
    "update": _step_update,
    "persist": _step_persist,
}


# ---------------------------------------------------------------------------
# Engine phase


def _run_engine_phase(scenario: Scenario) -> dict | None:
    """Drive a :class:`RangeQueryEngine` built on the scenario's index.

    This reuses the planner's routing table end to end: SUM routes to
    the index under test, COUNT to a counts-cube twin, AVERAGE to the
    SUM/COUNT pair (``None`` over zero-count regions), MAX/MIN to a §6
    tree — all checked against the same shadow mirror, scalar and batch.
    The phase regenerates a pristine source (the step sequence may have
    mutated the shared shadow through the index under test).
    """
    from repro.index.registry import IndexSpec
    from repro.query.engine import RangeQueryEngine

    rng = np.random.default_rng([ENGINE_TAG, scenario.seed])
    source = build_source(scenario)
    shadow = source.astype(
        shadow_dtype(scenario.dtype, scenario.operator)
    )
    counts = rng.integers(0, 4, size=scenario.shape).astype(np.int64)
    count_shadow = counts.copy()
    engine = RangeQueryEngine(
        source,
        sum_index=IndexSpec.of(scenario.index, **scenario.param_dict()),
        counts=counts,
        max_index=IndexSpec.of("range_max_tree", fanout=4),
        kernel=None if scenario.kernel == "numpy" else scenario.kernel,
    )

    def diff(kind, box, expected, actual):
        if values_match(actual, expected):
            return None
        return {
            "kind": f"engine_{kind}",
            "box": _box_payload(box),
            "expected": repr(expected),
            "actual": repr(actual),
        }

    def probe():
        box = _random_box(rng, scenario.shape)
        window = shadow[box.slices()]
        denominator = int(count_shadow[box.slices()].sum())
        checks = [
            ("sum", window.sum(), engine.sum(box)),
            ("count", denominator, engine.count(box)),
            (
                "average",
                None if denominator == 0 else window.sum() / denominator,
                engine.average(box),
            ),
            ("max", window.max(), engine.max(box)[1]),
            ("min", window.min(), engine.min(box)[1]),
        ]
        for kind, expected, actual in checks:
            detail = diff(kind, box, expected, actual)
            if detail is not None:
                return detail
        return None

    def probe_batch():
        boxes = [_random_box(rng, scenario.shape) for _ in range(5)]
        boxes.append(_empty_box(rng, scenario.shape))
        lows = np.array([box.lo for box in boxes])
        highs = np.array([box.hi for box in boxes])
        sums = engine.sum_many(lows, highs)
        tallies = engine.count_many(lows, highs)
        averages = engine.average_many(lows, highs)
        for k, box in enumerate(boxes):
            window = shadow[box.slices()]
            denominator = int(count_shadow[box.slices()].sum())
            expected_average = (
                None if denominator == 0 else window.sum() / denominator
            )
            rows = [
                ("sum_many", window.sum(), sums[k]),
                ("count_many", denominator, tallies[k]),
                ("average_many", expected_average, averages[k]),
            ]
            for kind, expected, actual in rows:
                detail = diff(kind, box, expected, actual)
                if detail is not None:
                    detail["row"] = k
                    return detail
        return None

    detail = probe() or probe() or probe_batch()
    if detail is not None:
        return detail
    empty = _empty_box(rng, scenario.shape)
    detail = (
        diff("sum", empty, 0, engine.sum(empty))
        or diff("count", empty, 0, engine.count(empty))
        or diff("average", empty, None, engine.average(empty))
    )
    if detail is not None:
        return detail
    profile = get_index_info(scenario.index).fuzz_profile
    if updates_allowed(profile.supports_updates, scenario.dtype, "sum"):
        updates, count_updates = [], []
        for _ in range(4):
            point = tuple(
                int(rng.integers(0, size)) for size in scenario.shape
            )
            delta, new = _draw_delta(rng, shadow[point], "sum")
            shadow[point] = new
            count_shadow[point] += 1
            updates.append(PointUpdate(point, delta))
            count_updates.append(PointUpdate(point, 1))
        engine.apply_updates(updates, count_updates)
        detail = probe() or probe_batch()
    return detail
