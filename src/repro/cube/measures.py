"""Multiple measure attributes over one set of dimensions.

Section 1 of the paper: *"Some of these attributes are chosen as metrics
of interest and are referred to as the **measure attributes**"* — plural.
A warehouse fact table typically carries several (revenue, cost, units,
...), all sharing the functional attributes.  :class:`MeasureSet` holds
one :class:`~repro.cube.datacube.DataCube` per measure over shared
dimension encoders and a shared record-count cube, so AVERAGE works for
every measure from a single count structure.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension, dimension_shape
from repro.instrumentation import NULL_COUNTER, AccessCounter


class MeasureSet:
    """Named measure cubes over shared dimensions.

    Args:
        dimensions: Ordered dimension encoders shared by every measure.
        measures: Mapping from measure name to its dense array.
        counts: Shared per-cell record counts (enables AVERAGE).
    """

    def __init__(
        self,
        dimensions: Sequence[Dimension],
        measures: Mapping[str, np.ndarray],
        counts: np.ndarray | None = None,
    ) -> None:
        if not measures:
            raise ValueError("a MeasureSet needs at least one measure")
        self.dimensions = tuple(dimensions)
        expected = dimension_shape(self.dimensions)
        self._cubes: dict[str, DataCube] = {}
        for name, array in measures.items():
            if tuple(array.shape) != expected:
                raise ValueError(
                    f"measure {name!r} has shape {array.shape}, "
                    f"expected {expected}"
                )
            self._cubes[name] = DataCube(self.dimensions, array, counts)

    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping[str, object]],
        dimensions: Sequence[Dimension],
        measures: Sequence[str],
        dtype: np.dtype | type = np.int64,
    ) -> MeasureSet:
        """Aggregate raw records into one cube per measure attribute."""
        if not measures:
            raise ValueError("at least one measure name is required")
        shape = dimension_shape(dimensions)
        arrays = {
            name: np.zeros(shape, dtype=dtype) for name in measures
        }
        counts = np.zeros(shape, dtype=np.int64)
        for record in records:
            index = tuple(
                dim.encode(record[dim.name]) for dim in dimensions
            )
            for name in measures:
                arrays[name][index] += record[name]
            counts[index] += 1
        return cls(dimensions, arrays, counts)

    @property
    def measure_names(self) -> tuple[str, ...]:
        """Names of the held measures."""
        return tuple(self._cubes)

    @property
    def shape(self) -> tuple[int, ...]:
        """Rank-domain shape shared by every measure."""
        return dimension_shape(self.dimensions)

    def cube(self, measure: str) -> DataCube:
        """The :class:`DataCube` of one measure.

        Raises:
            KeyError: For an unknown measure name.
        """
        try:
            return self._cubes[measure]
        except KeyError:
            known = ", ".join(sorted(self._cubes))
            raise KeyError(
                f"unknown measure {measure!r}; known: {known}"
            ) from None

    def build_indexes(
        self, block_size: int = 1, max_fanout: int | None = 4
    ) -> None:
        """Precompute query structures for every measure at once."""
        for cube in self._cubes.values():
            cube.build_index(block_size=block_size, max_fanout=max_fanout)

    # Convenience pass-throughs -----------------------------------------

    def sum(
        self,
        measure: str,
        counter: AccessCounter = NULL_COUNTER,
        **conditions: object,
    ) -> object:
        """Range-SUM of one measure."""
        return self.cube(measure).sum(counter, **conditions)

    def average(
        self,
        measure: str,
        counter: AccessCounter = NULL_COUNTER,
        **conditions: object,
    ) -> float:
        """Range-AVERAGE of one measure (shared count cube)."""
        return self.cube(measure).average(counter, **conditions)

    def max(
        self,
        measure: str,
        counter: AccessCounter = NULL_COUNTER,
        **conditions: object,
    ) -> tuple[dict[str, object], object]:
        """Range-MAX of one measure."""
        return self.cube(measure).max(counter, **conditions)

    def min(
        self,
        measure: str,
        counter: AccessCounter = NULL_COUNTER,
        **conditions: object,
    ) -> tuple[dict[str, object], object]:
        """Range-MIN of one measure."""
        return self.cube(measure).min(counter, **conditions)

    def count(
        self,
        counter: AccessCounter = NULL_COUNTER,
        **conditions: object,
    ) -> object:
        """Range-COUNT of records (measure-independent)."""
        first = next(iter(self._cubes.values()))
        return first.count(counter, **conditions)

    def ratio(
        self,
        numerator: str,
        denominator: str,
        counter: AccessCounter = NULL_COUNTER,
        **conditions: object,
    ) -> float:
        """Ratio of two measures' range-sums (e.g. margin = profit /
        revenue) — two constant-time queries."""
        num = self.sum(numerator, counter, **conditions)
        den = self.sum(denominator, counter, **conditions)
        if den == 0:
            raise ZeroDivisionError(
                f"range-sum of {denominator!r} is zero on this region"
            )
        return float(num) / float(den)
