"""The user-facing OLAP data cube with attribute-level range queries.

:class:`DataCube` couples a dense measure array with named
:class:`~repro.cube.dimensions.Dimension` encoders and exposes the paper's
query classes in attribute space::

    cube = DataCube.from_records(records, dims, measure="revenue")
    cube.build_index(block_size=10, max_fanout=4)
    cube.sum(age=(37, 52), year=(1988, 1996), type="auto")   # range-sum
    cube.max(state="CA")                                     # range-max
    cube.average(year=1995)                                  # (sum, count)

Conditions per dimension: a 2-tuple for a contiguous range, a scalar for a
singleton, or omitted for ``all`` — mirroring the paper's query model.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.cube.builder import build_measure_array
from repro.cube.dimensions import Dimension, dimension_shape
from repro.instrumentation import NULL_COUNTER, AccessCounter
from repro.query.engine import RangeQueryEngine
from repro.query.ranges import RangeQuery, RangeSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.index import ArrayBackend, IndexSpec


class DataCube:
    """A dense d-dimensional MDDB with named dimensions.

    Args:
        dimensions: Ordered dimension encoders (the functional attributes).
        measures: Dense measure array matching the dimension shape.
        counts: Optional per-cell record counts (enables AVERAGE).
    """

    def __init__(
        self,
        dimensions: Sequence[Dimension],
        measures: np.ndarray,
        counts: np.ndarray | None = None,
    ) -> None:
        self.dimensions = tuple(dimensions)
        expected = dimension_shape(self.dimensions)
        if tuple(measures.shape) != expected:
            raise ValueError(
                f"measure array shape {measures.shape} does not match the "
                f"dimension shape {expected}"
            )
        names = [dim.name for dim in self.dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names in {names}")
        self.measures = np.asarray(measures)
        self.counts = None if counts is None else np.asarray(counts)
        self._by_name = {dim.name: j for j, dim in enumerate(self.dimensions)}
        self._engine: RangeQueryEngine | None = None

    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping[str, object]],
        dimensions: Sequence[Dimension],
        measure: str,
        dtype: np.dtype | type = np.int64,
    ) -> DataCube:
        """Aggregate raw records into a cube (see §1's MDDB construction)."""
        measures, counts = build_measure_array(
            records, dimensions, measure, dtype
        )
        return cls(dimensions, measures, counts)

    @property
    def shape(self) -> tuple[int, ...]:
        """Rank-domain shape of the cube."""
        return tuple(self.measures.shape)

    @property
    def ndim(self) -> int:
        """Number of functional attributes d."""
        return len(self.dimensions)

    def dimension(self, name: str) -> Dimension:
        """Look up a dimension encoder by name."""
        return self.dimensions[self._by_name[name]]

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------

    def build_index(
        self,
        block_size: int = 1,
        max_fanout: int | None = 4,
        prefix_dims: Sequence[str] | None = None,
        sum_index: str | IndexSpec | None = None,
        max_index: str | IndexSpec | None = None,
        backend: ArrayBackend | None = None,
    ) -> RangeQueryEngine:
        """Precompute the paper's structures over this cube.

        Args:
            block_size: ``1`` for the basic prefix-sum array (§3), larger
                for the blocked structure (§4).
            max_fanout: Fanout of the range-max/min trees (§6), or ``None``
                to skip them.
            prefix_dims: Dimension *names* to restrict prefix sums to
                (§9.1); mutually exclusive with ``block_size > 1``.
            sum_index: Explicit registry name or
                :class:`~repro.index.IndexSpec` for the range-sum
                structure — overrides ``block_size`` / ``prefix_dims``.
            max_index: Explicit registry spec for the range-max structure
                — overrides ``max_fanout``.
            backend: Array backend threaded into every structure (pass a
                :class:`~repro.index.MemmapBackend` for out-of-core).

        Returns:
            The engine (also retained on the cube for the query methods).
        """
        from repro.query.engine import _legacy_max_spec, _legacy_sum_spec

        if sum_index is None:
            dims = (
                None
                if prefix_dims is None
                else tuple(self._by_name[name] for name in prefix_dims)
            )
            sum_index = _legacy_sum_spec(block_size, dims)
        if max_index is None:
            max_index = _legacy_max_spec(max_fanout)
        self._engine = RangeQueryEngine(
            self.measures,
            sum_index=sum_index,
            max_index=max_index,
            counts=self.counts,
            backend=backend,
        )
        return self._engine

    @property
    def engine(self) -> RangeQueryEngine:
        """The built engine, constructing a default one on first use."""
        if self._engine is None:
            self.build_index()
        assert self._engine is not None
        return self._engine

    # ------------------------------------------------------------------
    # Attribute-level queries
    # ------------------------------------------------------------------

    def parse_query(self, conditions: Mapping[str, object]) -> RangeQuery:
        """Translate named conditions into a rank-space range query.

        Args:
            conditions: Per-dimension-name constraint — a 2-tuple
                ``(lo, hi)`` of attribute values for a range, a scalar for
                a singleton, or ``None``/omitted for ``all``.
        """
        from repro.cube.hierarchy import HierarchicalDimension, LevelValue

        unknown = set(conditions) - set(self._by_name)
        if unknown:
            raise KeyError(f"unknown dimensions: {sorted(unknown)}")
        specs = []
        for dim in self.dimensions:
            condition = conditions.get(dim.name)
            if condition is None:
                specs.append(RangeSpec.all())
            elif isinstance(condition, LevelValue):
                if not isinstance(dim, HierarchicalDimension):
                    raise TypeError(
                        f"dimension {dim.name!r} has no hierarchy levels"
                    )
                lo, hi = dim.resolve_level_value(condition)
                specs.append(RangeSpec.between(lo, hi))
            elif isinstance(condition, tuple) and len(condition) == 2:
                lo, hi = dim.encode_range(condition[0], condition[1])
                specs.append(RangeSpec.between(lo, hi))
            else:
                specs.append(RangeSpec.at(dim.encode(condition)))
        return RangeQuery(tuple(specs))

    def sum(
        self, counter: AccessCounter = NULL_COUNTER, **conditions: object
    ) -> object:
        """Range-SUM over the selected region."""
        return self.engine.sum(self.parse_query(conditions), counter)

    def count(
        self, counter: AccessCounter = NULL_COUNTER, **conditions: object
    ) -> object:
        """Range-COUNT of contributing records over the selected region."""
        return self.engine.count(self.parse_query(conditions), counter)

    def average(
        self, counter: AccessCounter = NULL_COUNTER, **conditions: object
    ) -> float:
        """Range-AVERAGE via the (sum, count) pair."""
        return self.engine.average(self.parse_query(conditions), counter)

    def max(
        self, counter: AccessCounter = NULL_COUNTER, **conditions: object
    ) -> tuple[dict[str, object], object]:
        """Range-MAX: decoded attribute coordinates and the max value."""
        index, value = self.engine.max(self.parse_query(conditions), counter)
        return self._decode_index(index), value

    def min(
        self, counter: AccessCounter = NULL_COUNTER, **conditions: object
    ) -> tuple[dict[str, object], object]:
        """Range-MIN via MAX over the negated cube."""
        index, value = self.engine.min(self.parse_query(conditions), counter)
        return self._decode_index(index), value

    def absorb(
        self,
        records: Iterable[Mapping[str, object]],
        measure: str,
    ) -> int:
        """Incrementally load new fact records (the §5 nightly batch).

        Records are aggregated into per-cell deltas, applied to the
        measure (and count) arrays, and — when an index is already built —
        pushed through the engine's batch-update path so every
        precomputed structure stays exact without a rebuild.

        Args:
            records: New fact records, same schema as ``from_records``.
            measure: Key of the measure attribute.

        Returns:
            The number of distinct cells touched.
        """
        from repro.core.batch_update import PointUpdate

        measure_deltas: dict[tuple[int, ...], object] = {}
        count_deltas: dict[tuple[int, ...], int] = {}
        for record in records:
            index = tuple(
                dim.encode(record[dim.name]) for dim in self.dimensions
            )
            measure_deltas[index] = (
                measure_deltas.get(index, 0) + record[measure]
            )
            count_deltas[index] = count_deltas.get(index, 0) + 1
        for index, delta in measure_deltas.items():
            self.measures[index] += delta
        if self.counts is not None:
            for index, delta in count_deltas.items():
                self.counts[index] += delta
        if self._engine is not None:
            updates = [
                PointUpdate(index, delta)
                for index, delta in measure_deltas.items()
            ]
            counts = (
                [
                    PointUpdate(index, delta)
                    for index, delta in count_deltas.items()
                ]
                if self.counts is not None
                else None
            )
            self._engine.apply_updates(updates, counts)
        return len(measure_deltas)

    def cuboid(self, names: Sequence[str]) -> DataCube:
        """Project onto a cuboid: a group-by on the named dimensions (§9).

        The remaining dimensions take the value ``all`` — their axes are
        summed out of the measures (and counts).  The result is a normal
        :class:`DataCube`, so cuboid prefix sums and max trees build the
        same way as on the base cube.

        Args:
            names: Dimension names to keep, in the base cube's axis order.
        """
        keep = sorted(self._by_name[name] for name in names)
        if not keep:
            raise ValueError("a cuboid needs at least one dimension")
        if len(keep) != len(set(keep)):
            raise ValueError(f"duplicate dimension names in {list(names)}")
        dropped = tuple(
            j for j in range(self.ndim) if j not in set(keep)
        )
        measures = (
            self.measures.sum(axis=dropped) if dropped else self.measures
        )
        counts = None
        if self.counts is not None:
            counts = (
                self.counts.sum(axis=dropped) if dropped else self.counts
            )
        return DataCube(
            [self.dimensions[j] for j in keep], measures, counts
        )

    def _decode_index(self, index: Sequence[int]) -> dict[str, object]:
        return {
            dim.name: dim.decode(rank)
            for dim, rank in zip(self.dimensions, index)
        }
