"""Data-cube substrate: dimensions, record ingest, the extended cube."""

from repro.cube.builder import build_measure_array
from repro.cube.cuboid import (
    Cuboid,
    CuboidKey,
    all_cuboids,
    ancestors_within,
    is_ancestor,
    is_descendant,
    normalize_key,
    proper_descendants,
)
from repro.cube.datacube import DataCube
from repro.cube.dimensions import (
    CategoricalDimension,
    DateDimension,
    Dimension,
    IntegerDimension,
    dimension_shape,
)
from repro.cube.extended import ExtendedDataCube
from repro.cube.hierarchy import (
    HierarchicalDimension,
    LevelValue,
    month_hierarchy,
)
from repro.cube.measures import MeasureSet

__all__ = [
    "CategoricalDimension",
    "Cuboid",
    "CuboidKey",
    "DataCube",
    "DateDimension",
    "Dimension",
    "ExtendedDataCube",
    "HierarchicalDimension",
    "IntegerDimension",
    "LevelValue",
    "MeasureSet",
    "all_cuboids",
    "month_hierarchy",
    "ancestors_within",
    "build_measure_array",
    "dimension_shape",
    "is_ancestor",
    "is_descendant",
    "normalize_key",
    "proper_descendants",
]
