"""Dimension encoders: attribute domains → dense rank domains.

Section 2 of the paper: *"each dimension of A is the rank domain of a
corresponding attribute of the data cube ... it is desirable that there
exists a simple function mapping the attribute domain to the rank domain.
If such function does not exist, then additional storage and time overhead
for lookup tables or hash tables may be required."*

Three encoders cover the paper's examples (age, year, state, insurance
type):

* :class:`IntegerDimension` — the "simple function" case: a contiguous
  integer domain mapped by subtraction (age 1..100, year 1987..1996).
* :class:`CategoricalDimension` — the lookup-table case: an ordered value
  list with a hash-table rank lookup (states, insurance types).
* :class:`DateDimension` — calendar days mapped by day offset.
"""

from __future__ import annotations

import datetime
from collections.abc import Hashable, Iterable, Sequence


class Dimension:
    """Abstract mapping between an attribute domain and ranks ``0..n−1``."""

    name: str
    size: int

    def encode(self, value: object) -> int:
        """Rank of an attribute value.

        Raises:
            KeyError: If the value is outside the dimension's domain.
        """
        raise NotImplementedError

    def decode(self, rank: int) -> object:
        """Attribute value at a rank."""
        raise NotImplementedError

    def encode_range(self, lo: object, hi: object) -> tuple[int, int]:
        """Inclusive rank bounds of an attribute-value range."""
        lo_rank = self.encode(lo)
        hi_rank = self.encode(hi)
        if lo_rank > hi_rank:
            raise ValueError(f"empty range {lo!r}..{hi!r} on {self.name}")
        return lo_rank, hi_rank

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise KeyError(
                f"rank {rank} outside dimension {self.name!r} "
                f"of size {self.size}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, size={self.size})"


class IntegerDimension(Dimension):
    """A contiguous integer domain ``lo..hi`` mapped by subtraction."""

    def __init__(self, name: str, lo: int, hi: int) -> None:
        if lo > hi:
            raise ValueError(f"empty integer domain {lo}..{hi}")
        self.name = name
        self.lo = int(lo)
        self.hi = int(hi)
        self.size = self.hi - self.lo + 1

    def encode(self, value: object) -> int:
        rank = int(value) - self.lo  # type: ignore[arg-type]
        self._check_rank(rank)
        return rank

    def decode(self, rank: int) -> int:
        self._check_rank(rank)
        return self.lo + rank


class CategoricalDimension(Dimension):
    """An explicitly ordered finite domain with a hash-table lookup.

    The ordering given at construction defines the rank order, hence what
    "contiguous range" means for range queries on this attribute.
    """

    def __init__(self, name: str, values: Iterable[Hashable]) -> None:
        self.name = name
        self.values: tuple[Hashable, ...] = tuple(values)
        if not self.values:
            raise ValueError(f"dimension {name!r} has an empty domain")
        self._ranks = {value: i for i, value in enumerate(self.values)}
        if len(self._ranks) != len(self.values):
            raise ValueError(f"dimension {name!r} has duplicate values")
        self.size = len(self.values)

    def encode(self, value: object) -> int:
        try:
            return self._ranks[value]
        except (KeyError, TypeError):
            raise KeyError(
                f"{value!r} is not in dimension {self.name!r}"
            ) from None

    def decode(self, rank: int) -> Hashable:
        self._check_rank(rank)
        return self.values[rank]


class DateDimension(Dimension):
    """Calendar days from ``start`` for ``size`` days, ranked by offset."""

    def __init__(self, name: str, start: datetime.date, size: int) -> None:
        if size < 1:
            raise ValueError("a date dimension needs at least one day")
        self.name = name
        self.start = start
        self.size = int(size)

    def encode(self, value: object) -> int:
        if not isinstance(value, datetime.date):
            raise KeyError(f"{value!r} is not a date")
        rank = (value - self.start).days
        self._check_rank(rank)
        return rank

    def decode(self, rank: int) -> datetime.date:
        self._check_rank(rank)
        return self.start + datetime.timedelta(days=rank)


def dimension_shape(dimensions: Sequence[Dimension]) -> tuple[int, ...]:
    """The array shape induced by a dimension list."""
    return tuple(dim.size for dim in dimensions)
