"""The extended ("all"-augmented) data cube of Gray et al. (paper §1).

*"[GBLP96] proposed that the domain of each functional attribute be
augmented with an additional value ... denoted by 'all', to store
aggregated values ... Thus, any sum-query where each attribute is either a
singleton value in its domain or 'all' can be answered by accessing a
single cell."*

This is the paper's point of comparison: **singleton queries** cost one
access, but a *range* query must enumerate every selected value
combination — the insurance example's ``16 × 9 × 1 × 1`` accesses — which
is exactly the behaviour reproduced (and benchmarked) here.
"""

from __future__ import annotations

from itertools import product
from collections.abc import Sequence

import numpy as np

from repro._util import Box
from repro.instrumentation import NULL_COUNTER, AccessCounter
from repro.query.ranges import RangeQuery, SpecKind


class ExtendedDataCube:
    """The GBLP96 cube: shape ``(n_1+1) × ... × (n_d+1)`` with "all" slots.

    Index ``n_j`` in dimension ``j`` holds the aggregate over that whole
    dimension; combinations of "all" slots hold the corresponding
    group-bys (all ``2^d`` cuboids are materialized).
    """

    def __init__(self, cube: np.ndarray) -> None:
        self.base_shape = tuple(int(n) for n in cube.shape)
        self.ndim = cube.ndim
        extended = np.array(cube, copy=True)
        for axis in range(cube.ndim):
            totals = extended.sum(axis=axis, keepdims=True)
            extended = np.concatenate([extended, totals], axis=axis)
        self.cells = extended

    @property
    def all_index(self) -> tuple[int, ...]:
        """The index whose every coordinate is the "all" slot."""
        return tuple(self.base_shape)

    @property
    def storage_cells(self) -> int:
        """Total cells stored, ``∏ (n_j + 1)``."""
        return int(self.cells.size)

    def singleton(
        self,
        index: Sequence[int | None],
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """A singleton query: each coordinate a rank or ``None`` for all.

        Always exactly one cell access — the GBLP96 guarantee.
        """
        if len(index) != self.ndim:
            raise ValueError(
                f"index has {len(index)} coordinates, cube has {self.ndim}"
            )
        cell = tuple(
            n if i is None else int(i)
            for i, n in zip(index, self.base_shape)
        )
        counter.count_cube(1)
        return self.cells[cell]

    def apply_update(self, index: Sequence[int], delta: object) -> int:
        """Add ``delta`` to a base cell and every affected "all" slot.

        A base-cell change invalidates the ``2^d`` aggregates whose
        coordinates replace any subset of the cell's coordinates with
        "all" — the maintenance cost that §1 implies for the extended
        cube (contrast with the prefix array's §5 batching).

        Returns:
            The number of cells written (always ``2^d``).
        """
        if len(index) != self.ndim:
            raise ValueError(
                f"index has {len(index)} coordinates, cube has {self.ndim}"
            )
        for i, n in zip(index, self.base_shape):
            if not 0 <= int(i) < n:
                raise ValueError(f"cell {tuple(index)} outside the cube")
        writes = 0
        for mask in range(1 << self.ndim):
            cell = tuple(
                n if mask & (1 << j) else int(i)
                for j, (i, n) in enumerate(zip(index, self.base_shape))
            )
            self.cells[cell] += delta
            writes += 1
        # This `cells` is the extended cube's plain in-memory ndarray,
        # never backend-materialized.  cubelint: allow[memmap-flush]
        return writes

    def range_sum(
        self,
        query: RangeQuery | Box,
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """A range query against the extended cube.

        Dimensions constrained to ``all`` read the precomputed slot;
        every other dimension contributes its full range of values, so the
        cost is the product of the constrained range lengths (§1's
        ``16 × 9 × 1 × 1`` example).
        """
        per_dim: list[Sequence[int]] = []
        if isinstance(query, Box):
            if query.ndim != self.ndim:
                raise ValueError("query dimensionality mismatch")
            for lo, hi, n in zip(query.lo, query.hi, self.base_shape):
                if lo == 0 and hi == n - 1:
                    per_dim.append((n,))  # the "all" slot
                else:
                    per_dim.append(range(lo, hi + 1))
        else:
            for spec, n in zip(query.specs, self.base_shape):
                if spec.kind is SpecKind.ALL:
                    per_dim.append((n,))
                else:
                    lo, hi = spec.resolve(n)
                    if lo == 0 and hi == n - 1:
                        per_dim.append((n,))
                    else:
                        per_dim.append(range(lo, hi + 1))
        total = 0
        for cell in product(*per_dim):
            counter.count_cube(1)
            total = total + self.cells[cell]
        return total
