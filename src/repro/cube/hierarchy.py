"""Hierarchical dimensions: drill-down levels as contiguous rank ranges.

OLAP dimensions with *"natural semantics in ordering, such as age, time,
salary"* (§1) usually carry hierarchies — day ⊂ month ⊂ quarter ⊂ year.
When each coarser value covers a **contiguous run of leaf ranks** (true
for any ordered hierarchy), a query at any level is exactly the paper's
contiguous range query, so the whole §3/§4 machinery applies unchanged —
and a §4 block size matching a level's fan-out makes queries at that
level block-aligned, i.e. answerable from ``P`` alone.

:class:`HierarchicalDimension` encodes leaves like a
:class:`~repro.cube.dimensions.CategoricalDimension` and adds named
levels of labeled, contiguous groups.  :class:`LevelValue` is the query
handle: ``cube.sum(day=LevelValue("month", "2024-03"))`` resolves to the
month's leaf-rank range.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterable, Mapping, Sequence

from repro.cube.dimensions import Dimension


@dataclass(frozen=True)
class LevelValue:
    """A query condition at a hierarchy level: one label or a label run.

    ``LevelValue("quarter", "Q2")`` selects one group;
    ``LevelValue("quarter", "Q2", "Q4")`` selects the contiguous span
    from the first group's start to the last group's end.
    """

    level: str
    label: Hashable
    end_label: Hashable | None = None


class HierarchicalDimension(Dimension):
    """An ordered leaf domain with named roll-up levels.

    Args:
        name: Dimension name.
        leaves: Ordered leaf values (the rank domain).
        levels: Mapping from level name to its ordered groups, each group
            a ``(label, leaf_count)`` pair; counts must sum to the leaf
            total so every level tiles the dimension contiguously.
    """

    def __init__(
        self,
        name: str,
        leaves: Iterable[Hashable],
        levels: Mapping[str, Sequence[tuple[Hashable, int]]],
    ) -> None:
        self.name = name
        self.values: tuple[Hashable, ...] = tuple(leaves)
        if not self.values:
            raise ValueError(f"dimension {name!r} has an empty domain")
        self._ranks = {value: i for i, value in enumerate(self.values)}
        if len(self._ranks) != len(self.values):
            raise ValueError(f"dimension {name!r} has duplicate leaves")
        self.size = len(self.values)
        self._levels: dict[str, dict[Hashable, tuple[int, int]]] = {}
        self._level_order: dict[str, tuple[Hashable, ...]] = {}
        for level_name, groups in levels.items():
            ranges: dict[Hashable, tuple[int, int]] = {}
            cursor = 0
            for label, count in groups:
                if count < 1:
                    raise ValueError(
                        f"level {level_name!r} group {label!r} has "
                        f"non-positive size {count}"
                    )
                if label in ranges:
                    raise ValueError(
                        f"level {level_name!r} repeats label {label!r}"
                    )
                ranges[label] = (cursor, cursor + count - 1)
                cursor += count
            if cursor != self.size:
                raise ValueError(
                    f"level {level_name!r} covers {cursor} leaves of "
                    f"{self.size}"
                )
            self._levels[level_name] = ranges
            self._level_order[level_name] = tuple(
                label for label, _ in groups
            )

    # -- Dimension protocol --------------------------------------------

    def encode(self, value: object) -> int:
        try:
            return self._ranks[value]
        except (KeyError, TypeError):
            raise KeyError(
                f"{value!r} is not a leaf of dimension {self.name!r}"
            ) from None

    def decode(self, rank: int) -> Hashable:
        self._check_rank(rank)
        return self.values[rank]

    # -- Hierarchy surface -----------------------------------------------

    @property
    def level_names(self) -> tuple[str, ...]:
        """Names of the roll-up levels."""
        return tuple(self._levels)

    def labels(self, level: str) -> tuple[Hashable, ...]:
        """The ordered group labels of one level."""
        self._check_level(level)
        return self._level_order[level]

    def level_range(self, level: str, label: Hashable) -> tuple[int, int]:
        """Inclusive leaf-rank bounds of one group."""
        self._check_level(level)
        try:
            return self._levels[level][label]
        except (KeyError, TypeError):
            raise KeyError(
                f"{label!r} is not a group of level {level!r} on "
                f"{self.name!r}"
            ) from None

    def resolve_level_value(self, value: LevelValue) -> tuple[int, int]:
        """Leaf-rank bounds of a :class:`LevelValue` condition."""
        lo, hi = self.level_range(value.level, value.label)
        if value.end_label is not None:
            _, hi = self.level_range(value.level, value.end_label)
            if hi < lo:
                raise ValueError(
                    f"level span {value.label!r}..{value.end_label!r} "
                    f"is reversed"
                )
        return lo, hi

    def rollup_sizes(self, level: str) -> tuple[int, ...]:
        """Leaf counts per group — a hint for picking the §4 block size
        (uniform counts equal to ``b`` make the level block-aligned)."""
        self._check_level(level)
        return tuple(
            hi - lo + 1 for lo, hi in self._levels[level].values()
        )

    def _check_level(self, level: str) -> None:
        if level not in self._levels:
            known = ", ".join(self._levels)
            raise KeyError(
                f"dimension {self.name!r} has no level {level!r}; "
                f"known: {known}"
            )


def month_hierarchy(
    name: str, years: Sequence[int]
) -> HierarchicalDimension:
    """A ready-made month leaf domain with quarter and year levels.

    Leaves are ``"YYYY-MM"`` strings in chronological order; levels are
    ``"quarter"`` (``"YYYY-Qn"``, 3 leaves each) and ``"year"``
    (``"YYYY"``, 12 leaves each).
    """
    if not years:
        raise ValueError("at least one year is required")
    leaves = [
        f"{year}-{month:02d}" for year in years for month in range(1, 13)
    ]
    quarters = [
        (f"{year}-Q{q}", 3) for year in years for q in range(1, 5)
    ]
    year_groups = [(str(year), 12) for year in years]
    return HierarchicalDimension(
        name, leaves, {"quarter": quarters, "year": year_groups}
    )
