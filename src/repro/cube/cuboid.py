"""The cuboid lattice (paper §9).

*"Given a cube on d dimensions, a cuboid on k dimensions
{d_i1, ..., d_ik} is defined as a group-by on [those] dimensions ... the
slice of the cube where the remaining d − k dimensions have the value
all."*  A cuboid whose dimension set is a subset of another's is its
**descendant**; the superset is an **ancestor**.  Prefix sums materialized
on a cuboid benefit the cuboid and all its descendants (an ancestor's
prefix sum answers a descendant's queries with the extra dimensions fixed
at full range), which drives the greedy selection of §9.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from collections.abc import Iterator, Sequence

#: A cuboid is identified by the sorted tuple of its dimension indices.
CuboidKey = tuple[int, ...]


def normalize_key(dims: Sequence[int]) -> CuboidKey:
    """Canonical (sorted, deduplicated) form of a cuboid key."""
    key = tuple(sorted(set(int(j) for j in dims)))
    if any(j < 0 for j in key):
        raise ValueError(f"negative dimension index in {dims}")
    return key


def all_cuboids(ndim: int, include_empty: bool = False) -> list[CuboidKey]:
    """Every cuboid of a d-dimensional cube (2^d − 1 non-empty ones)."""
    keys: list[CuboidKey] = []
    start = 0 if include_empty else 1
    for k in range(start, ndim + 1):
        keys.extend(combinations(range(ndim), k))
    return keys


def is_ancestor(ancestor: CuboidKey, descendant: CuboidKey) -> bool:
    """True when ``ancestor``'s dimensions are a superset of the other's.

    Per the paper a cuboid is both ancestor and descendant of itself.
    """
    return set(descendant) <= set(ancestor)


def is_descendant(descendant: CuboidKey, ancestor: CuboidKey) -> bool:
    """Converse of :func:`is_ancestor`."""
    return is_ancestor(ancestor, descendant)


def proper_descendants(key: CuboidKey) -> Iterator[CuboidKey]:
    """All strict subsets of a cuboid's dimensions (non-empty)."""
    for k in range(1, len(key)):
        yield from combinations(key, k)


def ancestors_within(
    key: CuboidKey, universe: Sequence[CuboidKey]
) -> list[CuboidKey]:
    """Cuboids of ``universe`` that are ancestors of ``key`` (inclusive)."""
    return [other for other in universe if is_ancestor(other, key)]


@dataclass(frozen=True)
class Cuboid:
    """A cuboid with the shape information the optimizer needs.

    Attributes:
        key: Sorted dimension indices of the group-by.
        sizes: Rank-domain sizes of those dimensions.
    """

    key: CuboidKey
    sizes: tuple[int, ...]

    @classmethod
    def from_shape(
        cls, key: Sequence[int], cube_shape: Sequence[int]
    ) -> Cuboid:
        """Build a cuboid record from the parent cube's shape."""
        normalized = normalize_key(key)
        if normalized and normalized[-1] >= len(cube_shape):
            raise ValueError(
                f"cuboid {normalized} exceeds a {len(cube_shape)}-d cube"
            )
        return cls(
            normalized,
            tuple(int(cube_shape[j]) for j in normalized),
        )

    @property
    def ndim(self) -> int:
        """Number of group-by dimensions k."""
        return len(self.key)

    @property
    def cells(self) -> int:
        """Number of cells N of the cuboid's dense array."""
        total = 1
        for n in self.sizes:
            total *= n
        return total
