"""Building measure arrays from raw records (the MDDB construction, §1).

*"The measure attributes of those records with the same functional
attributes values are combined (e.g. summed up) into an aggregate value.
Thus, an MDDB can be viewed as a d-dimensional array..."*

:func:`build_measure_array` performs exactly that combination: it buckets
records by the encoded ranks of their functional attributes and
accumulates the measure per cell, also returning the per-cell record
counts needed for AVERAGE queries.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.cube.dimensions import Dimension, dimension_shape


def build_measure_array(
    records: Iterable[Mapping[str, object]],
    dimensions: Sequence[Dimension],
    measure: str,
    dtype: np.dtype | type = np.int64,
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate records into a dense measure cube.

    Args:
        records: Mappings carrying one value per dimension name plus the
            measure.
        dimensions: Ordered dimension encoders defining the cube's axes.
        measure: Key of the measure attribute to sum per cell.
        dtype: Accumulator dtype of the measure cube.

    Returns:
        ``(measures, counts)`` — the summed measure per cell and the
        number of contributing records per cell.

    Raises:
        KeyError: If a record misses a dimension value or the measure, or
            carries a value outside a dimension's domain.
    """
    shape = dimension_shape(dimensions)
    measures = np.zeros(shape, dtype=dtype)
    counts = np.zeros(shape, dtype=np.int64)
    for record in records:
        index = tuple(
            dim.encode(record[dim.name]) for dim in dimensions
        )
        measures[index] += record[measure]
        counts[index] += 1
    return measures, counts
