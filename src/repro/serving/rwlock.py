"""An asyncio read/write lock for per-cube update serialization.

The service mutates a cube's tiers in one place
(:meth:`~repro.serving.service.QueryService.update`) but *reads* them
from many: inline computations on the event loop, offloaded scans on
the worker pool, and coalesced batch gathers.  Inline reads are safe by
construction — the update runs synchronously between awaits — but an
offloaded read is mid-flight in another thread while the event loop is
free to apply an update, and could observe the tiers torn mid-batch
(the engine updated, the base cube not yet).

:class:`ReadWriteLock` closes that window: every tier computation runs
under :meth:`read_locked` and every update under :meth:`write_locked`,
so an update waits for in-flight reads to drain and reads started after
an update begins wait for it to finish.  Writers are preferred — a
waiting writer blocks *new* readers — so a steady read stream cannot
starve updates.

This is an asyncio-only primitive: all state transitions happen on the
event loop under one :class:`asyncio.Condition`.  The offloaded work
itself runs in a worker thread, but its read lock is acquired and
released by the awaiting coroutine, which is what makes the accounting
race-free without thread locks.
"""

from __future__ import annotations

import asyncio
from collections.abc import AsyncIterator
from contextlib import asynccontextmanager


class ReadWriteLock:
    """Many concurrent readers, one exclusive writer, writer-preferred."""

    def __init__(self) -> None:
        self._condition = asyncio.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @asynccontextmanager
    async def read_locked(self) -> AsyncIterator[None]:
        """Hold a shared read lock for the duration of the block."""
        async with self._condition:
            while self._writer_active or self._writers_waiting:
                await self._condition.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            async with self._condition:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._condition.notify_all()

    @asynccontextmanager
    async def write_locked(self) -> AsyncIterator[None]:
        """Hold the exclusive write lock for the duration of the block."""
        async with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    await self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            async with self._condition:
                self._writer_active = False
                self._condition.notify_all()

    @property
    def readers(self) -> int:
        """Readers currently holding the lock (introspection/tests)."""
        return self._active_readers

    @property
    def writing(self) -> bool:
        """Whether a writer currently holds the lock."""
        return self._writer_active
