"""The async OLAP query service: cubes in, JSON aggregates out.

:class:`QueryService` is the protocol-independent core of
:mod:`repro.serving`.  Cubes register under a name with up to three
answering tiers (a §9 materialized plan, a
:class:`~repro.query.engine.RangeQueryEngine`, and the naive base-scan
fallback); requests arrive as plain dicts (the HTTP layer's parsed JSON
bodies) and leave as plain dicts.  Between the two sit, in order:

1. **admission control** — bounded in-flight set and queue, explicit
   :class:`~repro.serving.errors.Overloaded` shedding, a per-request
   deadline covering queue wait plus execution;
2. the **result cache** — exact LRU on canonical boxes, generations
   bumped by :meth:`QueryService.update`;
3. the **coalescer** — concurrent scalar sum/count/average misses
   against one cube merge into a single kernel-backed ``*_many`` gather;
4. the **tiered router** — materialized → indexed → fallback, with
   per-``(cube, tier)`` latency accounting.

Heavy computations (naive scans, large batches) are offloaded to a
worker pool so the event loop keeps accepting requests; when a cube's
engine resolves to the ``threaded`` execution kernel the service reuses
*that* pool (:meth:`~repro.kernels.threaded.ThreadedKernel.executor`)
instead of stacking a second one on top.  Every tier computation runs
under its cube's :class:`~repro.serving.rwlock.ReadWriteLock` read lock
and ``/update`` takes the write lock, so an offloaded read never
observes an update torn mid-batch; cache entries are stamped with the
generation snapshotted *before* the computation, so a raced entry is at
worst conservatively stale, never stale-served.

Everything answers are computed from the same code paths library users
call directly, so served results are bit-identical to
:class:`RangeQueryEngine` answers — the property the differential tests
in ``tests/serving/`` pin down.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro._util import Box
from repro.core.batch_update import PointUpdate
from repro.index.backend import ArrayBackend
from repro.instrumentation import AccessCounter
from repro.kernels.registry import resolve_kernel
from repro.kernels.threaded import ThreadedKernel
from repro.optimizer.advisor import DesignDelta, re_advise
from repro.optimizer.cost_model import boundary_cells_per_surface
from repro.optimizer.cuboid_selection import Materialization
from repro.optimizer.materialize import MaterializedCuboidSet
from repro.query.engine import RangeQueryEngine
from repro.query.logbook import QueryLog
from repro.query.observer import WorkloadObserver, WorkloadSnapshot
from repro.query.ranges import RangeQuery, RangeSpec, canonical_box
from repro.serving.admission import AdmissionController
from repro.serving.cache import ResultCache, cache_key
from repro.serving.coalesce import COALESCIBLE, RequestCoalescer
from repro.serving.errors import (
    BadRequest,
    CubeInconsistent,
    QueryTimeout,
    UnknownResource,
)
from repro.serving.router import SCALAR_OPS, TieredRouter
from repro.serving.rwlock import ReadWriteLock

#: Sentinel distinguishing "build a default engine" from an explicit
#: ``engine=None`` (register with no indexed tier).
_UNSET: Any = object()


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for one :class:`QueryService`.

    Attributes:
        coalesce_window_s: Batching window for scalar coalescing;
            ``0`` disables coalescing (per-query dispatch).
        coalesce_max_batch: Rows at which a coalesced batch flushes
            early.
        cache_capacity: LRU result-cache entries; ``0`` disables.
        max_inflight: Concurrent requests admitted to execution.
        max_queue: Requests allowed to wait for an execution slot.
        timeout_s: Per-request deadline (queue wait + execution);
            ``0`` disables deadlines.
        offload_cells: Estimated touched-cell count at or above which a
            computation runs on the worker pool instead of the event
            loop (matches the threaded kernel's parallel cutoff).
        max_batch_rows: Largest accepted ``/query_batch`` request.
        max_rollup_cells: Largest accepted roll-up result grid.
        executor_workers: Worker threads for the service-owned pool
            (only created when no registered engine provides a shareable
            threaded-kernel pool); ``None`` means ``os.cpu_count()``.
        logbook_path: When set, every registered cube records served
            traffic to a :class:`~repro.query.logbook.QueryLog` and
            :meth:`QueryService.save_logbooks` writes them next to this
            path (the §9 advisor workload format).
        observer_capacity: Queries each cube's live
            :class:`~repro.query.observer.WorkloadObserver` window
            retains (the adaptive advisor's input); ``0`` disables
            observation entirely.
        observer_decay: Per-event decay of the observer window (``1.0``
            weights all retained traffic equally).
        adaptive_interval_s: Seconds between
            :class:`~repro.serving.adaptive.AdaptiveController` advisory
            cycles.
        adaptive_space_budget: Auxiliary-cell budget the online advisor
            plans under; ``None`` defaults to the cube's own cell count
            (aux structures may use as much space as the base data).
        adaptive_hysteresis: Minimum modeled cost ratio
            (incumbent/candidate) before the controller actuates a swap.
        adaptive_min_weight: Minimum decayed query weight a window needs
            before re-planning is attempted.
        adaptive_max_block: Largest block size the online advisor
            considers (smaller than the offline default: each candidate
            block size costs a selector pass per cycle).
    """

    coalesce_window_s: float = 0.002
    coalesce_max_batch: int = 256
    cache_capacity: int = 1024
    max_inflight: int = 64
    max_queue: int = 256
    timeout_s: float = 30.0
    offload_cells: int = 1 << 15
    max_batch_rows: int = 4096
    max_rollup_cells: int = 1 << 16
    executor_workers: int | None = None
    logbook_path: str | None = None
    observer_capacity: int = 4096
    observer_decay: float = 0.995
    adaptive_interval_s: float = 5.0
    adaptive_space_budget: float | None = None
    adaptive_hysteresis: float = 1.15
    adaptive_min_weight: float = 8.0
    adaptive_max_block: int = 64


@dataclass
class ServedCube:
    """One registered cube: its tiers, bookkeeping, and generation."""

    name: str
    base: np.ndarray
    counts: np.ndarray | None
    engine: RangeQueryEngine | None
    cuboids: MaterializedCuboidSet | None
    counter: AccessCounter
    fallback: bool = True
    generation: int = 0
    queries: int = 0
    updates_applied: int = 0
    logbook: QueryLog | None = None
    #: The live workload window the adaptive advisor plans from.
    observer: WorkloadObserver | None = None
    #: Audit trail of adaptive plan swaps (the ``/design`` view).
    swap_history: list[dict] = field(default_factory=list)
    #: Non-None while an adaptive rebuild is in flight: every update
    #: applied to the live tiers is also recorded here so the freshly
    #: built set can replay them before installation (the hot-swap
    #: consistency protocol of :mod:`repro.serving.adaptive`).
    pending_design_updates: list[PointUpdate] | None = None
    #: Root array backend for adaptive rebuilds.  Each swap builds its
    #: candidate through ``design_backend.subscope(f"design-g{n}")`` so
    #: the superseded set's spill files can be reclaimed without
    #: touching the engine's (or the base cube's) arrays.
    design_backend: ArrayBackend | None = None
    #: Monotone counter naming those per-swap subscopes.
    design_generation: int = 0
    #: False after an update failed mid-apply: the tiers may disagree,
    #: so the service quarantines the cube (every request is refused).
    healthy: bool = True
    #: Serializes updates against in-flight offloaded/coalesced reads.
    rwlock: ReadWriteLock = field(default_factory=ReadWriteLock)
    shape: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        self.shape = tuple(int(n) for n in self.base.shape)

    @property
    def plan(self) -> tuple[Materialization, ...]:
        """The incumbent §9 plan (empty when nothing is materialized)."""
        return () if self.cuboids is None else self.cuboids.plan


class QueryService:
    """Serve range aggregates over registered cubes (asyncio core).

    Args:
        config: Service tuning; defaults are sensible for tests and
            small deployments.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.cubes: dict[str, ServedCube] = {}
        self.cache = ResultCache(self.config.cache_capacity)
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
        )
        self.router = TieredRouter()
        self.coalescer = RequestCoalescer(
            self._run_coalesced_batch,
            window_s=self.config.coalesce_window_s,
            max_batch=self.config.coalesce_max_batch,
        )
        self.started_at = time.time()
        self._executor: ThreadPoolExecutor | None = None
        self._owns_executor = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_cube(
        self,
        name: str,
        cube: np.ndarray | None = None,
        *,
        engine: RangeQueryEngine | None = _UNSET,
        sum_index: object = None,
        sum_params: dict[str, Any] | None = None,
        max_index: object = _UNSET,
        max_params: dict[str, Any] | None = None,
        counts: np.ndarray | None = None,
        backend: ArrayBackend | None = None,
        plan: Sequence[object] | None = None,
        cuboid_set: MaterializedCuboidSet | None = None,
        fallback: bool = True,
        kernel: object | None = None,
    ) -> ServedCube:
        """Register ``cube`` under ``name`` and build its tiers.

        Args:
            name: URL-safe cube name (non-empty, no ``/``).
            cube: The measure cube; copied, so later caller-side
                mutation cannot silently diverge the tiers.  May be
                omitted when ``cuboid_set`` is given — the set's own
                base cube is then *adopted without a copy*, which is how
                an out-of-core :func:`repro.ingest.ingest` build (whose
                base is a memmap) goes straight into serving.
            engine: A prebuilt :class:`RangeQueryEngine` to serve from
                (it must cover the same data, and ``counts`` should
                match what it was built with), or ``None`` for no
                indexed tier.  Default: build one from ``sum_index`` /
                ``max_index`` with a fresh per-cube access counter.
            sum_index / sum_params / max_index / max_params / kernel:
                Forwarded to the default-built engine.
            counts: Optional record-count cube (AVERAGE denominators).
            backend: Array backend for built structures.  Also retained
                as the cube's *design backend*: adaptive rebuilds
                allocate through per-swap subscopes of it so superseded
                plans can be reclaimed (spill files deleted) on swap.
            plan: §9 materializations; builds the tier-1
                :class:`MaterializedCuboidSet` when given.
            cuboid_set: A prebuilt tier-1 set to adopt instead of
                building one from ``plan`` (mutually exclusive with
                ``plan``), e.g. ``IngestResult.cuboid_set``.  Like
                ``engine=``, it must cover the same data as ``cube``;
                when both are passed, registration verifies the set's
                base equals the cube cell-for-cell and rejects a
                mismatch (when only ``cuboid_set`` is passed its base
                is adopted, so they cannot disagree).
            fallback: Keep the naive base-scan tier (tier 2's safety
                net); disable to make uncovered operators a 422.
        """
        if not name or "/" in name:
            raise ValueError(f"cube name {name!r} must be non-empty, no '/'")
        if name in self.cubes:
            raise ValueError(f"cube {name!r} is already registered")
        if plan is not None and cuboid_set is not None:
            raise ValueError(
                "pass either plan= (build here) or cuboid_set= "
                "(adopt a prebuilt set), not both"
            )
        if cube is None:
            if cuboid_set is None:
                raise ValueError(
                    "register_cube needs a cube array (or a cuboid_set "
                    "whose base to adopt)"
                )
            base = np.asarray(cuboid_set.base)
        else:
            base = np.array(cube, copy=True)
            if cuboid_set is not None:
                if tuple(cuboid_set.shape) != base.shape:
                    raise ValueError(
                        f"cuboid_set shape {cuboid_set.shape} does not "
                        f"match cube shape {base.shape}"
                    )
                expected = np.asarray(cuboid_set.base)
                equal_nan = (
                    base.dtype.kind == "f" and expected.dtype.kind == "f"
                )
                if not np.array_equal(base, expected, equal_nan=equal_nan):
                    raise ValueError(
                        "cuboid_set was built over different data than "
                        "cube= — the tiers would silently disagree; "
                        "register with cuboid_set= alone to adopt the "
                        "set's own base"
                    )
        held_counts = (
            None if counts is None else np.array(counts, copy=True)
        )
        counter = AccessCounter()
        if engine is _UNSET:
            kwargs: dict[str, Any] = {
                "sum_params": sum_params,
                "max_params": max_params,
                "counts": held_counts,
                "backend": backend,
                "counter": counter,
                "kernel": kernel,
            }
            if sum_index is not None:
                kwargs["sum_index"] = sum_index
            if max_index is not _UNSET:
                kwargs["max_index"] = max_index
            engine = RangeQueryEngine(base, **kwargs)
        elif engine is not None:
            if tuple(engine.shape) != base.shape:
                raise ValueError(
                    f"engine shape {engine.shape} does not match cube "
                    f"shape {base.shape}"
                )
            counter = engine.counter
        cuboids = cuboid_set
        if plan is not None:
            # The initial plan gets its own subscope (generation 0) just
            # like every adaptive rebuild will, so a later swap can
            # release it without touching the engine's arrays.
            plan_backend = (
                None if backend is None else backend.subscope("design-g0")
            )
            cuboids = MaterializedCuboidSet(
                base, plan, backend=plan_backend
            )
        served = ServedCube(
            name=name,
            base=base,
            counts=held_counts,
            engine=engine,
            cuboids=cuboids,
            counter=counter,
            fallback=fallback,
            design_backend=backend,
        )
        if self.config.logbook_path is not None:
            served.logbook = QueryLog(served.shape)
        if self.config.observer_capacity > 0:
            served.observer = WorkloadObserver(
                served.shape,
                capacity=self.config.observer_capacity,
                decay=self.config.observer_decay,
            )
        self.cubes[name] = served
        return served

    def _cube(self, name: object) -> ServedCube:
        if not isinstance(name, str):
            raise BadRequest("'cube' must be a string cube name")
        cube = self.cubes.get(name)
        if cube is None:
            raise UnknownResource(
                f"unknown cube {name!r}; registered: "
                f"{sorted(self.cubes) or 'none'}"
            )
        if not cube.healthy:
            raise CubeInconsistent(
                f"cube {name!r} is quarantined after a failed update; "
                "re-register it to serve again"
            )
        return cube

    # ------------------------------------------------------------------
    # Endpoints (async, dict → dict)
    # ------------------------------------------------------------------

    async def query(self, payload: dict) -> dict:
        """One scalar aggregate: ``{cube, op, ranges}`` → ``{value, ...}``."""
        cube = self._cube(payload.get("cube"))
        op = self._op(payload, SCALAR_OPS)
        rq, box = _parse_region(payload.get("ranges"), cube.shape)
        return await self._with_admission(
            lambda: self._answer_scalar(cube, op, rq, box)
        )

    async def query_batch(self, payload: dict) -> dict:
        """``K`` same-operator aggregates in one request (one gather)."""
        cube = self._cube(payload.get("cube"))
        op = self._op(payload, SCALAR_OPS)
        raw = payload.get("queries")
        if not isinstance(raw, list) or not raw:
            raise BadRequest("'queries' must be a non-empty list")
        if len(raw) > self.config.max_batch_rows:
            raise BadRequest(
                f"batch of {len(raw)} exceeds the row cap "
                f"{self.config.max_batch_rows}"
            )
        boxes = [
            _parse_region(entry, cube.shape)[1] for entry in raw
        ]
        lows = np.array([b.lo for b in boxes], dtype=np.int64)
        highs = np.array([b.hi for b in boxes], dtype=np.int64)
        return await self._with_admission(
            lambda: self._answer_batch(cube, op, boxes, lows, highs)
        )

    async def slice(self, payload: dict) -> dict:
        """A slice query: fix some dimensions, aggregate the rest.

        ``{cube, op, fixed: {dim: rank}}`` is sugar for a ``/query``
        whose fixed dimensions are singletons and whose free dimensions
        span their full extent — it shares the cache, coalescer, and
        admission path with ``/query``.
        """
        cube = self._cube(payload.get("cube"))
        fixed = payload.get("fixed")
        if not isinstance(fixed, dict):
            raise BadRequest("'fixed' must be a {dim: rank} object")
        ranges: list[object] = [None] * len(cube.shape)
        for raw_dim, rank in fixed.items():
            dim = _parse_int(raw_dim, "slice dimension")
            if not 0 <= dim < len(cube.shape):
                raise BadRequest(
                    f"slice dimension {dim} out of range for "
                    f"{len(cube.shape)}-d cube"
                )
            ranges[dim] = _parse_int(rank, "slice rank")
        derived = {
            "cube": cube.name,
            "op": payload.get("op", "sum"),
            "ranges": ranges,
        }
        return await self.query(derived)

    async def rollup(self, payload: dict) -> dict:
        """Group-by over kept dimensions (the data cube's roll-up view).

        ``{cube, dims, op}`` answers one aggregate per coordinate of the
        kept-dimension grid — executed as a single batch over the
        engine's vectorized path.
        """
        cube = self._cube(payload.get("cube"))
        op = self._op(payload, ("sum", "count", "average"))
        raw_dims = payload.get("dims")
        if not isinstance(raw_dims, list) or not raw_dims:
            raise BadRequest("'dims' must be a non-empty list")
        dims = [_parse_int(d, "rollup dimension") for d in raw_dims]
        if len(set(dims)) != len(dims):
            raise BadRequest(f"duplicate rollup dimensions in {dims}")
        for dim in dims:
            if not 0 <= dim < len(cube.shape):
                raise BadRequest(
                    f"rollup dimension {dim} out of range for "
                    f"{len(cube.shape)}-d cube"
                )
        grid_shape = tuple(cube.shape[d] for d in dims)
        cells = int(np.prod(grid_shape))
        if cells > self.config.max_rollup_cells:
            raise BadRequest(
                f"rollup grid of {cells} cells exceeds the cap "
                f"{self.config.max_rollup_cells}"
            )
        return await self._with_admission(
            lambda: self._answer_rollup(cube, op, dims, grid_shape)
        )

    async def update(self, payload: dict) -> dict:
        """Apply point deltas to every tier and bump the generation.

        ``{cube, updates: [{index, delta}], count_updates?}``.  The
        engine's §5/§7 batch-update machinery, the materialized plan,
        and the retained base cube all absorb the same merged deltas, so
        the tiers stay mutually consistent; the generation bump plus an
        eager sweep invalidate the result cache.
        """
        cube = self._cube(payload.get("cube"))
        updates = _parse_updates(payload.get("updates"), cube.shape)
        count_updates = None
        if payload.get("count_updates") is not None:
            count_updates = _parse_updates(
                payload["count_updates"], cube.shape
            )
            if cube.counts is None:
                raise BadRequest(
                    "count_updates require a cube registered with counts"
                )
        return await self._with_admission(
            lambda: self._apply_update(cube, updates, count_updates)
        )

    async def advise(self, payload: dict) -> dict:
        """Dry-run the online advisor: ``{cube, ...overrides}`` → delta.

        Re-plans from the cube's live observer window against the
        incumbent plan and returns the full
        :class:`~repro.optimizer.advisor.DesignDelta` accounting
        *without actuating anything* — the operator's view of what the
        :class:`~repro.serving.adaptive.AdaptiveController` would do
        right now.  Optional overrides: ``space_budget``, ``hysteresis``,
        ``max_block``, ``min_query_weight``.
        """
        cube = self._cube(payload.get("cube"))
        if cube.observer is None:
            raise BadRequest(
                "cube has no workload observer "
                "(service was configured with observer_capacity=0)"
            )
        space_budget = _parse_number(
            payload.get("space_budget"), "space_budget", minimum=1.0
        )
        hysteresis = _parse_number(
            payload.get("hysteresis"), "hysteresis", minimum=1.0
        )
        max_block = payload.get("max_block")
        if max_block is not None:
            max_block = _parse_int(max_block, "max_block")
            if max_block < 1:
                raise BadRequest("max_block must be >= 1")
        min_query_weight = _parse_number(
            payload.get("min_query_weight"),
            "min_query_weight",
            minimum=0.0,
        )
        snapshot = cube.observer.snapshot()
        # The selector is pure CPU over the frozen snapshot — run it on
        # the worker pool so a large candidate universe cannot stall
        # the event loop.
        loop = asyncio.get_running_loop()
        delta = await loop.run_in_executor(
            self._ensure_executor(),
            lambda: self.plan_delta(
                cube,
                snapshot,
                space_budget=space_budget,
                hysteresis=hysteresis,
                max_block=max_block,
                min_query_weight=min_query_weight,
            ),
        )
        return {
            "cube": cube.name,
            "window": snapshot.to_dict(),
            "delta": delta.to_dict(),
        }

    def plan_delta(
        self,
        cube: ServedCube,
        snapshot: WorkloadSnapshot,
        *,
        space_budget: float | None = None,
        hysteresis: float | None = None,
        max_block: int | None = None,
        min_query_weight: float | None = None,
    ) -> DesignDelta:
        """Run :func:`~repro.optimizer.advisor.re_advise` for one cube.

        ``None`` arguments fall back to the service config; a ``None``
        configured budget defaults to the cube's own cell count.
        """
        cfg = self.config
        budget = (
            cfg.adaptive_space_budget
            if space_budget is None
            else space_budget
        )
        if budget is None:
            budget = float(cube.base.size)
        return re_advise(
            snapshot,
            cube.plan,
            budget,
            max_block=(
                cfg.adaptive_max_block if max_block is None else max_block
            ),
            hysteresis=(
                cfg.adaptive_hysteresis
                if hysteresis is None
                else hysteresis
            ),
            min_query_weight=(
                cfg.adaptive_min_weight
                if min_query_weight is None
                else min_query_weight
            ),
        )

    def describe_design(self) -> dict:
        """The ``/design`` view: per-cube plan, window, swap history,
        and predicted-vs-measured tier latency.

        ``predicted_tier_cost`` is the §8 model's element-access count
        for the window's *average* query per tier; ``measured_tier_avg_ms``
        is the router's wall-clock accounting.  The currencies differ —
        what should agree is the *ordering* (the model's cheapest tier
        should be the measured-fastest), which is the check
        ``docs/ADAPTIVE.md`` walks through.
        """
        tier_stats = self.router.stats()
        out: dict[str, dict] = {}
        for name, cube in sorted(self.cubes.items()):
            snapshot = (
                None
                if cube.observer is None
                else cube.observer.snapshot()
            )
            stats = None if snapshot is None else snapshot.statistics()
            predicted: dict[str, float] = {}
            if stats is not None:
                predicted["fallback"] = stats.volume
                if cube.engine is not None:
                    predicted["indexed"] = 2.0 ** len(cube.shape)
                if cube.plan:
                    predicted["materialized"] = min(
                        2.0 ** len(m.key)
                        + stats.surface
                        * boundary_cells_per_surface(m.block_size)
                        for m in cube.plan
                    )
            measured = {
                tier: snap["avg_ms"]
                for tier, snap in tier_stats.get(name, {}).items()
            }
            out[name] = {
                "plan": [
                    {
                        "key": list(m.key),
                        "block_size": m.block_size,
                        "space": m.space,
                    }
                    for m in cube.plan
                ],
                "generation": cube.generation,
                "window": None if snapshot is None else snapshot.to_dict(),
                "swap_history": list(cube.swap_history),
                "swap_in_flight": cube.pending_design_updates is not None,
                "predicted_tier_cost": predicted,
                "measured_tier_avg_ms": measured,
            }
        return out

    def stats(self) -> dict:
        """The ``/stats`` snapshot: tiers, cache, admission, coalescer,
        and the index layer's element-access counters per cube."""
        tier_stats = self.router.stats()
        cubes = {}
        for name, cube in sorted(self.cubes.items()):
            cubes[name] = {
                "shape": list(cube.shape),
                "generation": cube.generation,
                "healthy": cube.healthy,
                "queries": cube.queries,
                "updates_applied": cube.updates_applied,
                "tiers": tier_stats.get(name, {}),
                "access_counts": cube.counter.snapshot(),
                "logbook_entries": (
                    None if cube.logbook is None else len(cube.logbook)
                ),
            }
        return {
            "uptime_s": time.time() - self.started_at,
            "cubes": cubes,
            "cache": self.cache.stats(),
            "admission": self.admission.stats(),
            "coalescer": self.coalescer.stats(),
        }

    def describe_cubes(self) -> dict:
        """The ``/cubes`` catalog: names, shapes, dtypes, tiers."""
        out = {}
        for name, cube in sorted(self.cubes.items()):
            tiers = []
            if cube.cuboids is not None:
                tiers.append("materialized")
            if cube.engine is not None:
                tiers.append("indexed")
            if cube.fallback:
                tiers.append("fallback")
            out[name] = {
                "shape": list(cube.shape),
                "dtype": str(cube.base.dtype),
                "tiers": tiers,
                "generation": cube.generation,
                "healthy": cube.healthy,
                "has_counts": cube.counts is not None,
                "operators": list(SCALAR_OPS),
            }
        return out

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------

    async def _with_admission(self, fn: Callable[[], Any]) -> dict:
        """Admission + deadline around one request's execution."""
        timeout = self.config.timeout_s
        try:
            if timeout and timeout > 0:
                return await asyncio.wait_for(
                    self._admitted(fn), timeout
                )
            return await self._admitted(fn)
        except TimeoutError:
            self.admission.note_timeout()
            raise QueryTimeout(
                f"request exceeded the {timeout:g}s deadline"
            ) from None

    async def _admitted(self, fn: Callable[[], Any]) -> dict:
        async with self.admission:
            return await fn()

    async def _answer_scalar(
        self,
        cube: ServedCube,
        op: str,
        rq: RangeQuery | None,
        box: Box,
    ) -> dict:
        started = time.perf_counter()
        # Snapshot the generation BEFORE any await: an /update landing
        # during the coalescer window or an executor offload bumps
        # ``cube.generation``, and stamping the post-update generation
        # onto a value computed against pre-update data would poison
        # the cache — the stale entry would pass every later generation
        # check.  Stamped with the snapshot, a raced entry is at worst
        # conservatively stale and evicts on its next lookup.
        generation = cube.generation
        key = cache_key(cube.name, op, box)
        hit, value = self.cache.get(key, generation)
        if hit:
            tier = "cache"
        else:
            tier = self.router.choose_scalar(cube, op, rq, box)
            try:
                if (
                    tier == "indexed"
                    and op in COALESCIBLE
                    and self.coalescer.window_s > 0
                ):
                    value = await self.coalescer.submit(
                        cube.name, op, box
                    )
                else:
                    work = self._scalar_work(tier, box)
                    value = await self._run_read(
                        cube,
                        lambda: self.router.run_scalar(
                            cube, tier, op, rq, box
                        ),
                        work,
                    )
            except ValueError as exc:
                raise BadRequest(str(exc)) from exc
            self.router.record(
                cube.name, tier, time.perf_counter() - started
            )
            self.cache.put(key, generation, value)
        if cube.logbook is not None:
            cube.logbook.record_box(box)
        if cube.observer is not None:
            cube.observer.observe_box(box, op)
        cube.queries += 1
        response = {
            "cube": cube.name,
            "op": op,
            "tier": tier,
            "cached": hit,
            "generation": generation,
        }
        if op in ("max", "min"):
            index, scalar = value  # type: ignore[misc]
            response["index"] = list(index)
            response["value"] = scalar
        else:
            response["value"] = value
        return response

    async def _answer_batch(
        self,
        cube: ServedCube,
        op: str,
        boxes: Sequence[Box],
        lows: np.ndarray,
        highs: np.ndarray,
    ) -> dict:
        started = time.perf_counter()
        generation = cube.generation
        tier = self.router.choose_batch(cube, op)
        work = self._batch_work(tier, lows, highs)
        try:
            result = await self._run_read(
                cube,
                lambda: self.router.run_batch(
                    cube, tier, op, lows, highs
                ),
                work,
            )
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
        self.router.record(
            cube.name, tier, time.perf_counter() - started
        )
        if cube.logbook is not None:
            for box in boxes:
                cube.logbook.record_box(box)
        if cube.observer is not None:
            for box in boxes:
                cube.observer.observe_box(box, op)
        cube.queries += len(boxes)
        response = {
            "cube": cube.name,
            "op": op,
            "tier": tier,
            "generation": generation,
        }
        if op in ("max", "min"):
            indices, values = result  # type: ignore[misc]
            response["indices"] = np.asarray(indices).tolist()
            response["values"] = np.asarray(values).tolist()
        else:
            response["values"] = np.asarray(result).tolist()
        return response

    async def _answer_rollup(
        self,
        cube: ServedCube,
        op: str,
        dims: Sequence[int],
        grid_shape: tuple[int, ...],
    ) -> dict:
        started = time.perf_counter()
        ndim = len(cube.shape)
        coords = np.stack(
            np.meshgrid(
                *[np.arange(cube.shape[d]) for d in dims],
                indexing="ij",
            ),
            axis=-1,
        ).reshape(-1, len(dims))
        cells = len(coords)
        lows = np.zeros((cells, ndim), dtype=np.int64)
        highs = np.broadcast_to(
            np.asarray(cube.shape, dtype=np.int64) - 1, (cells, ndim)
        ).copy()
        lows[:, dims] = coords
        highs[:, dims] = coords
        generation = cube.generation
        tier = self.router.choose_batch(cube, op)
        work = self._batch_work(tier, lows, highs)
        values = await self._run_read(
            cube,
            lambda: self.router.run_batch(cube, tier, op, lows, highs),
            work,
        )
        self.router.record(
            cube.name, tier, time.perf_counter() - started
        )
        cube.queries += cells
        return {
            "cube": cube.name,
            "op": op,
            "tier": tier,
            "dims": list(dims),
            "shape": list(grid_shape),
            "values": np.asarray(values).tolist(),
            "generation": generation,
        }

    async def _apply_update(
        self,
        cube: ServedCube,
        updates: list[PointUpdate],
        count_updates: list[PointUpdate] | None,
    ) -> dict:
        # Reject deltas the retained cubes cannot absorb BEFORE touching
        # any tier: numpy 2.x raises at assignment time (e.g. a negative
        # delta into an unsigned cube), and failing after the engine and
        # cuboids already applied would leave the tiers permanently
        # disagreeing.  The dry run replays the exact sequential
        # ``base[index] += delta`` loop on throwaway one-cell copies.
        _check_deltas_fit(cube.base, updates, "updates")
        if count_updates is not None and cube.counts is not None:
            _check_deltas_fit(cube.counts, count_updates, "count_updates")

        def run() -> None:
            if cube.engine is not None:
                cube.engine.apply_updates(updates, count_updates)
            if cube.cuboids is not None:
                cube.cuboids.apply_updates(updates)
            # An adopted base (register_cube(cuboid_set=...) with no
            # cube=) IS the set's own base array, which apply_updates
            # above already incremented — writing it again here would
            # double every delta in the fallback tier.  The aliasing is
            # re-checked per batch because a hot swap installs a set
            # built from a snapshot *copy*, un-sharing the base.
            if cube.cuboids is None or not np.may_share_memory(
                cube.base, cube.cuboids.base
            ):
                for update in updates:
                    cube.base[update.index] += update.delta
            if count_updates is not None and cube.counts is not None:
                for update in count_updates:
                    cube.counts[update.index] += update.delta

        # The write lock drains in-flight offloaded/coalesced reads
        # first, so no reader can observe the tiers torn mid-batch; the
        # mutation itself runs inline on the event loop, making this the
        # single writer.
        async with cube.rwlock.write_locked():
            try:
                run()
                # An adaptive rebuild snapshotted the base before this
                # batch landed: record it for replay into the new set
                # (same write lock as the swap's install, so ordering
                # between recording and replay is total).
                if cube.pending_design_updates is not None:
                    cube.pending_design_updates.extend(updates)
            except Exception as exc:
                # The dry run above makes anticipated dtype/overflow
                # failures unreachable here; anything that still raises
                # may have torn the tiers mid-batch, so quarantine the
                # cube rather than serve answers that depend on which
                # tier a query routes to.
                cube.healthy = False
                cube.generation += 1
                self.cache.invalidate_cube(cube.name)
                raise CubeInconsistent(
                    f"update to cube {cube.name!r} failed mid-apply "
                    f"({exc}); the cube is quarantined"
                ) from exc
            # Bump and invalidate BEFORE the write lock drops: a reader
            # admitted between unlock and a later bump would snapshot
            # the old generation over the new tiers and cache a stale
            # answer that passes every subsequent generation check.
            cube.generation += 1
            cube.updates_applied += len(updates)
            self.cache.invalidate_cube(cube.name)
        if cube.observer is not None:
            cube.observer.observe_update(len(updates))
        return {
            "cube": cube.name,
            "applied": len(updates),
            "count_applied": (
                0 if count_updates is None else len(count_updates)
            ),
            "generation": cube.generation,
        }

    async def _run_coalesced_batch(
        self,
        cube_name: str,
        op: str,
        lows: np.ndarray,
        highs: np.ndarray,
    ) -> list[object]:
        """Execute one coalesced batch on the indexed tier."""
        cube = self._cube(cube_name)
        engine = cube.engine
        assert engine is not None
        work = self._batch_work("indexed", lows, highs)
        values = await self._run_read(
            cube, lambda: getattr(engine, f"{op}_many")(lows, highs), work
        )
        return list(np.asarray(values).tolist())

    def _scalar_work(self, tier: str, box: Box) -> int:
        """Touched-cell estimate driving the offload decision."""
        if tier == "fallback":
            return box.volume
        return 2 ** len(box.lo)

    def _batch_work(
        self, tier: str, lows: np.ndarray, highs: np.ndarray
    ) -> int:
        if tier == "fallback":
            extents = np.maximum(highs - lows + 1, 0)
            return int(np.prod(extents, axis=1).sum())
        return len(lows) << lows.shape[1]

    async def _run_read(
        self, cube: ServedCube, fn: Callable[[], Any], work: int
    ) -> Any:
        """Run one tier computation under ``cube``'s read lock.

        The lock is what lets :meth:`_apply_update` wait out reads that
        were offloaded to the worker pool — without it, a scan still
        running in a pool thread could observe the tiers torn while the
        event loop applies an update mid-batch.
        """
        async with cube.rwlock.read_locked():
            return await self._run(fn, work)

    async def _run(self, fn: Callable[[], Any], work: int) -> Any:
        """Run ``fn`` inline or on the worker pool, by estimated work."""
        if work >= self.config.offload_cells:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self._ensure_executor(), fn)
        return fn()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        """The offload pool — shared with the threaded kernel if one is
        in play, otherwise a service-owned pool of explicit size."""
        if self._executor is None:
            for cube in self.cubes.values():
                if cube.engine is None:
                    continue
                kernel = resolve_kernel(None, cube.engine.kernel)
                if isinstance(kernel, ThreadedKernel):
                    self._executor = kernel.executor()
                    self._owns_executor = False
                    break
            if self._executor is None:
                workers = self.config.executor_workers
                if workers is None:
                    workers = os.cpu_count() or 1
                self._executor = ThreadPoolExecutor(
                    max_workers=max(1, int(workers)),
                    thread_name_prefix="repro-serving",
                )
                self._owns_executor = True
        return self._executor

    def _op(self, payload: dict, allowed: Sequence[str]) -> str:
        op = payload.get("op", "sum")
        if op not in allowed:
            raise BadRequest(
                f"unknown operator {op!r}; one of {tuple(allowed)}"
            )
        return str(op)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def save_logbooks(self) -> list[str]:
        """Write every cube's query log (§9 advisor workload format).

        A single cube with a logbook configured writes exactly
        ``logbook_path``; with several, each writes
        ``<stem>-<cube><suffix>``.  The decision is based on how many
        cubes *carry* logbooks, not which received traffic — a
        zero-query logbook still writes (``QueryLog`` is falsy when
        empty, so the filter must be an ``is not None`` check), and in a
        multi-cube service the bare path is never ambiguously claimed by
        whichever cube happened to see load.  Returns the written paths.
        """
        path = self.config.logbook_path
        if path is None:
            return []
        logged = [
            cube
            for cube in self.cubes.values()
            if cube.logbook is not None
        ]
        written = []
        if len(logged) == 1:
            logged[0].logbook.save(path)  # type: ignore[union-attr]
            written.append(path)
            return written
        stem, suffix = os.path.splitext(path)
        for cube in logged:
            target = f"{stem}-{cube.name}{suffix or '.json'}"
            cube.logbook.save(target)  # type: ignore[union-attr]
            written.append(target)
        return written

    async def close(self) -> None:
        """Flush pending coalesced work and release owned resources."""
        await self.coalescer.flush_all()
        self.save_logbooks()
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = None


# ----------------------------------------------------------------------
# Payload parsing (wire dicts → query model, with 400s on bad shape)
# ----------------------------------------------------------------------


def _parse_int(value: object, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise BadRequest(f"{what} must be an integer, got {value!r}")
    try:
        return int(value)
    except ValueError as exc:
        raise BadRequest(
            f"{what} must be an integer, got {value!r}"
        ) from exc


def _parse_number(
    value: object, what: str, minimum: float
) -> float | None:
    """An optional numeric payload field (``None`` passes through)."""
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequest(f"{what} must be a number, got {value!r}")
    number = float(value)
    if number < minimum:
        raise BadRequest(f"{what} must be >= {minimum:g}, got {number:g}")
    return number


def _parse_region(
    raw: object, shape: tuple[int, ...]
) -> tuple[RangeQuery | None, Box]:
    """One wire-format range list → ``(RangeQuery | None, canonical Box)``.

    Per dimension: ``null``/``"all"`` spans the full extent, an integer
    is a singleton, and ``[lo, hi]`` is an inclusive range.  Empty
    ranges (``hi < lo``) are legal under the normative empty-range rule
    but have no :class:`RangeQuery` spelling, so they come back as the
    box alone (``None`` query — skipping §9 routing and the logbook's
    cuboid classification, neither of which an empty region informs).
    """
    ndim = len(shape)
    if not isinstance(raw, list):
        raise BadRequest(
            "'ranges' must be a list with one entry per dimension "
            "(null | rank | [lo, hi])"
        )
    if len(raw) != ndim:
        raise BadRequest(
            f"'ranges' has {len(raw)} entries, cube has {ndim} "
            "dimensions"
        )
    specs: list[RangeSpec] | None = []
    bounds: list[tuple[int, int]] = []
    for dim, entry in enumerate(raw):
        if entry is None or entry == "all":
            bounds.append((0, shape[dim] - 1))
            if specs is not None:
                specs.append(RangeSpec.all())
        elif isinstance(entry, bool):
            raise BadRequest(
                f"ranges[{dim}] must be null, a rank, or [lo, hi]"
            )
        elif isinstance(entry, int):
            bounds.append((entry, entry))
            if specs is not None:
                specs.append(RangeSpec.at(entry))
        elif isinstance(entry, (list, tuple)) and len(entry) == 2:
            lo = _parse_int(entry[0], f"ranges[{dim}] lower bound")
            hi = _parse_int(entry[1], f"ranges[{dim}] upper bound")
            bounds.append((lo, hi))
            if hi < lo:
                specs = None  # empty: box-only spelling
            elif specs is not None:
                specs.append(RangeSpec.between(lo, hi))
        else:
            raise BadRequest(
                f"ranges[{dim}] must be null, a rank, or [lo, hi]"
            )
    try:
        box = canonical_box(bounds, shape)
    except ValueError as exc:
        raise BadRequest(str(exc)) from exc
    rq = None if specs is None else RangeQuery(tuple(specs))
    return rq, box


def _check_deltas_fit(
    target: np.ndarray,
    updates: Sequence[PointUpdate],
    what: str,
) -> None:
    """Dry-run ``target[index] += delta`` on one-cell copies.

    Replays the update loop's exact in-place assignment semantics
    (including numpy 2.x's OverflowError on e.g. a negative delta into
    an unsigned dtype, with duplicate cells accumulating sequentially)
    without touching ``target``, so a rejected batch leaves every tier
    untouched and comes back as a clean 400.
    """
    staged: dict[tuple[int, ...], np.ndarray] = {}
    for position, update in enumerate(updates):
        probe = staged.get(update.index)
        if probe is None:
            probe = np.empty(1, dtype=target.dtype)
            probe[0] = target[update.index]
            staged[update.index] = probe
        try:
            probe[0] += update.delta
        except (ValueError, TypeError, OverflowError) as exc:
            raise BadRequest(
                f"{what}[{position}]: delta {update.delta!r} cannot be "
                f"applied to a cell of dtype {target.dtype}: {exc}"
            ) from exc


def _parse_updates(
    raw: object, shape: tuple[int, ...]
) -> list[PointUpdate]:
    """Wire-format update list → validated :class:`PointUpdate` batch."""
    if not isinstance(raw, list) or not raw:
        raise BadRequest(
            "'updates' must be a non-empty list of {index, delta}"
        )
    updates = []
    for position, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise BadRequest(
                f"updates[{position}] must be an object with "
                "'index' and 'delta'"
            )
        index_raw = entry.get("index")
        if not isinstance(index_raw, (list, tuple)) or len(
            index_raw
        ) != len(shape):
            raise BadRequest(
                f"updates[{position}].index must list one coordinate "
                f"per dimension ({len(shape)})"
            )
        index = tuple(
            _parse_int(v, f"updates[{position}].index[{dim}]")
            for dim, v in enumerate(index_raw)
        )
        for dim, (coordinate, extent) in enumerate(zip(index, shape)):
            if not 0 <= coordinate < extent:
                raise BadRequest(
                    f"updates[{position}].index[{dim}] = {coordinate} "
                    f"out of range [0, {extent})"
                )
        delta = entry.get("delta")
        if isinstance(delta, bool) or not isinstance(
            delta, (int, float)
        ):
            raise BadRequest(
                f"updates[{position}].delta must be a number"
            )
        updates.append(PointUpdate(index, delta))
    return updates
