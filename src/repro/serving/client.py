"""A small asyncio JSON client for the serving HTTP surface.

One :class:`ServingClient` holds one keep-alive connection and issues
sequential requests over it; concurrency comes from multiple clients
(exactly how the load generator and the benchmark drive the service).
No dependencies beyond the standard library, so the demo script and the
tests run anywhere the server does.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any


class ServingClientError(Exception):
    """A non-2xx response, carrying the service's error payload."""

    def __init__(self, status: int, payload: dict) -> None:
        message = payload.get("message", payload.get("error", ""))
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServingClient:
    """JSON client over one keep-alive connection.

    Args:
        host: Server address.
        port: Server port.

    Use as an async context manager, or call :meth:`connect` /
    :meth:`aclose` explicitly.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def connect(self) -> None:
        """Open the connection (idempotent)."""
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def aclose(self) -> None:
        """Close the connection."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> ServingClient:
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Raw request
    # ------------------------------------------------------------------

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
    ) -> dict:
        """Issue one request; returns the parsed JSON body.

        Concurrent callers are serialized: one connection carries one
        request/response exchange at a time (HTTP/1.1, no pipelining).
        True concurrency — the kind the coalescer batches — needs one
        client per in-flight request.

        Raises:
            ServingClientError: On any non-2xx status (carries the
                server's error payload and status).
        """
        async with self._lock:
            await self.connect()
            assert self._reader is not None and self._writer is not None
            body = (
                b"" if payload is None else json.dumps(payload).encode()
            )
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "\r\n"
            )
            self._writer.write(head.encode("latin-1") + body)
            await self._writer.drain()
            status, response = await self._read_response()
        if not 200 <= status < 300:
            raise ServingClientError(status, response)
        return response

    async def _read_response(self) -> tuple[int, dict]:
        assert self._reader is not None
        status_line = (await self._reader.readline()).decode("latin-1")
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(
                f"malformed status line {status_line!r}"
            )
        status = int(parts[1])
        length = 0
        while True:
            line = (await self._reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await self._reader.readexactly(length) if length else b"{}"
        return status, json.loads(raw)

    # ------------------------------------------------------------------
    # Endpoint sugar
    # ------------------------------------------------------------------

    async def query(
        self,
        cube: str,
        ranges: list[Any],
        op: str = "sum",
    ) -> dict:
        """``POST /query`` — one scalar aggregate."""
        return await self.request(
            "POST", "/query", {"cube": cube, "op": op, "ranges": ranges}
        )

    async def query_batch(
        self,
        cube: str,
        queries: list[list[Any]],
        op: str = "sum",
    ) -> dict:
        """``POST /query_batch`` — K same-operator aggregates."""
        return await self.request(
            "POST",
            "/query_batch",
            {"cube": cube, "op": op, "queries": queries},
        )

    async def slice(
        self,
        cube: str,
        fixed: dict[int | str, int],
        op: str = "sum",
    ) -> dict:
        """``POST /slice`` — fix dimensions, aggregate the rest."""
        return await self.request(
            "POST",
            "/slice",
            {"cube": cube, "op": op, "fixed": {str(k): v for k, v in fixed.items()}},
        )

    async def rollup(
        self,
        cube: str,
        dims: list[int],
        op: str = "sum",
    ) -> dict:
        """``POST /rollup`` — group-by over the kept dimensions."""
        return await self.request(
            "POST", "/rollup", {"cube": cube, "op": op, "dims": dims}
        )

    async def update(
        self,
        cube: str,
        updates: list[dict],
        count_updates: list[dict] | None = None,
    ) -> dict:
        """``POST /update`` — apply point deltas, bump the generation."""
        payload: dict[str, Any] = {"cube": cube, "updates": updates}
        if count_updates is not None:
            payload["count_updates"] = count_updates
        return await self.request("POST", "/update", payload)

    async def stats(self) -> dict:
        """``GET /stats``."""
        return await self.request("GET", "/stats")

    async def cubes(self) -> dict:
        """``GET /cubes``."""
        return await self.request("GET", "/cubes")

    async def healthz(self) -> dict:
        """``GET /healthz``."""
        return await self.request("GET", "/healthz")
