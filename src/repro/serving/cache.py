"""LRU result cache keyed on canonical boxes, invalidated by generation.

A repeated dashboard panel asks the same range aggregate thousands of
times; with an exact cache the second and every later ask is a
dictionary hit.  Keys are built from
:func:`repro.query.ranges.canonical_box`, so every spelling of the same
region — ``Box``, ``RangeQuery``, raw pairs, numpy ints — lands on one
entry.

Correctness under updates is generation-based: every
:class:`~repro.serving.service.ServedCube` carries a monotonically
increasing ``generation`` that ``apply_updates`` bumps.  Entries record
the generation they were computed at; a lookup that finds an entry from
an older generation *evicts it and misses* (counted separately from
capacity evictions), and an update additionally drops the cube's entries
eagerly so a write-heavy cube does not pin dead results in LRU order.
"""

from __future__ import annotations

from collections import OrderedDict

from repro._util import Box

#: A cache key: ``(cube name, operator, lo bounds, hi bounds)``.
CacheKey = tuple[str, str, tuple[int, ...], tuple[int, ...]]


def cache_key(cube: str, op: str, box: Box) -> CacheKey:
    """The canonical cache key for one scalar aggregate request.

    ``box`` must already be canonical (plain-int bounds) — the service
    resolves requests through ``canonical_box`` before touching the
    cache, so equal regions always produce equal keys.
    """
    return (cube, op, box.lo, box.hi)


class ResultCache:
    """A bounded LRU of scalar aggregate answers.

    Args:
        capacity: Maximum entries held; ``0`` disables the cache
            entirely (every lookup misses, nothing is stored).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[CacheKey, tuple[int, object]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey, generation: int) -> tuple[bool, object]:
        """Look up ``key`` for a cube currently at ``generation``.

        Returns:
            ``(hit, value)``.  A stored entry from an older generation
            is removed, counted as a stale eviction, and reported as a
            miss — the caller recomputes and re-stores at the current
            generation.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return False, None
        stored_generation, value = entry
        if stored_generation != generation:
            del self._entries[key]
            self.stale_evictions += 1
            self.misses += 1
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        return True, value

    def put(self, key: CacheKey, generation: int, value: object) -> None:
        """Store an answer computed at ``generation`` (LRU-evicting)."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (generation, value)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate_cube(self, cube: str) -> int:
        """Eagerly drop every entry belonging to ``cube``.

        Generation checking alone already guarantees staleness is never
        served; this keeps a write-heavy cube's dead entries from
        occupying LRU slots until they age out.  Returns the number of
        entries dropped.
        """
        stale = [key for key in self._entries if key[0] == cube]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop everything (counters are preserved)."""
        self._entries.clear()

    def stats(self) -> dict:
        """A plain-dict snapshot for the ``/stats`` endpoint."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stale_evictions": self.stale_evictions,
            "invalidations": self.invalidations,
        }
